"""Regenerates Figure 6: the three sharing policies in a closed system.

Target shapes (paper, Section 8.2):

* 2 processors — sharing always helps: always-share and model-guided
  lead, never-share falls behind as the Q4 fraction grows;
* 32 processors — always-share collapses (paper: 80 vs 165 q/min) and
  the model-guided policy matches/beats both at every mix, averaging
  ~2.5x over always-share.
"""

from repro.experiments import fig6

from conftest import BENCH_SCALE_FACTOR, BENCH_SEED

FRACTIONS = (0.0, 0.5, 1.0)


def test_fig6_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: fig6.run(
            fractions=FRACTIONS,
            n_clients=16,
            warmup=150_000.0,
            window=500_000.0,
            scale_factor=BENCH_SCALE_FACTOR,
            seed=BENCH_SEED,
        ),
        rounds=1, iterations=1,
    )

    # 2 processors: never-share loses ground as Q4 rises; the sharing
    # policies dominate at join-heavy mixes.
    assert result.throughput("always", 2, 1.0) > (
        2.0 * result.throughput("never", 2, 1.0)
    )
    assert result.throughput("model", 2, 1.0) > (
        2.0 * result.throughput("never", 2, 1.0)
    )

    # 32 processors: always-share collapses on the scan-heavy mixes.
    assert result.throughput("always", 32, 0.0) < (
        0.5 * result.throughput("never", 32, 0.0)
    )
    # The model-guided policy is never (materially) worse than either
    # static policy at any mix.
    for fraction in FRACTIONS:
        model = result.throughput("model", 32, fraction)
        assert model >= 0.9 * result.throughput("never", 32, fraction)
        assert model >= 0.9 * result.throughput("always", 32, fraction)

    # Headline: model-guided vs always-share averages in the paper's
    # ~2.5x territory on the CMP.
    assert result.average_ratio(32, "model", "always") > 1.8
