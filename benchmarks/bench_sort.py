"""Benchmarks of the grant-governed external sort.

Tracks the shapes the subsystem exists to produce — shrinking
``work_mem`` degrades a sort's makespan smoothly while the answer
stays bit-identical, and prefetched spill read-back strictly beats
synchronous read-back at the same budget — plus the host-side cost of
the pure sorting kernel the stage is built on.
"""

from conftest import wall_samples

from repro.engine import CostModel, Engine, MemoryBroker, scan, sort
from repro.engine.operators.sort import sort_rows
from repro.sim import Simulator
from repro.storage import BufferPool, Catalog, DataType, Schema

PAGE_ROWS = 64
COSTS = CostModel(io_page=160.0, spill_page=200.0)
ROWS = 4000


def _catalog(rows=ROWS):
    catalog = Catalog()
    schema = Schema([("g", DataType.INT), ("k", DataType.INT)])
    data = [((i * 48271) % 97, i) for i in range(rows)]
    catalog.create("stream", schema).insert_many(data)
    return catalog


def _run_sort(catalog, work_mem, prefetch_depth=0, processors=4):
    sim = Simulator(processors=processors)
    engine = Engine(
        catalog,
        sim,
        costs=COSTS,
        page_rows=PAGE_ROWS,
        buffer_pool=BufferPool(16),
        memory=MemoryBroker(work_mem) if work_mem is not None else None,
        spill_prefetch_depth=prefetch_depth,
    )
    plan = sort(
        scan(catalog, "stream", columns=["g", "k"], op_id="s"),
        [("g", True), ("k", False)],
        op_id="big_sort",
    )
    handle = engine.execute(plan, f"wm{work_mem}")
    sim.run()
    return handle.rows, sim.now


def test_external_sort_degrades_gracefully(benchmark, trajectory):
    """Tight budgets spill more but never change the answer."""
    catalog = _catalog()

    def run():
        reference, unbounded = _run_sort(catalog, None)
        tight_rows, tight = _run_sort(catalog, 4)
        return reference, unbounded, tight_rows, tight

    # Warm multi-round sampling: the trajectory judges the median, so
    # one noisy round on a busy host cannot fake a regression.
    reference, unbounded, tight_rows, tight = benchmark.pedantic(
        run, rounds=5, warmup_rounds=1
    )
    assert tight_rows == reference
    assert tight > unbounded
    trajectory.record(
        "sort_external",
        sim_time=tight,
        wall_samples=wall_samples(benchmark),
        rows=ROWS,
        counters={"sim_unbounded": unbounded},
        tolerance_pct=20.0,
    )


def test_spill_prefetch_shrinks_merge(benchmark):
    """Read-ahead depth > 0 strictly beats synchronous read-back."""
    catalog = _catalog()

    def run():
        rows_sync, sync = _run_sort(catalog, 4, prefetch_depth=0)
        rows_pf, prefetched = _run_sort(catalog, 4, prefetch_depth=2)
        return rows_sync, sync, rows_pf, prefetched

    rows_sync, sync, rows_pf, prefetched = benchmark.pedantic(run, rounds=1)
    assert rows_pf == rows_sync
    assert prefetched < sync


def test_sort_rows_kernel_overhead(benchmark):
    """Raw host cost of the grouped itemgetter sort kernel."""
    schema = Schema([("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT)])
    rows = [((i * 7) % 13, (i * 31) % 101, i) for i in range(20000)]
    keys = [("a", True), ("b", True), ("c", False)]

    ordered = benchmark(lambda: sort_rows(rows, schema, keys))
    assert len(ordered) == len(rows)
    assert ordered == sorted(rows, key=lambda r: (r[0], r[1], -r[2]))
