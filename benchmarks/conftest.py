"""Shared fixtures for the benchmark suite.

Every bench regenerates (a reduced-scale version of) one paper table
or figure and asserts its qualitative shape, so the benchmark suite
doubles as an end-to-end reproduction check. Heavy experiment benches
use ``benchmark.pedantic(rounds=1)`` — the interesting number is the
experiment's output, not micro-timing stability.
"""

import pytest

from repro.tpch.generator import generate

BENCH_SCALE_FACTOR = 0.0005
BENCH_SEED = 2007


@pytest.fixture(scope="session")
def catalog():
    """One small TPC-H database shared by every bench."""
    return generate(scale_factor=BENCH_SCALE_FACTOR, seed=BENCH_SEED)
