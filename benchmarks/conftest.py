"""Shared fixtures for the benchmark suite.

Every bench regenerates (a reduced-scale version of) one paper table
or figure and asserts its qualitative shape, so the benchmark suite
doubles as an end-to-end reproduction check. Heavy experiment benches
use ``benchmark.pedantic(rounds=1)`` — the interesting number is the
experiment's output, not micro-timing stability.

The session-scoped :func:`trajectory` fixture is the perf-trajectory
harness: benches that opt in record one named entry each (simulated
time, wall seconds, and whatever counters characterize the run), and
at session end the collected entries are written to ``BENCH_6.json``
at the repo root — ``{bench_name: {"sim_time": ..., "wall_s": ...,
"counters": {...}}}`` — which CI's bench-smoke step uploads as an
artifact, giving every PR a comparable performance trace.
"""

import json
from pathlib import Path

import pytest

from repro.tpch.generator import generate

BENCH_SCALE_FACTOR = 0.0005
BENCH_SEED = 2007

TRAJECTORY_FILE = Path(__file__).resolve().parent.parent / "BENCH_6.json"


@pytest.fixture(scope="session")
def catalog():
    """One small TPC-H database shared by every bench."""
    return generate(scale_factor=BENCH_SCALE_FACTOR, seed=BENCH_SEED)


class Trajectory:
    """Collects per-bench performance entries for ``BENCH_6.json``."""

    def __init__(self) -> None:
        self.entries: dict[str, dict] = {}

    def record(
        self,
        name: str,
        sim_time: float,
        wall_s: float,
        counters: dict | None = None,
    ) -> None:
        """Store one bench's entry (last write per name wins)."""
        self.entries[name] = {
            "sim_time": sim_time,
            "wall_s": round(wall_s, 6),
            "counters": dict(counters or {}),
        }

    def write(self, path: Path = TRAJECTORY_FILE) -> None:
        path.write_text(
            json.dumps(self.entries, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture(scope="session")
def trajectory():
    """The session-wide trajectory sink; written at session end."""
    sink = Trajectory()
    yield sink
    if sink.entries:
        sink.write()
