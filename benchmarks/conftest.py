"""Shared fixtures for the benchmark suite.

Every bench regenerates (a reduced-scale version of) one paper table
or figure and asserts its qualitative shape, so the benchmark suite
doubles as an end-to-end reproduction check. Heavy experiment benches
use ``benchmark.pedantic(rounds=1)`` — the interesting number is the
experiment's output, not micro-timing stability.

The session-scoped :func:`trajectory` fixture is the perf-trajectory
harness: every smoke bench records one named entry (simulated time,
wall seconds, and whatever counters characterize the run), and at
session end the collected entries are written to ``BENCH_10.json`` at
the repo root under the versioned ``repro-bench/1`` schema
(:mod:`repro.obs.bench`) — host fingerprint plus per-bench
``{sim_time, wall_s, rows_per_s, counters, wall_samples,
tolerance_pct}``. CI's perf job uploads the file as an artifact and
diffs it against the committed checkpoint with a blocking
``repro perf diff --fail-over`` gate, so every PR carries a
comparable, gated performance trace.
"""

from pathlib import Path

import pytest

from repro.obs.bench import BenchTrajectory
from repro.tpch.generator import generate

BENCH_SCALE_FACTOR = 0.0005
BENCH_SEED = 2007

TRAJECTORY_FILE = Path(__file__).resolve().parent.parent / "BENCH_10.json"


@pytest.fixture(scope="session")
def catalog():
    """One small TPC-H database shared by every bench."""
    return generate(scale_factor=BENCH_SCALE_FACTOR, seed=BENCH_SEED)


def wall_samples(benchmark):
    """Per-round wall-clock samples out of a pytest-benchmark fixture.

    Feeds the trajectory's median-of-k rule: every timed round becomes
    one sample, so a single noisy round cannot fake a regression.
    Returns ``None`` when the fixture recorded no stats (``--benchmark-
    disable`` runs) — callers then fall back to their own timing.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return None
    data = getattr(getattr(stats, "stats", None), "data", None)
    if not data:
        return None
    return list(data)


@pytest.fixture(scope="session")
def trajectory():
    """The session-wide trajectory sink; written at session end."""
    sink = BenchTrajectory()
    yield sink
    if sink.entries:
        sink.write(TRAJECTORY_FILE)
