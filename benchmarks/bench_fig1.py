"""Regenerates Figure 1: Q6 scan sharing vs never-share.

Asserts the paper's qualitative result: on one CPU sharing approaches
~2x; on 32 CPUs it is severely detrimental (the paper observed a 10x
loss with only ~3 of 32 contexts utilized under sharing).
"""

from repro.experiments import fig1
from repro.experiments.common import batch_speedup
from repro.tpch.queries import build

from conftest import BENCH_SCALE_FACTOR, BENCH_SEED

CLIENTS = (1, 4, 16, 32)


def test_fig1_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: fig1.run(clients=CLIENTS, scale_factor=BENCH_SCALE_FACTOR,
                         seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    one_cpu = result.line(1).as_mapping()
    many_cpu = result.line(32).as_mapping()
    # 1 CPU: any saved work is a win; approaches ~2x at load.
    assert one_cpu[32] > 1.5
    # 32 CPUs: sharing caps parallelism and collapses throughput.
    assert many_cpu[32] < 0.25
    # Monotone divergence: more clients widen the 1-CPU benefit.
    speedups = result.line(1).speedups
    assert speedups[-1] >= speedups[0]


def test_fig1_single_cell(benchmark, catalog):
    """One measurement cell (16 clients, 8 cpus) — the unit of work the
    full figure repeats 28 times."""
    query = build("q6", catalog)
    z = benchmark.pedantic(
        lambda: batch_speedup(catalog, query, 16, 8), rounds=1, iterations=1
    )
    assert z < 1.0  # 8 cpus: sharing already harmful for Q6
