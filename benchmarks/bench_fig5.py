"""Regenerates Figure 5: model validation against the engine.

The reproduction's analogue of the paper's error statistics (scan
max/avg 22%/5.7%; join 30%/5.9%): we assert that the average error
stays in a comparable band and — the paper's actual point — that the
binary share/don't-share recommendation is nearly always correct.
"""

from repro.experiments import fig5

from conftest import BENCH_SCALE_FACTOR, BENCH_SEED

CLIENTS = (2, 8, 16, 32)


def test_fig5_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: fig5.run(clients=CLIENTS, scale_factor=BENCH_SCALE_FACTOR,
                         seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    # First-order accuracy: average error within a few tens of percent
    # (the paper's averages were ~6%; our simulator adds pipeline-fill
    # effects the model ignores, so the band is wider but must stay
    # first-order).
    assert result.avg_error("scan-heavy") < 0.30
    assert result.avg_error("join-heavy") < 0.40
    # The binary recommendation is what the engine consumes.
    assert result.decision_accuracy() >= 0.85


def test_fig5_scan_heavy_only(benchmark):
    """The scan-heavy half in isolation (cheaper, tighter band)."""
    result = benchmark.pedantic(
        lambda: fig5.run(clients=(8, 32), queries=("q6",),
                         scale_factor=BENCH_SCALE_FACTOR, seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    assert result.avg_error("scan-heavy") < 0.25
    for point in result.points:
        if point.processors == 32 and point.clients >= 8:
            assert point.predicted < 1.0 and point.measured < 1.0
