"""Benchmarks of the repro.db facade.

The facade is wiring, not behavior: a session-run query must match a
hand-wired engine run on *simulated* time exactly (the <2% gate below
is generous on purpose — any drift means the facade started charging
work of its own), and the host-side overhead of the builder + routing
layer is tracked against raw plan construction + ``Engine.execute``.
"""

import time

from conftest import wall_samples

from repro.db import Database, RuntimeConfig
from repro.engine import AggSpec, Engine, aggregate, scan
from repro.engine.expressions import col, lt
from repro.sim import Simulator

PROCESSORS = 8
CLIENTS = 8
MAX_SIM_TIME_DELTA = 0.02


def _plan(catalog):
    return aggregate(
        scan(
            catalog,
            "lineitem",
            columns=["l_quantity", "l_extendedprice"],
            predicate=lt(col("l_quantity"), 30.0),
        ),
        group_by=(),
        aggs=[AggSpec("sum", "rev", col("l_extendedprice"))],
    )


def _facade_run(catalog, config):
    session = Database.open(catalog, config)
    results = []
    query = _plan(catalog)
    for i in range(CLIENTS):
        session.submit(query, label=f"q{i}", share=False)
    results = session.run_all()
    return session.now, results


def _raw_run(catalog, config):
    sim = Simulator(processors=config.processors)
    engine = Engine(
        catalog,
        sim,
        costs=config.cost_model,
        page_rows=config.page_rows,
        queue_capacity=config.queue_capacity,
    )
    plan = _plan(catalog)
    handles = [engine.execute(plan, f"q{i}") for i in range(CLIENTS)]
    sim.run()
    return sim.now, handles


def test_facade_overhead_vs_raw_engine(benchmark, catalog):
    """Facade and raw engine must agree on simulated time (<2%)."""
    config = RuntimeConfig(processors=PROCESSORS)

    def run():
        facade_now, results = _facade_run(catalog, config)
        raw_now, handles = _raw_run(catalog, config)
        return facade_now, raw_now, results, handles

    facade_now, raw_now, results, handles = benchmark.pedantic(run, rounds=1, iterations=1)
    delta = abs(facade_now - raw_now) / raw_now
    assert delta < MAX_SIM_TIME_DELTA, f"facade simulated time drifted {delta:.2%} from raw engine"
    assert [r.rows for r in results] == [h.rows for h in handles]


def test_auto_decision_cost_is_cached(benchmark, catalog):
    """The advisor profiles an operation once; later batches of the
    same signature reuse the cached spec."""
    session = Database.open(catalog, RuntimeConfig(processors=PROCESSORS))
    query = (
        session.table("lineitem", columns=["l_quantity"])
        .where(lt(col("l_quantity"), 30.0))
        .agg(AggSpec("count", "n"))
        .named("hot")
    )
    for i in range(CLIENTS):
        session.submit(query)
    session.run_all()  # pays the one-time profile

    def warm_batch():
        for i in range(CLIENTS):
            session.submit(query)
        return session.run_all()

    results = benchmark.pedantic(warm_batch, rounds=3, iterations=1)
    assert len(results) == CLIENTS
    assert len(session._specs) == 1


def test_tracing_disabled_is_free(benchmark, catalog, trajectory):
    """Tracing off must be invisible: identical simulated time and
    answers to a traced run, with near-zero wall overhead (every emit
    site is one ``tracer is None`` check).

    Records the perf-trajectory entries for both modes."""
    config = RuntimeConfig(processors=PROCESSORS)

    started = time.perf_counter()
    off_now, off_results = _facade_run(catalog, config)
    off_wall = time.perf_counter() - started

    traced = Database.open(catalog, config.with_(trace=True))
    query = _plan(catalog)
    started = time.perf_counter()
    for i in range(CLIENTS):
        traced.submit(query, label=f"q{i}", share=False)
    on_results = traced.run_all()
    on_wall = time.perf_counter() - started

    assert traced.now == off_now, "tracing changed simulated time"
    assert [r.rows for r in on_results] == [r.rows for r in off_results]

    def run_untraced():
        return _facade_run(catalog, config)

    benchmark.pedantic(run_untraced, rounds=3, iterations=1)
    stalls = off_results[-1].stalls
    # The pedantic rounds re-time the untraced run: with the manual
    # measurement they give the median-of-k rule 4 samples.
    samples = (wall_samples(benchmark) or []) + [off_wall]
    trajectory.record(
        "session_trace_off",
        sim_time=off_now,
        wall_samples=samples,
        counters={f"stall.{k}": v for k, v in stalls.items()},
    )
    trajectory.record(
        "session_trace_on",
        sim_time=traced.now,
        wall_s=on_wall,
        counters={"trace_events": len(traced.tracer.events)},
    )
