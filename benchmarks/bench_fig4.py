"""Regenerates Figure 4: the three Section-6 sensitivity panels.

Pure model evaluation (no engine), so this bench also tracks the
model's evaluation cost at figure scale.
"""

from repro.core.sensitivity import staged_query, work_eliminated_fraction
from repro.experiments import fig4

CLIENTS = tuple(range(1, 41))


def test_fig4_regenerates(benchmark):
    result = benchmark(lambda: fig4.run(clients=CLIENTS))

    # Left: 1 CPU always eventually wins; 32 CPUs never; 16 sometimes.
    left = result.processors
    assert left.ever_beneficial(1.0)
    assert not left.ever_beneficial(32.0)
    sixteen = left.series[16.0]
    assert any(z > 1.0 for z in sixteen) and any(z < 1.0 for z in sixteen)

    # Center: benefit decreases monotonically with s at full load.
    center = result.output_cost
    at_full = [center.series[s][-1] for s in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)]
    assert at_full == sorted(at_full, reverse=True)
    assert at_full[0] > 1.0      # s = 0 wins on 32 cpus
    assert at_full[-1] < 1.0     # s = 4 loses

    # Right: moving stages below the pivot helps, with a diminishing
    # final step; speedup stays far below the 50x work-elimination bound.
    right = result.work_below
    at_full = {k: right.series[k][-1] for k in right.series}
    assert at_full[0.0] < at_full[3.0] < at_full[4.0]
    assert (at_full[5.0] - at_full[4.0]) < (at_full[4.0] - at_full[3.0])
    assert at_full[5.0] < 10.0


def test_fig4_labels_match_paper(benchmark):
    """The right panel's legend percentages (28%..98%)."""

    def fractions():
        return [
            round(100 * work_eliminated_fraction(staged_query(k), "pivot"))
            for k in range(6)
        ]

    values = benchmark(fractions)
    assert values == [28, 42, 56, 70, 84, 98]
