"""Benchmarks of the exchange-partitioned parallel subsystem.

Tracks the shape intra-query parallelism exists to produce — a
``dop``-way fragmented partition-wise aggregate finishes sooner in
simulated time than its serial pipeline on a multi-context machine
while returning the bit-identical answer — plus a partition-wise join
parity smoke at the same scale.
"""

from conftest import wall_samples

from repro.engine import AggSpec, Engine, aggregate, hash_join, scan
from repro.engine.expressions import col
from repro.sim import Simulator
from repro.storage import Catalog, DataType, Schema

ROWS = 6000
GROUPS = 64
PROCESSORS = 8
DOP = 4


def _catalog(rows=ROWS):
    catalog = Catalog()
    schema = Schema([("g", DataType.INT), ("v", DataType.FLOAT)])
    data = []
    state = 2007
    for _ in range(rows):
        state = (state * 48271) % 2147483647
        data.append((state % GROUPS, (state % 1000) / 1000.0))
    catalog.create("events", schema).insert_many(data)
    dim = Schema([("dg", DataType.INT), ("w", DataType.FLOAT)])
    catalog.create("dims", dim).insert_many(
        [(g, g / GROUPS) for g in range(GROUPS)]
    )
    return catalog


def _agg_plan(catalog):
    return aggregate(
        scan(catalog, "events", columns=["g", "v"]),
        ("g",),
        [AggSpec("sum", "total", col("v")), AggSpec("count", "rows", None)],
    )


def _run(catalog, plan_fn, dop):
    sim = Simulator(processors=PROCESSORS)
    engine = Engine(catalog, sim)
    handle = engine.execute(plan_fn(catalog), f"bench@dop{dop}", dop=dop)
    sim.run()
    return handle.rows, sim.now


def test_partition_aggregate_speedup(benchmark, trajectory):
    """Fragmenting the aggregate pays in sim time, answer unchanged."""
    catalog = _catalog()

    def run():
        serial_rows, serial = _run(catalog, _agg_plan, 1)
        parallel_rows, parallel = _run(catalog, _agg_plan, DOP)
        return serial_rows, serial, parallel_rows, parallel

    # Warm multi-round sampling: the trajectory judges the median, so
    # one noisy round on a busy host cannot fake a regression.
    serial_rows, serial, parallel_rows, parallel = benchmark.pedantic(
        run, rounds=5, warmup_rounds=1
    )
    assert parallel_rows == serial_rows  # bit-identical, not just equal sets
    assert parallel < serial
    trajectory.record(
        "parallel_agg",
        sim_time=parallel,
        wall_samples=wall_samples(benchmark),
        rows=ROWS,
        counters={"sim_serial": serial},
        tolerance_pct=20.0,
    )


def test_partition_join_parity(benchmark):
    """The partition-wise join reproduces the serial row set."""
    catalog = _catalog()

    def plan(cat):
        return hash_join(
            scan(cat, "dims", columns=["dg", "w"]),
            scan(cat, "events", columns=["g", "v"]),
            build_key="dg",
            probe_key="g",
        )

    def run():
        serial_rows, _ = _run(catalog, plan, 1)
        parallel_rows, parallel = _run(catalog, plan, DOP)
        return serial_rows, parallel_rows, parallel

    serial_rows, parallel_rows, _ = benchmark.pedantic(run, rounds=1)
    assert sorted(parallel_rows) == sorted(serial_rows)
