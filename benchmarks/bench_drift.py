"""Benchmarks of drift governance on the elevator-scan hot path.

Tracks the qualitative shapes ``fig_drift`` asserts — throttling a
skewed convoy restores ~one physical pass where unbounded drift pays
for itself several times over — plus the host-side overhead of the
per-acquire drift bookkeeping (lag scans, gate checks), which rides
the scan hot path whenever a drift bound is configured.
"""

from conftest import wall_samples

from repro.db import Database, RuntimeConfig
from repro.engine import CostModel
from repro.engine.expressions import col, ge
from repro.storage import Catalog, DataType, Schema

PAGE_ROWS = 25
ROWS = 1200
POOL_PAGES = 22
COSTS = CostModel(io_page=400.0)
SPEEDS = (1.0, 1.0, 1.0, 16.0, 32.0, 64.0)


def _catalog():
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    catalog.create("stream", schema).insert_many(
        [(i, float(i % 97)) for i in range(ROWS)]
    )
    return catalog


def _run(catalog, drift_bound, group_windows):
    session = Database.open(catalog, RuntimeConfig(
        pool_pages=POOL_PAGES, prefetch_depth=2,
        drift_bound=drift_bound, group_windows=group_windows,
        page_rows=PAGE_ROWS, processors=12, cost_model=COSTS,
    ))
    for i, factor in enumerate(SPEEDS):
        query = (session.table("stream", columns=["k", "v"])
                 .where(ge(col("k"), 0))
                 .with_cost_factor(factor))
        session.submit(query, label=f"c{i}", share=False)
    session.run_all()
    return session


def test_throttle_restores_single_pass(benchmark, trajectory):
    """Drift-bounded convoy: ~1 physical pass vs several unbounded."""
    catalog = _catalog()

    def run_both():
        throttled = _run(catalog, 8, False)
        unbounded = _run(catalog, None, False)
        return (throttled.now,
                throttled.scans.snapshot()[0].physical_reads,
                unbounded.scans.snapshot()[0].physical_reads)

    throttled_now, throttled_reads, unbounded_reads = benchmark(run_both)
    pages = catalog.table("stream").page_count(PAGE_ROWS)
    assert throttled_reads <= 1.5 * pages
    assert unbounded_reads > 2 * pages
    trajectory.record(
        "drift_throttle",
        sim_time=throttled_now,
        wall_samples=wall_samples(benchmark),
        rows=ROWS * len(SPEEDS),
        counters={
            "throttled_reads": throttled_reads,
            "unbounded_reads": unbounded_reads,
        },
        tolerance_pct=15.0,
    )


def test_drift_bookkeeping_overhead(benchmark):
    """Host-side cost of the gate + lag scans on a governed convoy."""
    catalog = _catalog()
    session = benchmark(lambda: _run(catalog, 8, True))
    assert session.scans.snapshot()[0].physical_reads > 0
