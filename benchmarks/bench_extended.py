"""Benches for the extended TPC-H suite (beyond the paper's four).

Each extended query runs staged vs reference (the bench doubles as a
correctness check under benchmark timing) and the join pivots inherit
the paper's sharing result on small machines.
"""

import pytest

from repro.engine import Engine, execute_reference
from repro.experiments.common import batch_speedup
from repro.sim import Simulator
from repro.tpch.extended_queries import build_extended


@pytest.mark.parametrize("name", ["q3", "q10", "q12", "q14"])
def test_extended_query_staged(benchmark, catalog, name):
    query = build_extended(name, catalog)
    reference = execute_reference(query.plan, catalog)

    def run():
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        handle = engine.execute(query.plan, name)
        sim.run()
        return handle

    handle = benchmark(run)
    assert handle.rows == reference


def test_extended_sharing_wins_on_uniprocessor(benchmark, catalog):
    def sweep():
        return {
            name: batch_speedup(catalog, build_extended(name, catalog), 8, 1)
            for name in ("q3", "q10", "q12")
        }

    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, z in speedups.items():
        assert z > 1.8, f"{name}: {z}"
