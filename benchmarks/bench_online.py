"""Ablation: online vs offline model-guided policies.

The paper uses offline profiling; the library also ships online
estimation (its anticipated extension). This bench runs both against
the same workload and asserts the online policy converges to the same
sharing behaviour as the offline one — paying only a bounded
exploration cost.
"""

from repro.policies import ModelGuidedPolicy, OnlineModelGuidedPolicy
from repro.profiling import QueryProfiler
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system


def test_online_matches_offline_decisions(benchmark, catalog):
    q6 = build("q6", catalog)
    profile = QueryProfiler(catalog).profile(q6.plan, q6.pivot, label="q6")
    offline = ModelGuidedPolicy({"q6": (profile.to_query_spec(), q6.pivot)})

    def run(policy):
        return run_closed_system(
            catalog, policy, WorkloadMix.single("q6"),
            n_clients=10, processors=32,
            warmup=100_000.0, window=400_000.0,
        )

    def both():
        online = OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=2)
        return run(offline), run(online), online

    offline_result, online_result, online_policy = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    # Both settle on not sharing Q6 on 32 cpus; the online run paid a
    # small exploration cost but must land within 15% of offline.
    assert online_policy.estimators["q6"].ready()
    assert offline_result.shared_submissions == 0
    assert online_result.throughput > 0.85 * offline_result.throughput


def test_online_with_prior_skips_exploration(benchmark, catalog):
    q6 = build("q6", catalog)
    profile = QueryProfiler(catalog).profile(q6.plan, q6.pivot, label="q6")

    def run():
        policy = OnlineModelGuidedPolicy(
            {"q6": q6}, exploration_budget=0, priors={"q6": profile},
        )
        result = run_closed_system(
            catalog, policy, WorkloadMix.single("q6"),
            n_clients=8, processors=32,
            warmup=50_000.0, window=200_000.0,
        )
        return policy, result

    policy, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert policy.exploration_shares == 0
    assert result.shared_submissions == 0  # prior already says "don't"
