"""Micro-benchmarks of the analytical model (Section 4 / Table 1).

The model must be cheap enough to consult on every query arrival
(Section 8 integrates it into the engine's runtime decision path);
these benches measure a single decision and a full sensitivity sweep,
and pin the Section 4.4 golden values.
"""

import pytest

from repro.core import ShareAdvisor
from repro.core.model import shared_rate, sharing_benefit, unshared_rate
from repro.core.sensitivity import sweep_processors
from repro.core.spec import QuerySpec, chain, op


@pytest.fixture(scope="module")
def q6_group():
    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                   label="q6")
    return [q6.relabeled(f"q6#{i}") for i in range(48)]


def test_single_decision(benchmark, q6_group):
    """One runtime share/don't-share decision (48 sharers, 32 cpus)."""
    advisor = ShareAdvisor(processors=32)
    decision = benchmark(advisor.evaluate, q6_group, "scan")
    assert not decision.share
    assert decision.benefit < 0.2


def test_rate_evaluation(benchmark, q6_group):
    """Raw shared/unshared rate computation for the Section 4.4 case."""

    def rates():
        return (
            shared_rate(q6_group, "scan", 32),
            unshared_rate(q6_group, 32),
        )

    shared, unshared = benchmark(rates)
    # Section 4.4 closed forms at m=48, n=32.
    assert unshared == pytest.approx(min(48 / 20.0, 32 / 20.97))
    assert shared == pytest.approx(
        min(1 / (9.66 / 48 + 10.34), 32 / (9.66 / 48 + 11.31))
    )


def test_sensitivity_sweep(benchmark):
    """Figure 4 (left): full 7-line x 40-client model sweep."""
    result = benchmark(sweep_processors)
    assert result.ever_beneficial(1.0)
    assert not result.ever_beneficial(32.0)


def test_benefit_scales_with_group_size(benchmark, q6_group):
    """Z over all prefixes of the group (the advisor's search loop)."""

    def all_prefixes():
        return [
            sharing_benefit(q6_group[:m], "scan", 1)
            for m in range(2, len(q6_group) + 1)
        ]

    zs = benchmark(all_prefixes)
    assert all(hi >= lo for lo, hi in zip(zs, zs[1:]))
    assert zs[-1] > 1.5
