"""Benchmarks of the memory-governance layer.

Sweeps buffer-pool capacity x eviction policy on a repeated-scan
workload and ``work_mem`` on the spilling hybrid hash join, asserting
the qualitative shapes the subsystem exists to produce: hit rates grow
with capacity, spill traffic shrinks monotonically as memory grows,
and the join's answer never changes. Also tracks the host-side
overhead of the pool's bookkeeping, which sits on the scan hot path
whenever a pool is attached.
"""

from repro.engine import Engine, IO_AWARE_COST_MODEL, MemoryBroker, resource_report
from repro.sim import Simulator
from repro.storage import BufferPool, table_page_key
from repro.tpch.queries import build

WORK_MEMS = (64, 16, 4)
CAPACITIES = (16, 64, 256)
POLICIES = ("lru", "clock", "mru")


def _run_query(catalog, query, pool=None, memory=None, processors=8):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, costs=IO_AWARE_COST_MODEL,
                    buffer_pool=pool, memory=memory)
    handle = engine.execute(query.plan, query.name)
    sim.run()
    return handle, engine


def test_pool_access_overhead(benchmark):
    """Raw bookkeeping cost: 100k accesses over a 256-frame LRU pool."""

    def run():
        pool = BufferPool(256, "lru")
        for i in range(100_000):
            pool.access(table_page_key("t", i % 1024))
        return pool

    pool = benchmark(run)
    assert pool.stats.accesses == 100_000


def test_hit_rate_grows_with_capacity(benchmark, catalog):
    """Two q6 passes per (policy, capacity): bigger pools hit more."""
    query = build("q6", catalog)

    def run():
        rates = {}
        for policy in POLICIES:
            for capacity in CAPACITIES:
                pool = BufferPool(capacity, policy)
                _run_query(catalog, query, pool=pool)
                _run_query(catalog, query, pool=pool)
                rates[policy, capacity] = pool.stats.hit_rate
        return rates

    rates = benchmark.pedantic(run, rounds=1)
    for policy in POLICIES:
        series = [rates[policy, c] for c in CAPACITIES]
        assert series == sorted(series), (policy, series)
    # A pool bigger than the table retains everything: the second pass
    # is all hits, whatever the policy.
    for policy in POLICIES:
        assert rates[policy, 256] >= 0.49


def test_spill_monotone_under_work_mem(benchmark, catalog):
    """The q4 join spills more as work_mem shrinks; answers agree."""
    query = build("q4", catalog)

    def run():
        points = []
        for work_mem in WORK_MEMS:
            handle, engine = _run_query(
                catalog, query,
                pool=BufferPool(128, "lru"),
                memory=MemoryBroker(work_mem),
            )
            report = resource_report(engine)
            points.append(
                (work_mem, sorted(handle.rows), report.spill_pages_written)
            )
        return points

    points = benchmark.pedantic(run, rounds=1)
    answers = {tuple(rows) for _, rows, _ in points}
    assert len(answers) == 1
    spills = [written for _, _, written in points]  # work_mem descending
    assert spills == sorted(spills)
