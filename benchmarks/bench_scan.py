"""Benchmarks of the cooperative scan-sharing layer.

Tracks the makespan shapes the subsystem exists to produce — N
staggered scans riding one elevator pass beat N private cold passes,
prefetch strictly shrinks a cold scan — plus the host-side overhead
of the manager's per-page bookkeeping, which sits on the scan hot
path whenever cooperative scans are enabled.
"""

from conftest import wall_samples

from repro.engine import CostModel, Engine, scan
from repro.sim import Simulator
from repro.storage import (
    BufferPool,
    Catalog,
    DataType,
    ScanShareManager,
    Schema,
)

PAGE_ROWS = 64
COSTS = CostModel(io_page=400.0)
CONSUMERS = 4


def _catalog(rows=6000, replicas=CONSUMERS):
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    data = [(i, float(i % 97)) for i in range(rows)]
    for name in ["stream"] + [f"stream__{t}" for t in range(replicas)]:
        catalog.create(name, schema).insert_many(data)
    return catalog


def _run_scans(catalog, table_names, manager=None, pool=None, processors=8):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, costs=COSTS, page_rows=PAGE_ROWS,
                    scan_manager=manager, buffer_pool=pool)
    handles = [
        engine.execute(
            scan(catalog, name, columns=["k", "v"], op_id=f"scan:{name}"),
            f"q{i}",
        )
        for i, name in enumerate(table_names)
    ]
    sim.run()
    return sim.now, handles


def test_cooperative_scans_beat_private_passes(benchmark, trajectory):
    """m concurrent scans: one elevator pass vs m private cold passes."""
    catalog = _catalog()
    pages = catalog.table("stream").page_count(PAGE_ROWS)

    def run():
        manager = ScanShareManager(BufferPool(pages * 2), prefetch_depth=2)
        coop, handles = _run_scans(
            catalog, ["stream"] * CONSUMERS, manager=manager
        )
        indep, _ = _run_scans(
            catalog,
            [f"stream__{t}" for t in range(CONSUMERS)],
            pool=BufferPool(pages * (CONSUMERS + 1)),
        )
        stats = manager.snapshot()[0]
        return coop, indep, stats, handles

    # Warm multi-round sampling: round one decodes and memoizes the
    # fused pages, later rounds measure the steady state the trajectory's
    # median-of-k rule was built for. The simulated times are
    # deterministic and identical in every round.
    coop, indep, stats, handles = benchmark.pedantic(
        run, rounds=5, warmup_rounds=1
    )
    assert coop < indep
    assert stats.physical_reads <= 1.2 * stats.n_pages
    reference = sorted(catalog.table("stream").rows())
    for handle in handles:
        assert sorted(handle.rows) == reference
    trajectory.record(
        "scan_cooperative",
        sim_time=coop,
        wall_samples=wall_samples(benchmark),
        rows=sum(len(handle.rows) for handle in handles),
        counters={
            "sim_independent": indep,
            "physical_reads": stats.physical_reads,
            "pages_served": stats.pages_served,
        },
        tolerance_pct=20.0,
    )


def test_prefetch_shrinks_cold_scan(benchmark):
    """Prefetch depth > 0 strictly beats depth 0 on a cold scan."""
    catalog = _catalog(replicas=0)
    pages = catalog.table("stream").page_count(PAGE_ROWS)

    def run():
        makespans = {}
        for depth in (0, 2):
            manager = ScanShareManager(BufferPool(pages * 2),
                                       prefetch_depth=depth)
            makespans[depth], _ = _run_scans(catalog, ["stream"],
                                             manager=manager)
        return makespans

    makespans = benchmark.pedantic(run, rounds=1)
    assert makespans[2] < makespans[0]


def test_manager_bookkeeping_overhead(benchmark):
    """Raw host cost of attach/acquire over a 1024-page cursor."""

    def run():
        manager = ScanShareManager(BufferPool(2048), prefetch_depth=4)
        for _ in range(8):
            ticket = manager.attach("t", 1024)
            credit = 0.0
            while not ticket.exhausted:
                manager.acquire(ticket, 400.0, cpu_credit=credit)
                credit = 64.0
                ticket.advance()
            manager.detach(ticket)
        return manager

    manager = benchmark(run)
    stats = manager.snapshot()[0]
    assert stats.pages_served == 8 * 1024
