"""Micro-benchmarks of the staged engine and simulator substrate.

Tracks the host-side cost of the reproduction's building blocks: a
single staged query, a shared group, and the raw simulator event loop.
"""

from conftest import wall_samples

from repro.engine import Engine
from repro.sim import Compute, Simulator
from repro.tpch.queries import build


def test_single_query_q6(benchmark, catalog, trajectory):
    query = build("q6", catalog)
    scanned = sum(1 for _ in catalog.table("lineitem").rows())

    def run():
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        handle = engine.execute(query.plan, "q6")
        sim.run()
        return handle, sim

    handle, sim = benchmark(run)
    assert handle.done
    assert len(handle.rows) == 1
    trajectory.record(
        "engine_q6",
        sim_time=sim.now,
        wall_samples=wall_samples(benchmark),
        rows=scanned,
        counters={"completions": len(sim.completions)},
        tolerance_pct=15.0,
    )


def test_shared_group_q6(benchmark, catalog):
    query = build("q6", catalog)

    def run():
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        group = engine.execute_group(
            [query.plan] * 8, pivot_op_id=query.pivot,
            labels=[f"q6#{i}" for i in range(8)],
        )
        sim.run()
        return group

    group = benchmark(run)
    assert group.done


def test_join_query_q4(benchmark, catalog):
    query = build("q4", catalog)

    def run():
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        handle = engine.execute(query.plan, "q4")
        sim.run()
        return handle

    handle = benchmark(run)
    assert handle.done


def test_simulator_event_loop(benchmark):
    """Raw scheduler throughput: 64 tasks x 50 compute chunks."""

    def run():
        sim = Simulator(processors=8)

        def worker():
            for _ in range(50):
                yield Compute(1.0)

        for i in range(64):
            sim.spawn(worker(), name=f"w{i}")
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.now > 0
