"""Regenerates Figure 2: scan-heavy vs join-heavy sharing speedups.

Target shapes: scan-heavy (Q1, Q6) speedups cap below ~2x on one CPU
and turn harmful with more processors; join-heavy (Q4, Q13) speedups
keep growing with the client count and stay >= ~1 everywhere the
paper's always-beneficial claim covers.
"""

from repro.experiments import fig2

from conftest import BENCH_SCALE_FACTOR, BENCH_SEED

CLIENTS = (2, 8, 24, 48)


def test_fig2_regenerates(benchmark):
    result = benchmark.pedantic(
        lambda: fig2.run(clients=CLIENTS, scale_factor=BENCH_SCALE_FACTOR,
                         seed=BENCH_SEED),
        rounds=1, iterations=1,
    )

    # Left panel: scan-heavy.
    for name in ("q1", "q6"):
        one = result.line(name, 1).as_mapping()
        many = result.line(name, 32).as_mapping()
        assert 1.2 < one[48] < 2.5, f"{name} 1-cpu speedup out of band"
        assert many[48] < 0.3, f"{name} should collapse on 32 cpus"

    # Right panel: join-heavy — speedup grows with clients.
    for name in ("q4", "q13"):
        one = result.line(name, 1)
        assert one.speedups[-1] > 5.0, f"{name} 1-cpu speedup too small"
        assert list(one.speedups) == sorted(one.speedups), (
            f"{name} speedup should grow with clients"
        )

    # Join-heavy dominates scan-heavy at every processor count (the
    # paper's central contrast between the two panels).
    for n in (1, 2, 8, 32):
        q4 = result.line("q4", n).max_speedup()
        q6 = result.line("q6", n).max_speedup()
        assert q4 > q6
