"""Ablation benches for the design choices DESIGN.md calls out.

* contention exponent kappa (Section 4.1.4) — how hardware contention
  shifts the share/don't-share frontier;
* inter-stage queue capacity — the finite-buffering assumption;
* sharing-group size cap (Section 8.1) — grouping vs parallelism;
* open- vs closed-system unshared baseline (Section 5.1) on
  mismatched-rate groups.
"""

import pytest

from repro.core.closed_system import unshared_rate_closed
from repro.core.model import sharing_benefit, unshared_rate
from repro.core.spec import QuerySpec, chain, op
from repro.engine import Engine
from repro.policies import AlwaysShare
from repro.sim import Simulator
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system


def test_contention_ablation(benchmark):
    """Sweeping kappa: contention shrinks effective processors, which
    *favors* sharing (less parallelism to lose)."""
    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                   label="q6")
    group = [q6.relabeled(f"q{i}") for i in range(32)]

    def sweep():
        return {
            kappa: sharing_benefit(group, "scan", 32, contention=kappa)
            for kappa in (1.0, 0.9, 0.7, 0.5, 0.3)
        }

    zs = benchmark(sweep)
    ordered = [zs[k] for k in (1.0, 0.9, 0.7, 0.5, 0.3)]
    assert ordered == sorted(ordered)  # more contention -> sharing better
    assert zs[1.0] < 0.2


def test_queue_capacity_ablation(benchmark, catalog):
    """Finite buffering throttles producers; enormous queues decouple
    the pipeline. Makespan must be insensitive beyond small capacities
    (the model assumes buffering only smooths burstiness)."""
    query = build("q6", catalog)

    def run(capacity):
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim, queue_capacity=capacity)
        engine.execute(query.plan, "q6")
        sim.run()
        return sim.now

    def sweep():
        return {cap: run(cap) for cap in (1, 2, 4, 16, 64)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Tiny buffers serialize the pipeline; ample buffers converge.
    assert times[1] >= times[64]
    assert times[16] == pytest.approx(times[64], rel=0.1)


def test_group_size_cap_ablation(benchmark, catalog):
    """Section 8.1: capping group sizes on a many-core machine recovers
    parallelism that unbounded always-share gives away."""
    mix = WorkloadMix.single("q6")

    def run(cap):
        return run_closed_system(
            catalog, AlwaysShare(), mix,
            n_clients=16, processors=32,
            warmup=100_000.0, window=400_000.0,
            max_group_size=cap,
        ).throughput

    def sweep():
        return {cap: run(cap) for cap in (None, 8, 4, 2)}

    throughput = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Splitting the q6 batch into small groups beats one giant group.
    assert throughput[2] > throughput[None]


def test_open_vs_closed_baseline_ablation(benchmark):
    """Section 5.1: for mismatched peak rates the closed-system
    baseline credits fast queries' replacements; the open baseline
    throttles everyone to the slowest."""
    fast = QuerySpec(chain(op("scan", 2.0, 1.0), op("agg", 0.5)), label="fast")
    slow = QuerySpec(chain(op("scan", 8.0, 4.0), op("agg", 0.5)), label="slow")
    group = [fast, slow.relabeled("slow")]

    def rates():
        return {
            n: (unshared_rate(group, n), unshared_rate_closed(group, n))
            for n in (1, 2, 8, 32)
        }

    results = benchmark(rates)
    # Rate-bound region (enough processors): the closed baseline credits
    # the fast query's replacements, so it strictly exceeds open.
    for n in (2, 8, 32):
        open_rate, closed_rate = results[n]
        assert closed_rate > open_rate
    # Saturated region: the two approximations agree to first order
    # (the closed variant's utilization scaling is a crude estimate).
    open_rate, closed_rate = results[1]
    assert closed_rate == pytest.approx(open_rate, rel=0.15)
