"""Benchmark of the open-system service tier.

One steady-state serve call: a seeded Poisson stream of Q6 arrivals at
roughly saturation on a 4-context machine, queue-depth admission,
always-share dispatch. The interesting numbers are the open-system
outputs — goodput, p99 response time, shed count — recorded as
trajectory counters so a regression in the serve loop (lost
completions, runaway shedding, broken grouping) shows up in the perf
diff even when wall time stays flat.
"""

import time

from conftest import wall_samples

from repro.db import RuntimeConfig
from repro.policies import AlwaysShare
from repro.server import QueueDepthBound, Server
from repro.tpch.queries import build
from repro.workload import WorkloadMix

PROCESSORS = 4
QUEUE_BOUND = 32
RATE = 1.0 / 2_500.0
HORIZON = 400_000.0
DRAIN = 100_000.0


def _serve(catalog, query):
    server = Server.open(
        catalog,
        RuntimeConfig(processors=PROCESSORS),
        policy=AlwaysShare(),
        admission=QueueDepthBound(QUEUE_BOUND),
        attach_inflight=False,
        keep_rows=False,
    )
    report = server.serve(
        WorkloadMix.single("q6"),
        {"q6": query},
        arrival_rate=RATE,
        horizon=HORIZON,
        drain=DRAIN,
        seed=17,
    )
    return server, report


def test_server_steady_state(benchmark, catalog, trajectory):
    """Serve a saturating arrival stream; gate on conservation and
    record the open-system outputs on the trajectory."""
    query = build("q6", catalog)

    started = time.perf_counter()
    server, report = _serve(catalog, query)
    wall = time.perf_counter() - started

    assert report.submitted > 100
    assert report.submitted == report.completed + report.shed + report.backlog
    assert report.completed > 0
    assert report.max_group_size >= 2  # the coordinator actually merged

    benchmark.pedantic(lambda: _serve(catalog, query), rounds=2, iterations=1)
    samples = (wall_samples(benchmark) or []) + [wall]
    trajectory.record(
        "server_steady_state",
        sim_time=server.session.now,
        wall_samples=samples,
        counters={
            "submitted": report.submitted,
            "completed": report.completed,
            "shed": report.shed,
            "goodput_per_mtime": report.goodput * 1e6,
            "p99_response": report.latency.p99,
            "max_group_size": report.max_group_size,
        },
    )
