"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660
editable installs fail; ``pip install -e . --no-use-pep517`` (or plain
``python setup.py develop``) uses this shim instead. Metadata lives in
pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": ["repro-experiments=repro.experiments.cli:main"],
    },
)
