"""The spill-aware hash aggregate degrades gracefully.

Under a :class:`~repro.engine.memory.MemoryBroker` grant the
aggregate partitions its group state and spills mergeable accumulator
states instead of buffering unboundedly; the answer must be identical
to the ungoverned aggregate's at every budget, spill traffic must
grow as the budget shrinks, and NULL/count(*) semantics must survive
the spill path.
"""

import pytest

from repro.engine import (
    AggSpec,
    CostModel,
    Engine,
    MemoryBroker,
    aggregate,
    resource_report,
    scan,
)
from repro.engine.expressions import col
from repro.engine.operators.aggregate import Accumulator
from repro.sim.simulator import Simulator
from repro.storage import BufferPool, Catalog, DataType, Schema

COSTS = CostModel(io_page=100.0, spill_page=120.0)
PAGE_ROWS = 16


def _catalog(groups=537, rows=6000, with_nulls=False):
    catalog = Catalog()
    schema = Schema([("g", DataType.INT), ("v", DataType.FLOAT)])
    data = []
    for i in range(rows):
        value = None if with_nulls and i % 7 == 0 else float(i % 91) / 7.0
        data.append((i % groups, value))
    catalog.create("t", schema).insert_many(data)
    return catalog


def _plan(catalog):
    return aggregate(
        scan(catalog, "t", columns=["g", "v"], op_id="s"),
        group_by=("g",),
        aggs=[
            AggSpec("sum", "total", col("v")),
            AggSpec("count", "n"),
            AggSpec("count", "nv", col("v")),
            AggSpec("min", "lo", col("v")),
            AggSpec("max", "hi", col("v")),
            AggSpec("avg", "mean", col("v")),
        ],
        op_id="agg",
    )


def _run(catalog, work_mem=None, processors=4):
    sim = Simulator(processors=processors)
    memory = MemoryBroker(work_mem) if work_mem else None
    engine = Engine(catalog, sim, costs=COSTS, page_rows=PAGE_ROWS,
                    buffer_pool=BufferPool(128), memory=memory)
    handle = engine.execute(_plan(catalog), f"agg@{work_mem}")
    sim.run()
    return handle.rows, sim.now, resource_report(engine)


class TestSpillingAggregate:
    @pytest.fixture(scope="class")
    def baseline(self):
        return _run(_catalog())[0]

    def test_answers_identical_across_budgets(self, baseline):
        for work_mem in (64, 16, 8, 1):
            rows, _, _ = _run(_catalog(), work_mem)
            assert rows == baseline, f"answer drifted at work_mem={work_mem}"

    def test_spill_grows_as_budget_shrinks(self):
        # Budgets >= 8 keep the partition fanout constant, so page
        # packing is comparable and spill growth is monotone.
        spills = []
        for work_mem in (64, 16, 8):
            _, _, report = _run(_catalog(), work_mem)
            spills.append(report.spill_pages_written)
        assert spills == sorted(spills)
        assert spills[-1] > spills[0]

    def test_tight_budget_costs_time(self):
        _, ample, _ = _run(_catalog(), 64)
        _, tight, _ = _run(_catalog(), 8)
        assert tight > ample

    def test_ample_budget_never_spills(self):
        _, _, report = _run(_catalog(), 64)
        assert report.spill_pages_written == 0
        assert report.memory.overcommits == 0

    def test_overcommit_recorded_at_recursion_floor(self):
        _, _, report = _run(_catalog(), 1)
        assert report.spill_pages_written > 0
        assert report.memory.overcommits >= 1

    def test_grants_closed(self):
        _, _, report = _run(_catalog(), 16)
        assert all(grant.closed for grant in report.memory.grants)

    def test_null_semantics_survive_spilling(self):
        catalog = _catalog(with_nulls=True)
        baseline, _, _ = _run(catalog)
        spilled, _, report = _run(catalog, 8)
        assert report.spill_pages_written > 0
        assert spilled == baseline
        # count(*) counts rows, count(v) skips the NULLs.
        by_group = {row[0]: row for row in spilled}
        assert any(row[2] > row[3] for row in by_group.values())

    def test_global_aggregate_single_group(self):
        catalog = _catalog(groups=1)
        baseline, _, _ = _run(catalog)
        spilled, _, _ = _run(catalog, 2)
        assert spilled == baseline
        assert len(spilled) == 1


class TestAccumulatorState:
    @pytest.mark.parametrize("func,values,expected", [
        ("sum", [1.0, 2.0, 3.0, 4.0], 10.0),
        ("count", [1.0, 2.0, 3.0, 4.0], 4),
        ("min", [3.0, 1.0, 4.0, 2.0], 1.0),
        ("max", [3.0, 1.0, 4.0, 2.0], 4.0),
        ("avg", [1.0, 2.0, 3.0, 4.0], 2.5),
    ])
    def test_absorb_equals_direct_update(self, func, values, expected):
        """Splitting a stream across accumulators and merging their
        states gives the same result as one accumulator."""
        left, right = Accumulator(func), Accumulator(func)
        for i, value in enumerate(values):
            (left if i % 2 == 0 else right).update(value)
        left.absorb(right.state())
        assert left.result() == expected

    def test_absorb_empty_state_is_identity(self):
        acc = Accumulator("min")
        acc.update(5.0)
        acc.absorb(Accumulator("min").state())
        assert acc.result() == 5.0

    def test_absorb_into_empty(self):
        acc = Accumulator("max")
        other = Accumulator("max")
        other.update(7.0)
        acc.absorb(other.state())
        assert acc.result() == 7.0
