"""Direct unit tests for coordinator slot routing and the open driver.

The property suite (``test_property_coordinator.py``) checks the
coordinator never loses a query; these tests pin down the *mechanism*:
what prospective size and processor count each policy call sees, when
a batch attaches to a busy signature versus launching, and when the
pending batch flushes. The open-driver tests verify the arrival
bookkeeping — the seeded Poisson process, the horizon cutoff, and the
result arithmetic — independently of any policy behaviour.
"""

import math
import random

import pytest

from repro.db import RuntimeConfig
from repro.engine import Engine
from repro.errors import PolicyError
from repro.obs.audit import AuditLog
from repro.policies import AlwaysShare, NeverShare, SharingCoordinator
from repro.policies.base import SharingPolicy
from repro.sim import Simulator
from repro.sim.events import Sleep
from repro.tpch.generator import generate
from repro.workload import WorkloadMix, run_open_system
from repro.workload.open_driver import OpenSystemResult

CATALOG = generate(scale_factor=0.0003, seed=77)


class RecordingPolicy(SharingPolicy):
    """Shares on demand, recording every consultation's arguments."""

    name = "recording"

    def __init__(self, share=True):
        self.share = share
        self.calls = []
        self.observed = []

    def should_share(self, query_name, prospective_size, processors):
        self.calls.append((query_name, prospective_size, processors))
        return self.share and prospective_size >= 2

    def observe_group(self, query_name, group_size, tasks):
        self.observed.append((query_name, group_size))


def _coordinator(policy, processors=8, audit=None, max_group_size=None):
    sim = Simulator(processors=processors)
    engine = Engine(CATALOG, sim)
    coordinator = SharingCoordinator(
        engine, policy, max_group_size=max_group_size, audit=audit
    )
    return sim, coordinator


def _query(name="q6"):
    from repro.tpch.queries import build

    return build(name, CATALOG)


class TestSlotRouting:
    def test_same_instant_arrivals_offered_as_one_group(self):
        policy = RecordingPolicy()
        sim, coordinator = _coordinator(policy)
        q = _query()
        for i in range(4):
            coordinator.submit(q, f"q6#{i}")
        sim.run()
        # One routing pass saw all four arrivals as one prospective group.
        assert policy.calls[0] == ("q6", 4, 8)
        assert coordinator.launched_group_sizes == [4]
        assert coordinator.shared_submissions == 4

    def test_declined_batch_launches_singletons(self):
        policy = RecordingPolicy(share=False)
        sim, coordinator = _coordinator(policy)
        q = _query()
        for i in range(3):
            coordinator.submit(q, f"q6#{i}")
        sim.run()
        assert coordinator.launched_group_sizes == [1, 1, 1]
        assert coordinator.solo_submissions == 3
        assert coordinator.shared_submissions == 0

    def test_busy_signature_attaches_to_pending(self):
        audit = AuditLog()
        sim, coordinator = _coordinator(AlwaysShare(), audit=audit)
        q = _query()
        coordinator.submit(q, "a0")
        coordinator.submit(q, "a1")
        pending_seen = []

        def late():
            yield Sleep(1.0)  # the first group is now active
            coordinator.submit(q, "b0")
            yield Sleep(1.0)  # routing has run; the group is still going
            pending_seen.append(coordinator.pending_count())

        sim.spawn(late(), name="late")
        sim.run()
        assert pending_seen == [1]
        outcomes = [r.outcome for r in audit.records]
        assert outcomes[0] == "share"
        assert outcomes[1] == "attach"
        # The pending batch flushed once the active group drained.
        assert coordinator.pending_count() == 0
        assert coordinator.launched_group_sizes == [2, 1]

    def test_effective_processors_exclude_other_signatures(self):
        policy = RecordingPolicy()
        sim, coordinator = _coordinator(policy, processors=8)
        q6, q4 = _query("q6"), _query("q4")
        coordinator.submit(q6, "q6#0")
        coordinator.submit(q6, "q6#1")
        coordinator.submit(q6, "q6#2")

        def other():
            yield Sleep(1.0)  # q6's 3-member group is active
            coordinator.submit(q4, "q4#0")
            coordinator.submit(q4, "q4#1")

        sim.spawn(other(), name="other")
        sim.run()
        # q4's consultation sees 8 - 3 = 5 free processors; q6's own
        # members do not count against q6.
        q4_calls = [c for c in policy.calls if c[0] == "q4"]
        assert q4_calls[0] == ("q4", 2, 5)

    def test_prospective_size_counts_active_and_pending(self):
        policy = RecordingPolicy()
        sim, coordinator = _coordinator(policy)
        q = _query()
        coordinator.submit(q, "a0")
        coordinator.submit(q, "a1")

        def late():
            yield Sleep(1.0)
            coordinator.submit(q, "b0")  # attaches: pending = 1
            yield Sleep(1.0)
            coordinator.submit(q, "c0")  # sees 2 active + 1 pending + 1

        sim.spawn(late(), name="late")
        sim.run()
        assert policy.calls[1] == ("q6", 3, 8)
        assert policy.calls[2] == ("q6", 4, 8)

    def test_flush_respects_group_size_cap(self):
        sim, coordinator = _coordinator(AlwaysShare(), max_group_size=2)
        q = _query()
        for i in range(5):
            coordinator.submit(q, f"q6#{i}")
        sim.run()
        assert all(s <= 2 for s in coordinator.launched_group_sizes)
        assert sum(coordinator.launched_group_sizes) == 5

    def test_completed_group_reported_to_policy(self):
        policy = RecordingPolicy()
        sim, coordinator = _coordinator(policy)
        q = _query()
        coordinator.submit(q, "a0")
        coordinator.submit(q, "a1")
        sim.run()
        assert policy.observed == [("q6", 2)]

    def test_drain_routes_without_simulator(self):
        policy = RecordingPolicy(share=False)
        sim, coordinator = _coordinator(policy)
        coordinator.submit(_query(), "a0")
        coordinator.drain()
        # Routed immediately: the policy was consulted before sim.run().
        assert policy.calls == [("q6", 1, 8)]

    def test_invalid_cap_rejected(self):
        with pytest.raises(PolicyError):
            _coordinator(AlwaysShare(), max_group_size=0)


class ScriptedPolicy(SharingPolicy):
    """Plays back a fixed verdict sequence, one per consultation."""

    name = "scripted"

    def __init__(self, verdicts):
        self.verdicts = list(verdicts)

    def should_share(self, query_name, prospective_size, processors):
        return self.verdicts.pop(0) if self.verdicts else False


class TestOverloadCorners:
    """The server-tier overload paths: what happens when the pending
    batch is full-sized, and who wakes it up."""

    def test_flush_splits_a_full_pending_batch(self):
        """A pending batch larger than ``max_group_size`` splits into
        several concurrent groups at flush time, losing no query."""
        sim, coordinator = _coordinator(AlwaysShare(), max_group_size=3)
        q = _query()
        done = []
        coordinator.submit(q, "head", on_complete=lambda h: done.append(h))

        def overload():
            yield Sleep(1.0)  # the head query is now in flight
            for i in range(7):
                coordinator.submit(
                    q, f"late#{i}", on_complete=lambda h: done.append(h)
                )

        sim.spawn(overload(), name="overload")
        sim.run()
        # Head ran solo (size 1 is never shared); the seven waiters
        # flushed as 3 + 3 + 1 when it drained.
        assert coordinator.launched_group_sizes == [1, 3, 3, 1]
        assert len(done) == 8
        assert coordinator.pending_count() == 0

    def test_declined_solo_completion_flushes_the_waiting_batch(self):
        """A policy-declined query runs solo but keeps its signature
        busy; a batch forms behind it and must launch the instant the
        solo completes — not wait for any shared group."""
        audit = AuditLog()
        policy = ScriptedPolicy([False, True])
        sim, coordinator = _coordinator(policy, audit=audit)
        q = _query()
        finish_times = {}

        def record(handle):
            finish_times[handle.label] = sim.now

        coordinator.submit(q, "declined", on_complete=record)

        def latecomers():
            yield Sleep(1.0)  # the declined query is running solo
            for i in range(3):
                coordinator.submit(q, f"wait#{i}", on_complete=record)

        sim.spawn(latecomers(), name="latecomers")
        sim.run()
        outcomes = [r.outcome for r in audit.records]
        assert outcomes == ["solo", "attach"]
        # The batch merged into one group launched after the solo.
        assert coordinator.launched_group_sizes == [1, 3]
        assert len(finish_times) == 4
        waiters = {t for label, t in finish_times.items()
                   if label.startswith("wait")}
        assert min(waiters) > finish_times["declined"]


class TestOpenDriverBookkeeping:
    def test_poisson_schedule_matches_seeded_replay(self):
        """The driver submits exactly the arrivals an offline replay of
        its seeded exponential-gap process places before the horizon."""
        rate, horizon, seed = 1.0 / 30_000.0, 500_000.0, 11
        result = run_open_system(
            CATALOG, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=rate, config=RuntimeConfig(processors=8),
            horizon=horizon, drain=200_000.0, seed=seed,
        )
        rng = random.Random(seed)
        t, expected = 0.0, 0
        while True:
            t += -math.log(1.0 - rng.random()) / rate
            if t >= horizon:
                break
            expected += 1
        assert result.submitted == expected

    def test_no_arrivals_after_horizon(self):
        result = run_open_system(
            CATALOG, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 20_000.0, config=RuntimeConfig(processors=8),
            horizon=200_000.0, drain=400_000.0, seed=5,
        )
        a = run_open_system(
            CATALOG, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 20_000.0, config=RuntimeConfig(processors=8),
            horizon=200_000.0, drain=800_000.0, seed=5,
        )
        # A longer drain admits no new work; it only finishes what's in.
        assert a.submitted == result.submitted
        assert a.completed >= result.completed

    def test_result_arithmetic(self):
        result = OpenSystemResult(
            policy="x", processors=4, arrival_rate=0.1, horizon=100.0,
            submitted=20, completed=19, mean_response_time=3.0,
            max_response_time=9.0, utilization=0.5,
        )
        assert result.backlog == 1
        assert result.stable  # 19 >= 0.95 * 20
        worse = OpenSystemResult(
            policy="x", processors=4, arrival_rate=0.1, horizon=100.0,
            submitted=20, completed=18, mean_response_time=3.0,
            max_response_time=9.0, utilization=0.5,
        )
        assert worse.backlog == 2
        assert not worse.stable

    def test_empty_run_reports_infinite_mean_response(self):
        result = run_open_system(
            CATALOG, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 1e9, config=RuntimeConfig(processors=2), horizon=10.0, seed=0,
        )
        assert result.submitted == 0
        assert result.completed == 0
        assert result.mean_response_time == float("inf")
        assert result.backlog == 0
