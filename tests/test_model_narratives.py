"""Tests pinning the paper's narrative claims about the model itself.

Section 6.1 describes "three phases of behavior" for work sharing as
load grows; Section 1.2 derives the throttling implication of Little's
law; Section 4.4 observes bounded shared utilization. Each narrative
gets a test against the model implementation.
"""

import pytest

from repro.core import metrics
from repro.core.model import shared_metrics, shared_rate, sharing_benefit, unshared_rate
from repro.core.sensitivity import baseline_query
from repro.core.spec import QuerySpec, chain, op
from repro.experiments.fig5 import ValidationPoint


def group_of(query, m):
    return [query.relabeled(f"{query.label}#{i}") for i in range(m)]


class TestThreePhasesOfBehavior:
    """Section 6.1: 'For a given number of available processors there
    are (up to) three phases of behavior for work sharing. At first
    there is not enough work to saturate the machine even without work
    sharing; so the latter cannot improve performance. As the load
    increases the limited parallelism available through work sharing
    actually hurts performance. Finally, as load increases still
    further, the elimination of extra work due to work sharing achieves
    a net speedup for some values of n.'"""

    def test_phase_boundaries_on_16_cpus(self):
        query = baseline_query()
        zs = {m: sharing_benefit(group_of(query, m), "pivot", 16)
              for m in range(1, 41)}
        # Phase 1: unsaturated — sharing neither helps nor hurts much.
        assert zs[1] == pytest.approx(1.0)
        assert zs[4] == pytest.approx(1.0)
        # Phase 2: limited parallelism hurts.
        assert zs[6] < 1.0
        # Phase 3: enough load that eliminating work wins.
        assert zs[20] > 1.0
        # And the phases appear in that order.
        first_below = min(m for m, z in zs.items() if z < 1.0 - 1e-9)
        first_above_after = min(
            m for m, z in zs.items() if m > first_below and z > 1.0 + 1e-9
        )
        assert first_below < first_above_after

    def test_always_never_sometimes_machines(self):
        query = baseline_query()
        z_at = lambda n: [
            sharing_benefit(group_of(query, m), "pivot", n)
            for m in range(2, 41)
        ]
        # 4 CPUs: never materially harmful (paper: "always").
        assert all(z > 0.95 for z in z_at(4))
        # 32 CPUs: never beneficial.
        assert all(z <= 1.0 + 1e-9 for z in z_at(32))
        # 16 CPUs: sometimes.
        zs = z_at(16)
        assert any(z < 1.0 for z in zs) and any(z > 1.0 for z in zs)


class TestLittlesLawThrottling:
    """Section 1.2: 'throttling queries lowers throughput even if the
    amount of work in the system is reduced at the same time.'

    Construct a case where sharing removes work yet the pivot's
    serialization throttles the group below unshared throughput."""

    def test_less_work_but_lower_rate(self):
        q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                       label="q6")
        group = group_of(q6, 16)
        n = 32
        shared = shared_metrics(group, "scan")
        unshared_work = sum(metrics.total_work(q) for q in group)
        # Sharing removes most of the work...
        assert shared.total_work < 0.6 * unshared_work
        # ...yet delivers a lower rate on this machine.
        assert shared_rate(group, "scan", n) < unshared_rate(group, n)


class TestBoundedSharedUtilization:
    """Section 4.4: shared Q6 'only utilizes slightly more than one
    processor no matter how many sharers are added to the mix', while
    Section 6.1's baseline caps near 10 cores."""

    def test_q6_utilization_cap(self):
        q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                       label="q6")
        utilizations = [
            shared_metrics(group_of(q6, m), "scan").utilization
            for m in (4, 16, 48, 128)
        ]
        assert all(1.0 < u < 1.2 for u in utilizations)
        # Monotone approach to the asymptote 11.31/10.34.
        assert utilizations == sorted(utilizations)

    def test_baseline_utilization_cap_near_ten(self):
        query = baseline_query()
        u = shared_metrics(group_of(query, 40), "pivot").utilization
        assert 9.0 < u < 11.0


class TestDecisionBand:
    """Figure 5's binary-agreement metric uses an indifference band
    around Z = 1 (either decision costs ~nothing there)."""

    def make(self, predicted, measured):
        return ValidationPoint(query="q", kind="scan-heavy", processors=1,
                               clients=2, predicted=predicted,
                               measured=measured)

    def test_clear_agreement(self):
        assert self.make(1.5, 1.4).decision_agrees
        assert self.make(0.5, 0.6).decision_agrees

    def test_clear_disagreement(self):
        assert not self.make(1.5, 0.5).decision_agrees

    def test_band_tolerates_near_one(self):
        assert self.make(1.05, 0.8).decision_agrees
        assert self.make(0.8, 1.05).decision_agrees

    def test_relative_error(self):
        assert self.make(1.2, 1.0).relative_error == pytest.approx(0.2)
