"""Load/soak tests: thousands of arrivals through one long-lived server.

The three invariants a service tier must hold at scale, not just in
unit-sized runs:

* **Conservation** — every one of the thousands of arrivals lands in
  exactly one terminal bucket (``submitted == completed + shed +
  backlog``), per tenant and in total.
* **Isolation** — no tenant's resident page count ever exceeds its
  share, sampled *throughout* the run, not just at the end.
* **Fidelity** — sharing and queueing change *when* a query finishes,
  never *what* it returns: every completed result is bit-identical to
  a solo run, and the same seed reproduces the same report exactly.
"""

import pytest

from repro.db import Database, RuntimeConfig
from repro.db.builder import Query
from repro.policies import AlwaysShare
from repro.server import QueueDepthBound, Server
from repro.sim.events import Sleep
from repro.storage import TenantShare
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix

SCALE = 0.0003
SEED = 77
RATE = 1.0 / 800.0
HORIZON = 2_000_000.0
DRAIN = 300_000.0
WEIGHTS = {"acme": 0.6, "beta": 0.3, "carol": 0.1}


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def queries(catalog):
    return {name: build(name, catalog) for name in ("q6", "q4")}


def soak_config():
    return RuntimeConfig(
        processors=4,
        pool_pages=96,
        page_rows=16,
        tenants=(
            TenantShare("acme", 40, tables=("lineitem",)),
            TenantShare("beta", 24, tables=("orders",)),
            TenantShare("carol", 8),
        ),
    )


def soak_server(catalog, **kwargs):
    return Server.open(
        catalog,
        soak_config(),
        policy=AlwaysShare(),
        admission=QueueDepthBound(48),
        **kwargs,
    )


def run_soak(server, queries, *, seed=11, keep=False):
    mix = WorkloadMix({"q6": 0.7, "q4": 0.3})
    return server.serve(
        mix,
        queries,
        arrival_rate=RATE,
        horizon=HORIZON,
        drain=DRAIN,
        seed=seed,
        tenant_weights=WEIGHTS,
    )


@pytest.fixture(scope="module")
def soak(catalog, queries):
    """One shared soak run (rows kept for the fidelity checks), with
    tenant residency sampled every 5k time units while it runs."""
    server = soak_server(catalog, keep_rows=True)
    pool = server.session.pool
    peaks = {name: 0 for name in WEIGHTS}

    def monitor():
        while True:
            residency = pool.tenant_residency()
            for name in peaks:
                peaks[name] = max(peaks[name], residency[name])
            yield Sleep(5_000.0)

    server.session.sim.spawn(monitor(), name="soak/monitor")
    report = run_soak(server, queries)
    return server, report, peaks


class TestSoak:
    def test_the_run_is_actually_a_soak(self, soak):
        _, report, _ = soak
        assert report.submitted > 2_000
        assert report.completed > 1_000
        assert report.shed > 0  # admission control was exercised
        assert len(report.records) == report.submitted

    def test_conservation_total_and_per_tenant(self, soak):
        _, report, _ = soak
        assert report.submitted == (
            report.completed + report.shed + report.backlog
        )
        assert set(report.tenants) == set(WEIGHTS)
        for tenant in report.tenants.values():
            assert tenant.submitted == (
                tenant.completed + tenant.shed + tenant.backlog
            )
        assert sum(t.submitted for t in report.tenants.values()) == report.submitted
        assert sum(t.completed for t in report.tenants.values()) == report.completed
        assert sum(t.shed for t in report.tenants.values()) == report.shed

    def test_lifetime_counters_match_the_report(self, soak):
        server, report, _ = soak
        assert server.total_submitted == report.submitted
        assert server.total_shed == report.shed
        assert server.total_completed == report.completed
        snapshot = server.session.metrics().snapshot()
        assert snapshot["server.submitted"] == float(report.submitted)
        assert snapshot["server.completed"] == float(report.completed)

    def test_tenant_pages_never_exceed_share(self, soak):
        """Sampled every 5k units across the whole run — the quota is
        an *always* invariant, not an end-state accident."""
        server, _, peaks = soak
        pool = server.session.pool
        for name, peak in peaks.items():
            assert peak <= pool.quota_of(name), name
        assert max(peaks.values()) > 0  # the monitor saw real traffic
        pool.check_isolation()

    def test_every_completed_result_is_bit_identical_to_solo(
        self, soak, catalog, queries
    ):
        _, report, _ = soak
        solo = Database(catalog, RuntimeConfig(processors=4)).session()
        reference = {
            name: tuple(
                solo.run(
                    Query(plan=q.plan, pivot_op_id=q.pivot, name=name),
                    label=f"ref/{name}",
                    share=False,
                ).rows
            )
            for name, q in queries.items()
        }
        checked = 0
        for record in report.records:
            if record.outcome != "completed":
                continue
            assert record.rows == reference[record.name], record.label
            checked += 1
        assert checked == report.completed

    def test_latency_samples_match_completions(self, soak):
        _, report, _ = soak
        assert report.latency.count == report.completed
        assert report.latency.p50 <= report.latency.p99 <= report.latency.max
        for tenant in report.tenants.values():
            assert tenant.latency.count == tenant.completed


class TestSoakDeterminism:
    def test_same_seed_reproduces_the_report_exactly(self, catalog, queries):
        def fingerprint():
            server = soak_server(catalog, keep_rows=False)
            report = run_soak(server, queries)
            return (
                report.submitted,
                report.completed,
                report.shed,
                report.goodput,
                report.latency.to_dict(),
                tuple(
                    (r.label, r.outcome, r.submitted_at, r.finished_at)
                    for r in report.records
                ),
                server.session.audit_log().to_json(),
            )

        assert fingerprint() == fingerprint()

    def test_different_seed_changes_the_arrivals(self, catalog, queries):
        a = run_soak(soak_server(catalog, keep_rows=False), queries, seed=11)
        b = run_soak(soak_server(catalog, keep_rows=False), queries, seed=12)
        assert (a.submitted, a.latency.to_dict()) != (
            b.submitted, b.latency.to_dict()
        )
