"""Tests for the phase-aware model extension (Sections 5.2/5.3 used
for prediction, not just decomposition)."""

import pytest

from repro.core.model import sharing_benefit
from repro.core.phases import PhasedQuery
from repro.experiments.common import batch_speedup, shared_catalog
from repro.profiling import QueryProfiler
from repro.tpch.queries import build

SCALE = 0.0005
SEED = 31


@pytest.fixture(scope="module")
def catalog():
    return shared_catalog(SCALE, SEED)


@pytest.fixture(scope="module")
def q13_profile(catalog):
    query = build("q13", catalog)
    return query, QueryProfiler(catalog).profile(query.plan, query.pivot,
                                                 label="q13")


class TestMarkBlocking:
    def test_blocking_flags_on_aggregates_and_sorts(self, q13_profile):
        query, profile = q13_profile
        spec = profile.to_query_spec(mark_blocking=True)
        blocking = {node.name for node in spec.blocking_operators()}
        assert "q13_precount" in blocking
        assert "q13_distribution" in blocking
        assert "q13_sort" in blocking
        assert "q13_join" not in blocking

    def test_default_stays_pipelined(self, q13_profile):
        _, profile = q13_profile
        assert profile.to_query_spec().is_pipelined()


class TestPhaseAwareSharedTime:
    def test_below_pivot_phases_execute_once(self, q13_profile):
        """The orders-side pre-aggregation consume phase lies below the
        join pivot, so the group pays it once: shared time must be far
        below m independent copies."""
        query, profile = q13_profile
        phased = PhasedQuery(profile.to_query_spec(mark_blocking=True))
        m = 8
        shared = phased.shared_time(query.pivot, m=m, n=1)
        unshared = phased.unshared_time(m=m, n=1)
        assert shared < 0.5 * unshared

    def test_phased_prediction_closer_than_simple_for_q13(self, catalog,
                                                          q13_profile):
        """The known weak spot of the simple model (q13 at 8 cpus):
        phase-awareness must reduce the error."""
        query, profile = q13_profile
        simple_spec = profile.to_query_spec()
        phased = PhasedQuery(profile.to_query_spec(mark_blocking=True))
        for m, n in ((8, 8), (16, 8), (16, 32)):
            group = [simple_spec.relabeled(f"x{i}") for i in range(m)]
            z_simple = sharing_benefit(group, query.pivot, n,
                                       closed_system=True)
            z_phased = phased.sharing_benefit(query.pivot, m, n)
            z_measured = batch_speedup(catalog, query, m, n)
            err_simple = abs(z_simple - z_measured) / z_measured
            err_phased = abs(z_phased - z_measured) / z_measured
            assert err_phased <= err_simple + 1e-9, (m, n)
            assert err_phased < 0.25, (m, n)

    def test_phased_equals_simple_for_pipelined_queries(self, catalog):
        """Q6 has no blocking operator below its pivot; marking
        blocking must not change its predictions materially."""
        query = build("q6", catalog)
        profile = QueryProfiler(catalog).profile(query.plan, query.pivot,
                                                 label="q6")
        simple_spec = profile.to_query_spec()
        phased = PhasedQuery(profile.to_query_spec(mark_blocking=True))
        for m, n in ((8, 1), (16, 32)):
            group = [simple_spec.relabeled(f"x{i}") for i in range(m)]
            z_simple = sharing_benefit(group, query.pivot, n,
                                       closed_system=True)
            z_phased = phased.sharing_benefit(query.pivot, m, n)
            assert z_phased == pytest.approx(z_simple, rel=0.15)

    def test_zero_work_phases_skipped(self, q13_profile):
        """Replay leaves with zero cost produce zero-work phases; the
        time model must not divide by their zero p_max."""
        query, profile = q13_profile
        phased = PhasedQuery(profile.to_query_spec(mark_blocking=True))
        assert phased.shared_time(query.pivot, m=4, n=4) > 0
        assert phased.unshared_time(m=4, n=4) > 0
