"""Integration tests: staged execution vs the reference executor."""

import pytest

from repro.engine import (
    AggSpec,
    Engine,
    aggregate,
    execute_reference,
    filter_,
    hash_join,
    merge_join,
    nested_loop_join,
    project,
    scan,
    sort,
)
from repro.engine.expressions import col, eq, gt, lt, mul
from repro.errors import EngineError, PivotError
from repro.sim import Simulator
from repro.storage import Catalog, DataType, Schema


@pytest.fixture
def catalog():
    cat = Catalog()
    items = cat.create("items", Schema([
        ("id", DataType.INT), ("grp", DataType.INT), ("price", DataType.FLOAT),
    ]))
    for i in range(300):
        items.insert((i, i % 7, float(i % 50) + 0.25))
    tags = cat.create("tags", Schema([
        ("tag_id", DataType.INT), ("weight", DataType.FLOAT),
    ]))
    for i in range(0, 300, 3):
        tags.insert((i, float(i) / 10.0))
    return cat


def run_staged(catalog, plan, processors=4, label="q"):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim)
    handle = engine.execute(plan, label)
    sim.run()
    assert handle.done
    return handle


class TestSingleQueryEquivalence:
    def test_scan(self, catalog):
        plan = scan(catalog, "items")
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_fused_scan(self, catalog):
        plan = scan(
            catalog, "items", columns=["id", "price"],
            predicate=lt(col("id"), 100),
            outputs=[("v", mul(col("price"), 2.0), DataType.FLOAT)],
        )
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_filter_project_aggregate(self, catalog):
        plan = aggregate(
            project(
                filter_(scan(catalog, "items"), gt(col("price"), 10.0)),
                [("grp", col("grp"), DataType.INT),
                 ("v", mul(col("price"), col("price")), DataType.FLOAT)],
            ),
            ["grp"],
            [AggSpec("sum", "total", col("v")), AggSpec("count", "n"),
             AggSpec("min", "lo", col("v")), AggSpec("max", "hi", col("v")),
             AggSpec("avg", "mean", col("v"))],
        )
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_sort_multi_key_mixed_directions(self, catalog):
        plan = sort(scan(catalog, "items"), [("grp", True), ("price", False)])
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_inner_hash_join(self, catalog):
        plan = hash_join(
            build=scan(catalog, "tags"), probe=scan(catalog, "items"),
            build_key="tag_id", probe_key="id",
        )
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_semi_and_anti_join_partition(self, catalog):
        semi = hash_join(
            build=scan(catalog, "tags"), probe=scan(catalog, "items"),
            build_key="tag_id", probe_key="id", join_type="semi",
        )
        anti = hash_join(
            build=scan(catalog, "tags"), probe=scan(catalog, "items"),
            build_key="tag_id", probe_key="id", join_type="anti",
        )
        semi_rows = run_staged(catalog, semi).rows
        anti_rows = run_staged(catalog, anti).rows
        assert semi_rows == execute_reference(semi, catalog)
        assert anti_rows == execute_reference(anti, catalog)
        # semi + anti partition the probe input
        assert len(semi_rows) + len(anti_rows) == 300

    def test_left_join_pads_nulls(self, catalog):
        plan = hash_join(
            build=scan(catalog, "tags"), probe=scan(catalog, "items"),
            build_key="tag_id", probe_key="id", join_type="left",
        )
        rows = run_staged(catalog, plan).rows
        assert rows == execute_reference(plan, catalog)
        unmatched = [r for r in rows if r[3] is None]
        assert unmatched  # ids not divisible by 3
        assert all(r[4] is None for r in unmatched)

    def test_nested_loop_join(self, catalog):
        small = filter_(scan(catalog, "items"), lt(col("id"), 20))
        plan = nested_loop_join(
            small,
            scan(catalog, "tags"),
            predicate=eq(col("id"), col("tag_id")),
        )
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_merge_join_on_sorted_inputs(self, catalog):
        left = sort(scan(catalog, "items"), [("id", True)])
        right = sort(scan(catalog, "tags"), [("tag_id", True)])
        plan = merge_join(left, right, left_key="id", right_key="tag_id")
        assert run_staged(catalog, plan).rows == execute_reference(plan, catalog)

    def test_results_independent_of_processor_count(self, catalog):
        plan = aggregate(
            filter_(scan(catalog, "items"), gt(col("price"), 5.0)),
            ["grp"], [AggSpec("count", "n")],
        )
        results = {
            n: run_staged(catalog, plan, processors=n).rows
            for n in (1, 2, 8, 32)
        }
        reference = execute_reference(plan, catalog)
        assert all(rows == reference for rows in results.values())


class TestSharedExecution:
    def make_query(self, catalog):
        pivot = filter_(scan(catalog, "items"), gt(col("price"), 10.0),
                        op_id="pivot")
        return aggregate(pivot, ["grp"], [AggSpec("count", "n")],
                         op_id="agg")

    def test_all_members_get_full_results(self, catalog):
        plan = self.make_query(catalog)
        reference = execute_reference(plan, catalog)
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim)
        group = engine.execute_group([plan] * 5, pivot_op_id="pivot",
                                     labels=[f"m{i}" for i in range(5)])
        sim.run()
        assert group.done
        assert group.size == 5
        assert group.shared
        for handle in group.handles:
            assert handle.rows == reference

    def test_sharing_at_root(self, catalog):
        plan = self.make_query(catalog)
        reference = execute_reference(plan, catalog)
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim)
        group = engine.execute_group([plan] * 3, pivot_op_id="agg")
        sim.run()
        for handle in group.handles:
            assert handle.rows == reference

    def test_sharing_eliminates_work(self, catalog):
        """Total busy time of a shared group is far below m independent
        runs (work below the pivot runs once)."""
        plan = self.make_query(catalog)

        def busy(shared):
            sim = Simulator(processors=4)
            engine = Engine(catalog, sim)
            if shared:
                engine.execute_group([plan] * 6, pivot_op_id="pivot")
            else:
                for i in range(6):
                    engine.execute(plan, f"q{i}")
            sim.run()
            return sim.total_busy_time

        assert busy(shared=True) < 0.5 * busy(shared=False)

    def test_mismatched_pivots_rejected(self, catalog):
        a = self.make_query(catalog)
        b = aggregate(
            filter_(scan(catalog, "items"), gt(col("price"), 11.0),
                    op_id="pivot"),
            ["grp"], [AggSpec("count", "n")],
        )
        sim = Simulator(processors=2)
        engine = Engine(catalog, sim)
        with pytest.raises(PivotError, match="disagree below pivot"):
            engine.execute_group([a, b], pivot_op_id="pivot")

    def test_multi_query_group_requires_pivot(self, catalog):
        plan = self.make_query(catalog)
        engine = Engine(catalog, Simulator(processors=2))
        with pytest.raises(EngineError, match="requires a pivot"):
            engine.execute_group([plan, plan], pivot_op_id=None)

    def test_empty_group_rejected(self, catalog):
        engine = Engine(catalog, Simulator(processors=2))
        with pytest.raises(EngineError):
            engine.execute_group([], pivot_op_id=None)

    def test_labels_must_match(self, catalog):
        plan = self.make_query(catalog)
        engine = Engine(catalog, Simulator(processors=2))
        with pytest.raises(EngineError):
            engine.execute_group([plan], pivot_op_id=None, labels=["a", "b"])


class TestHandles:
    def test_response_time_requires_completion(self, catalog):
        plan = scan(catalog, "items")
        sim = Simulator(processors=1)
        engine = Engine(catalog, sim)
        handle = engine.execute(plan, "q")
        with pytest.raises(EngineError):
            handle.response_time()
        sim.run()
        assert handle.response_time() > 0

    def test_on_complete_callback(self, catalog):
        plan = scan(catalog, "items")
        sim = Simulator(processors=1)
        engine = Engine(catalog, sim)
        seen = []
        engine.execute(plan, "q", on_complete=lambda h: seen.append(h.label))
        sim.run()
        assert seen == ["q"]

    def test_group_completion_time(self, catalog):
        plan = scan(catalog, "items")
        sim = Simulator(processors=1)
        engine = Engine(catalog, sim)
        group = engine.execute_group([plan], pivot_op_id=None)
        sim.run()
        assert group.completion_time() == pytest.approx(
            group.handles[0].finished_at
        )

    def test_invalid_queue_capacity(self, catalog):
        with pytest.raises(EngineError):
            Engine(catalog, Simulator(processors=1), queue_capacity=0)
