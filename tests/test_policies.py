"""Tests for sharing policies and the runtime coordinator."""

import pytest

from repro.engine import Engine
from repro.errors import PolicyError
from repro.policies import (
    AlwaysShare,
    ModelGuidedPolicy,
    NeverShare,
    SharingCoordinator,
)
from repro.profiling import QueryProfiler
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=9)


@pytest.fixture(scope="module")
def q6_spec(catalog):
    q = build("q6", catalog)
    profile = QueryProfiler(catalog).profile(q.plan, q.pivot, label="q6")
    return profile.to_query_spec(), q.pivot


@pytest.fixture(scope="module")
def q4_spec(catalog):
    q = build("q4", catalog)
    profile = QueryProfiler(catalog).profile(q.plan, q.pivot, label="q4")
    return profile.to_query_spec(), q.pivot


class TestStaticPolicies:
    def test_always_shares_groups(self):
        policy = AlwaysShare()
        assert policy.should_share("q6", 2, 32)
        assert policy.should_share("q6", 48, 1)

    def test_always_ignores_singletons(self):
        assert not AlwaysShare().should_share("q6", 1, 1)

    def test_never_never_shares(self):
        policy = NeverShare()
        assert not policy.should_share("q4", 2, 1)
        assert not policy.should_share("q4", 48, 1)

    def test_policy_names(self):
        assert AlwaysShare().name == "always"
        assert NeverShare().name == "never"


class TestModelGuidedPolicy:
    def test_scan_heavy_shares_on_one_cpu_only(self, q6_spec):
        policy = ModelGuidedPolicy({"q6": q6_spec})
        assert policy.should_share("q6", 16, 1)
        assert not policy.should_share("q6", 16, 32)

    def test_join_heavy_shares_on_few_cpus(self, q4_spec):
        policy = ModelGuidedPolicy({"q4": q4_spec})
        assert policy.should_share("q4", 8, 1)
        assert policy.should_share("q4", 8, 2)

    def test_singleton_never_shares(self, q6_spec):
        policy = ModelGuidedPolicy({"q6": q6_spec})
        assert not policy.should_share("q6", 1, 1)

    def test_unknown_query_rejected(self, q6_spec):
        policy = ModelGuidedPolicy({"q6": q6_spec})
        with pytest.raises(PolicyError):
            policy.should_share("q99", 4, 2)

    def test_empty_specs_rejected(self):
        with pytest.raises(PolicyError):
            ModelGuidedPolicy({})

    def test_threshold_raises_bar(self, q6_spec):
        spec, pivot = q6_spec
        lenient = ModelGuidedPolicy({"q6": (spec, pivot)}, threshold=1.0)
        strict = ModelGuidedPolicy({"q6": (spec, pivot)}, threshold=100.0)
        assert lenient.should_share("q6", 16, 1)
        assert not strict.should_share("q6", 16, 1)

    def test_decisions_cached(self, q6_spec):
        policy = ModelGuidedPolicy({"q6": q6_spec})
        first = policy.should_share("q6", 16, 1)
        assert policy._decision_cache[("q6", 16, 1)] == first


class TestCoordinator:
    def run_workload(self, catalog, policy, n_submissions=8, processors=4,
                     max_group_size=None):
        sim = Simulator(processors=processors)
        engine = Engine(catalog, sim)
        coordinator = SharingCoordinator(engine, policy,
                                         max_group_size=max_group_size)
        query = build("q6", catalog)
        done = []
        for i in range(n_submissions):
            coordinator.submit(query, f"q6#{i}",
                               on_complete=lambda h: done.append(h.label))
        sim.run()
        return engine, coordinator, done

    def test_never_share_launches_all_singletons(self, catalog):
        engine, coord, done = self.run_workload(catalog, NeverShare())
        assert len(done) == 8
        assert all(g.size == 1 for g in engine.groups)
        assert coord.solo_submissions == 8

    def test_always_share_merges_simultaneous_arrivals(self, catalog):
        # Eight queries submitted at the same instant route as ONE
        # merged group — packets arriving together in a stage queue.
        engine, coord, done = self.run_workload(catalog, AlwaysShare())
        assert len(done) == 8
        assert sorted(g.size for g in engine.groups) == [8]
        assert coord.shared_submissions == 8

    def test_always_share_batches_behind_active_group(self, catalog):
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim)
        coordinator = SharingCoordinator(engine, AlwaysShare())
        query = build("q6", catalog)
        done = []
        coordinator.submit(query, "first",
                           on_complete=lambda h: done.append(h.label))
        sim.run(until=1.0)  # the first query is now active, alone
        for i in range(7):
            coordinator.submit(query, f"later#{i}",
                               on_complete=lambda h: done.append(h.label))
        sim.run()
        assert len(done) == 8
        # The first runs alone; the stragglers merge behind it.
        assert sorted(g.size for g in engine.groups) == [1, 7]
        assert coordinator.shared_submissions == 7

    def test_max_group_size_splits_batches(self, catalog):
        engine, _, done = self.run_workload(catalog, AlwaysShare(),
                                            max_group_size=3)
        assert len(done) == 8
        assert max(g.size for g in engine.groups) <= 3

    def test_results_identical_across_policies(self, catalog):
        _, _, done_never = self.run_workload(catalog, NeverShare())
        engine_a, _, done_always = self.run_workload(catalog, AlwaysShare())
        assert len(done_never) == len(done_always) == 8
        reference = engine_a.handles[0].rows
        assert all(h.rows == reference for h in engine_a.handles)

    def test_different_signatures_do_not_merge(self, catalog):
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim)
        coordinator = SharingCoordinator(engine, AlwaysShare())
        q6, q4 = build("q6", catalog), build("q4", catalog)
        for i in range(3):
            coordinator.submit(q6, f"q6#{i}")
            coordinator.submit(q4, f"q4#{i}")
        sim.run()
        for group in engine.groups:
            names = {h.label.split("#")[0] for h in group.handles}
            assert len(names) == 1

    def test_invalid_max_group_size(self, catalog):
        engine = Engine(catalog, Simulator(processors=2))
        with pytest.raises(PolicyError):
            SharingCoordinator(engine, AlwaysShare(), max_group_size=0)

    def test_pending_count_drains(self, catalog):
        sim = Simulator(processors=2)
        engine = Engine(catalog, sim)
        coordinator = SharingCoordinator(engine, AlwaysShare())
        query = build("q6", catalog)
        coordinator.submit(query, "first")
        sim.run(until=1.0)
        for i in range(4):
            coordinator.submit(query, f"q6#{i}")
        coordinator.drain()
        assert coordinator.pending_count() == 4
        sim.run()
        assert coordinator.pending_count() == 0
