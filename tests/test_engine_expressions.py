"""Unit tests for the expression language (repro.engine.expressions)."""

import pytest

from repro.engine.expressions import (
    add,
    and_,
    between,
    col,
    eq,
    ge,
    gt,
    in_,
    le,
    lit,
    lt,
    mul,
    ne,
    not_,
    or_,
    sub,
    udf,
)
from repro.errors import PlanError, SchemaError
from repro.storage import DataType, Schema


@pytest.fixture
def schema():
    return Schema([
        ("a", DataType.INT),
        ("b", DataType.FLOAT),
        ("s", DataType.STR),
    ])


ROW = (3, 2.5, "hello")


class TestBasics:
    def test_column_ref(self, schema):
        assert col("a").compile(schema)(ROW) == 3

    def test_unknown_column_fails_at_compile(self, schema):
        with pytest.raises(SchemaError):
            col("ghost").compile(schema)

    def test_literal(self, schema):
        assert lit(42).compile(schema)(ROW) == 42

    def test_arithmetic(self, schema):
        assert add(col("a"), 1).compile(schema)(ROW) == 4
        assert sub(col("a"), 1).compile(schema)(ROW) == 2
        assert mul(col("a"), col("b")).compile(schema)(ROW) == 7.5

    def test_arithmetic_with_null_yields_null(self, schema):
        fn = add(col("a"), col("b")).compile(schema)
        assert fn((None, 2.5, "x")) is None
        assert fn((3, None, "x")) is None


class TestComparisons:
    def test_ordering_ops(self, schema):
        assert lt(col("a"), 4).compile(schema)(ROW)
        assert not lt(col("a"), 3).compile(schema)(ROW)
        assert le(col("a"), 3).compile(schema)(ROW)
        assert gt(col("a"), 2).compile(schema)(ROW)
        assert ge(col("a"), 3).compile(schema)(ROW)
        assert eq(col("s"), "hello").compile(schema)(ROW)
        assert ne(col("a"), 5).compile(schema)(ROW)

    def test_null_comparisons_false(self, schema):
        row = (None, 2.5, "x")
        for expr in (lt(col("a"), 4), eq(col("a"), 3), ge(col("a"), 0),
                     ne(col("a"), 3)):
            assert expr.compile(schema)(row) is False

    def test_between_inclusive(self, schema):
        fn = between(col("a"), 3, 5).compile(schema)
        assert fn(ROW)
        assert fn((5, 0.0, ""))
        assert not fn((6, 0.0, ""))
        assert not fn((None, 0.0, ""))

    def test_in_set(self, schema):
        fn = in_(col("s"), ["hello", "world"]).compile(schema)
        assert fn(ROW)
        assert not fn((1, 1.0, "nope"))


class TestBoolean:
    def test_and(self, schema):
        fn = and_(lt(col("a"), 4), gt(col("b"), 2.0)).compile(schema)
        assert fn(ROW)
        assert not fn((5, 2.5, ""))

    def test_or(self, schema):
        fn = or_(lt(col("a"), 0), gt(col("b"), 2.0)).compile(schema)
        assert fn(ROW)
        assert not fn((5, 1.0, ""))

    def test_not(self, schema):
        assert not_(lt(col("a"), 0)).compile(schema)(ROW)

    def test_empty_conjunction_rejected(self):
        with pytest.raises(PlanError):
            and_()
        with pytest.raises(PlanError):
            or_()


class TestUdf:
    def test_udf_evaluates(self, schema):
        fn = udf("upper", str.upper, col("s")).compile(schema)
        assert fn(ROW) == "HELLO"

    def test_udf_signature_uses_name(self):
        expr = udf("upper", str.upper, col("s"))
        assert "udf:upper" in expr.signature()


class TestSignatures:
    def test_equal_expressions_equal_signatures(self):
        a = and_(lt(col("x"), 5), between(col("y"), 1, 2))
        b = and_(lt(col("x"), 5), between(col("y"), 1, 2))
        assert a.signature() == b.signature()

    def test_different_constants_different_signatures(self):
        assert lt(col("x"), 5).signature() != lt(col("x"), 6).signature()

    def test_operand_order_matters(self):
        assert lt(col("x"), col("y")).signature() != (
            lt(col("y"), col("x")).signature()
        )
