"""Unit tests for stage plumbing and the cost model."""

import pytest

from repro.engine.costs import CostModel
from repro.engine.packet import RowBatch
from repro.engine.stage import BatchEmitter
from repro.errors import EngineError
from repro.sim import CLOSED, Get, Simulator


@pytest.fixture
def costs():
    return CostModel()


class TestCostModel:
    def test_defaults_valid(self, costs):
        assert costs.scan_tuple > 0

    def test_negative_cost_rejected(self):
        with pytest.raises(EngineError):
            CostModel(scan_tuple=-1.0)

    def test_nan_cost_rejected(self):
        with pytest.raises(EngineError):
            CostModel(output_page=float("nan"))

    def test_page_output_cost_scales_with_consumers(self, costs):
        one = costs.page_output_cost(64, width=4, consumers=1)
        five = costs.page_output_cost(64, width=4, consumers=5)
        assert five == pytest.approx(5 * one)

    def test_page_output_cost_scales_with_width(self, costs):
        narrow = costs.page_output_cost(64, width=1)
        wide = costs.page_output_cost(64, width=7)
        assert wide > narrow
        assert (wide - narrow) == pytest.approx(64 * 6 * costs.output_value)


class TestEmitterMechanics:
    """Batching, multiplexing, and validation of the emitter."""

    def run_emitter(self, rows, page_rows=4, consumers=1, capacity=100):
        sim = Simulator(processors=1)
        queues = [sim.queue(f"q{i}", capacity) for i in range(consumers)]
        emitter = BatchEmitter(queues, page_rows, CostModel(), width=2)
        received = {i: [] for i in range(consumers)}

        def producer():
            yield from emitter.emit_rows(rows)
            yield from emitter.close()

        def consumer(i):
            while True:
                page = yield Get(queues[i])
                if page is CLOSED:
                    return
                received[i].append(list(page.rows))

        sim.spawn(producer(), name="p")
        for i in range(consumers):
            sim.spawn(consumer(i), name=f"c{i}")
        sim.run()
        return emitter, received, sim

    def test_batches_into_full_pages(self):
        rows = [(i, i) for i in range(10)]
        emitter, received, _ = self.run_emitter(rows, page_rows=4)
        sizes = [len(p) for p in received[0]]
        assert sizes == [4, 4, 2]
        assert emitter.pages_emitted == 3
        assert emitter.rows_emitted == 10

    def test_every_consumer_gets_every_page(self):
        rows = [(i, i) for i in range(6)]
        _, received, _ = self.run_emitter(rows, page_rows=4, consumers=3)
        flat = {i: [r for p in received[i] for r in p] for i in received}
        assert flat[0] == flat[1] == flat[2] == rows

    def test_multiplexing_charges_per_consumer(self):
        rows = [(i, i) for i in range(8)]
        _, _, sim1 = self.run_emitter(rows, consumers=1)
        _, _, sim3 = self.run_emitter(rows, consumers=3)
        assert sim3.total_busy_time == pytest.approx(
            3 * sim1.total_busy_time
        )

    def test_close_without_rows(self):
        emitter, received, _ = self.run_emitter([], page_rows=4)
        assert received[0] == []
        assert emitter.pages_emitted == 0

    def test_requires_output_queue(self):
        with pytest.raises(EngineError):
            BatchEmitter([], 4, CostModel())

    def test_invalid_page_rows(self):
        sim = Simulator(processors=1)
        with pytest.raises(EngineError):
            BatchEmitter([sim.queue("q")], 0, CostModel())

    def test_invalid_width(self):
        sim = Simulator(processors=1)
        with pytest.raises(EngineError):
            BatchEmitter([sim.queue("q")], 4, CostModel(), width=0)


class TestBatchEmitter:
    """The batched emitter API: rows, columns, and whole batches."""

    def run_batched(self, emit_calls, page_rows=4, consumers=1, width=2):
        sim = Simulator(processors=1)
        queues = [sim.queue(f"q{i}", 100) for i in range(consumers)]
        emitter = BatchEmitter(queues, page_rows, CostModel(), width=width)
        received = []

        def producer():
            for method, payload in emit_calls:
                yield from getattr(emitter, method)(*payload)
            yield from emitter.close()

        def consumer():
            while True:
                batch = yield Get(queues[0])
                if batch is CLOSED:
                    return
                received.append(list(batch.rows))

        sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="c")
        sim.run()
        return emitter, received, sim

    def test_emit_rows_and_columns_agree(self):
        rows = [(i, float(i)) for i in range(10)]
        cols = [list(c) for c in zip(*rows)]
        by_rows = self.run_batched([("emit_rows", (rows,))])
        by_cols = self.run_batched([("emit_columns", (cols, len(rows)))])
        assert by_rows[1] == by_cols[1]
        assert by_rows[2].now == by_cols[2].now

    def test_aligned_batch_passes_through_unsplit(self):
        rows = tuple((i, float(i)) for i in range(4))
        batch = RowBatch.from_rows(rows, 2)
        emitter, received, _ = self.run_batched([("emit_batch", (batch,))])
        assert received == [list(rows)]
        assert emitter.pages_emitted == 1

    def test_mixed_representations_preserve_row_order(self):
        rows = [(i, float(i)) for i in range(6)]
        cols = [[10, 11], [10.0, 11.0]]
        _, received, _ = self.run_batched(
            [("emit_rows", (rows[:3],)),
             ("emit_columns", (cols, 2)),
             ("emit_rows", (rows[3:],))],
        )
        flat = [r for page in received for r in page]
        assert flat == rows[:3] + [(10, 10.0), (11, 11.0)] + rows[3:]

    def test_split_emit_calls_match_single_call(self):
        rows = [(i, float(i)) for i in range(11)]
        _, whole, sim_w = self.run_batched([("emit_rows", (rows,))])
        _, split, sim_s = self.run_batched(
            [("emit_rows", ([r],)) for r in rows]
        )
        assert split == whole
        assert repr(sim_s.now) == repr(sim_w.now)
