"""fig_audit: every flip-cell routing decision is audited and joined."""

import pytest

from repro.experiments import fig_audit


@pytest.fixture(scope="module")
def result():
    return fig_audit.run(tenants=8, processors=4, base_rows=3000)


def test_every_routing_decision_is_joined(result):
    assert result.all_joined()
    for cell in result.cells:
        for record in cell.records:
            assert record.measured_latency > 0
            assert record.projection_error is not None


def test_decision_flips_cold_to_warm(result):
    assert result.decision_flipped()
    assert result.cell("cold").outcome == "share"
    assert result.cell("warm").outcome == "solo"


def test_model_is_well_calibrated_without_drift(result):
    """Cold and warm projections come from the simulator's own cost
    model — they should land within a few percent of measurement."""
    assert result.cell("cold").mean_abs_error < 0.10
    assert result.cell("warm").mean_abs_error < 0.10


def test_drift_cell_carries_drift_projection(result):
    cell = result.cell("cold+drift")
    for record in cell.records:
        assert record.projected_drift_share is not None


def test_render_reports_every_cell(result):
    text = result.render()
    for cell in result.cells:
        assert f"[{cell.name}]" in text
    assert "projection error" in text
    assert "decision flipped cold->warm: True" in text
