"""The decision audit trail: records, joins, and session integration."""

import json

import pytest

from repro.db import Database, RuntimeConfig
from repro.obs.audit import AuditLog, AuditRecord
from repro.policies.always import AlwaysShare
from repro.storage import Catalog, DataType, Schema


def _catalog(pages=8):
    catalog = Catalog()
    table = catalog.create("t", Schema([("k", DataType.INT)]))
    table.insert_many([(i,) for i in range(pages * 64)])
    return catalog


# ----------------------------------------------------------------------
# the log itself
# ----------------------------------------------------------------------


def test_append_assigns_seq_and_validates_outcome():
    log = AuditLog()
    first = log.append(query="q", signature="s", group_size=2,
                       source="advisor", outcome="share")
    second = log.append(query="q", signature="s", group_size=1,
                        source="solo", outcome="solo")
    assert (first.seq, second.seq) == (0, 1)
    assert len(log) == 2
    with pytest.raises(ValueError):
        log.append(query="q", signature="s", group_size=1,
                   source="solo", outcome="maybe")


def test_join_and_projection_error():
    record = AuditRecord(seq=0, query="q", signature="s", group_size=4,
                         source="advisor", outcome="share",
                         projected_shared_rate=2e-3,
                         projected_unshared_rate=1e-3)
    assert not record.joined and record.projection_error is None
    assert record.projected_rate == 2e-3  # the chosen (share) arm
    record.join(latency=1000.0, physical_reads=64)
    assert record.joined
    assert record.measured_rate == 4 / 1000.0
    assert record.projection_error == pytest.approx((2e-3 - 4e-3) / 4e-3)
    solo = AuditRecord(seq=1, query="q", signature="s", group_size=1,
                       source="solo", outcome="solo",
                       projected_unshared_rate=1e-3)
    assert solo.projected_rate == 1e-3


def test_mean_abs_error_and_exports():
    log = AuditLog()
    r = log.append(query="q", signature="s", group_size=2,
                   source="advisor", outcome="share",
                   projected_shared_rate=3e-3)
    r.join(latency=1000.0)
    assert log.joined_records() == (r,)
    assert log.mean_abs_error() == pytest.approx(abs(3e-3 - 2e-3) / 2e-3)
    payload = json.loads(log.to_json())
    assert payload[0]["projection_error"] == r.projection_error
    table = log.render()
    assert "advisor" in table and "share" in table
    assert AuditLog().render() == "(no audited decisions)"
    assert AuditLog().mean_abs_error() is None


# ----------------------------------------------------------------------
# session integration
# ----------------------------------------------------------------------


def test_advisor_routing_is_audited_and_joined():
    session = Database.open(_catalog(), "laptop")
    query = session.table("t", columns=["k"]).named("probe").build()
    for i in range(3):
        session.submit(query, label=f"c{i}")
    results = session.run_all()
    log = session.audit_log()
    assert len(log) == 1
    (record,) = log.records
    assert record.source == "advisor"
    assert record.outcome in ("share", "solo")
    assert record.group_size == 3
    assert record.joined
    assert record.projected_z is not None
    assert record.projection_error is not None
    assert record.measured_physical_reads is not None
    # Every member's result points back at the record.
    for result in results:
        assert result.audit == (record,)


def test_forced_and_solo_routing_are_audited():
    session = Database.open(_catalog(), "laptop")
    query = session.table("t", columns=["k"]).named("probe").build()
    session.submit(query, label="a", share=True)
    session.submit(query, label="b", share=True)
    session.submit(query, label="c", share=False)
    session.run_all()
    by_source = {r.source: r for r in session.audit_log()}
    assert by_source["forced"].outcome in ("share",)
    assert sorted(r.outcome for r in session.audit_log()) == ["share", "solo"]
    assert all(r.joined for r in session.audit_log())


def test_singleton_batch_is_audited_solo():
    session = Database.open(_catalog(), "laptop")
    result = session.run(session.table("t", columns=["k"]), label="only")
    (record,) = session.audit_log().records
    assert (record.source, record.outcome) == ("solo", "solo")
    assert record.group_size == 1
    assert result.audit == (record,)


def test_policy_routing_is_audited():
    session = Database.open(_catalog(), "laptop", policy=AlwaysShare())
    query = session.table("t", columns=["k"]).named("probe").build()
    for i in range(2):
        session.submit(query, label=f"c{i}")
    session.run_all()
    (record,) = session.audit_log().records
    assert (record.source, record.outcome) == ("policy", "share")
    assert record.joined


def test_advise_records_projection_inputs():
    """A cold laptop session's advice carries the outlook's I/O and
    drift projections, not just the model rates."""
    session = Database.open(_catalog(pages=16), "laptop")
    decision = session.advise(session.table("t", columns=["k"]), 4)
    (record,) = session.audit_log().records
    assert record.source == "advisor"
    assert record.projected_z == decision.benefit
    assert record.projected_shared_rate == decision.shared_rate
    assert record.projected_unshared_rate == decision.unshared_rate
    assert record.projected_io_extra is not None
    assert record.projected_drift_share is not None
    assert not record.joined  # advice alone launches nothing


def test_model_guided_policy_appends_to_its_audit_log():
    from repro.core.spec import QuerySpec, chain, op
    from repro.policies.model_guided import ModelGuidedPolicy

    spec = QuerySpec(
        root=chain(op("pivot", 100.0, 0.5), op("rest", 10.0, 1.0)),
        label="q",
    )
    log = AuditLog()
    policy = ModelGuidedPolicy({"q": (spec, "pivot")}, audit=log)
    verdict = policy.should_share("q", 4, 8)
    (record,) = log.records
    assert record.source == "policy"
    assert record.outcome == ("share" if verdict else "solo")
    assert record.projected_z is not None
    # Cache hits do not re-append.
    policy.should_share("q", 4, 8)
    assert len(log) == 1
