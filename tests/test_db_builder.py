"""Builder round-trips: every plan constructor has a fluent spelling.

Property: for each ``repro.engine.plan`` constructor, the builder
path produces a node with the *identical signature* (hence identical
auto op_id and merge identity) and schema as the hand-called
constructor, across randomized columns, predicates, keys and specs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.builder import QueryBuilder
from repro.engine.expressions import add, and_, col, gt, lit, lt, mul
from repro.engine.plan import (
    AggSpec,
    aggregate,
    filter_,
    hash_join,
    limit,
    merge_join,
    nested_loop_join,
    project,
    scan,
    sort,
)
from repro.storage import Catalog, DataType, Schema

A_COLS = ("a_k", "a_v", "a_g")
B_COLS = ("b_k", "b_v")


def make_catalog():
    catalog = Catalog()
    catalog.create("ta", Schema([
        ("a_k", DataType.INT), ("a_v", DataType.FLOAT), ("a_g", DataType.INT),
    ])).insert_many([(i, float(i % 7), i % 3) for i in range(40)])
    catalog.create("tb", Schema([
        ("b_k", DataType.INT), ("b_v", DataType.FLOAT),
    ])).insert_many([(i, float(i % 5)) for i in range(20)])
    return catalog


CATALOG = make_catalog()


def assert_same_node(built, by_hand):
    assert built.signature == by_hand.signature
    assert built.op_id == by_hand.op_id
    assert built.schema.names() == by_hand.schema.names()
    assert built.kind == by_hand.kind


columns_a = st.sampled_from([None, ["a_k", "a_v"], list(A_COLS), ["a_v"]])
predicates = st.sampled_from([
    lt(col("a_v"), 3.0),
    gt(col("a_v"), 1.5),
    and_(lt(col("a_v"), 5.0), gt(col("a_v"), 0.5)),
])
outputs = st.sampled_from([
    (("x", mul(col("a_v"), col("a_v")), DataType.FLOAT),),
    (("x", add(col("a_v"), lit(1.0)), DataType.FLOAT),
     ("y", col("a_v"), DataType.FLOAT)),
])
agg_specs = st.sampled_from([
    (AggSpec("sum", "s", col("a_v")),),
    (AggSpec("count", "n"), AggSpec("max", "m", col("a_v"))),
    (AggSpec("avg", "a", col("a_v")),),
])
sort_keys = st.sampled_from([
    (("a_k", True),),
    (("a_v", True), ("a_k", False)),
    (("a_g", False), ("a_k", True)),
])


class TestScanFusion:
    @given(columns=columns_a)
    @settings(max_examples=20, deadline=None)
    def test_plain_scan(self, columns):
        built = QueryBuilder(CATALOG, "ta", columns=columns).plan()
        assert_same_node(built, scan(CATALOG, "ta", columns=columns))

    @given(predicate=predicates)
    @settings(max_examples=20, deadline=None)
    def test_where_fuses_into_scan(self, predicate):
        built = QueryBuilder(CATALOG, "ta").where(predicate).plan()
        assert_same_node(built, scan(CATALOG, "ta", predicate=predicate))

    @given(p1=predicates, p2=predicates)
    @settings(max_examples=20, deadline=None)
    def test_stacked_wheres_conjoin(self, p1, p2):
        built = QueryBuilder(CATALOG, "ta").where(p1).where(p2).plan()
        assert_same_node(
            built, scan(CATALOG, "ta", predicate=and_(p1, p2))
        )

    @given(predicate=predicates, outs=outputs)
    @settings(max_examples=20, deadline=None)
    def test_fully_fused_scan(self, predicate, outs):
        built = (QueryBuilder(CATALOG, "ta")
                 .where(predicate).select(*outs).plan())
        assert_same_node(
            built,
            scan(CATALOG, "ta", predicate=predicate, outputs=list(outs)),
        )

    def test_cost_factor_round_trips(self):
        built = (QueryBuilder(CATALOG, "ta")
                 .where(lt(col("a_v"), 2.0)).with_cost_factor(2.5).plan())
        assert_same_node(
            built,
            scan(CATALOG, "ta", predicate=lt(col("a_v"), 2.0),
                 cost_factor=2.5),
        )

    def test_select_names_narrow_pending_scan(self):
        built = QueryBuilder(CATALOG, "ta").select("a_k", "a_v").plan()
        assert_same_node(built, scan(CATALOG, "ta", columns=["a_k", "a_v"]))

    def test_select_names_after_where_keep_predicate_columns(self):
        """The front-door pattern: filter on a column the projection
        drops. Bare names after a fused predicate lower to identity
        outputs, so the predicate still compiles."""
        built = (QueryBuilder(CATALOG, "ta")
                 .where(lt(col("a_v"), 3.0))
                 .select("a_k", "a_g")
                 .plan())
        assert_same_node(
            built,
            scan(CATALOG, "ta", predicate=lt(col("a_v"), 3.0), outputs=[
                ("a_k", col("a_k"), DataType.INT),
                ("a_g", col("a_g"), DataType.INT),
            ]),
        )
        assert built.schema.names() == ("a_k", "a_g")

    def test_select_mixes_names_and_computed_outputs(self):
        built = (QueryBuilder(CATALOG, "ta")
                 .select("a_k", ("x", mul(col("a_v"), col("a_v")),
                                 DataType.FLOAT))
                 .plan())
        assert_same_node(
            built,
            scan(CATALOG, "ta", outputs=[
                ("a_k", col("a_k"), DataType.INT),
                ("x", mul(col("a_v"), col("a_v")), DataType.FLOAT),
            ]),
        )
        assert built.schema.names() == ("a_k", "x")


class TestUnaryOperators:
    @given(predicate=predicates)
    @settings(max_examples=20, deadline=None)
    def test_filter_node(self, predicate):
        built = QueryBuilder(CATALOG, "ta").filter(predicate).plan()
        assert_same_node(built, filter_(scan(CATALOG, "ta"), predicate))

    @given(outs=outputs)
    @settings(max_examples=20, deadline=None)
    def test_project_node(self, outs):
        built = QueryBuilder(CATALOG, "ta").project(outs).plan()
        assert_same_node(built, project(scan(CATALOG, "ta"), list(outs)))

    @given(specs=agg_specs, by=st.sampled_from([(), ("a_g",), ("a_g", "a_k")]))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_node(self, specs, by):
        built = QueryBuilder(CATALOG, "ta").agg(*specs, by=by).plan()
        assert_same_node(
            built, aggregate(scan(CATALOG, "ta"), by, list(specs))
        )

    @given(keys=sort_keys)
    @settings(max_examples=20, deadline=None)
    def test_sort_node(self, keys):
        built = QueryBuilder(CATALOG, "ta").order_by(*keys).plan()
        assert_same_node(built, sort(scan(CATALOG, "ta"), list(keys)))

    def test_order_by_accepts_bare_names_as_ascending(self):
        built = QueryBuilder(CATALOG, "ta").order_by("a_k").plan()
        assert_same_node(built, sort(scan(CATALOG, "ta"), [("a_k", True)]))

    @given(n=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_limit_node(self, n):
        built = QueryBuilder(CATALOG, "ta").limit(n).plan()
        assert_same_node(built, limit(scan(CATALOG, "ta"), n))


class TestJoins:
    @given(join_type=st.sampled_from(["inner", "semi", "anti", "left"]))
    @settings(max_examples=20, deadline=None)
    def test_hash_join_node(self, join_type):
        built = (
            QueryBuilder(CATALOG, "ta")
            .hash_join(QueryBuilder(CATALOG, "tb"),
                       build_key="b_k", probe_key="a_k",
                       join_type=join_type)
            .plan()
        )
        assert_same_node(
            built,
            hash_join(scan(CATALOG, "tb"), scan(CATALOG, "ta"),
                      build_key="b_k", probe_key="a_k",
                      join_type=join_type),
        )

    def test_merge_join_node(self):
        built = (
            QueryBuilder(CATALOG, "ta").order_by("a_k")
            .merge_join(QueryBuilder(CATALOG, "tb").order_by("b_k"),
                        left_key="a_k", right_key="b_k")
            .plan()
        )
        assert_same_node(
            built,
            merge_join(sort(scan(CATALOG, "ta"), [("a_k", True)]),
                       sort(scan(CATALOG, "tb"), [("b_k", True)]),
                       left_key="a_k", right_key="b_k"),
        )

    def test_nested_loop_join_node(self):
        predicate = gt(col("a_v"), col("b_v"))
        built = (
            QueryBuilder(CATALOG, "ta")
            .nl_join(QueryBuilder(CATALOG, "tb"), predicate)
            .plan()
        )
        assert_same_node(
            built,
            nested_loop_join(scan(CATALOG, "ta"), scan(CATALOG, "tb"),
                             predicate),
        )

    def test_join_accepts_raw_plan_nodes(self):
        built = (
            QueryBuilder(CATALOG, "ta")
            .hash_join(scan(CATALOG, "tb"), build_key="b_k",
                       probe_key="a_k")
            .plan()
        )
        assert built.kind == "hash_join"


class TestPivotDefaults:
    def test_scan_chain_pivots_at_the_scan(self):
        query = (
            QueryBuilder(CATALOG, "ta")
            .where(lt(col("a_v"), 3.0))
            .agg(AggSpec("count", "n"))
            .build()
        )
        pivot = query.plan.find(query.pivot_op_id)
        assert pivot.kind == "scan"

    def test_join_retargets_the_pivot(self):
        query = (
            QueryBuilder(CATALOG, "ta")
            .hash_join(QueryBuilder(CATALOG, "tb"),
                       build_key="b_k", probe_key="a_k")
            .agg(AggSpec("count", "n"))
            .build()
        )
        assert query.plan.find(query.pivot_op_id).kind == "hash_join"

    def test_share_at_pins_the_pivot(self):
        builder = QueryBuilder(CATALOG, "ta").where(lt(col("a_v"), 3.0))
        builder.share_at()
        query = builder.agg(AggSpec("count", "n")).build()
        assert query.plan.find(query.pivot_op_id).kind == "scan"

        solo = (QueryBuilder(CATALOG, "ta").share_at(False)
                .agg(AggSpec("count", "n")).build())
        assert solo.pivot_op_id is None
        assert solo.pivot_signature is None

    def test_named_sets_the_query_name(self):
        query = QueryBuilder(CATALOG, "ta").named("hotpath").build()
        assert query.name == "hotpath"
        assert QueryBuilder(CATALOG, "ta").build().name == "ta"


class TestBuilderErrors:
    def test_unknown_table_rejected_immediately(self):
        with pytest.raises(Exception):
            QueryBuilder(CATALOG, "missing")

    def test_unknown_sort_key_rejected_at_build(self):
        with pytest.raises(Exception):
            QueryBuilder(CATALOG, "ta").order_by("nope")

    def test_unknown_agg_column_rejected_at_build(self):
        with pytest.raises(Exception):
            QueryBuilder(CATALOG, "ta").agg(
                AggSpec("sum", "s", col("nope"))
            )

    def test_empty_select_rejected(self):
        with pytest.raises(Exception):
            QueryBuilder(CATALOG, "ta").select()

    def test_cost_factor_after_materialize_rejected(self):
        builder = QueryBuilder(CATALOG, "ta").limit(5)
        with pytest.raises(Exception):
            builder.with_cost_factor(2.0)

    def test_join_column_collision_rejected_at_build(self):
        with pytest.raises(Exception):
            QueryBuilder(CATALOG, "ta").hash_join(
                QueryBuilder(CATALOG, "ta"),
                build_key="a_k", probe_key="a_k",
            )
