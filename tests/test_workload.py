"""Tests for the closed-system workload driver (repro.workload)."""

import pytest

from repro.errors import WorkloadError
from repro.policies import AlwaysShare, NeverShare
from repro.tpch.generator import generate
from repro.workload import WorkloadMix, run_closed_system


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=17)


class TestWorkloadMix:
    def test_weights_normalized(self):
        mix = WorkloadMix({"q1": 3.0, "q4": 1.0})
        assert mix.weights["q1"] == pytest.approx(0.75)
        assert mix.weights["q4"] == pytest.approx(0.25)

    def test_single(self):
        mix = WorkloadMix.single("q6")
        assert mix.weights == {"q6": 1.0}

    def test_two_way_fractions(self):
        mix = WorkloadMix.two_way("q1", "q4", 0.25)
        assert mix.weights["q4"] == pytest.approx(0.25)
        assert WorkloadMix.two_way("q1", "q4", 0.0).weights == {"q1": 1.0}
        assert WorkloadMix.two_way("q1", "q4", 1.0).weights == {"q4": 1.0}

    def test_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            WorkloadMix.two_way("q1", "q4", 1.5)

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadMix({})

    def test_negative_weight_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadMix({"q1": -1.0})

    def test_stream_deterministic_per_client(self):
        mix = WorkloadMix({"q1": 0.5, "q4": 0.5}, seed=7)
        stream_a, stream_b = mix.stream(3), mix.stream(3)
        a = [next(stream_a) for _ in range(20)]
        b = [next(stream_b) for _ in range(20)]
        assert a == b

    def test_stream_differs_across_clients(self):
        mix = WorkloadMix({"q1": 0.5, "q4": 0.5}, seed=7)
        stream_a, stream_b = mix.stream(0), mix.stream(1)
        a = [next(stream_a) for _ in range(30)]
        b = [next(stream_b) for _ in range(30)]
        assert a != b

    def test_stream_respects_weights(self):
        mix = WorkloadMix({"q1": 0.9, "q4": 0.1}, seed=7)
        stream = mix.stream(0)
        names = [next(stream) for _ in range(500)]
        fraction_q4 = names.count("q4") / len(names)
        assert 0.05 < fraction_q4 < 0.2


class TestClosedSystemDriver:
    def test_throughput_positive_and_closed(self, catalog):
        result = run_closed_system(
            catalog, NeverShare(), WorkloadMix.single("q6"),
            n_clients=4, processors=4, warmup=20_000, window=200_000,
        )
        assert result.completions > 0
        assert result.throughput > 0
        # Busy time is charged when a compute chunk is issued, so a
        # window boundary that cuts a chunk can overshoot slightly.
        assert 0 < result.utilization <= 1.02
        assert sum(result.completions_by_query.values()) == result.completions
        assert result.mean_response_time > 0

    def test_more_processors_more_throughput_unshared(self, catalog):
        kwargs = dict(
            catalog=catalog, policy=NeverShare(),
            mix=WorkloadMix.single("q6"), n_clients=8,
            warmup=20_000, window=300_000,
        )
        slow = run_closed_system(processors=1, **kwargs)
        fast = run_closed_system(processors=8, **kwargs)
        assert fast.throughput > 2 * slow.throughput

    def test_sharing_wins_on_one_processor(self, catalog):
        """Figure 1's crossover, measured through the full stack."""
        kwargs = dict(
            catalog=catalog, mix=WorkloadMix.single("q6"), n_clients=12,
            warmup=50_000, window=400_000,
        )
        always_1 = run_closed_system(policy=AlwaysShare(), processors=1,
                                     **kwargs)
        never_1 = run_closed_system(policy=NeverShare(), processors=1,
                                    **kwargs)
        assert always_1.throughput > 1.2 * never_1.throughput

    def test_sharing_loses_on_many_processors(self, catalog):
        kwargs = dict(
            catalog=catalog, mix=WorkloadMix.single("q6"), n_clients=12,
            warmup=50_000, window=400_000,
        )
        always = run_closed_system(policy=AlwaysShare(), processors=32,
                                   **kwargs)
        never = run_closed_system(policy=NeverShare(), processors=32,
                                  **kwargs)
        assert always.throughput < 0.5 * never.throughput

    def test_policy_metadata_recorded(self, catalog):
        result = run_closed_system(
            catalog, AlwaysShare(), WorkloadMix.single("q6"),
            n_clients=6, processors=2, warmup=20_000, window=150_000,
        )
        assert result.policy == "always"
        assert result.shared_submissions > 0

    def test_invalid_parameters(self, catalog):
        mix = WorkloadMix.single("q6")
        with pytest.raises(WorkloadError):
            run_closed_system(catalog, NeverShare(), mix, n_clients=0,
                              processors=2, warmup=1, window=1)
        with pytest.raises(WorkloadError):
            run_closed_system(catalog, NeverShare(), mix, n_clients=1,
                              processors=2, warmup=-1, window=1)
        with pytest.raises(WorkloadError):
            run_closed_system(catalog, NeverShare(), mix, n_clients=1,
                              processors=2, warmup=1, window=0)
