"""Working-set estimation feeding the auto-advisor's spill projection.

Covers :mod:`repro.policies.workset` directly (cardinality walk,
page conversion, operator coverage) and its session wiring: a
stateful query profiled by the session now lands a non-zero
``work_pages`` in the resource outlook, so the automatic advisor can
see spill pressure without hand-built specs.
"""

import pytest

from repro.db import Database, QueryBuilder
from repro.engine.expressions import col, lt
from repro.engine.plan import (
    AggSpec,
    aggregate,
    filter_,
    hash_join,
    limit,
    nested_loop_join,
    scan,
    sort,
)
from repro.policies.workset import (
    FILTER_SELECTIVITY,
    GROUP_FRACTION,
    estimate_cardinality,
    estimate_work_pages,
)
from repro.storage import Catalog, DataType, Schema

PAGE_ROWS = 64


@pytest.fixture
def catalog():
    catalog = Catalog()
    big = catalog.create(
        "big", Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    )
    big.insert_many([(i, float(i)) for i in range(640)])
    small = catalog.create(
        "small", Schema([("sk", DataType.INT), ("sv", DataType.FLOAT)])
    )
    small.insert_many([(i, float(i)) for i in range(64)])
    return catalog


# -- cardinality ---------------------------------------------------------


def test_scan_cardinality_is_exact(catalog):
    assert estimate_cardinality(scan(catalog, "big"), catalog) == 640.0


def test_fused_and_standalone_filters_apply_selectivity(catalog):
    fused = scan(catalog, "big", predicate=lt(col("k"), 10))
    standalone = filter_(scan(catalog, "big"), lt(col("k"), 10))
    expected = 640 * FILTER_SELECTIVITY
    assert estimate_cardinality(fused, catalog) == pytest.approx(expected)
    assert estimate_cardinality(standalone, catalog) == pytest.approx(expected)


def test_limit_truncates_and_aggregate_groups(catalog):
    base = scan(catalog, "big")
    assert estimate_cardinality(limit(base, 5), catalog) == 5.0
    grouped = aggregate(base, ("k",), [AggSpec("count", "n")])
    assert estimate_cardinality(grouped, catalog) == pytest.approx(
        640 * GROUP_FRACTION
    )
    ungrouped = aggregate(base, (), [AggSpec("count", "n")])
    assert estimate_cardinality(ungrouped, catalog) == 1.0


def test_equi_join_takes_max_side(catalog):
    plan = hash_join(
        scan(catalog, "small"), scan(catalog, "big"),
        build_key="sk", probe_key="k",
    )
    assert estimate_cardinality(plan, catalog) == 640.0


# -- work pages ----------------------------------------------------------


def test_pipeline_only_plan_holds_nothing(catalog):
    plan = limit(filter_(scan(catalog, "big"), lt(col("k"), 10)), 5)
    assert estimate_work_pages(plan, catalog, PAGE_ROWS) == 0


def test_hash_join_charges_build_side(catalog):
    plan = hash_join(
        scan(catalog, "small"), scan(catalog, "big"),
        build_key="sk", probe_key="k",
    )
    # Build side: 64 rows -> exactly one page at 64 rows/page.
    assert estimate_work_pages(plan, catalog, PAGE_ROWS) == 1


def test_sort_charges_its_input(catalog):
    plan = sort(scan(catalog, "big"), [("k", True)])
    assert estimate_work_pages(plan, catalog, PAGE_ROWS) == 640 // PAGE_ROWS


def test_nested_loop_charges_inner_side(catalog):
    plan = nested_loop_join(
        scan(catalog, "big"), scan(catalog, "small"), lt(col("sv"), 1.0)
    )
    assert estimate_work_pages(plan, catalog, PAGE_ROWS) == 1


def test_stacked_stateful_operators_sum(catalog):
    joined = hash_join(
        scan(catalog, "small"), scan(catalog, "big"),
        build_key="sk", probe_key="k",
    )
    plan = sort(joined, [("k", True)])
    # Build table (1 page) + sort buffer over the join's 640-row
    # estimate (10 pages) are held simultaneously.
    assert estimate_work_pages(plan, catalog, PAGE_ROWS) == 11


def test_page_rows_must_be_positive(catalog):
    with pytest.raises(ValueError):
        estimate_work_pages(scan(catalog, "big"), catalog, 0)


# -- session wiring ------------------------------------------------------


def test_session_profiles_carry_estimated_work_pages(catalog):
    session = Database.open(catalog, "cmp32")
    query = (
        QueryBuilder(catalog, "big")
        .agg(AggSpec("sum", "total", col("v")), by=("k",))
        .named("grouped")
        .build()
    )
    session.advise(query, 2)
    profile = session._outlook.profiles[query.pivot_signature]
    assert profile.table == "big"
    assert profile.work_pages > 0


def test_session_profiles_pipeline_queries_stay_zero(catalog):
    session = Database.open(catalog, "cmp32")
    query = (
        QueryBuilder(catalog, "big")
        .where(lt(col("k"), 10))
        .named("pipeline")
        .build()
    )
    session.advise(query, 2)
    profile = session._outlook.profiles[query.pivot_signature]
    assert profile.work_pages == 0
