"""Cooperative scan sharing: unit and property tests.

The invariants the elevator subsystem must never violate, whatever
the arrival order, interleaving, or prefetch depth:

* every attached consumer sees **each page exactly once** (one full
  revolution from its own start offset);
* through the engine, every consumer's row *set* equals an
  independent scan's, under randomized arrival staggers;
* prefetch accounting conserves I/O — stall + overlapped + still
  in flight == physical reads x ``io_page``;
* the scan-aware eviction policy switches to MRU victims exactly for
  tables larger than the pool.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CostModel, Engine, scan
from repro.errors import StorageError
from repro.sim.events import Sleep
from repro.sim.simulator import Simulator
from repro.storage import (
    BufferPool,
    Catalog,
    DataType,
    ScanAwarePolicy,
    ScanShareManager,
    Schema,
    make_policy,
)

IO_PAGE = 100.0


def make_manager(capacity=64, prefetch=0, policy="lru"):
    return ScanShareManager(BufferPool(capacity, policy),
                            prefetch_depth=prefetch)


class TestTicketLifecycle:
    def test_first_consumer_starts_at_page_zero(self):
        manager = make_manager()
        ticket = manager.attach("t", 10)
        assert ticket.start_page == 0
        assert ticket.page_index == 0
        assert not ticket.exhausted

    def test_late_arrival_attaches_at_head(self):
        manager = make_manager()
        first = manager.attach("t", 10)
        for _ in range(4):
            manager.acquire(first, IO_PAGE)
            first.advance()
        second = manager.attach("t", 10)
        assert second.start_page == 4

    def test_wrap_around_covers_every_page_once(self):
        manager = make_manager()
        first = manager.attach("t", 8)
        for _ in range(5):
            manager.acquire(first, IO_PAGE)
            first.advance()
        second = manager.attach("t", 8)
        seen = []
        while not second.exhausted:
            seen.append(second.page_index)
            manager.acquire(second, IO_PAGE)
            second.advance()
        assert seen == [5, 6, 7, 0, 1, 2, 3, 4]
        assert sorted(seen) == list(range(8))

    def test_advance_past_revolution_rejected(self):
        manager = make_manager()
        ticket = manager.attach("t", 2)
        for _ in range(2):
            manager.acquire(ticket, IO_PAGE)
            ticket.advance()
        assert ticket.exhausted
        with pytest.raises(StorageError):
            ticket.advance()
        with pytest.raises(StorageError):
            manager.acquire(ticket, IO_PAGE)

    def test_detach_is_idempotent_and_frees_depth(self):
        manager = make_manager()
        a = manager.attach("t", 4)
        b = manager.attach("t", 4)
        manager.detach(a)
        manager.detach(a)
        stats = manager.snapshot()[0]
        assert stats.attaches == 2
        assert stats.max_attach_depth == 2
        manager.detach(b)

    def test_table_size_change_rejected_mid_scan(self):
        manager = make_manager()
        manager.attach("t", 4)
        with pytest.raises(StorageError, match="changed size"):
            manager.attach("t", 5)

    def test_idle_cursor_resize_abandons_inflight_reads(self):
        """Resizing an idle cursor keeps the conservation identity:
        still-in-flight prefetch cost moves to io_abandoned_cost."""
        manager = make_manager(capacity=64, prefetch=4)
        ticket = manager.attach("t", 8)
        for _ in range(3):
            manager.acquire(ticket, IO_PAGE)
            ticket.advance()
        manager.detach(ticket)
        pending_before = manager._cursors["t"].pending_cost()
        assert pending_before > 0
        manager.attach("t", 12)
        cursor = manager._cursors["t"]
        stats = manager.snapshot()[0]
        assert stats.io_abandoned_cost == pytest.approx(pending_before)
        total = (stats.io_stall_cost + stats.io_overlapped_cost
                 + stats.io_abandoned_cost + cursor.pending_cost())
        assert total == pytest.approx(stats.physical_reads * IO_PAGE)

    def test_idle_cursor_resizes_for_grown_table(self):
        """A table that grows between queries gets a fresh cursor
        geometry instead of a permanent error."""
        manager = make_manager()
        ticket = manager.attach("t", 4)
        while not ticket.exhausted:
            manager.acquire(ticket, IO_PAGE)
            ticket.advance()
        manager.detach(ticket)
        grown = manager.attach("t", 6)
        assert grown.n_pages == 6
        assert grown.start_page == 0
        seen = []
        while not grown.exhausted:
            seen.append(grown.page_index)
            manager.acquire(grown, IO_PAGE)
            grown.advance()
        assert sorted(seen) == list(range(6))

    def test_bad_arguments_rejected(self):
        manager = make_manager()
        with pytest.raises(StorageError):
            manager.attach("t", 0)
        with pytest.raises(StorageError):
            ScanShareManager(BufferPool(4), prefetch_depth=-1)
        ticket = manager.attach("t", 2)
        with pytest.raises(StorageError):
            manager.acquire(ticket, IO_PAGE, cpu_credit=-1.0)


class TestElevatorProperties:
    @given(
        n_pages=st.integers(min_value=1, max_value=24),
        arrivals=st.lists(
            st.integers(min_value=0, max_value=23), min_size=1, max_size=5
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_consumer_sees_each_page_exactly_once(
        self, n_pages, arrivals, seed
    ):
        """Random arrival offsets and interleavings: one revolution
        each, every page exactly once, sharing never exceeds one
        pass beyond what staggered arrivals force."""
        import random

        rng = random.Random(seed)
        manager = make_manager(capacity=2 * n_pages, prefetch=2)
        active = {}
        pending_arrivals = sorted(arrivals)
        seen: dict[int, list] = {}
        ticket_id = 0
        steps = 0
        while pending_arrivals or active:
            # Admit every arrival whose offset has passed.
            while pending_arrivals and pending_arrivals[0] <= steps:
                pending_arrivals.pop(0)
                ticket = manager.attach("t", n_pages)
                active[ticket_id] = ticket
                seen[ticket_id] = []
                ticket_id += 1
            if active:
                chosen = rng.choice(sorted(active))
                ticket = active[chosen]
                seen[chosen].append(ticket.page_index)
                manager.acquire(ticket, IO_PAGE, cpu_credit=10.0)
                ticket.advance()
                if ticket.exhausted:
                    manager.detach(ticket)
                    del active[chosen]
            steps += 1

        for pages in seen.values():
            assert sorted(pages) == list(range(n_pages))
        stats = manager.snapshot()[0]
        assert stats.pages_served == len(seen) * n_pages

    @given(
        consumers=st.integers(min_value=1, max_value=5),
        stagger=st.floats(min_value=0.0, max_value=2000.0),
        page_rows=st.sampled_from([8, 16, 32]),
    )
    @settings(max_examples=20, deadline=None)
    def test_engine_rows_match_independent_scan(
        self, consumers, stagger, page_rows
    ):
        """Through the engine under random staggers, every consumer's
        row set is identical to an independent scan's."""
        catalog = Catalog()
        schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
        table = catalog.create("t", schema)
        table.insert_many([(i, float(i % 13)) for i in range(300)])
        reference = sorted(table.rows())

        pages = table.page_count(page_rows)
        manager = ScanShareManager(BufferPool(pages * 2), prefetch_depth=2)
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim, costs=CostModel(io_page=IO_PAGE),
                        page_rows=page_rows, scan_manager=manager)
        handles = []

        def submitter(delay, label):
            yield Sleep(delay)
            handles.append(engine.execute(
                scan(catalog, "t", columns=["k", "v"], op_id="s"), label
            ))

        for i in range(consumers):
            sim.spawn(submitter(i * stagger, f"c{i}"), name=f"submit{i}")
        sim.run()

        assert len(handles) == consumers
        for handle in handles:
            assert sorted(handle.rows) == reference

    def test_lockstep_consumers_share_one_physical_pass(self):
        catalog = Catalog()
        schema = Schema([("k", DataType.INT)])
        table = catalog.create("t", schema)
        table.insert_many([(i,) for i in range(256)])
        pages = table.page_count(16)

        manager = ScanShareManager(BufferPool(pages * 2), prefetch_depth=2)
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim, costs=CostModel(io_page=IO_PAGE),
                        page_rows=16, scan_manager=manager)
        for i in range(4):
            engine.execute(scan(catalog, "t", columns=["k"], op_id="s"),
                           f"q{i}")
        sim.run()
        stats = manager.snapshot()[0]
        assert stats.physical_reads == pages
        assert stats.pages_served == 4 * pages
        assert stats.max_attach_depth == 4
        assert stats.pages_per_read == pytest.approx(4.0)


class TestPrefetchAccounting:
    def walk(self, manager, ticket, cpu=20.0):
        """Drive one full revolution, returning per-page stalls."""
        stalls = []
        credit = 0.0
        while not ticket.exhausted:
            stalls.append(manager.acquire(ticket, IO_PAGE, cpu_credit=credit))
            credit = cpu
            ticket.advance()
        return stalls

    def test_no_prefetch_pays_synchronous_misses(self):
        manager = make_manager(prefetch=0)
        ticket = manager.attach("t", 6)
        stalls = self.walk(manager, ticket)
        assert stalls == [IO_PAGE] * 6
        stats = manager.snapshot()[0]
        assert stats.physical_reads == 6
        assert stats.io_overlapped_cost == 0

    def test_prefetch_overlaps_cpu_with_io(self):
        """With read-ahead, each page's stall shrinks by the CPU
        credit of the previous page: io - cpu instead of io."""
        cpu = 20.0
        manager = make_manager(prefetch=2)
        ticket = manager.attach("t", 6)
        stalls = self.walk(manager, ticket, cpu=cpu)
        # Page 0 is a cold synchronous miss; every later page was
        # prefetched and partially overlapped.
        assert stalls[0] == IO_PAGE
        assert stalls[1:] == [IO_PAGE - cpu] * 5
        stats = manager.snapshot()[0]
        assert stats.io_overlapped_cost == pytest.approx(5 * cpu)

    def test_cpu_larger_than_io_hides_reads_completely(self):
        manager = make_manager(prefetch=2)
        ticket = manager.attach("t", 6)
        stalls = self.walk(manager, ticket, cpu=3 * IO_PAGE)
        assert stalls[0] == IO_PAGE
        assert stalls[1:] == [0.0] * 5

    def test_io_conservation(self):
        """stall + overlapped + still-in-flight == reads * io_page."""
        for prefetch in (0, 1, 3, 8):
            for cpu in (0.0, 15.0, 150.0):
                manager = make_manager(prefetch=prefetch)
                ticket = manager.attach("t", 12)
                self.walk(manager, ticket, cpu=cpu)
                stats = manager.snapshot()[0]
                cursor = manager._cursors["t"]
                in_flight = cursor.fifo.pending_cost()
                total = (stats.io_stall_cost + stats.io_overlapped_cost
                         + in_flight)
                assert total == pytest.approx(
                    stats.physical_reads * IO_PAGE
                ), (prefetch, cpu)

    def test_followers_draft_without_new_reads(self):
        manager = make_manager(prefetch=1)
        leader = manager.attach("t", 4)
        manager.acquire(leader, IO_PAGE)
        leader.advance()
        follower = manager.attach("t", 4)
        # The follower reads the page the leader just touched region:
        # wrap to leader's trail — all resident, no stall, no reads.
        reads_before = manager.snapshot()[0].physical_reads
        stall = manager.acquire(follower, IO_PAGE)
        follower.advance()
        assert manager.snapshot()[0].physical_reads >= reads_before
        assert stall in (0.0, IO_PAGE)  # head page may still be inflight

    def test_evicted_prefetch_counts_as_wasted(self):
        # Pool of 2 frames, prefetch 2: read-ahead frames get evicted
        # by the consumer's own touches before use.
        manager = make_manager(capacity=2, prefetch=2, policy="lru")
        ticket = manager.attach("t", 8)
        credit = 0.0
        while not ticket.exhausted:
            manager.acquire(ticket, IO_PAGE, cpu_credit=credit)
            credit = 10.0
            ticket.advance()
        stats = manager.snapshot()[0]
        assert stats.prefetch_wasted > 0
        # Every page is still served exactly once.
        assert stats.pages_served == 8


class TestScanAwarePolicy:
    def test_make_policy_resolves_scan(self):
        assert isinstance(make_policy("scan"), ScanAwarePolicy)

    def test_small_table_keeps_lru(self):
        pool = BufferPool(4, "scan")
        for i in range(3):
            pool.access(("tbl", "small", i))
        assert not pool.policy.is_looping("small")
        pool.access(("tbl", "small", 0))  # refresh page 0
        pool.access(("tbl", "other", 0))  # pool now full
        pool.access(("tbl", "other", 1))  # evicts LRU: small/1
        assert ("tbl", "small", 1) not in pool
        assert ("tbl", "small", 0) in pool

    def test_oversized_table_switches_to_mru(self):
        """Once the observed footprint exceeds capacity, the table's
        MRU page is the victim — the loop prefix survives."""
        pool = BufferPool(4, "scan")
        for i in range(8):
            pool.access(("tbl", "big", i))
        assert pool.policy.is_looping("big")
        # Pages 0..2 (the prefix) stay; later pages evict each other.
        assert ("tbl", "big", 0) in pool
        assert ("tbl", "big", 1) in pool
        assert ("tbl", "big", 2) in pool

    def test_scan_hint_classifies_before_first_access(self):
        pool = BufferPool(4, "scan")
        pool.scan_hint("big", 100)
        assert pool.policy.is_looping("big")

    def test_scan_hint_on_unaware_policy_is_noop(self):
        pool = BufferPool(4, "lru")
        pool.scan_hint("big", 100)  # must not raise

    def test_hinted_looping_table_does_not_evict_other_tables(self):
        """With the manager's attach-time hint in place, a looping
        scan eats its own frames and leaves other tables alone."""
        pool = BufferPool(4, "scan")
        pool.scan_hint("big", 10)
        pool.access(("tbl", "hot", 0))
        for i in range(10):
            pool.access(("tbl", "big", i))
        assert ("tbl", "hot", 0) in pool

    def test_second_pass_reuses_prefix(self):
        """The property the policy exists for: scanning an oversized
        table twice hits on the preserved prefix, where LRU gets
        nothing."""

        def second_pass_hits(policy):
            pool = BufferPool(8, policy)
            for _ in range(2):
                for i in range(16):
                    pool.access(("tbl", "big", i))
            return pool.stats.hits

        assert second_pass_hits("lru") == 0
        assert second_pass_hits("scan") > 0

    def test_manager_hints_oversized_tables(self):
        manager = make_manager(capacity=4, policy="scan")
        manager.attach("big", 10)
        assert manager.pool.policy.is_looping("big")
        manager2 = make_manager(capacity=16, policy="scan")
        manager2.attach("small", 10)
        assert not manager2.pool.policy.is_looping("small")


class TestOrderSensitiveConsumers:
    """Scans feeding limit/merge_join must not ride a rotated cursor."""

    def _catalog(self):
        catalog = Catalog()
        schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
        table = catalog.create("t", schema)
        table.insert_many([(i, float(i)) for i in range(200)])
        return catalog

    def _engine(self, catalog):
        manager = ScanShareManager(BufferPool(64), prefetch_depth=2)
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim, costs=CostModel(io_page=IO_PAGE),
                        page_rows=16, scan_manager=manager)
        return engine, sim

    def test_limit_over_scan_keeps_table_order(self):
        """Even with the cursor moved mid-table by another scan, a
        limit(scan) query returns the table's first rows."""
        from repro.engine import limit, scan as scan_plan

        catalog = self._catalog()
        engine, sim = self._engine(catalog)
        # Move the table's elevator head first.
        engine.execute(
            scan_plan(catalog, "t", columns=["k", "v"], op_id="mover"),
            "mover",
        )
        sim.run()
        plan = limit(
            scan_plan(catalog, "t", columns=["k", "v"], op_id="s"),
            10, op_id="lim",
        )
        handle = engine.execute(plan, "limited")
        sim.run()
        assert handle.rows == [(i, float(i)) for i in range(10)]

    def test_merge_join_over_ordered_scans_still_works(self):
        from repro.engine import merge_join, scan as scan_plan

        catalog = self._catalog()
        engine, sim = self._engine(catalog)
        engine.execute(
            scan_plan(catalog, "t", columns=["k", "v"], op_id="mover"),
            "mover",
        )
        sim.run()
        other = catalog.create(
            "u", Schema([("j", DataType.INT), ("w", DataType.FLOAT)])
        )
        other.insert_many([(i, float(2 * i)) for i in range(200)])
        plan = merge_join(
            scan_plan(catalog, "t", columns=["k"], op_id="l"),
            scan_plan(catalog, "u", columns=["j", "w"], op_id="r"),
            left_key="k", right_key="j", op_id="mj",
        )
        handle = engine.execute(plan, "mj-query")
        sim.run()
        assert sorted(handle.rows) == [
            (i, i, float(2 * i)) for i in range(200)
        ]

    def test_aggregate_barrier_restores_rotation(self):
        """A limit above an aggregate still lets the scan rotate —
        the aggregate canonicalizes order."""
        from repro.engine import AggSpec, aggregate, limit, scan as scan_plan
        from repro.engine.expressions import col

        catalog = self._catalog()
        engine, sim = self._engine(catalog)
        engine.execute(
            scan_plan(catalog, "t", columns=["k", "v"], op_id="mover"),
            "mover",
        )
        sim.run()
        plan = limit(
            aggregate(
                scan_plan(catalog, "t", columns=["k", "v"], op_id="s"),
                group_by=("k",),
                aggs=[AggSpec("sum", "total", col("v"))],
                op_id="agg",
            ),
            5, op_id="lim",
        )
        handle = engine.execute(plan, "topk")
        sim.run()
        assert handle.rows == [(i, float(i)) for i in range(5)]
        # The scan below the barrier did attach to the shared cursor
        # (mover + barrier scan = 2 attaches on one cursor).
        stats = engine.scan_manager.snapshot()[0]
        assert stats.attaches == 2


class TestDriftGovernance:
    """Lag tracking, the throttle gate, and group-window splits."""

    def make_drifted(self, n_pages=24, bound=4, windows=False,
                     capacity=64, lag=6):
        """A fast leader `lag` pages ahead of an attached straggler."""
        manager = ScanShareManager(BufferPool(capacity),
                                   drift_bound=bound,
                                   group_windows=windows)
        leader = manager.attach("t", n_pages)
        straggler = manager.attach("t", n_pages)
        for _ in range(lag):
            manager.acquire(leader, IO_PAGE)
            leader.advance()
        return manager, leader, straggler

    def test_bad_drift_arguments_rejected(self):
        with pytest.raises(StorageError):
            ScanShareManager(BufferPool(4), drift_bound=0)
        with pytest.raises(StorageError):
            ScanShareManager(BufferPool(4), group_windows=True)
        with pytest.raises(StorageError):
            ScanShareManager(BufferPool(4), drift_bound=2,
                             group_windows="sometimes")

    def test_lag_is_tracked_per_consumer(self):
        manager, leader, straggler = self.make_drifted(lag=6)
        cursor = manager._cursors["t"]
        group = cursor.groups[0]
        assert group.lag_of(straggler, 24) == 6
        assert group.lag_of(leader, 24) == 0
        assert cursor.max_lag >= 4

    def test_throttle_gate_pauses_only_the_head(self):
        manager, leader, straggler = self.make_drifted(lag=6, bound=4)
        assert manager.throttle_wait(leader, IO_PAGE) == IO_PAGE
        # The straggler itself is never gated — it must catch up.
        assert manager.throttle_wait(straggler, IO_PAGE) == 0.0
        stats = manager.snapshot()[0]
        assert stats.throttle_stall_cost == IO_PAGE

    def test_gate_opens_once_the_convoy_closes_up(self):
        manager, leader, straggler = self.make_drifted(lag=6, bound=4)
        while manager.throttle_wait(leader, IO_PAGE) > 0:
            manager.acquire(straggler, IO_PAGE)
            straggler.advance()
        cursor = manager._cursors["t"]
        assert cursor.groups[0].lag_of(straggler, 24) < 4

    def test_gate_is_inert_without_io_cost_or_bound(self):
        manager, leader, _ = self.make_drifted(lag=6, bound=4)
        assert manager.throttle_wait(leader, 0.0) == 0.0
        unbounded = make_manager()
        ticket = unbounded.attach("u", 8)
        assert unbounded.throttle_wait(ticket, IO_PAGE) == 0.0

    def test_violation_splits_into_a_group_window(self):
        manager, leader, straggler = self.make_drifted(
            lag=6, bound=4, windows=True)
        # The split already opened at the violation; the freed lead's
        # gate is clear (its own group has no laggards).
        assert manager.throttle_wait(leader, IO_PAGE) == 0.0
        manager.acquire(leader, IO_PAGE)
        leader.advance()
        cursor = manager._cursors["t"]
        assert len(cursor.groups) == 2
        assert straggler.group is cursor.groups[1]
        assert cursor.groups[1].head == straggler.page_index
        stats = manager.snapshot()[0]
        assert stats.splits == 1 and stats.groups == 2

    def test_window_drain_merges_back(self):
        manager, leader, straggler = self.make_drifted(
            lag=6, bound=4, windows=True)
        manager.acquire(leader, IO_PAGE)
        leader.advance()
        while not straggler.exhausted:
            manager.acquire(straggler, IO_PAGE)
            straggler.advance()
        manager.detach(straggler)
        cursor = manager._cursors["t"]
        assert len(cursor.groups) == 1
        assert manager.snapshot()[0].merges >= 1

    def test_window_span_couples_the_lead(self):
        manager, leader, straggler = self.make_drifted(
            n_pages=24, lag=6, bound=4, windows=True, capacity=8)
        span = manager.window_span(24)
        assert span == max(4, 8 - 0 - 2)
        # Race the leader: the gate must stop it `span` ahead, so the
        # free-running lead cannot evict the window's future pages.
        blocked = False
        for _ in range(span + 6):
            if manager.throttle_wait(leader, IO_PAGE) > 0:
                blocked = True
                break
            if leader.exhausted:
                break
            manager.acquire(leader, IO_PAGE)
            leader.advance()
        cursor = manager._cursors["t"]
        assert len(cursor.groups) == 2
        assert blocked
        gap = cursor.groups[0].advanced - cursor.groups[1].advanced
        assert gap <= span

    def test_io_conservation_includes_abandoned_cost(self):
        """stall + overlapped + abandoned + in-flight == reads * io,
        now also under eviction waste and group retirements."""
        for capacity, prefetch in ((2, 2), (4, 3), (64, 2)):
            manager = ScanShareManager(BufferPool(capacity),
                                       prefetch_depth=prefetch,
                                       drift_bound=4,
                                       group_windows=True)
            fast = manager.attach("t", 16)
            slow = manager.attach("t", 16)
            credit = 0.0
            while not fast.exhausted:
                manager.acquire(fast, IO_PAGE, cpu_credit=credit)
                credit = 15.0
                fast.advance()
                if fast.served % 5 == 0 and not slow.exhausted:
                    manager.acquire(slow, IO_PAGE)
                    slow.advance()
            manager.detach(fast)
            while not slow.exhausted:
                manager.acquire(slow, IO_PAGE)
                slow.advance()
            manager.detach(slow)
            stats = manager.snapshot()[0]
            cursor = manager._cursors["t"]
            total = (stats.io_stall_cost + stats.io_overlapped_cost
                     + stats.io_abandoned_cost + cursor.pending_cost())
            assert total == pytest.approx(
                stats.physical_reads * IO_PAGE
            ), (capacity, prefetch)

    def test_drift_split_gain_cost_rule(self):
        # Small pool, big table: replay is expensive -> throttle.
        manager, leader, straggler = self.make_drifted(
            n_pages=24, lag=6, bound=4, capacity=8)
        assert manager.drift_split_gain("t", IO_PAGE) < 0
        # Pool covers the table: splitting is free -> split.
        manager2, _, _ = self.make_drifted(
            n_pages=24, lag=6, bound=4, capacity=64)
        assert manager2.drift_split_gain("t", IO_PAGE) > 0
        assert manager2.drift_split_gain("missing", IO_PAGE) == 0.0

    def test_drift_share_projection_modes(self):
        pool = BufferPool(64)
        unbounded = ScanShareManager(BufferPool(64))
        throttled = ScanShareManager(BufferPool(64), drift_bound=4)
        windowed = ScanShareManager(pool, drift_bound=4,
                                    group_windows=True)
        m, skew = 6, 8.0
        assert unbounded.projected_drift_share("t", 24, m, skew) == (
            pytest.approx(1.0 + (m - 1) / skew))
        assert throttled.projected_drift_share("t", 24, m, skew) == m
        assert windowed.projected_drift_share("t", 24, m, skew) == m / 2
        # No skew: full sharing in every mode.
        for manager in (unbounded, throttled, windowed):
            assert manager.projected_drift_share("t", 24, m, 1.0) == m

    def test_attach_benefit_discounted_by_skew(self):
        manager = make_manager(capacity=64)
        plain = manager.projected_attach_benefit("t", 24, 6)
        skewed = manager.projected_attach_benefit("t", 24, 6,
                                                  cpu_skew=16.0)
        assert skewed > plain
        with pytest.raises(StorageError):
            manager.projected_attach_benefit("t", 24, 6, cpu_skew=0.5)


class TestStragglerEdgeCases:
    """The straggler scenarios the drift bound exists for."""

    def _skewed_engine(self, drift_bound, group_windows=False,
                       rows=480, page_rows=20, pool_frac=0.4,
                       io_page=40.0):
        # CPU-dominant calibration: the disk (io_page=40) is cheaper
        # than the straggler's per-page CPU, so a slow consumer
        # genuinely drifts instead of being paced by the disk.
        catalog = Catalog()
        schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
        table = catalog.create("t", schema)
        table.insert_many([(i, float(i % 7)) for i in range(rows)])
        pages = table.page_count(page_rows)
        manager = ScanShareManager(
            BufferPool(max(2, int(pages * pool_frac))),
            prefetch_depth=2, drift_bound=drift_bound,
            group_windows=group_windows,
        )
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim, costs=CostModel(io_page=io_page),
                        page_rows=page_rows, scan_manager=manager)
        return catalog, engine, sim, manager, pages

    def _run_convoy(self, engine, catalog, slow_factor):
        handles = []
        for i, factor in enumerate([1.0, 1.0, 1.0, slow_factor]):
            plan = scan_plan_with_factor(catalog, factor, f"s{i}")
            handles.append(engine.execute(plan, f"c{i}"))
        return handles

    def test_ten_x_consumer_is_bounded_by_throttle(self):
        """A 10x-per-page-CPU consumer: the governed convoy stays one
        physical pass; ungoverned it falls behind and re-reads."""
        reference = None
        reads = {}
        bound = 4
        for drift_bound in (None, bound):
            catalog, engine, sim, manager, pages = self._skewed_engine(
                drift_bound)
            handles = self._run_convoy(engine, catalog, 10.0)
            sim.run()
            rows = [sorted(h.rows) for h in handles]
            if reference is None:
                reference = rows[0]
            assert all(r == reference for r in rows)
            stats = manager.snapshot()[0]
            reads[drift_bound] = stats.physical_reads
            if drift_bound is not None:
                assert stats.max_lag <= bound
                assert stats.throttle_stall_cost > 0
            else:
                assert stats.max_lag > bound
        assert reads[bound] <= 1.5 * pages
        assert reads[None] > reads[bound]

    def test_straggler_detach_mid_drift_unblocks_the_head(self):
        manager = ScanShareManager(BufferPool(64), drift_bound=4)
        leader = manager.attach("t", 24)
        straggler = manager.attach("t", 24)
        for _ in range(6):
            manager.acquire(leader, IO_PAGE)
            leader.advance()
        assert manager.throttle_wait(leader, IO_PAGE) > 0
        manager.detach(straggler)
        assert manager.throttle_wait(leader, IO_PAGE) == 0.0
        # The freed convoy completes normally.
        while not leader.exhausted:
            manager.acquire(leader, IO_PAGE)
            leader.advance()
        manager.detach(leader)

    def test_straggler_detach_mid_drift_in_window_mode(self):
        """Abandoning a split-off straggler retires its window and
        the in-flight read cost is accounted, not lost."""
        manager = ScanShareManager(BufferPool(64), prefetch_depth=2,
                                   drift_bound=4, group_windows=True)
        leader = manager.attach("t", 24)
        straggler = manager.attach("t", 24)
        for _ in range(7):
            manager.acquire(leader, IO_PAGE, cpu_credit=10.0)
            leader.advance()
        cursor = manager._cursors["t"]
        assert len(cursor.groups) == 2
        # Let the window issue some prefetch of its own, then vanish.
        manager.acquire(straggler, IO_PAGE)
        straggler.advance()
        manager.detach(straggler)
        assert len(cursor.groups) == 1
        stats = manager.snapshot()[0]
        total = (stats.io_stall_cost + stats.io_overlapped_cost
                 + stats.io_abandoned_cost + cursor.pending_cost())
        assert total == pytest.approx(stats.physical_reads * IO_PAGE)

    def test_infinite_drift_bound_reproduces_fall_behind_bit_for_bit(self):
        """drift_bound=None and an effectively infinite bound walk the
        same schedule to identical stalls, stats, and row delivery."""

        def walk(manager):
            import random

            rng = random.Random(20260727)
            tickets = [manager.attach("t", 12) for _ in range(3)]
            stalls = []
            active = list(tickets)
            while active:
                ticket = rng.choice(active)
                # The slow consumer (index 2) moves rarely.
                if ticket is tickets[2] and rng.random() < 0.7:
                    continue
                wait = manager.throttle_wait(ticket, IO_PAGE)
                assert wait == 0.0
                stalls.append(manager.acquire(ticket, IO_PAGE,
                                              cpu_credit=12.0))
                ticket.advance()
                if ticket.exhausted:
                    manager.detach(ticket)
                    active.remove(ticket)
            return stalls, manager.snapshot()[0]

        baseline = ScanShareManager(BufferPool(8), prefetch_depth=2)
        infinite = ScanShareManager(BufferPool(8), prefetch_depth=2,
                                    drift_bound=10**9)
        stalls_a, stats_a = walk(baseline)
        stalls_b, stats_b = walk(infinite)
        assert stalls_a == stalls_b
        assert stats_a == stats_b


def scan_plan_with_factor(catalog, factor, op_id):
    """A fused scan whose predicate costs ``factor`` x the base."""
    from repro.engine import scan as scan_ctor
    from repro.engine.expressions import col, ge

    return scan_ctor(catalog, "t", columns=["k", "v"],
                     predicate=ge(col("k"), 0), op_id=op_id,
                     cost_factor=factor)


class TestEngineWiring:
    def test_engine_adopts_manager_pool(self):
        manager = make_manager()
        catalog = Catalog()
        engine = Engine(catalog, Simulator(2), scan_manager=manager)
        assert engine.pool is manager.pool

    def test_mismatched_pool_rejected(self):
        from repro.errors import EngineError

        manager = make_manager()
        with pytest.raises(EngineError, match="different BufferPool"):
            Engine(Catalog(), Simulator(2), scan_manager=manager,
                   buffer_pool=BufferPool(8))

    def test_resident_pages_counts_one_table(self):
        pool = BufferPool(16)
        for i in range(5):
            pool.access(("tbl", "a", i))
        for i in range(3):
            pool.access(("tbl", "b", i))
        assert pool.resident_pages("a") == 5
        assert pool.resident_pages("b") == 3
        assert pool.resident_pages("c") == 0
