"""Unit tests for the in-memory storage layer (repro.storage)."""

import datetime

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage import (
    Catalog,
    Column,
    DataType,
    Page,
    Schema,
    Table,
    date_to_ordinal,
    ordinal_to_date,
    paginate,
)


@pytest.fixture
def schema():
    return Schema([
        ("id", DataType.INT),
        ("price", DataType.FLOAT),
        ("name", DataType.STR),
        ("shipped", DataType.DATE),
    ])


@pytest.fixture
def table(schema):
    t = Table("items", schema)
    for i in range(10):
        t.insert((i, float(i) * 1.5, f"item{i}", 730000 + i))
    return t


class TestDataType:
    def test_int_accepts_int(self):
        assert DataType.INT.validate(5, "c") == 5

    def test_int_rejects_bool(self):
        with pytest.raises(SchemaError):
            DataType.INT.validate(True, "c")

    def test_int_rejects_float(self):
        with pytest.raises(SchemaError):
            DataType.INT.validate(5.0, "c")

    def test_float_coerces_int(self):
        value = DataType.FLOAT.validate(5, "c")
        assert value == 5.0
        assert isinstance(value, float)

    def test_str_rejects_number(self):
        with pytest.raises(SchemaError):
            DataType.STR.validate(5, "c")

    def test_date_accepts_date_object(self):
        d = datetime.date(1994, 1, 1)
        assert DataType.DATE.validate(d, "c") == d.toordinal()

    def test_date_accepts_ordinal(self):
        assert DataType.DATE.validate(728294, "c") == 728294

    def test_date_rejects_string(self):
        with pytest.raises(SchemaError):
            DataType.DATE.validate("1994-01-01", "c")

    def test_date_helpers_roundtrip(self):
        ordinal = date_to_ordinal(1994, 1, 1)
        assert ordinal_to_date(ordinal) == datetime.date(1994, 1, 1)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", DataType.INT), ("a", DataType.STR)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_invalid_column_name(self):
        with pytest.raises(SchemaError):
            Column("not a name", DataType.INT)

    def test_index_of(self, schema):
        assert schema.index_of("price") == 1
        with pytest.raises(SchemaError, match="unknown column"):
            schema.index_of("ghost")

    def test_dtype_of(self, schema):
        assert schema.dtype_of("shipped") is DataType.DATE

    def test_validate_row_length_mismatch(self, schema):
        with pytest.raises(SchemaError, match="expects 4"):
            schema.validate_row((1, 2.0, "x"))

    def test_project_preserves_order(self, schema):
        projected = schema.project(["name", "id"])
        assert projected.names() == ("name", "id")
        assert projected.dtype_of("id") is DataType.INT

    def test_equality(self, schema):
        other = Schema(list(schema.columns))
        assert schema == other

    def test_contains(self, schema):
        assert "id" in schema
        assert "ghost" not in schema


class TestTable:
    def test_insert_and_len(self, table):
        assert len(table) == 10

    def test_row_roundtrip(self, table):
        assert table.row(3) == (3, 4.5, "item3", 730003)

    def test_row_out_of_range(self, table):
        with pytest.raises(StorageError):
            table.row(10)

    def test_insert_validates(self, table):
        with pytest.raises(SchemaError):
            table.insert(("not-an-int", 1.0, "x", 730000))

    def test_column_access(self, table):
        assert list(table.column("id")) == list(range(10))

    def test_rows_iteration(self, table):
        rows = list(table.rows())
        assert len(rows) == 10
        assert rows[0] == (0, 0.0, "item0", 730000)

    def test_scan_pages_all_columns(self, table):
        pages = list(table.scan_pages(page_rows=4))
        assert [len(p) for p in pages] == [4, 4, 2]
        assert pages[0].rows[0] == (0, 0.0, "item0", 730000)

    def test_scan_pages_projection(self, table):
        pages = list(table.scan_pages(columns=["name", "id"], page_rows=100))
        assert pages[0].rows[0] == ("item0", 0)

    def test_scan_pages_invalid_page_rows(self, table):
        with pytest.raises(StorageError):
            list(table.scan_pages(page_rows=0))

    def test_scan_empty_table(self, schema):
        t = Table("empty", schema)
        assert list(t.scan_pages()) == []

    def test_projected_schema(self, table):
        assert table.projected_schema(["id"]).names() == ("id",)
        assert table.projected_schema(None) is table.schema

    def test_empty_name_rejected(self, schema):
        with pytest.raises(StorageError):
            Table("", schema)

    def test_insert_many(self, schema):
        t = Table("bulk", schema)
        t.insert_many([(1, 1.0, "a", 730000), (2, 2.0, "b", 730001)])
        assert len(t) == 2


class TestPage:
    def test_empty_page_rejected(self):
        with pytest.raises(StorageError):
            Page([])

    def test_iteration(self):
        p = Page([(1,), (2,)])
        assert list(p) == [(1,), (2,)]
        assert len(p) == 2

    def test_paginate_batches(self):
        pages = list(paginate(((i,) for i in range(7)), page_rows=3))
        assert [len(p) for p in pages] == [3, 3, 1]

    def test_paginate_invalid_size(self):
        with pytest.raises(StorageError):
            list(paginate([(1,)], page_rows=0))

    def test_paginate_empty_stream(self):
        assert list(paginate(iter(()))) == []


class TestCatalog:
    def test_create_and_lookup(self, schema):
        cat = Catalog()
        t = cat.create("items", schema)
        assert cat.table("items") is t
        assert "items" in cat
        assert len(cat) == 1

    def test_duplicate_create_rejected(self, schema):
        cat = Catalog()
        cat.create("items", schema)
        with pytest.raises(StorageError):
            cat.create("items", schema)

    def test_add_existing_table(self, schema):
        cat = Catalog()
        t = Table("items", schema)
        cat.add(t)
        with pytest.raises(StorageError):
            cat.add(t)

    def test_unknown_table(self):
        with pytest.raises(StorageError, match="unknown table"):
            Catalog().table("ghost")

    def test_total_rows(self, schema, table):
        cat = Catalog()
        cat.add(table)
        assert cat.total_rows() == 10
