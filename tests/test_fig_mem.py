"""The memory-governance experiment meets its acceptance criteria."""

import pytest

from repro.experiments import fig_mem


@pytest.fixture(scope="module")
def result():
    # The CLI's --quick configuration: smaller sweep, 8 tenants on 4
    # processors (the m/n ratio that makes the flip visible).
    return fig_mem.run(work_mems=(16, 4), tenants=8, processors=4)


class TestWorkMemSweep:
    def test_degrades_gracefully(self, result):
        assert result.answers_agree()
        assert result.spill_is_monotone()

    def test_tight_budget_spills(self, result):
        tight = min(result.sweep, key=lambda p: p.work_mem)
        ample = max(result.sweep, key=lambda p: p.work_mem)
        assert tight.spill_pages_written > ample.spill_pages_written
        assert tight.makespan > ample.makespan

    def test_high_water_respects_budget_without_overcommit(self, result):
        for point in result.sweep:
            if point.overcommits == 0:
                assert point.mem_high_water <= point.work_mem


class TestSharingFlip:
    def test_decision_flips_on_cache_temperature(self, result):
        assert result.decision_flipped()

    def test_model_matches_measurement(self, result):
        """The predicted Z and the measured unshared/shared ratio land
        on the same side of 1 in both configurations."""
        for config in result.flips:
            assert (config.decision.benefit > 1.0) == (
                config.measured_benefit > 1.0
            )

    def test_cold_counters_show_io_amortization(self, result):
        cold = result.flip("cold")
        assert cold.unshared_resources.buffer.misses > (
            cold.shared_resources.buffer.misses
        )

    def test_warm_runs_all_hit(self, result):
        warm = result.flip("warm")
        assert warm.unshared_resources.buffer.misses == 0
        assert warm.shared_resources.buffer.misses == 0

    def test_render_reports_counters(self, result):
        text = result.render()
        assert "spill" in text
        assert "SHARE" in text
        assert "decision flipped cold->warm: True" in text
