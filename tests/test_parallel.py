"""The exchange subsystem: fragments, regions, and answer parity.

Three layers of guarantee, bottom up: ``partition_ranges`` covers the
table exactly; ``find_region`` only offers strategies whose output is
safe under the plan's ancestors (order-sensitive and float-folding
ancestors fence off the join strategy); and end to end, a parallel
execution reproduces the serial answer at every ``dop`` — bit for bit
where the strategy promises order, as a set where it promises only
membership. Routing tests pin the session's dop plumbing and the
audit trail's ``parallel`` outcome.
"""

import pytest

from repro.db import Database, QueryBuilder, RuntimeConfig
from repro.engine import (
    AggSpec,
    Engine,
    aggregate,
    filter_,
    hash_join,
    limit,
    scan,
    sort,
)
from repro.engine.expressions import col, gt, lit
from repro.engine.parallel import find_region, partition_ranges
from repro.errors import EngineError, PlanError
from repro.sim.simulator import Simulator
from repro.storage import Catalog, DataType, Schema

ROWS = 600
GROUPS = 23


def _catalog():
    catalog = Catalog()
    schema = Schema(
        [("g", DataType.INT), ("k", DataType.INT), ("v", DataType.FLOAT)]
    )
    rows = [
        (i % GROUPS, i, ((i * 389) % ROWS) / ROWS) for i in range(ROWS)
    ]
    catalog.create("t", schema).insert_many(rows)
    dim = Schema([("dg", DataType.INT), ("w", DataType.FLOAT)])
    catalog.create("d", dim).insert_many(
        [(g, g / GROUPS) for g in range(GROUPS)]
    )
    return catalog


CATALOG = _catalog()


def _run(plan, dop=1, processors=4):
    sim = Simulator(processors=processors)
    engine = Engine(CATALOG, sim)
    handle = engine.execute(plan, f"q@dop{dop}", dop=dop)
    sim.run()
    return handle.rows


def _scan(columns=("g", "k", "v"), predicate=None):
    return scan(CATALOG, "t", columns=list(columns), predicate=predicate)


def _agg_plan():
    return aggregate(
        _scan(),
        ("g",),
        [AggSpec("sum", "total", col("v")), AggSpec("count", "n", None)],
    )


def _join_plan():
    return hash_join(
        scan(CATALOG, "d", columns=["dg", "w"]),
        _scan(),
        build_key="dg",
        probe_key="g",
    )


class TestPartitionRanges:
    @pytest.mark.parametrize("n_pages,dop", [
        (1, 1), (7, 2), (8, 4), (9, 4), (100, 8), (5, 16),
    ])
    def test_ranges_tile_the_table(self, n_pages, dop):
        ranges = partition_ranges(n_pages, dop)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n_pages
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, no gap, no overlap

    @pytest.mark.parametrize("n_pages,dop", [(9, 4), (100, 8), (17, 3)])
    def test_lengths_differ_by_at_most_one(self, n_pages, dop):
        lengths = [hi - lo for lo, hi in partition_ranges(n_pages, dop)]
        assert max(lengths) - min(lengths) <= 1

    def test_small_table_caps_fragment_count(self):
        ranges = partition_ranges(3, 16)
        assert len(ranges) == 3
        assert all(hi > lo for lo, hi in ranges)  # never an empty range


class TestFindRegion:
    def test_bare_scan_is_a_scan_region(self):
        plan = _scan()
        node, strategy = find_region(plan)
        assert strategy == "scan"
        assert node.op_id == plan.op_id

    def test_streaming_chain_reaches_the_scan(self):
        base = _scan()
        plan = filter_(base, gt(col("v"), lit(0.5)))
        node, strategy = find_region(plan)
        assert (node.op_id, strategy) == (base.op_id, "scan")

    def test_grouped_aggregate_is_partition_wise(self):
        plan = _agg_plan()
        node, strategy = find_region(plan)
        assert (node.op_id, strategy) == (plan.op_id, "aggregate")

    def test_ungrouped_aggregate_parallelizes_its_scan_only(self):
        plan = aggregate(_scan(), (), [AggSpec("sum", "s", col("v"))])
        node, strategy = find_region(plan)
        # Global fold order must match serial: only the (order-exact)
        # scan below is fragmented.
        assert strategy == "scan"
        assert node.kind == "scan"

    def test_join_of_scan_chains_is_partition_wise(self):
        plan = _join_plan()
        node, strategy = find_region(plan)
        assert (node.op_id, strategy) == (plan.op_id, "hash_join")

    def test_limit_fences_the_join_strategy(self):
        assert find_region(limit(_join_plan(), 10)) is None

    def test_sort_fences_the_join_strategy(self):
        # A stable sort's tie order exposes its input order; the join
        # gather's order differs from serial, so no region is offered.
        assert find_region(sort(_join_plan(), [("g", True)])) is None

    def test_aggregate_above_join_fences_the_join_strategy(self):
        plan = aggregate(
            _join_plan(), ("g",), [AggSpec("sum", "s", col("v"))]
        )
        assert find_region(plan) is None

    def test_sort_above_scan_still_parallelizes_the_scan(self):
        base = _scan()
        node, strategy = find_region(sort(base, [("k", True)]))
        assert (node.op_id, strategy) == (base.op_id, "scan")


class TestAnswerParity:
    """Serial output is the contract at every dop."""

    @pytest.mark.parametrize("dop", [2, 3, 4, 8])
    def test_fragmented_scan_preserves_exact_order(self, dop):
        plan = _scan()
        assert _run(plan, dop=dop) == _run(plan)

    @pytest.mark.parametrize("dop", [2, 4])
    def test_fused_scan_with_predicate(self, dop):
        plan = _scan(predicate=gt(col("v"), lit(0.4)))
        assert _run(plan, dop=dop) == _run(plan)

    @pytest.mark.parametrize("dop", [2, 3, 4, 8])
    def test_partition_aggregate_is_bit_identical(self, dop):
        # Float accumulation order is preserved per group and the
        # ordered merge restores the global group order: == on floats.
        plan = _agg_plan()
        assert _run(plan, dop=dop) == _run(plan)

    @pytest.mark.parametrize("dop", [2, 4, 8])
    def test_partition_join_preserves_the_row_set(self, dop):
        serial = _run(_join_plan())
        parallel = _run(_join_plan(), dop=dop)
        assert sorted(parallel) == sorted(serial)

    def test_partition_join_order_is_deterministic(self):
        assert _run(_join_plan(), dop=4) == _run(_join_plan(), dop=4)

    def test_dop_beyond_page_count_still_correct(self):
        plan = _agg_plan()
        assert _run(plan, dop=64) == _run(plan)

    def test_sort_over_join_falls_back_and_keeps_tie_order(self):
        # Region fenced (sort ancestor): serial fallback, ties intact.
        plan = sort(_join_plan(), [("g", True)])
        assert _run(plan, dop=4) == _run(plan)

    def test_no_region_plan_falls_back_to_serial(self):
        plan = limit(_join_plan(), 25)
        assert _run(plan, dop=4) == _run(plan)


class TestValidation:
    def test_engine_rejects_bad_dop(self):
        sim = Simulator(processors=2)
        engine = Engine(CATALOG, sim)
        with pytest.raises(EngineError):
            engine.execute(_scan(), "bad", dop=0)

    def test_config_rejects_bad_dop(self):
        with pytest.raises(EngineError):
            RuntimeConfig(dop=0)

    def test_builder_rejects_bad_dop(self):
        with pytest.raises(PlanError):
            QueryBuilder(CATALOG, "t").parallel(0)


class TestSessionRouting:
    def _query(self, dop=None):
        builder = (
            QueryBuilder(CATALOG, "t")
            .agg(AggSpec("sum", "total", col("v")), by=("g",))
            .named("routed")
        )
        if dop is not None:
            builder = builder.parallel(dop)
        return builder.build()

    def test_forced_solo_with_dop_audits_parallel(self):
        session = Database.open(CATALOG, RuntimeConfig(processors=8))
        serial = session.run(self._query(), share=False).rows
        session = Database.open(CATALOG, RuntimeConfig(processors=8))
        result = session.run(self._query(dop=4), share=False)
        assert result.rows == serial
        assert [r.outcome for r in session.audit_log().records] == ["parallel"]

    def test_session_default_dop_routes_through_projection(self):
        config = RuntimeConfig(processors=8, dop=4)
        session = Database.open(CATALOG, config)
        for i in range(3):
            session.submit(self._query(), label=f"routed#{i}")
        results = session.run_all()
        outcomes = {r.outcome for r in session.audit_log().records}
        # The four-way projection decided (whatever it chose, it is
        # one of the modes) and every member got the serial answer.
        assert outcomes <= {"solo", "share", "parallel", "both", "attach"}
        serial = Database.open(CATALOG, RuntimeConfig(processors=8)).run(
            self._query(), share=False
        ).rows
        assert all(r.rows == serial for r in results)

    def test_parallel_one_pins_query_serial(self):
        config = RuntimeConfig(processors=8, dop=4)
        session = Database.open(CATALOG, config)
        result = session.run(self._query(dop=1), share=False)
        assert [r.outcome for r in session.audit_log().records] == ["solo"]
        assert result.rows

    def test_fragments_attach_to_cooperative_scans(self):
        config = RuntimeConfig(
            processors=4, pool_pages=64, prefetch_depth=2
        )
        serial = Database.open(CATALOG, config).run(
            self._query(), share=False
        ).rows
        session = Database.open(CATALOG, config)
        result = session.run(self._query(dop=4), share=False)
        assert result.rows == serial
        snapshot = session.metrics().snapshot()
        assert snapshot["scan.t.attaches"] >= 4
