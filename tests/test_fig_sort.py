"""The external-sort experiment meets its acceptance criteria."""

import pytest

from repro.experiments import fig_sort


@pytest.fixture(scope="module")
def result():
    # The CLI's --quick configuration.
    return fig_sort.run(work_mems=(128, 8, 2), prefetch_depths=(0, 2))


class TestWorkMemSweep:
    def test_answers_identical_at_every_budget(self, result):
        assert result.answers_identical()

    def test_degradation_is_monotone(self, result):
        assert result.degradation_monotone()

    def test_spill_growth_is_monotone(self, result):
        assert result.spill_monotone()

    def test_fits_in_memory_point_never_spills(self, result):
        roomy = max(result.sweep, key=lambda p: p.work_mem)
        assert roomy.sort_runs == 0
        assert roomy.spilled_pages == 0

    def test_merge_deepens_under_pressure(self, result):
        tight = min(result.sweep, key=lambda p: p.work_mem)
        assert tight.sort_runs > 1
        assert tight.merge_passes > 1
        assert tight.spilled_pages > 0


class TestSpillPrefetch:
    def test_prefetch_strictly_faster_read_back(self, result):
        assert result.prefetch_strictly_helps()

    def test_overlap_is_accounted(self, result):
        base = next(p for p in result.prefetch if p.depth == 0)
        deep = next(p for p in result.prefetch if p.depth > 0)
        assert base.read_overlapped == 0
        assert base.prefetch_issued == 0
        assert deep.read_overlapped > 0
        assert deep.prefetch_issued > 0


class TestRender:
    def test_render_reports_criteria(self, result):
        text = result.render()
        assert "answers identical everywhere: True" in text
        assert "degradation monotone: True" in text
        assert "spill growth monotone: True" in text
        assert "strictly faster read-back: True" in text
