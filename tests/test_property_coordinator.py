"""Property-based tests for the sharing coordinator.

Whatever the policy and arrival pattern, the coordinator must never
lose a query, never corrupt a result, and account for every submission
exactly once.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Engine, execute_reference
from repro.policies import AlwaysShare, NeverShare, SharingCoordinator
from repro.policies.base import SharingPolicy
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build

_CATALOG = generate(scale_factor=0.0003, seed=77)
_QUERIES = {name: build(name, _CATALOG) for name in ("q6", "q4")}
_REFERENCE = {
    name: execute_reference(q.plan, _CATALOG) for name, q in _QUERIES.items()
}


class ArbitraryPolicy(SharingPolicy):
    """A deterministic but arbitrary share/don't-share rule."""

    name = "arbitrary"

    def __init__(self, bits):
        self.bits = bits
        self._i = 0

    def should_share(self, query_name, prospective_size, processors):
        if prospective_size < 2:
            return False
        decision = self.bits[self._i % len(self.bits)]
        self._i += 1
        return decision


submission_lists = st.lists(
    st.tuples(st.sampled_from(["q6", "q4"]),
              st.floats(min_value=0.0, max_value=30_000.0)),
    min_size=1, max_size=12,
)


@given(
    submission_lists,
    st.lists(st.booleans(), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=25, deadline=None)
def test_no_query_lost_and_all_results_correct(submissions, bits, processors):
    sim = Simulator(processors=processors)
    engine = Engine(_CATALOG, sim)
    coordinator = SharingCoordinator(engine, ArbitraryPolicy(bits))
    done = []

    # Stagger submissions at arbitrary times via a driver task.
    ordered = sorted(submissions, key=lambda s: s[1])

    from repro.sim.events import Sleep

    def driver():
        t = 0.0
        for i, (name, at) in enumerate(ordered):
            if at > t:
                yield Sleep(at - t)
                t = at
            coordinator.submit(
                _QUERIES[name], f"{name}#{i}",
                on_complete=lambda h: done.append(h),
            )

    sim.spawn(driver(), name="driver")
    sim.run()

    assert len(done) == len(submissions)
    for handle in done:
        name = handle.label.split("#")[0]
        assert handle.rows == _REFERENCE[name]
    total = coordinator.shared_submissions + coordinator.solo_submissions
    assert total == len(submissions)
    assert coordinator.pending_count() == 0


@given(st.integers(min_value=1, max_value=10),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=20, deadline=None)
def test_group_sizes_partition_submissions(n_submissions, processors):
    sim = Simulator(processors=processors)
    engine = Engine(_CATALOG, sim)
    coordinator = SharingCoordinator(engine, AlwaysShare())
    for i in range(n_submissions):
        coordinator.submit(_QUERIES["q6"], f"q6#{i}")
    sim.run()
    assert sum(coordinator.launched_group_sizes) == n_submissions


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=1, max_value=4))
@settings(max_examples=15, deadline=None)
def test_max_group_size_respected(n_submissions, cap):
    sim = Simulator(processors=4)
    engine = Engine(_CATALOG, sim)
    coordinator = SharingCoordinator(engine, AlwaysShare(),
                                     max_group_size=cap)
    for i in range(n_submissions):
        coordinator.submit(_QUERIES["q6"], f"q6#{i}")
    sim.run()
    assert max(coordinator.launched_group_sizes) <= cap
    assert sum(coordinator.launched_group_sizes) == n_submissions


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=15, deadline=None)
def test_never_share_launches_exactly_n_singletons(n_submissions):
    sim = Simulator(processors=4)
    engine = Engine(_CATALOG, sim)
    coordinator = SharingCoordinator(engine, NeverShare())
    for i in range(n_submissions):
        coordinator.submit(_QUERIES["q4"], f"q4#{i}")
    sim.run()
    assert coordinator.launched_group_sizes == [1] * n_submissions
