"""Property-based tests for the simulator's structural invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CLOSED, Close, Compute, Get, Put, Simulator

costs = st.floats(min_value=0.01, max_value=10.0, allow_nan=False,
                  allow_infinity=False)


@given(
    st.lists(costs, min_size=1, max_size=20),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=50, deadline=None)
def test_makespan_bounds(task_costs, processors):
    """Makespan is at least the critical path / perfect-parallel bound
    and at most the serial sum."""
    sim = Simulator(processors=processors)

    def body(c):
        yield Compute(c)

    for i, c in enumerate(task_costs):
        sim.spawn(body(c), name=f"t{i}")
    sim.run()
    total = sum(task_costs)
    lower = max(max(task_costs), total / processors)
    assert sim.now >= lower - 1e-9
    assert sim.now <= total + 1e-9


@given(
    st.lists(costs, min_size=1, max_size=15),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=5),
)
@settings(max_examples=50, deadline=None)
def test_no_tuples_lost_in_pipeline(item_costs, processors, capacity):
    """Every produced item is consumed exactly once, in order."""
    sim = Simulator(processors=processors)
    q = sim.queue("q", capacity=capacity)
    received = []

    def producer():
        for i, c in enumerate(item_costs):
            yield Compute(c)
            yield Put(q, i)
        yield Close(q)

    def consumer():
        while True:
            item = yield Get(q)
            if item is CLOSED:
                return
            yield Compute(0.1)
            received.append(item)

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="c")
    sim.run()
    assert received == list(range(len(item_costs)))
    assert q.total_enqueued == q.total_dequeued == len(item_costs)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=50, deadline=None)
def test_multiplexed_consumers_each_get_every_item(n_consumers, n_items,
                                                   processors):
    """A producer multiplexing to per-consumer queues (the pivot
    pattern) delivers the full stream to every consumer."""
    sim = Simulator(processors=processors)
    queues = [sim.queue(f"q{i}", capacity=2) for i in range(n_consumers)]
    received = {i: [] for i in range(n_consumers)}

    def producer():
        for j in range(n_items):
            yield Compute(1.0)
            for q in queues:
                yield Compute(0.2)  # per-consumer output cost s
                yield Put(q, j)
        for q in queues:
            yield Close(q)

    def consumer(i):
        while True:
            item = yield Get(queues[i])
            if item is CLOSED:
                return
            yield Compute(0.5)
            received[i].append(item)

    sim.spawn(producer(), name="p")
    for i in range(n_consumers):
        sim.spawn(consumer(i), name=f"c{i}")
    sim.run()
    for i in range(n_consumers):
        assert received[i] == list(range(n_items))


@given(
    st.lists(costs, min_size=2, max_size=10),
    st.integers(min_value=2, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_utilization_never_exceeds_one(task_costs, processors):
    sim = Simulator(processors=processors)

    def body(c):
        for _ in range(3):
            yield Compute(c / 3)

    for i, c in enumerate(task_costs):
        sim.spawn(body(c), name=f"t{i}")
    sim.run()
    assert 0.0 < sim.utilization() <= 1.0 + 1e-9


@given(st.integers(min_value=1, max_value=32))
@settings(max_examples=20, deadline=None)
def test_time_monotonic_across_until_slices(processors):
    """Slicing a run into until= windows never moves time backwards and
    produces the same final makespan as a single run."""
    def build():
        sim = Simulator(processors=processors)

        def body(i):
            for _ in range(4):
                yield Compute(1.0 + i * 0.3)

        for i in range(6):
            sim.spawn(body(i), name=f"t{i}")
        return sim

    sliced = build()
    checkpoints = []
    t = 0.0
    for _ in range(50):
        t += 1.5
        sliced.run(until=t)
        checkpoints.append(sliced.now)
    sliced.run()
    assert checkpoints == sorted(checkpoints)

    single = build()
    single.run()
    assert abs(single.now - sliced.now) < 1e-9
