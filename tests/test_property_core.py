"""Property-based tests (hypothesis) for the analytical model.

These pin the model's structural invariants over randomized plans:
rates are positive and monotone in processors, sharing with zero
output cost on one processor never loses, decomposition conserves
work, and estimation is an exact inverse of the cost model on
noise-free data.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import metrics
from repro.core.estimation import Observation, estimate_operator
from repro.core.model import shared_metrics, shared_rate, sharing_benefit, unshared_rate
from repro.core.phases import decompose
from repro.core.spec import QuerySpec, chain, op

costs = st.floats(min_value=0.01, max_value=100.0, allow_nan=False,
                  allow_infinity=False)
small_costs = st.floats(min_value=0.0, max_value=20.0, allow_nan=False,
                        allow_infinity=False)
client_counts = st.integers(min_value=1, max_value=48)
cpu_counts = st.integers(min_value=1, max_value=64)


@st.composite
def linear_queries(draw, min_ops=2, max_ops=6):
    """A random linear pipeline with a designated middle pivot."""
    n_ops = draw(st.integers(min_value=min_ops, max_value=max_ops))
    nodes = [op(f"op{i}", draw(costs), draw(small_costs)) for i in range(n_ops)]
    pivot_index = draw(st.integers(min_value=0, max_value=n_ops - 1))
    query = QuerySpec(chain(*nodes), label="rand")
    return query, f"op{pivot_index}"


def make_group(query, m):
    return [query.relabeled(f"rand#{i}") for i in range(m)]


@given(linear_queries(), client_counts, cpu_counts)
@settings(max_examples=60, deadline=None)
def test_rates_positive_and_finite(query_pivot, m, n):
    query, pivot = query_pivot
    group = make_group(query, m)
    for rate in (unshared_rate(group, n), shared_rate(group, pivot, n)):
        assert rate > 0
        assert math.isfinite(rate)


@given(linear_queries(), client_counts)
@settings(max_examples=40, deadline=None)
def test_unshared_rate_monotone_in_processors(query_pivot, m):
    query, _ = query_pivot
    group = make_group(query, m)
    rates = [unshared_rate(group, n) for n in (1, 2, 4, 8, 16, 32)]
    for lo, hi in zip(rates, rates[1:]):
        assert hi >= lo - 1e-12


@given(linear_queries(), client_counts)
@settings(max_examples=40, deadline=None)
def test_shared_rate_monotone_in_processors(query_pivot, m):
    query, pivot = query_pivot
    group = make_group(query, m)
    rates = [shared_rate(group, pivot, n) for n in (1, 2, 4, 8, 16, 32)]
    for lo, hi in zip(rates, rates[1:]):
        assert hi >= lo - 1e-12


@given(linear_queries(), client_counts, cpu_counts)
@settings(max_examples=60, deadline=None)
def test_benefit_is_ratio(query_pivot, m, n):
    query, pivot = query_pivot
    group = make_group(query, m)
    z = sharing_benefit(group, pivot, n)
    assert z > 0
    expected = shared_rate(group, pivot, n) / unshared_rate(group, n)
    assert math.isclose(z, expected, rel_tol=1e-9)


@given(
    st.integers(min_value=2, max_value=6).flatmap(
        lambda n_ops: st.tuples(
            st.lists(costs, min_size=n_ops, max_size=n_ops),
            st.integers(min_value=0, max_value=n_ops - 1),
        )
    ),
    client_counts,
)
@settings(max_examples=60, deadline=None)
def test_zero_output_cost_single_cpu_sharing_never_loses(params, m):
    """With s=0 everywhere, sharing only removes work; on one processor
    (no parallelism to lose) it can never hurt."""
    works, pivot_index = params
    nodes = [op(f"op{i}", w, 0.0) for i, w in enumerate(works)]
    query = QuerySpec(chain(*nodes), label="zs")
    group = make_group(query, m)
    assert sharing_benefit(group, f"op{pivot_index}", 1) >= 1.0 - 1e-9


@given(linear_queries(), client_counts)
@settings(max_examples=40, deadline=None)
def test_shared_total_work_not_more_than_unshared(query_pivot, m):
    """Sharing must never *add* work to the system: u'_shared <= m * u'
    whenever per-consumer output cost equals the unshared output cost
    (the multiplexed copies replace per-query outputs)."""
    query, pivot = query_pivot
    group = make_group(query, m)
    shared = shared_metrics(group, pivot)
    unshared_total = sum(metrics.total_work(q) for q in group)
    assert shared.total_work <= unshared_total + 1e-9


@given(linear_queries())
@settings(max_examples=40, deadline=None)
def test_shared_metrics_match_unshared_for_single_query(query_pivot):
    """A 'group' of one query performs the same total work shared or
    not (nothing is eliminated, one consumer to feed)."""
    query, pivot = query_pivot
    shared = shared_metrics([query], pivot)
    assert math.isclose(
        shared.total_work, metrics.total_work(query), rel_tol=1e-9
    )
    assert math.isclose(shared.p_max, metrics.p_max(query), rel_tol=1e-9)


@given(
    costs,
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    costs,
    small_costs,
    costs,
)
@settings(max_examples=60, deadline=None)
def test_decompose_conserves_work(scan_w, run_w, merge_w, replay_w, top_w):
    """Every cost component of a sort plan appears in exactly one phase."""
    root = chain(
        op("scan", scan_w),
        op("sort", run_w, 0.5, blocking=True, internal_work=merge_w,
           emit_work=replay_w),
        op("top", top_w),
    )
    phases = decompose(QuerySpec(root, label="pq"))
    total = sum(metrics.total_work(p.query) for p in phases)
    expected = scan_w + run_w + merge_w + (replay_w + 0.5) + top_w
    assert math.isclose(total, expected, rel_tol=1e-9)


@given(
    st.floats(min_value=0.0, max_value=50.0),
    st.floats(min_value=0.0, max_value=50.0),
    st.lists(st.integers(min_value=1, max_value=32), min_size=2, max_size=8,
             unique=True),
)
@settings(max_examples=60, deadline=None)
def test_estimation_inverts_cost_model(w, s, consumer_counts):
    """On noise-free synthetic data the least-squares fit is exact."""
    obs = [
        Observation(busy_time=(w + s * m) * 100.0, units=100.0, consumers=m)
        for m in consumer_counts
    ]
    est = estimate_operator(obs)
    assert math.isclose(est.work, w, rel_tol=1e-6, abs_tol=1e-6)
    assert math.isclose(est.output_cost, s, rel_tol=1e-6, abs_tol=1e-6)
