"""Unit tests for the TPC-H generator (repro.tpch)."""

import datetime

import pytest

from repro.errors import StorageError
from repro.tpch.generator import END_DATE, START_DATE, GeneratorConfig, generate
from repro.tpch.rng import stream_for
from repro.tpch.text import comment, matches_special_requests


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.002, seed=42)


class TestGeneratorConfig:
    def test_cardinalities_scale(self):
        small = GeneratorConfig(scale_factor=0.01)
        large = GeneratorConfig(scale_factor=0.1)
        assert large.customers == 10 * small.customers

    def test_minimum_floor(self):
        tiny = GeneratorConfig(scale_factor=1e-6)
        assert tiny.customers >= 50

    def test_invalid_scale_factor(self):
        with pytest.raises(StorageError):
            GeneratorConfig(scale_factor=0.0)


class TestCatalogShape:
    def test_all_eight_tables_present(self, catalog):
        assert set(catalog.names()) == {
            "region", "nation", "supplier", "customer", "part",
            "partsupp", "orders", "lineitem",
        }

    def test_region_and_nation_fixed(self, catalog):
        assert len(catalog.table("region")) == 5
        assert len(catalog.table("nation")) == 25

    def test_relative_cardinalities(self, catalog):
        customers = len(catalog.table("customer"))
        orders = len(catalog.table("orders"))
        lineitems = len(catalog.table("lineitem"))
        assert orders == 10 * customers
        # 1-7 lineitems per order, so on average ~4x orders.
        assert 2 * orders < lineitems < 8 * orders


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(scale_factor=0.001, seed=7)
        b = generate(scale_factor=0.001, seed=7)
        for name in a.names():
            assert list(a.table(name).rows()) == list(b.table(name).rows())

    def test_different_seed_different_data(self):
        a = generate(scale_factor=0.001, seed=7)
        b = generate(scale_factor=0.001, seed=8)
        assert list(a.table("orders").rows()) != list(b.table("orders").rows())


class TestOrderDistributions:
    def test_order_dates_in_range(self, catalog):
        dates = catalog.table("orders").column("o_orderdate")
        assert min(dates) >= START_DATE
        assert max(dates) <= END_DATE - 151

    def test_one_third_of_customers_have_no_orders(self, catalog):
        customers = set(catalog.table("customer").column("c_custkey"))
        with_orders = set(catalog.table("orders").column("o_custkey"))
        no_orders = customers - with_orders
        fraction = len(no_orders) / len(customers)
        assert 0.25 < fraction < 0.42

    def test_priorities_roughly_uniform(self, catalog):
        priorities = catalog.table("orders").column("o_orderpriority")
        counts = {}
        for p in priorities:
            counts[p] = counts.get(p, 0) + 1
        assert len(counts) == 5
        expected = len(priorities) / 5
        for count in counts.values():
            assert 0.6 * expected < count < 1.4 * expected

    def test_special_requests_fraction(self, catalog):
        comments = catalog.table("orders").column("o_comment")
        hits = sum(1 for c in comments if matches_special_requests(c))
        # Planted at 2% plus a small organic rate from the vocabulary.
        assert 0.005 < hits / len(comments) < 0.10

    def test_order_keys_strictly_increasing(self, catalog):
        keys = list(catalog.table("orders").column("o_orderkey"))
        assert all(a < b for a, b in zip(keys, keys[1:]))


class TestLineitemDistributions:
    def test_ship_after_order_date(self, catalog):
        lineitem = catalog.table("lineitem")
        orders = catalog.table("orders")
        order_date = dict(
            zip(orders.column("o_orderkey"), orders.column("o_orderdate"))
        )
        for okey, ship in zip(
            lineitem.column("l_orderkey"), lineitem.column("l_shipdate")
        ):
            assert ship > order_date[okey]

    def test_receipt_after_ship(self, catalog):
        lineitem = catalog.table("lineitem")
        for ship, receipt in zip(
            lineitem.column("l_shipdate"), lineitem.column("l_receiptdate")
        ):
            assert receipt > ship

    def test_commit_before_receipt_is_common_but_not_universal(self, catalog):
        # Q4 depends on a healthy mix of both outcomes.
        lineitem = catalog.table("lineitem")
        flags = [
            commit < receipt
            for commit, receipt in zip(
                lineitem.column("l_commitdate"), lineitem.column("l_receiptdate")
            )
        ]
        fraction = sum(flags) / len(flags)
        assert 0.2 < fraction < 0.8

    def test_quantity_range(self, catalog):
        quantities = catalog.table("lineitem").column("l_quantity")
        assert min(quantities) >= 1.0
        assert max(quantities) <= 50.0

    def test_discount_range(self, catalog):
        discounts = catalog.table("lineitem").column("l_discount")
        assert min(discounts) >= 0.0
        assert max(discounts) <= 0.10 + 1e-9

    def test_q6_predicate_selects_nontrivial_fraction(self, catalog):
        """The Q6 window must select some but not all lineitems."""
        lineitem = catalog.table("lineitem")
        lo = datetime.date(1994, 1, 1).toordinal()
        hi = datetime.date(1995, 1, 1).toordinal()
        hits = 0
        for ship, disc, qty in zip(
            lineitem.column("l_shipdate"),
            lineitem.column("l_discount"),
            lineitem.column("l_quantity"),
        ):
            if lo <= ship < hi and 0.05 <= disc <= 0.07 and qty < 24:
                hits += 1
        assert 0 < hits < len(lineitem)

    def test_linestatus_values(self, catalog):
        statuses = set(catalog.table("lineitem").column("l_linestatus"))
        assert statuses <= {"O", "F"}
        returnflags = set(catalog.table("lineitem").column("l_returnflag"))
        assert returnflags <= {"A", "N", "R"}


class TestTextGeneration:
    def test_comment_word_count(self):
        stream = stream_for(1, "text")
        for _ in range(50):
            text = comment(stream, min_words=4, max_words=10)
            assert 4 <= len(text.split()) <= 12

    def test_planted_special_requests_always_match(self):
        stream = stream_for(1, "text")
        for _ in range(100):
            assert matches_special_requests(comment(stream, plant_special=True))

    def test_matcher_requires_order(self):
        assert matches_special_requests("x special y requests z")
        assert not matches_special_requests("requests then special")
        assert not matches_special_requests("nothing here")
        assert matches_special_requests("specialrequests")
