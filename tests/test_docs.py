"""The docs cannot rot: headings, links, and figure names are checked.

* ``docs/experiments.md`` must document exactly the experiments the
  CLI registers — one ``##`` heading per registry key;
* every relative markdown link in README.md and ``docs/*.md`` must
  resolve to a real file;
* every ``fig_*`` name mentioned in README.md and ``docs/*.md`` must
  be a registered experiment.

The CI docs job runs this module (plus the repro.db doctests), so a
renamed experiment, a moved doc, or a stale link fails the build.
"""

import re
from pathlib import Path

import pytest

from repro.experiments.cli import _EXPERIMENTS

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
CHECKED_FILES = [REPO_ROOT / "README.md", *DOCS]

LINK_PATTERN = re.compile(r"\]\(([^)#\s]+)(?:#[^)\s]*)?\)")
FIG_PATTERN = re.compile(r"\bfig_[a-z]+\b")


def test_docs_directory_exists_and_is_populated():
    names = {path.name for path in DOCS}
    assert "ARCHITECTURE.md" in names
    assert "experiments.md" in names


def test_experiment_doc_headings_match_cli_registry():
    """docs/experiments.md has exactly one section per registered
    experiment — the doc and the registry cannot diverge."""
    text = (REPO_ROOT / "docs" / "experiments.md").read_text()
    headings = set(re.findall(r"^## (\S+)$", text, flags=re.MULTILINE))
    registered = set(_EXPERIMENTS)
    missing = registered - headings
    stale = {h for h in headings - registered if not h.startswith("Quick")}
    assert not missing, f"experiments undocumented in docs/experiments.md: {sorted(missing)}"
    assert not stale, f"docs/experiments.md documents unknown experiments: {sorted(stale)}"


@pytest.mark.parametrize(
    "path", CHECKED_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_relative_links_resolve(path):
    """Every relative markdown link points at a file that exists."""
    text = path.read_text()
    broken = []
    for target in LINK_PATTERN.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (path.parent / target).exists():
            broken.append(target)
    assert not broken, f"broken links in {path.name}: {broken}"


@pytest.mark.parametrize(
    "path", CHECKED_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_mentioned_fig_names_are_registered(path):
    """A ``fig_*`` name in the docs must be a real experiment."""
    mentioned = set(FIG_PATTERN.findall(path.read_text()))
    unknown = mentioned - set(_EXPERIMENTS)
    assert not unknown, f"{path.name} mentions unregistered experiments: {sorted(unknown)}"


def test_readme_links_the_docs():
    """The README is the entry point; it must point into docs/."""
    text = (REPO_ROOT / "README.md").read_text()
    assert "docs/ARCHITECTURE.md" in text
    assert "docs/experiments.md" in text
