"""SpillCursor: prefetched spill read-back conserves the I/O bill.

The cursor must be a drop-in replacement for ``SpillFile.read_all``:
same pages in the same order, same miss accounting at depth 0, and at
any depth the ``io_page`` bill must split exactly between synchronous
stall, CPU-overlapped prefetch, and still-in-flight reads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import BufferPool, SpillCursor

IO_PAGE = 100.0


def _spill_file(pool_pages, page_rows, n_rows, churn=0):
    """A flushed spill file plus ``churn`` unrelated pool accesses.

    The churn evicts some (or all) of the file's still-resident pages,
    so read-back sees an arbitrary mix of hits and misses.
    """
    pool = BufferPool(pool_pages)
    spill = pool.spill_file(page_rows)
    spill.append_rows([(i, i * 2) for i in range(n_rows)])
    spill.flush()
    for i in range(churn):
        pool.access(("tbl", "noise", i))
    return pool, spill


def _walk(cursor, credit):
    pages = []
    while not cursor.exhausted:
        page, _ = cursor.next_page(credit)
        pages.append(page)
    return pages


class TestParityWithReadAll:
    @given(
        pool_pages=st.integers(min_value=1, max_value=32),
        page_rows=st.integers(min_value=1, max_value=8),
        n_rows=st.integers(min_value=1, max_value=150),
        churn=st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=80, deadline=None)
    def test_depth_zero_matches_read_all(self, pool_pages, page_rows, n_rows, churn):
        """Same pages, same misses, same pool counters as read_all."""
        pool_a, spill_a = _spill_file(pool_pages, page_rows, n_rows, churn)
        pool_b, spill_b = _spill_file(pool_pages, page_rows, n_rows, churn)

        pages_a, misses_a = spill_a.read_all()
        cursor = SpillCursor(spill_b, IO_PAGE, prefetch_depth=0)
        pages_b = _walk(cursor, credit=0.0)

        assert [p.rows for p in pages_b] == [p.rows for p in pages_a]
        assert cursor.misses == misses_a
        assert cursor.stall_cost == misses_a * IO_PAGE
        assert cursor.overlapped_cost == 0.0
        assert pool_b.stats.spill_pages_read == pool_a.stats.spill_pages_read
        assert pool_b.stats.misses == pool_a.stats.misses
        assert pool_b.stats.hits == pool_a.stats.hits

    @given(
        pool_pages=st.integers(min_value=2, max_value=64),
        page_rows=st.integers(min_value=1, max_value=8),
        n_rows=st.integers(min_value=1, max_value=150),
        churn=st.integers(min_value=0, max_value=80),
        depth=st.integers(min_value=0, max_value=6),
        credit=st.floats(min_value=0.0, max_value=3 * IO_PAGE),
    )
    @settings(max_examples=80, deadline=None)
    def test_io_conservation_at_any_depth(
        self, pool_pages, page_rows, n_rows, churn, depth, credit
    ):
        """stall + overlapped + in-flight + wasted == reads * io_page."""
        _, spill = _spill_file(pool_pages, page_rows, n_rows, churn)
        cursor = SpillCursor(spill, IO_PAGE, prefetch_depth=depth)
        pages = _walk(cursor, credit)

        assert len(pages) == spill.page_count
        total = (
            cursor.stall_cost
            + cursor.overlapped_cost
            + cursor.pending_cost()
            + cursor.wasted_cost
        )
        assert total == pytest.approx(cursor.misses * IO_PAGE)

    @given(
        pool_pages=st.integers(min_value=2, max_value=64),
        page_rows=st.integers(min_value=1, max_value=8),
        n_rows=st.integers(min_value=1, max_value=150),
        depth=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_rows_identical_at_any_depth(self, pool_pages, page_rows, n_rows, depth):
        """Prefetch never changes the data, only its timing."""
        _, spill_a = _spill_file(pool_pages, page_rows, n_rows, churn=pool_pages)
        _, spill_b = _spill_file(pool_pages, page_rows, n_rows, churn=pool_pages)
        pages_a, _ = spill_a.read_all()
        cursor = SpillCursor(spill_b, IO_PAGE, prefetch_depth=depth)
        pages_b = _walk(cursor, credit=IO_PAGE / 2)
        assert [p.rows for p in pages_b] == [p.rows for p in pages_a]


class TestOverlap:
    def test_prefetch_converts_stall_into_overlap(self):
        """With CPU credit flowing, depth > 0 strictly cuts the stall."""
        _, spill_sync = _spill_file(8, 4, 200, churn=8)
        _, spill_pf = _spill_file(8, 4, 200, churn=8)

        sync = SpillCursor(spill_sync, IO_PAGE, prefetch_depth=0)
        _walk(sync, credit=IO_PAGE / 2)
        prefetched = SpillCursor(spill_pf, IO_PAGE, prefetch_depth=2)
        _walk(prefetched, credit=IO_PAGE / 2)

        assert prefetched.stall_cost < sync.stall_cost
        assert prefetched.overlapped_cost > 0
        assert sync.overlapped_cost == 0

    def test_pool_aggregates_cursor_traffic(self):
        pool, spill = _spill_file(8, 4, 200, churn=8)
        cursor = SpillCursor(spill, IO_PAGE, prefetch_depth=2)
        _walk(cursor, credit=IO_PAGE / 2)

        assert pool.stats.spill_prefetch_issued == cursor.prefetch_issued
        assert pool.stats.spill_read_stall == pytest.approx(cursor.stall_cost)
        assert pool.stats.spill_read_overlapped == pytest.approx(
            cursor.overlapped_cost
        )
        assert "spill read-back" in pool.snapshot().render()

    def test_no_pool_degenerates_to_synchronous_reads(self):
        pool, spill = _spill_file(8, 4, 40)
        spill.pool = None
        cursor = SpillCursor(spill, IO_PAGE, prefetch_depth=4)
        _walk(cursor, credit=IO_PAGE)
        assert cursor.misses == spill.page_count
        assert cursor.stall_cost == spill.page_count * IO_PAGE
        assert cursor.prefetch_issued == 0


class TestErrors:
    def test_exhausted_cursor_raises(self):
        _, spill = _spill_file(8, 4, 4)
        cursor = SpillCursor(spill, IO_PAGE)
        _walk(cursor, credit=0.0)
        with pytest.raises(StorageError):
            cursor.next_page()

    def test_negative_credit_rejected(self):
        _, spill = _spill_file(8, 4, 4)
        cursor = SpillCursor(spill, IO_PAGE)
        with pytest.raises(StorageError):
            cursor.next_page(-1.0)

    def test_negative_depth_rejected(self):
        _, spill = _spill_file(8, 4, 4)
        with pytest.raises(StorageError):
            SpillCursor(spill, IO_PAGE, prefetch_depth=-1)

    def test_page_at_bounds_checked(self):
        _, spill = _spill_file(8, 4, 4)
        with pytest.raises(StorageError):
            spill.page_at(99)
