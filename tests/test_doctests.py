"""The repro.db public API docstrings are runnable and correct.

Every example in the facade's docstrings (``Database``, ``Session``,
``QueryBuilder``, ``RuntimeConfig``, ``QueryResult``) executes under
``doctest`` here and in the CI docs job (which additionally runs
``pytest --doctest-modules src/repro/db``), so the documented usage
cannot drift from the implementation.
"""

import doctest

import pytest

import repro.db.builder
import repro.db.config
import repro.db.result
import repro.db.session

DOCUMENTED_MODULES = [
    repro.db.builder,
    repro.db.config,
    repro.db.result,
    repro.db.session,
]


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module.__name__}"
    )


def test_every_public_db_class_has_an_example():
    """The documented surface keeps its runnable examples."""
    for obj in (
        repro.db.session.Database,
        repro.db.session.Session,
        repro.db.builder.QueryBuilder,
        repro.db.config.RuntimeConfig,
        repro.db.result.QueryResult,
    ):
        assert ">>>" in (obj.__doc__ or ""), (
            f"{obj.__name__} lost its doctest example"
        )
