"""The grant-governed external sort is invisible to consumers.

At every ``work_mem`` the external-merge path must reproduce the
unbounded in-memory sort bit for bit — rows, order, and tie order —
so order-sensitive consumers (limit, merge join) cannot tell the
difference; the run/merge-pass arithmetic must match the grant; and
spill traffic must grow monotonically as the budget shrinks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    CostModel,
    Engine,
    MemoryBroker,
    execute_reference,
    limit,
    merge_join,
    project,
    resource_report,
    scan,
    sort,
)
from repro.engine.expressions import col
from repro.engine.operators.sort import merge_key, plan_merge_passes, sort_rows
from repro.sim.simulator import Simulator
from repro.storage import BufferPool, Catalog, DataType, Schema

COSTS = CostModel(io_page=100.0, spill_page=120.0)
PAGE_ROWS = 16


def _catalog(rows=3000, groups=37):
    catalog = Catalog()
    schema = Schema(
        [("g", DataType.INT), ("s", DataType.STR), ("k", DataType.INT)]
    )
    data = [
        (i % groups, f"name{(i * 7) % 11:02d}", i)
        for i in range(rows)
    ]
    catalog.create("t", schema).insert_many(data)
    return catalog


def _sort_plan(catalog, keys=None, top_n=None):
    plan = sort(
        scan(catalog, "t", columns=["g", "s", "k"], op_id="s"),
        keys or [("g", True), ("k", False)],
        op_id="big_sort",
    )
    if top_n is not None:
        plan = limit(plan, top_n, op_id="topn")
    return plan


def _run(catalog, plan, work_mem=None, processors=4, prefetch=0):
    sim = Simulator(processors=processors)
    memory = MemoryBroker(work_mem) if work_mem else None
    engine = Engine(catalog, sim, costs=COSTS, page_rows=PAGE_ROWS,
                    buffer_pool=BufferPool(24), memory=memory,
                    spill_prefetch_depth=prefetch)
    handle = engine.execute(plan, f"sort@{work_mem}")
    sim.run()
    return handle.rows, sim.now, resource_report(engine)


class TestExternalSort:
    @pytest.fixture(scope="class")
    def catalog(self):
        return _catalog()

    @pytest.fixture(scope="class")
    def baseline(self, catalog):
        return _run(catalog, _sort_plan(catalog))[0]

    def test_identical_at_every_budget(self, catalog, baseline):
        for work_mem in (64, 16, 5, 2, 1):
            rows, _, _ = _run(catalog, _sort_plan(catalog), work_mem)
            assert rows == baseline, f"order drifted at work_mem={work_mem}"

    def test_mixed_directions_with_strings(self, catalog):
        """Descending STR keys go through the _Descending wrapper."""
        keys = [("s", False), ("g", True), ("k", True)]
        reference = _run(catalog, _sort_plan(catalog, keys))[0]
        for work_mem in (8, 2):
            rows, _, _ = _run(catalog, _sort_plan(catalog, keys), work_mem)
            assert rows == reference

    def test_tie_order_is_stable(self, catalog, baseline):
        """Rows with equal keys keep input order across runs."""
        # Key (g,) alone leaves heavy ties; the unique k column of the
        # input exposes any reordering among them.
        keys = [("g", True)]
        reference = _run(catalog, _sort_plan(catalog, keys))[0]
        rows, _, _ = _run(catalog, _sort_plan(catalog, keys), work_mem=2)
        assert rows == reference

    def test_spill_grows_as_budget_shrinks(self, catalog):
        spills = []
        for work_mem in (64, 16, 5, 2):
            _, _, report = _run(catalog, _sort_plan(catalog), work_mem)
            spills.append(report.spill_pages_written)
        assert spills == sorted(spills)
        assert spills[-1] > 0

    def test_run_and_pass_arithmetic_matches_grant(self, catalog):
        # Replacement selection caps the run count at ceil(n / budget)
        # (the reverse-ordered worst case) and usually does better; the
        # merge-pass arithmetic must match whatever count it produced.
        n_rows = 3000
        for work_mem in (16, 5, 2, 1):
            _, _, report = _run(catalog, _sort_plan(catalog), work_mem)
            notes = report.grant_notes("big_sort")
            budget_rows = work_mem * PAGE_ROWS
            max_runs = -(-n_rows // budget_rows)
            assert 1 <= notes["sort_runs"] <= max_runs
            assert notes["merge_passes"] == plan_merge_passes(
                notes["sort_runs"], max(2, work_mem - 1)
            )

    def test_replacement_selection_lengthens_runs(self):
        """Run counts: sorted input → 1; random ≈ n/(2·budget);
        reverse-sorted → the ceil(n/budget) worst case."""
        n, work_mem = 1024, 4
        budget_rows = work_mem * PAGE_ROWS
        worst_case = -(-n // budget_rows)
        runs = {}
        inputs = {
            "sorted": [(i,) for i in range(n)],
            "shuffled": [((i * 389) % n,) for i in range(n)],
            "reversed": [(n - i,) for i in range(n)],
        }
        for label, data in inputs.items():
            catalog = Catalog()
            schema = Schema([("k", DataType.INT)])
            catalog.create("t", schema).insert_many(data)
            plan = sort(
                scan(catalog, "t", columns=["k"], op_id="s"),
                [("k", True)],
                op_id="big_sort",
            )
            rows, _, report = _run(catalog, plan, work_mem)
            assert rows == sorted(data)
            runs[label] = report.grant_notes("big_sort")["sort_runs"]
        assert runs["sorted"] == 1
        assert 1 < runs["shuffled"] < worst_case
        assert runs["reversed"] == worst_case

    def test_makespan_degrades_but_never_fails(self, catalog):
        _, unbounded, _ = _run(catalog, _sort_plan(catalog))
        _, starved, report = _run(catalog, _sort_plan(catalog), work_mem=1)
        assert starved > unbounded
        assert report.memory.overcommits >= 1  # merge floor, recorded

    def test_prefetch_preserves_answers_and_cuts_stall(self, catalog, baseline):
        rows_sync, sync, report_sync = _run(
            catalog, _sort_plan(catalog), work_mem=4
        )
        rows_pf, prefetched, report_pf = _run(
            catalog, _sort_plan(catalog), work_mem=4, prefetch=2
        )
        assert rows_sync == rows_pf == baseline
        assert report_pf.spill_read_stall < report_sync.spill_read_stall
        assert report_pf.spill_read_overlapped > 0
        assert prefetched < sync


class TestOrderSensitiveConsumers:
    @pytest.fixture(scope="class")
    def catalog(self):
        return _catalog(rows=1500)

    def test_limit_sees_identical_top_n(self, catalog):
        reference = _run(catalog, _sort_plan(catalog, top_n=25))[0]
        for work_mem in (8, 2):
            rows, _, _ = _run(catalog, _sort_plan(catalog, top_n=25), work_mem)
            assert rows == reference

    def test_merge_join_accepts_external_sort_output(self, catalog):
        left = project(
            sort(
                scan(catalog, "t", columns=["g", "k"], op_id="sl"),
                [("k", True)],
                op_id="sort_l",
            ),
            [("lk", col("k"), DataType.INT), ("lg", col("g"), DataType.INT)],
            op_id="pl",
        )
        right = project(
            sort(
                scan(catalog, "t", columns=["g", "k"], op_id="sr"),
                [("k", True)],
                op_id="sort_r",
            ),
            [("rk", col("k"), DataType.INT), ("rg", col("g"), DataType.INT)],
            op_id="pr",
        )
        plan = merge_join(left, right, "lk", "rk", op_id="mj")
        expected = execute_reference(plan, catalog)
        rows, _, _ = _run(catalog, plan, work_mem=4)
        assert sorted(rows) == sorted(expected)


class TestSortKernel:
    schema = Schema(
        [("a", DataType.INT), ("b", DataType.INT), ("c", DataType.INT)]
    )

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=200,
        ),
        directions=st.tuples(st.booleans(), st.booleans(), st.booleans()),
    )
    @settings(max_examples=120, deadline=None)
    def test_sort_rows_equals_chained_stable_sorts(self, rows, directions):
        """The grouped itemgetter path == one stable sort per key."""
        keys = list(zip(("a", "b", "c"), directions))
        expected = list(rows)
        for name, ascending in reversed(keys):
            index = self.schema.index_of(name)
            expected.sort(key=lambda r: r[index], reverse=not ascending)
        assert sort_rows(rows, self.schema, keys) == expected

    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=200,
        ),
        directions=st.tuples(st.booleans(), st.booleans(), st.booleans()),
    )
    @settings(max_examples=120, deadline=None)
    def test_merge_key_equals_sort_rows(self, rows, directions):
        """sorted(key=merge_key) is exactly the stable multi-key sort,
        which is what makes the heap merge reproduce it."""
        keys = list(zip(("a", "b", "c"), directions))
        assert sorted(rows, key=merge_key(self.schema, keys)) == sort_rows(
            rows, self.schema, keys
        )

    def test_plan_merge_passes_arithmetic(self):
        assert plan_merge_passes(0, 2) == 0
        assert plan_merge_passes(1, 2) == 1
        assert plan_merge_passes(2, 2) == 1
        assert plan_merge_passes(3, 2) == 2
        assert plan_merge_passes(8, 3) == 2
        assert plan_merge_passes(47, 2) == 6

    @given(
        runs=st.integers(min_value=1, max_value=500),
        fan_in=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_merge_passes_terminates_at_one_final(self, runs, fan_in):
        passes = plan_merge_passes(runs, fan_in)
        merged = runs
        for _ in range(passes - 1):
            merged = -(-merged // fan_in)
        assert merged <= fan_in


class TestExternalSortProperty:
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.integers(min_value=-20, max_value=20),
            ),
            min_size=1,
            max_size=300,
        ),
        work_mem=st.integers(min_value=1, max_value=6),
        ascending=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_output_equals_python_sorted(self, rows, work_mem, ascending):
        """End to end: external sort == sorted() at random budgets."""
        catalog = Catalog()
        schema = Schema([("a", DataType.INT), ("b", DataType.INT)])
        catalog.create("t", schema).insert_many(rows)
        plan = sort(
            scan(catalog, "t", columns=["a", "b"], op_id="s"),
            [("a", ascending), ("b", True)],
            op_id="big_sort",
        )
        sim = Simulator(processors=2)
        engine = Engine(catalog, sim, costs=COSTS, page_rows=4,
                        buffer_pool=BufferPool(8),
                        memory=MemoryBroker(work_mem))
        handle = engine.execute(plan, "q")
        sim.run()
        expected = sorted(
            rows, key=lambda r: ((r[0] if ascending else -r[0]), r[1])
        )
        assert handle.rows == expected
