"""The flight recorder: conservation, determinism, zero-cost-disabled.

The three properties that make a trace trustworthy:

* **conservation** — per-processor compute-slice durations sum to the
  processor's ``busy_time`` exactly (same floats, same accrual order);
* **determinism** — two runs of the same plan serialize to
  byte-identical Chrome JSON (the tracer never reads wall time);
* **invisibility** — with the tracer detached (the default), simulated
  time and answers are unchanged on randomized schedules.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import demo_trace_session
from repro.obs.trace import (
    TID_SCANS,
    TID_TASKS,
    Tracer,
    attach_tracer,
    validate_chrome_trace,
)
from repro.sim import CLOSED, Close, Compute, Get, Put, Simulator

costs = st.floats(min_value=0.01, max_value=10.0, allow_nan=False,
                  allow_infinity=False)


def _pipeline(sim, item_costs, capacity):
    q = sim.queue("q", capacity=capacity)
    received = []

    def producer():
        for i, c in enumerate(item_costs):
            yield Compute(c, io=c / 4)
            yield Put(q, i)
        yield Close(q)

    def consumer():
        while True:
            item = yield Get(q)
            if item is CLOSED:
                return
            yield Compute(0.1)
            received.append(item)

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="c")
    return received


# ----------------------------------------------------------------------
# conservation
# ----------------------------------------------------------------------


@given(
    st.lists(costs, min_size=1, max_size=15),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=30, deadline=None)
def test_compute_spans_conserve_busy_time(item_costs, processors):
    """Per-lane compute-span sums equal Processor.busy_time exactly —
    bit-for-bit, not approximately (same floats, same order)."""
    sim = Simulator(processors=processors)
    tracer = attach_tracer(sim)
    _pipeline(sim, item_costs, capacity=2)
    sim.run()
    by_lane = tracer.compute_time_by_lane()
    for proc in sim._processors:
        assert by_lane.get(proc.index, 0.0) == proc.busy_time


def test_compute_event_args_carry_cost_and_io():
    sim = Simulator(processors=1)
    tracer = attach_tracer(sim)

    def body():
        yield Compute(5.0, io=2.0)

    sim.spawn(body(), name="t")
    sim.run()
    (event,) = tracer.select(cat="compute")
    assert event.ph == "X"
    assert event.dur == 5.0
    assert dict(event.args) == {"cost": 5.0, "io": 2.0}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------


def _traced_run():
    sim = Simulator(processors=2)
    tracer = attach_tracer(sim)
    _pipeline(sim, [1.0, 2.5, 0.5, 3.0], capacity=1)
    sim.run()
    return sim, tracer


def test_trace_json_is_byte_identical_across_runs():
    _, first = _traced_run()
    _, second = _traced_run()
    assert first.to_json() == second.to_json()


def test_shared_session_trace_is_byte_identical_across_runs():
    """The full stack — session, pool, elevator scans — stays
    deterministic, not just the bare simulator."""
    first = demo_trace_session(pages=8, queries=2)
    second = demo_trace_session(pages=8, queries=2)
    assert first.tracer.to_json() == second.tracer.to_json()


# ----------------------------------------------------------------------
# invisibility (zero cost disabled)
# ----------------------------------------------------------------------


@given(
    st.lists(costs, min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_disabled_tracer_changes_nothing(item_costs, processors, capacity):
    """Attached vs detached tracer: same clock, same answers."""
    plain = Simulator(processors=processors)
    plain_received = _pipeline(plain, item_costs, capacity)
    plain.run()

    traced = Simulator(processors=processors)
    attach_tracer(traced)
    traced_received = _pipeline(traced, item_costs, capacity)
    traced.run()

    assert traced.now == plain.now
    assert traced_received == plain_received
    assert [p.busy_time for p in traced._processors] == [
        p.busy_time for p in plain._processors
    ]


# ----------------------------------------------------------------------
# lifecycle edges and queue accounting
# ----------------------------------------------------------------------


def test_lifecycle_events_recorded_in_order():
    sim = Simulator(processors=1)
    tracer = attach_tracer(sim)
    _pipeline(sim, [1.0], capacity=1)
    sim.run()
    names = [e.name for e in tracer.select(cat="task")]
    assert names[:2] == ["spawn", "spawn"]
    assert names.count("finish") == 2
    blocks = tracer.select(cat="queue", name="block")
    unblocks = tracer.select(cat="queue", name="unblock")
    assert blocks and len(unblocks) >= len(blocks) - 1


def test_queue_block_time_accrues_on_tasks():
    """The new Task.queue_block_time ledger measures Get/Put parking;
    the consumer of an empty queue must accrue it."""
    sim = Simulator(processors=2)
    _pipeline(sim, [4.0, 4.0], capacity=1)
    sim.run()
    consumer = next(t for t in sim.tasks if t.name == "c")
    assert consumer.queue_block_time > 0
    assert consumer.blocked_since is None


# ----------------------------------------------------------------------
# scan reconciliation and export schema
# ----------------------------------------------------------------------


def test_scan_events_reconcile_with_stats():
    """Elevator attach/split/merge/throttle events must agree exactly
    with the TableScanStats counters of the same run."""
    session = demo_trace_session(pages=16, queries=3)
    tracer = session.tracer
    (stats,) = session.scans.snapshot()
    assert tracer.count(cat="scan", name="attach") == stats.attaches
    assert tracer.count(cat="scan", name="split") == stats.splits
    assert tracer.count(cat="scan", name="merge") == stats.merges
    throttles = tracer.select(cat="scan", name="throttle")
    assert sum(dict(e.args)["wait"] for e in throttles) == stats.throttle_stall_cost
    issued = tracer.count(cat="scan", name="prefetch_issue")
    assert issued == stats.prefetch_issued
    for event in tracer.select(cat="scan"):
        assert event.tid == TID_SCANS


def test_chrome_export_is_valid_and_loadable():
    session = demo_trace_session(pages=8, queries=2)
    trace = session.tracer.to_chrome()
    assert validate_chrome_trace(trace) == []
    # Round-trips through JSON (what Perfetto actually loads).
    reloaded = json.loads(session.tracer.to_json())
    assert validate_chrome_trace(reloaded) == []
    assert reloaded["displayTimeUnit"] == "ms"
    names = {e["name"] for e in reloaded["traceEvents"]}
    assert {"process_name", "thread_name", "spawn", "finish"} <= names


def test_validate_chrome_trace_flags_problems():
    assert validate_chrome_trace({"nope": []}) != []
    broken = {"traceEvents": [{"name": "x", "ph": "X", "pid": 1, "tid": 0,
                               "ts": 0.0}]}
    assert any("dur" in p for p in validate_chrome_trace(broken))


def test_timeline_renders_lanes_and_limits():
    sim = Simulator(processors=1)
    tracer = attach_tracer(sim)
    _pipeline(sim, [1.0, 2.0], capacity=1)
    sim.run()
    text = tracer.timeline(limit=3)
    assert "more events" in text
    assert "[task/tasks]" in text
    full = tracer.timeline()
    assert len(full.splitlines()) == len(tracer.events)
    assert tracer.select(name="spawn")[0].tid == TID_TASKS


def test_tracer_name_lane_labels_export():
    tracer = Tracer(clock=lambda: 0.0)
    tracer.name_lane(0, "worker")
    tracer.instant("x", "misc", tid=0)
    meta = [e for e in tracer.to_chrome()["traceEvents"]
            if e["name"] == "thread_name"]
    assert meta[0]["args"]["name"] == "worker"
