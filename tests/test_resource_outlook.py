"""The resource outlook automates the fig_mem Part B decision flip.

A warm-profiled (CPU-only) spec for a scan-heavy query says *don't
share* on many cores; the outlook's projections must flip that to
*share* against a cold pool (unshared tenants each pay the full
``io_page`` bill), cancel the flip again when cooperative scans make
unshared execution I/O-efficient, and flip it on spill pressure when
consolidation avoids spills.
"""

import pytest

from repro.core.spec import QuerySpec, chain, op
from repro.engine import CostModel, MemoryBroker
from repro.policies import ModelGuidedPolicy, ResourceOutlook, ResourceProfile
from repro.policies.online_model import OnlineModelGuidedPolicy
from repro.storage import BufferPool, Catalog, DataType, ScanShareManager, Schema

COSTS = CostModel(io_page=400.0)
PAGE_ROWS = 64
TABLE_PAGES = 94
# The flip regime needs more consumers than processors (sharing wins
# by eliminating duplicated total work); with m <= n every unshared
# query runs fully parallel and the pivot's serialization decides.
GROUP, PROCESSORS = 8, 4


# A scan-heavy spec at the engine's scale (warm scan of ~94 pages x
# 64 tuples), output cost a large fraction of scan work — the paper's
# harmful-sharing regime on ample processors.
def _scan_heavy_spec():
    root = chain(
        op("scan", 6000.0, 3000.0),
        op("agg", 1200.0, 60.0),
    )
    return QuerySpec(root=root, label="q"), "scan"


def _table(catalog, name=None, rows=TABLE_PAGES * PAGE_ROWS):
    schema = Schema([("k", DataType.INT)])
    table = catalog.create(name or "t", schema)
    table.insert_many([(i,) for i in range(rows)])
    return table


class TestIoProjection:
    def make_policy(self, pool, scans=None, memory=None, work_pages=0):
        spec, pivot = _scan_heavy_spec()
        outlook = ResourceOutlook(
            {"q": ResourceProfile(table="t", pages=TABLE_PAGES,
                                  work_pages=work_pages)},
            costs=COSTS, pool=pool, scans=scans, memory=memory,
        )
        return ModelGuidedPolicy({"q": (spec, pivot)}, outlook=outlook)

    def test_warm_pool_keeps_cpu_decision(self):
        catalog = Catalog()
        table = _table(catalog)
        pool = BufferPool(TABLE_PAGES * 2)
        pool.prewarm_table(table, PAGE_ROWS)
        policy = self.make_policy(pool)
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is False

    def test_cold_pool_flips_to_share(self):
        pool = BufferPool(TABLE_PAGES * 2)
        policy = self.make_policy(pool)
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is True

    def test_no_outlook_never_flips(self):
        spec, pivot = _scan_heavy_spec()
        policy = ModelGuidedPolicy({"q": (spec, pivot)})
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is False

    def test_cooperative_scans_cancel_the_flip(self):
        """With the elevator manager attached, unshared scans already
        share the physical pass — the decision returns to CPU terms."""
        pool = BufferPool(TABLE_PAGES * 2)
        manager = ScanShareManager(pool, prefetch_depth=2)
        policy = self.make_policy(pool, scans=manager)
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is False

    def test_decisions_not_cached_with_outlook(self):
        """Warming the pool between arrivals changes the verdict."""
        catalog = Catalog()
        table = _table(catalog)
        pool = BufferPool(TABLE_PAGES * 2)
        policy = self.make_policy(pool)
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is True
        pool.prewarm_table(table, PAGE_ROWS)
        assert policy.should_share("q", GROUP, processors=PROCESSORS) is False


class TestSpillProjection:
    def test_spill_pressure_flips_to_share(self):
        """Warm cache, but m queries' working memory would spill
        while one shared copy fits: consolidation wins."""
        catalog = Catalog()
        table = _table(catalog)
        pool = BufferPool(TABLE_PAGES * 2)
        pool.prewarm_table(table, PAGE_ROWS)
        spec, pivot = _scan_heavy_spec()

        def policy_with(work_mem):
            outlook = ResourceOutlook(
                {"q": ResourceProfile(table="t", pages=TABLE_PAGES,
                                      work_pages=40)},
                costs=CostModel(io_page=400.0, spill_page=500.0),
                pool=pool,
                memory=MemoryBroker(work_mem),
            )
            return ModelGuidedPolicy({"q": (spec, pivot)}, outlook=outlook)

        # Ample memory: everything fits, CPU decision holds.
        assert policy_with(1000).should_share("q", GROUP, PROCESSORS) is False
        # Tight memory: 8 x 40 pages >> 48 available, sharing avoids
        # the spills.
        assert policy_with(48).should_share("q", GROUP, PROCESSORS) is True

    def test_broker_projection_values(self):
        broker = MemoryBroker(100)
        assert broker.projected_spill(40) == 0
        assert broker.projected_spill(40, operators=2) == 0
        assert broker.projected_spill(40, operators=3) == 20
        broker.grant("op", 60)
        assert broker.projected_spill(40) == 0
        assert broker.projected_spill(50) == 10


class TestAdjustedSpec:
    def test_zero_extra_returns_same_spec(self):
        spec, pivot = _scan_heavy_spec()
        outlook = ResourceOutlook({}, costs=COSTS, pool=BufferPool(4))
        assert outlook.adjusted_spec("q", spec, pivot, 8) is spec

    def test_extra_lands_on_pivot_only(self):
        spec, pivot = _scan_heavy_spec()
        outlook = ResourceOutlook(
            {"q": ResourceProfile(table="t", pages=TABLE_PAGES)},
            costs=COSTS, pool=BufferPool(TABLE_PAGES * 2),
        )
        m = 8
        adjusted = outlook.adjusted_spec("q", spec, pivot, m)
        expected = TABLE_PAGES * (m - 1) / (m - 1) * COSTS.io_page
        assert adjusted[pivot].work == pytest.approx(
            spec[pivot].work + expected
        )
        assert adjusted["agg"].work == spec["agg"].work
        assert adjusted[pivot].output_cost == spec[pivot].output_cost

    def test_singleton_group_never_adjusted(self):
        spec, pivot = _scan_heavy_spec()
        outlook = ResourceOutlook(
            {"q": ResourceProfile(table="t", pages=TABLE_PAGES)},
            costs=COSTS, pool=BufferPool(4),
        )
        assert outlook.pivot_extra_work("q", 1) == 0.0


class TestOnlinePolicyOutlook:
    def test_online_policy_accepts_outlook(self):
        """The online policy threads the outlook through its
        estimator-backed decision path."""
        from repro.tpch.generator import generate
        from repro.tpch.queries import build

        catalog = generate(scale_factor=0.001, seed=7)
        query = build("q6", catalog)
        outlook = ResourceOutlook(
            {"q6": ResourceProfile(table="lineitem", pages=TABLE_PAGES)},
            costs=COSTS, pool=BufferPool(4),
        )
        policy = OnlineModelGuidedPolicy(
            {"q6": query}, exploration_budget=1, outlook=outlook,
        )
        # Cold estimator explores regardless of the outlook.
        assert policy.should_share("q6", 4, processors=8) is True
