"""The Session/Database facade: routing, results, and the auto flip.

The acceptance bar from the facade PR: ``Session.submit()`` of N
identical queries reproduces the fig_mem Part B flip — shares against
a cold cache, declines once warm — with zero manual wiring, and every
submission comes back as one unified ``QueryResult``.
"""

import pytest

from repro.core.decision import ShareDecision
from repro.db import Database, Query, RuntimeConfig, Session
from repro.engine import CostModel, Engine, MemoryBroker
from repro.engine.expressions import col, lt, mul
from repro.engine.plan import AggSpec
from repro.engine.wiring import resolve_storage
from repro.errors import EngineError, StorageError
from repro.policies import AlwaysShare, NeverShare
from repro.sim import Simulator
from repro.storage import BufferPool, Catalog, DataType, ScanShareManager, Schema

PAGE_ROWS = 64
BASE_ROWS = 3000
IO_COSTS = CostModel(io_page=400.0, spill_page=500.0)


def flip_catalog(tables=("t",), rows=BASE_ROWS, seed=2007):
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    data = []
    state = seed & 0x7FFFFFFF or 1
    for i in range(rows):
        state = (state * 48271) % 2147483647
        data.append((i, state / 2147483647.0))
    for name in tables:
        catalog.create(name, schema).insert_many(data)
    return catalog


def flip_query(session, table="t"):
    return (
        session.table(table, columns=["k", "v"])
        .where(lt(col("v"), 0.25))
        .select(("k", col("k"), DataType.INT),
                ("vv", mul(col("v"), col("v")), DataType.FLOAT))
        .agg(AggSpec("sum", "total", col("vv")), AggSpec("count", "n"))
        .named(f"flip:{table}")
        .build()
    )


@pytest.fixture()
def session():
    catalog = flip_catalog()
    return Database.open(catalog, RuntimeConfig(
        pool_pages=256, processors=4, cost_model=IO_COSTS,
    ))


class TestSubmitAndRun:
    def test_results_in_submission_order(self, session):
        query = flip_query(session)
        for i in range(3):
            session.submit(query, label=f"c{i}", share=False)
        results = session.run_all()
        assert [r.label for r in results] == ["c0", "c1", "c2"]
        assert all(not r.shared and r.group_size == 1 for r in results)
        assert all(r.rows == results[0].rows for r in results)

    def test_run_single(self, session):
        result = session.run(flip_query(session), label="solo")
        assert result.label == "solo"
        assert not result.shared
        assert result.latency > 0
        assert result.makespan == session.now
        assert len(result.rows) == 1

    def test_empty_run_all(self, session):
        assert session.run_all() == []

    def test_plain_plan_runs_solo(self, session):
        plan = flip_query(session).plan
        result = session.run(plan)
        assert not result.shared
        assert result.decision is None

    def test_forced_share_groups_by_signature(self, session):
        query = flip_query(session)
        for i in range(4):
            session.submit(query, label=f"c{i}", share=True)
        results = session.run_all()
        assert all(r.shared and r.group_size == 4 for r in results)

    def test_different_signatures_never_merge(self):
        catalog = flip_catalog(tables=("a", "b"))
        session = Database.open(catalog, RuntimeConfig(processors=4))
        session.submit(flip_query(session, "a"), share=True)
        session.submit(flip_query(session, "b"), share=True)
        results = session.run_all()
        assert all(not r.shared for r in results)

    def test_delayed_submission_runs_solo_later(self, session):
        query = flip_query(session)
        session.submit(query, label="now", share=False)
        session.submit(query, label="later", share=False, delay=5000.0)
        now, later = session.run_all()
        assert later.submitted_at >= 5000.0
        assert sorted(later.rows) == sorted(now.rows)

    def test_unknown_table_fails_at_builder_time(self, session):
        with pytest.raises(StorageError):
            session.table("nope")

    def test_schema_error_surfaces_at_build_time(self, session):
        builder = session.table("t", columns=["k"]).where(lt(col("v"), 0.5))
        with pytest.raises(Exception):
            builder.plan()  # v was narrowed away: compile fails pre-run

    def test_rejects_foreign_objects(self, session):
        with pytest.raises(EngineError):
            session.submit(object())


class TestAutoSharingFlip:
    """The PR's acceptance criterion, end to end."""

    def test_shares_cold_declines_warm_no_wiring(self, session):
        query = flip_query(session)
        for i in range(8):
            session.submit(query, label=f"cold{i}")
        cold = session.run_all()
        assert all(r.shared and r.group_size == 8 for r in cold)
        assert all(isinstance(r.decision, ShareDecision) for r in cold)
        assert cold[0].decision.share

        # Same session, same queries: the pool is now warm, the same
        # advisor declines, everything runs independently.
        for i in range(8):
            session.submit(query, label=f"warm{i}")
        warm = session.run_all()
        assert all(not r.shared and r.group_size == 1 for r in warm)
        assert not warm[0].decision.share
        assert warm[0].rows == cold[0].rows

    def test_advise_matches_routing(self, session):
        query = flip_query(session)
        assert session.advise(query, 8).share is True
        session.prewarm("t")
        assert session.advise(query, 8).share is False

    def test_advise_requires_a_pivot(self, session):
        plan = flip_query(session).plan
        pivotless = Query(plan=plan, pivot_op_id=None, name="solo-only")
        with pytest.raises(EngineError):
            session.advise(pivotless, 8)

    def test_declared_cpu_skew_sticks_to_the_operation(self, session):
        """A skew declared via advise() persists: later advise calls
        (and run_all's routing, which calls advise with the default)
        reuse it instead of silently resetting to a uniform convoy."""
        query = flip_query(session)
        baseline = session.advise(query, 8)
        skewed = session.advise(query, 8, cpu_skew=32.0)
        assert skewed.benefit >= baseline.benefit
        # The default (None) keeps the stored projection...
        assert session.advise(query, 8).benefit == skewed.benefit
        signature = session._as_query(query).pivot_signature
        assert session._outlook.profiles[signature].cpu_skew == 32.0
        # ...and declaring a new value replaces it.
        session.advise(query, 8, cpu_skew=1.0)
        assert session._outlook.profiles[signature].cpu_skew == 1.0
        with pytest.raises(EngineError):
            session.advise(query, 8, cpu_skew=0.5)


class TestGroupingKeys:
    def test_same_signature_different_pivot_ids_never_merge(self):
        """execute_group addresses the pivot by op_id in every member:
        equal signatures with mismatched explicit op_ids must route to
        separate groups, not crash."""
        from repro.engine.plan import scan as plan_scan

        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig(processors=4))
        named = plan_scan(catalog, "t", columns=["k"], op_id="mine")
        auto = plan_scan(catalog, "t", columns=["k"])
        assert named.signature == auto.signature
        session.submit(Query(named, "mine", "q"), label="a", share=True)
        session.submit(Query(auto, auto.op_id, "q"), label="b", share=True)
        results = session.run_all()
        assert all(not r.shared for r in results)
        assert results[0].rows == results[1].rows

    def test_same_signature_different_names_never_merge(self):
        """Policies key specs on the query name; same-operation
        submissions under different names stay separate."""
        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig(processors=4),
                                policy=AlwaysShare())
        plan = flip_query(session).plan
        pivot = flip_query(session).pivot_op_id
        session.submit(Query(plan, pivot, "alpha"), share=True)
        session.submit(Query(plan, pivot, "beta"), share=True)
        results = session.run_all()
        assert all(not r.shared for r in results)


class TestPolicyFeedback:
    def test_completed_groups_reach_observe_group(self):
        """Learning policies depend on the observe_group hook."""
        observed = []

        class Recording(AlwaysShare):
            def observe_group(self, query_name, group_size, tasks):
                observed.append((query_name, group_size, len(list(tasks))))

        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig(processors=4),
                                policy=Recording())
        query = flip_query(session)
        for i in range(3):
            session.submit(query)
        session.run_all()
        session.submit(query, share=False)
        session.run_all()
        assert len(observed) == 2
        name, size, n_tasks = observed[0]
        assert name == "flip:t" and size == 3 and n_tasks > 0
        assert observed[1][1] == 1


class TestPolicyOverride:
    def test_always_share_groups_without_profiling(self):
        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig(processors=4),
                                policy=AlwaysShare())
        query = flip_query(session)
        for i in range(4):
            session.submit(query)
        results = session.run_all()
        assert all(r.shared and r.group_size == 4 for r in results)
        # Policy verdicts are booleans, not model decisions.
        assert all(r.decision is None for r in results)

    def test_never_share_runs_solo_but_forced_still_group(self):
        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig(processors=4),
                                policy=NeverShare())
        query = flip_query(session)
        session.submit(query, label="f0", share=True)
        session.submit(query, label="f1", share=True)
        session.submit(query, label="free")
        results = session.run_all()
        by_label = {r.label: r for r in results}
        assert by_label["f0"].shared and by_label["f0"].group_size == 2
        assert by_label["f1"].shared
        assert not by_label["free"].shared


class TestSessionState:
    def test_time_and_results_accumulate(self, session):
        query = flip_query(session)
        session.run(query)
        first = session.now
        session.run(query)
        assert session.now > first
        assert len(session.results) == 2

    def test_prewarm_requires_a_pool(self):
        catalog = flip_catalog()
        session = Database.open(catalog, RuntimeConfig())
        with pytest.raises(EngineError):
            session.prewarm("t")

    def test_resources_render(self, session):
        session.run(flip_query(session))
        text = session.resources().render()
        assert "buffer pool" in text

    def test_result_render_mentions_verdict(self, session):
        result = session.run(flip_query(session), label="r")
        assert "solo" in result.render()

    def test_database_open_accepts_preset_names(self):
        catalog = flip_catalog()
        session = Database.open(catalog, "laptop")
        assert isinstance(session, Session)
        assert session.pool is not None
        assert session.scans is not None
        assert session.memory is not None

    def test_unknown_preset_rejected(self):
        with pytest.raises(EngineError):
            RuntimeConfig.preset("mainframe")


class TestRuntimeConfigWiring:
    def test_presets_build_coherent_components(self):
        for name in ("laptop", "cmp32", "unbounded"):
            config = RuntimeConfig.preset(name)
            pool, memory, scans, depth = config.build_storage()
            if scans is not None:
                assert scans.pool is pool
            if memory is not None:
                assert memory.pool is pool
            assert depth >= 0

    def test_prefetch_without_pool_rejected(self):
        with pytest.raises(EngineError):
            RuntimeConfig(prefetch_depth=2)

    def test_with_overrides(self):
        config = RuntimeConfig.preset("laptop").with_(processors=16)
        assert config.processors == 16
        assert config.work_mem == RuntimeConfig.preset("laptop").work_mem

    def test_work_mem_alone_creates_bound_pool(self):
        pool, memory, _, _ = RuntimeConfig(work_mem=8).build_storage()
        assert pool is not None
        assert memory.pool is pool
        assert pool.capacity >= 16

    def test_spill_prefetch_inherits_scan_depth(self):
        config = RuntimeConfig(pool_pages=32, prefetch_depth=3)
        _, _, scans, depth = config.build_storage()
        assert scans.prefetch_depth == 3
        assert depth == 3


class TestEngineKwargValidation:
    """The validation gaps the facade exposed, now centralized."""

    def test_bound_broker_rejects_shadowing_pool(self):
        catalog = flip_catalog()
        broker = MemoryBroker(8)
        Engine(catalog, Simulator(processors=1), memory=broker)
        assert broker.pool is not None
        with pytest.raises(EngineError):
            Engine(catalog, Simulator(processors=1),
                   buffer_pool=BufferPool(64), memory=broker)

    def test_bound_broker_reuses_its_pool(self):
        catalog = flip_catalog()
        broker = MemoryBroker(8)
        first = Engine(catalog, Simulator(processors=1), memory=broker)
        second = Engine(catalog, Simulator(processors=1), memory=broker)
        assert second.pool is first.pool

    def test_manager_pool_identity_still_enforced(self):
        catalog = flip_catalog()
        manager = ScanShareManager(BufferPool(32))
        with pytest.raises(EngineError):
            Engine(catalog, Simulator(processors=1),
                   buffer_pool=BufferPool(32), scan_manager=manager)

    def test_resolve_storage_is_the_shared_rule(self):
        pool = BufferPool(32)
        manager = ScanShareManager(pool, prefetch_depth=2)
        out_pool, _, out_scans, depth = resolve_storage(None, None, manager, None)
        assert out_pool is pool
        assert out_scans is manager
        assert depth == 2
        with pytest.raises(EngineError):
            resolve_storage(None, None, None, -1)

    def test_broker_bind_pool_is_sticky(self):
        broker = MemoryBroker(4)
        pool = BufferPool(16)
        broker.bind_pool(pool)
        broker.bind_pool(pool)  # idempotent
        with pytest.raises(EngineError):
            broker.bind_pool(BufferPool(16))
