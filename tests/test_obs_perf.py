"""The wall-clock profiler: attribution, decomposition, invisibility.

Mirror of the tracer's trust properties, adapted to an instrument that
reads the *host* clock:

* **attribution** — slices aggregate per ``op_id`` (engine task-name
  convention), rows land on the emitting operator, and with a fake
  clock the whole profile is deterministic;
* **decomposition** — operator walls sum exactly to ``work_s`` and
  work plus harness overhead reconstructs the run total;
* **invisibility** — attached or not, the profiler never changes
  simulated time or answers (it only observes host time).
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import demo_session, main
from repro.db import Database, RuntimeConfig
from repro.errors import EngineError
from repro.obs.perf import WallProfiler, attach_profiler
from repro.obs.trace import validate_chrome_trace
from repro.sim import CLOSED, Close, Compute, Get, Put, Simulator
from repro.storage import Catalog, DataType, Schema

costs = st.floats(min_value=0.01, max_value=10.0, allow_nan=False,
                  allow_infinity=False)


class FakeClock:
    """Monotonic counter advancing a fixed step per read: every timed
    interval spanning k reads is exactly ``k * step`` seconds."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _pipeline(sim, item_costs, capacity):
    q = sim.queue("q", capacity=capacity)
    received = []

    def producer():
        for i, c in enumerate(item_costs):
            yield Compute(c, io=c / 4)
            yield Put(q, i)
        yield Close(q)

    def consumer():
        while True:
            item = yield Get(q)
            if item is CLOSED:
                return
            yield Compute(0.1)
            received.append(item)

    sim.spawn(producer(), name="p")
    sim.spawn(consumer(), name="c")
    return received


def _session(perf=True, pages=4):
    catalog = Catalog()
    table = catalog.create("t", Schema([("k", DataType.INT)]))
    table.insert_many([(i,) for i in range(pages * 64)])
    config = RuntimeConfig.preset("laptop").with_(perf=perf)
    return Database.open(catalog, config)


# ----------------------------------------------------------------------
# attribution
# ----------------------------------------------------------------------


def test_slices_aggregate_per_op_id():
    profiler = WallProfiler()
    profiler.record_slice("q0/scan", 0.25)
    profiler.record_slice("q1/scan", 0.25)
    profiler.record_slice("q0/sink", 0.5)
    profiler.record_slice("bare", 0.1)
    by_op = {p.op: p for p in profiler.profile()}
    assert by_op["scan"].calls == 2
    assert by_op["scan"].wall_s == 0.5
    assert by_op["sink"].calls == 1
    assert by_op["bare"].wall_s == 0.1


def test_profile_sorted_hottest_first_with_shares():
    profiler = WallProfiler()
    profiler.record_slice("a/cold", 1.0)
    profiler.record_slice("a/hot", 3.0)
    profiles = profiler.profile()
    assert [p.op for p in profiles] == ["hot", "cold"]
    assert profiles[0].share == 0.75
    assert math.isclose(sum(p.share for p in profiles), 1.0)


def test_rows_and_throughput():
    profiler = WallProfiler()
    profiler.record_slice("q/scan", 2.0)
    profiler.add_rows("scan", 500)
    profiler.add_rows("scan", 500)
    (p,) = profiler.profile()
    assert p.rows == 1000
    assert p.rows_per_s == 500.0


def test_fake_clock_profiles_are_deterministic():
    def run():
        sim = Simulator(processors=2)
        attach_profiler(sim, clock=FakeClock(step=0.5))
        _pipeline(sim, [1.0, 2.5, 0.5], capacity=1)
        sim.run()
        return sim.perf

    first, second = run(), run()
    assert first.to_json() == second.to_json()
    assert first.totals() == second.totals()
    # Every slice spans exactly one clock step.
    assert first.totals()["work_s"] == 0.5 * first.totals()["slices"]


# ----------------------------------------------------------------------
# decomposition
# ----------------------------------------------------------------------


def test_work_plus_overhead_reconstructs_run_total():
    sim = Simulator(processors=2)
    profiler = attach_profiler(sim)
    _pipeline(sim, [1.0, 2.0, 3.0], capacity=2)
    sim.run()
    t = profiler.totals()
    assert t["runs"] == 1
    assert 0.0 < t["work_s"] <= t["run_wall_s"]
    assert math.isclose(
        t["work_s"] + t["overhead_s"], t["run_wall_s"], rel_tol=1e-9
    )
    # Per-operator walls sum to the work side exactly (5% acceptance
    # gate met by construction).
    assert math.isclose(
        sum(p.wall_s for p in profiler.profile()), t["work_s"], rel_tol=1e-9
    )


def test_overhead_floored_when_slices_recorded_outside_runs():
    profiler = WallProfiler()
    profiler.record_slice("t", 5.0)  # no record_run at all
    t = profiler.totals()
    assert t["overhead_s"] == 0.0
    assert t["overhead_share"] == 0.0
    assert t["work_s"] == 5.0


# ----------------------------------------------------------------------
# invisibility (never changes the simulation)
# ----------------------------------------------------------------------


@given(
    st.lists(costs, min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_profiler_changes_no_simulated_outcome(item_costs, processors, capacity):
    """Attached vs detached profiler: same clock, same answers."""
    plain = Simulator(processors=processors)
    plain_received = _pipeline(plain, item_costs, capacity)
    plain.run()

    profiled = Simulator(processors=processors)
    attach_profiler(profiled)
    profiled_received = _pipeline(profiled, item_costs, capacity)
    profiled.run()

    assert profiled.now == plain.now
    assert profiled_received == plain_received
    assert [p.busy_time for p in profiled._processors] == [
        p.busy_time for p in plain._processors
    ]


def test_session_sim_time_identical_with_and_without_profiling():
    off = _session(perf=False)
    on = _session(perf=True)
    off_result = off.run(off.table("t", columns=["k"]), label="q")
    on_result = on.run(on.table("t", columns=["k"]), label="q")
    assert on.now == off.now
    assert on_result.rows == off_result.rows


# ----------------------------------------------------------------------
# exports
# ----------------------------------------------------------------------


def _profiled():
    profiler = WallProfiler(clock=FakeClock())
    profiler.record_run(10.0)
    profiler.record_slice("q/scan", 6.0)
    profiler.record_slice("q/sink", 2.0)
    profiler.add_rows("scan", 300)
    return profiler


def test_hotspot_table_shape_and_limit():
    table = _profiled().hotspot_table()
    lines = table.splitlines()
    assert lines[0].split() == ["operator", "calls", "rows", "wall", "ms",
                                "share", "rows/s"]
    assert "scan" in lines[1] and "75.0%" in lines[1]
    assert "harness overhead" in table and "run total" in table
    limited = _profiled().hotspot_table(limit=1)
    assert "... 1 more operators" in limited


def test_collapsed_stacks_in_integer_usec():
    lines = _profiled().collapsed().splitlines()
    assert "run;work;scan 6000000" in lines
    assert "run;work;sink 2000000" in lines
    assert "run;harness 2000000" in lines


def test_chrome_export_validates_and_tiles():
    chrome = _profiled().to_chrome()
    assert validate_chrome_trace(chrome) == []
    spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
    hotspots = [e for e in spans if e["tid"] == 0]
    assert [e["name"] for e in hotspots] == ["scan", "sink"]
    # Tiles abut: each span starts where the previous ended.
    assert hotspots[1]["ts"] == hotspots[0]["ts"] + hotspots[0]["dur"]
    decomposition = {e["name"]: e["dur"] for e in spans if e["tid"] == 1}
    assert decomposition == {"work": 8_000_000.0, "harness": 2_000_000.0}


def test_write_returns_operator_count(tmp_path):
    path = tmp_path / "perf.json"
    assert _profiled().write(path) == 2
    assert validate_chrome_trace(json.loads(path.read_text())) == []


# ----------------------------------------------------------------------
# session + engine integration
# ----------------------------------------------------------------------


def test_session_profiler_sees_operators_and_rows():
    session = _session()
    result = session.run(session.table("t", columns=["k"]), label="q")
    profiles = session.perf().profile()
    assert profiles, "profiled session recorded no slices"
    by_op = {p.op: p for p in profiles}
    scan_ops = [op for op in by_op if op.startswith("scan")]
    assert scan_ops and by_op[scan_ops[0]].rows == len(result.rows)
    assert result.perf == tuple(profiles)
    assert result.hot_operator == profiles[0].op


def test_unprofiled_surfaces_raise_and_default_none():
    session = _session(perf=False)
    result = session.run(session.table("t", columns=["k"]))
    assert result.perf is None
    assert result.hot_operator is None
    with pytest.raises(EngineError, match="perf=True"):
        session.perf()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_bare_perf_prints_hotspots(capsys):
    assert main(["perf"]) == 0
    out = capsys.readouterr().out
    assert "operator" in out and "harness overhead" in out


def test_cli_perf_run_exports(tmp_path, capsys):
    out_json = tmp_path / "perf.json"
    folded = tmp_path / "perf.folded"
    status = main([
        "perf", "run", "--pages", "4", "--validate",
        "--out", str(out_json), "--collapsed", str(folded),
    ])
    assert status == 0
    stdout = capsys.readouterr().out
    assert "perf export valid" in stdout
    assert validate_chrome_trace(json.loads(out_json.read_text())) == []
    assert folded.read_text().startswith("run;")


def test_demo_session_instruments_compose():
    session = demo_session(pages=4, queries=2, trace=True, perf=True)
    assert session.tracer is not None
    assert len(session.perf().profile()) > 0
