"""Facade/engine parity: sugar must not change a single bit.

For every preset, a query built and run through the facade must
produce *bit-identical rows* and an *identical simulated completion
time* to the same plan hand-wired onto a raw ``Engine`` with manually
constructed components — the facade is wiring, not behavior.
"""

import pytest

from repro.db import Database, RuntimeConfig
from repro.engine import Engine, MemoryBroker
from repro.engine.expressions import col, lt
from repro.engine.plan import AggSpec, aggregate, scan, sort
from repro.sim import Simulator
from repro.storage import BufferPool, Catalog, DataType, ScanShareManager, Schema

PRESET_NAMES = ("laptop", "cmp32", "unbounded")


@pytest.fixture(scope="module")
def catalog():
    catalog = Catalog()
    schema = Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    rows = []
    state = 77
    for i in range(3000):
        state = (state * 48271) % 2147483647
        rows.append((i, state / 2147483647.0))
    catalog.create("t", schema).insert_many(rows)
    return catalog


def hand_wired(catalog, config):
    """Assemble the components exactly as RuntimeConfig describes."""
    sim = Simulator(processors=config.processors)
    pool = (
        BufferPool(config.pool_pages, config.pool_policy)
        if config.pool_pages is not None
        else None
    )
    memory = (
        MemoryBroker(config.work_mem) if config.work_mem is not None else None
    )
    scans = (
        ScanShareManager(pool, prefetch_depth=config.prefetch_depth)
        if config.prefetch_depth is not None
        else None
    )
    engine = Engine(
        catalog,
        sim,
        costs=config.cost_model,
        page_rows=config.page_rows,
        queue_capacity=config.queue_capacity,
        buffer_pool=pool,
        memory=memory,
        scan_manager=scans,
        spill_prefetch_depth=config.spill_prefetch_depth,
    )
    return sim, engine


def sort_plan(catalog):
    """Scan + filter (fused) + full sort: exercises pool, grants and
    spill at the laptop preset's 32-page budget."""
    return sort(
        scan(catalog, "t", columns=["k", "v"],
             predicate=lt(col("v"), 0.8)),
        [("v", True), ("k", False)],
    )


def agg_plan(catalog):
    return aggregate(
        scan(catalog, "t", columns=["k", "v"]),
        group_by=(),
        aggs=[AggSpec("sum", "total", col("v")), AggSpec("count", "n")],
    )


@pytest.mark.parametrize("preset", PRESET_NAMES)
@pytest.mark.parametrize("make_plan", [sort_plan, agg_plan],
                         ids=["sort", "agg"])
def test_solo_parity(catalog, preset, make_plan):
    config = RuntimeConfig.preset(preset)
    plan = make_plan(catalog)

    session = Database.open(catalog, config)
    result = session.run(plan, label="q")

    sim, engine = hand_wired(catalog, config)
    handle = engine.execute(plan, "q")
    sim.run()

    assert result.rows == handle.rows
    assert result.makespan == sim.now
    assert result.finished_at == handle.finished_at


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_shared_group_parity(catalog, preset):
    """m facade submissions forced into one group == execute_group."""
    config = RuntimeConfig.preset(preset)
    m = 4

    session = Database.open(catalog, config)
    query = (
        session.table("t", columns=["k", "v"])
        .where(lt(col("v"), 0.5))
        .agg(AggSpec("sum", "total", col("v")), AggSpec("count", "n"))
        .build()
    )
    for i in range(m):
        session.submit(query, label=f"q{i}", share=True)
    results = session.run_all()

    sim, engine = hand_wired(catalog, config)
    group = engine.execute_group(
        [query.plan] * m,
        pivot_op_id=query.pivot_op_id,
        labels=[f"q{i}" for i in range(m)],
    )
    sim.run()

    assert all(r.shared and r.group_size == m for r in results)
    assert [r.rows for r in results] == [h.rows for h in group.handles]
    assert results[0].makespan == sim.now


@pytest.mark.parametrize("preset", PRESET_NAMES)
def test_builder_plan_matches_hand_built(catalog, preset):
    """The fluent spelling lowers to the identical plan IR."""
    session = Database.open(catalog, RuntimeConfig.preset(preset))
    built = (
        session.table("t", columns=["k", "v"])
        .where(lt(col("v"), 0.8))
        .order_by("v", ("k", False))
        .plan()
    )
    by_hand = sort_plan(catalog)
    assert built.signature == by_hand.signature
    assert built.op_id == by_hand.op_id
    assert built.schema.names() == by_hand.schema.names()


def test_resource_counters_match(catalog):
    """Same wiring, same storage traffic — counters agree too."""
    config = RuntimeConfig.preset("laptop")
    plan = sort_plan(catalog)

    session = Database.open(catalog, config)
    result = session.run(plan)

    sim, engine = hand_wired(catalog, config)
    engine.execute(plan, "q")
    sim.run()

    facade = result.resources
    raw_pool = engine.pool.snapshot()
    assert facade.buffer.misses == raw_pool.misses
    assert facade.buffer.hits == raw_pool.hits
    assert facade.spill_pages_written == raw_pool.spill_pages_written
    assert facade.memory.high_water == engine.memory.snapshot().high_water
