"""Buffer pool: unit tests plus property tests over random traces.

The properties the pool must never violate, whatever the access
pattern and eviction policy:

* resident frames never exceed capacity;
* pinned pages are never evicted;
* hit/miss counters are consistent (``hits + misses == accesses``,
  and the hit rate is their ratio).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import (
    BufferPool,
    ClockPolicy,
    DataType,
    LRUPolicy,
    MRUPolicy,
    Schema,
    Table,
    make_policy,
    table_page_key,
)

POLICIES = ("lru", "clock", "mru")


class TestBufferPoolBasics:
    def test_miss_then_hit(self):
        pool = BufferPool(4)
        assert pool.access(("tbl", "t", 0)) is False
        assert pool.access(("tbl", "t", 0)) is True
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(StorageError, match="unknown eviction policy"):
            BufferPool(4, "fifo")

    def test_policy_instance_accepted(self):
        pool = BufferPool(4, MRUPolicy())
        assert pool.policy.name == "mru"

    def test_make_policy_resolves_names(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)
        assert isinstance(make_policy("mru"), MRUPolicy)

    def test_eviction_at_capacity(self):
        pool = BufferPool(2)
        pool.access(("tbl", "t", 0))
        pool.access(("tbl", "t", 1))
        pool.access(("tbl", "t", 2))
        assert len(pool) == 2
        assert pool.stats.evictions == 1

    def test_lru_evicts_least_recent(self):
        pool = BufferPool(2, "lru")
        pool.access(("tbl", "t", 0))
        pool.access(("tbl", "t", 1))
        pool.access(("tbl", "t", 0))  # refresh page 0
        pool.access(("tbl", "t", 2))  # evicts page 1
        assert ("tbl", "t", 0) in pool
        assert ("tbl", "t", 1) not in pool

    def test_mru_evicts_most_recent(self):
        pool = BufferPool(2, "mru")
        pool.access(("tbl", "t", 0))
        pool.access(("tbl", "t", 1))
        pool.access(("tbl", "t", 2))  # evicts page 1 (most recent)
        assert ("tbl", "t", 0) in pool
        assert ("tbl", "t", 1) not in pool

    def test_clock_gives_second_chance(self):
        pool = BufferPool(2, "clock")
        pool.access(("tbl", "t", 0))
        pool.access(("tbl", "t", 1))
        # Both referenced; the hand clears 0 then 1, wraps, evicts 0.
        pool.access(("tbl", "t", 2))
        assert len(pool) == 2
        assert pool.stats.evictions == 1

    def test_pin_blocks_eviction(self):
        pool = BufferPool(2, "lru")
        pool.access(("tbl", "t", 0), pin=True)
        pool.access(("tbl", "t", 1))
        pool.access(("tbl", "t", 2))  # must evict page 1, not pinned 0
        assert ("tbl", "t", 0) in pool

    def test_all_pinned_raises(self):
        pool = BufferPool(2)
        pool.access(("tbl", "t", 0), pin=True)
        pool.access(("tbl", "t", 1), pin=True)
        with pytest.raises(StorageError, match="pinned"):
            pool.access(("tbl", "t", 2))

    def test_unpin_restores_evictability(self):
        pool = BufferPool(1)
        pool.access(("tbl", "t", 0), pin=True)
        pool.unpin(("tbl", "t", 0))
        pool.access(("tbl", "t", 1))
        assert ("tbl", "t", 0) not in pool

    def test_pin_non_resident_raises(self):
        pool = BufferPool(1)
        with pytest.raises(StorageError, match="non-resident"):
            pool.pin(("tbl", "t", 0))

    def test_unpin_unpinned_raises(self):
        pool = BufferPool(1)
        pool.access(("tbl", "t", 0))
        with pytest.raises(StorageError, match="not pinned"):
            pool.unpin(("tbl", "t", 0))

    def test_admit_counts_neither_hit_nor_miss(self):
        pool = BufferPool(2)
        pool.admit(("tbl", "t", 0))
        assert pool.stats.accesses == 0
        assert pool.access(("tbl", "t", 0)) is True

    def test_discard_is_not_an_eviction(self):
        pool = BufferPool(2)
        pool.access(("tbl", "t", 0))
        pool.discard(("tbl", "t", 0))
        assert ("tbl", "t", 0) not in pool
        assert pool.stats.evictions == 0

    def test_prewarm_matches_scan_keys(self):
        table = Table("warm", Schema([("a", DataType.INT)]))
        table.insert_many([(i,) for i in range(130)])
        pool = BufferPool(16)
        pages = pool.prewarm_table(table, page_rows=64)
        assert pages == 3  # ceil(130 / 64)
        for index in range(pages):
            assert table_page_key("warm", index) in pool

    def test_snapshot_render_mentions_policy(self):
        pool = BufferPool(4, "clock")
        pool.access(("tbl", "t", 0))
        text = pool.snapshot().render()
        assert "clock" in text
        assert "1 misses" in text


class TestSpillFile:
    def test_round_trip_counts_pages(self):
        pool = BufferPool(8)
        spill = pool.spill_file(page_rows=4)
        written = spill.append_rows([(i,) for i in range(10)])
        written += spill.flush()
        assert written == 3  # 4 + 4 + 2
        assert spill.page_count == 3
        assert pool.stats.spill_pages_written == 3
        pages, misses = spill.read_all()
        assert [row for page in pages for row in page.rows] == [
            (i,) for i in range(10)
        ]
        assert misses == 0  # still resident in an 8-frame pool
        assert pool.stats.spill_pages_read == 3

    def test_read_misses_when_evicted(self):
        pool = BufferPool(2)
        spill = pool.spill_file(page_rows=2)
        spill.append_rows([(i,) for i in range(8)])  # 4 pages through 2 frames
        pages, misses = spill.read_all()
        assert len(pages) == 4
        assert misses >= 2  # early pages were pushed out by later ones
        assert [row for page in pages for row in page.rows] == [
            (i,) for i in range(8)
        ]

    def test_drop_releases_frames(self):
        pool = BufferPool(8)
        spill = pool.spill_file(page_rows=2)
        spill.append_rows([(1,), (2,)])
        assert len(pool) == 1
        spill.drop()
        assert len(pool) == 0
        with pytest.raises(StorageError, match="dropped"):
            spill.append_rows([(3,)])

    def test_poolless_file_always_misses(self):
        from repro.storage.buffer import SpillFile

        spill = SpillFile(None, 1, page_rows=2)
        spill.append_rows([(1,), (2,), (3,)])
        spill.flush()
        pages, misses = spill.read_all()
        assert len(pages) == 2
        assert misses == 2


# -- property tests ------------------------------------------------------

# One step of a random trace: (operation, page index). Pins are rare
# enough that capacity is not exhausted by them (capacity >= 4,
# pinned pages <= 3).
_ops = st.sampled_from(["access", "access_pin", "unpin", "admit", "discard"])
_steps = st.lists(st.tuples(_ops, st.integers(0, 30)), max_size=120)


def _apply_trace(pool, steps):
    """Drive a pool through a trace; returns the set of pinned keys."""
    pinned: dict = {}
    for op, index in steps:
        key = ("tbl", "t", index)
        if op == "access":
            pool.access(key)
        elif op == "access_pin":
            if sum(pinned.values()) < pool.capacity - 1:
                pool.access(key, pin=True)
                pinned[key] = pinned.get(key, 0) + 1
        elif op == "unpin":
            if pinned.get(key):
                pool.unpin(key)
                pinned[key] -= 1
        elif op == "admit":
            pool.admit(key)
        elif op == "discard":
            if not pinned.get(key):
                pool.discard(key)
    return {key for key, count in pinned.items() if count}


@settings(max_examples=150, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    capacity=st.integers(4, 12),
    steps=_steps,
)
def test_pool_never_exceeds_capacity(policy, capacity, steps):
    pool = BufferPool(capacity, policy)
    _apply_trace(pool, steps)
    assert len(pool) <= capacity


@settings(max_examples=150, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    capacity=st.integers(4, 12),
    steps=_steps,
)
def test_pinned_pages_survive_any_trace(policy, capacity, steps):
    pool = BufferPool(capacity, policy)
    pinned = _apply_trace(pool, steps)
    for key in pinned:
        assert key in pool
        assert pool.is_pinned(key)


@settings(max_examples=150, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    capacity=st.integers(4, 12),
    steps=_steps,
)
def test_hit_stats_consistent(policy, capacity, steps):
    pool = BufferPool(capacity, policy)
    accesses = sum(1 for op, _ in steps if op == "access")
    _apply_trace(pool, steps)
    # access_pin may be skipped to protect capacity, so only count
    # plain accesses as the lower bound and read the rest from stats.
    assert pool.stats.accesses >= accesses
    assert pool.stats.hits + pool.stats.misses == pool.stats.accesses
    if pool.stats.accesses:
        expected = pool.stats.hits / pool.stats.accesses
        assert pool.stats.hit_rate == pytest.approx(expected)
    else:
        assert pool.stats.hit_rate == 0.0
    assert pool.snapshot().hit_rate == pytest.approx(pool.stats.hit_rate)


@settings(max_examples=80, deadline=None)
@given(
    policy=st.sampled_from(POLICIES),
    capacity=st.integers(2, 8),
    indexes=st.lists(st.integers(0, 20), min_size=1, max_size=80),
)
def test_resident_set_is_exact_under_pure_accesses(policy, capacity, indexes):
    """With only accesses, residency count == min(distinct, capacity)
    and every miss is a first touch or a re-fetch after eviction."""
    pool = BufferPool(capacity, policy)
    distinct = len({i for i in indexes})
    for i in indexes:
        pool.access(("tbl", "t", i))
    assert len(pool) == min(distinct, capacity)
    assert pool.stats.misses >= min(distinct, capacity)
    assert pool.stats.evictions == pool.stats.misses - len(pool)
