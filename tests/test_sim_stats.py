"""Unit tests for measurement windows (repro.sim.stats)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Compute, Simulator, ThroughputMeter


def closed_loop_client(sim, cost, name_prefix, counter):
    """Spawn a task that re-submits itself forever (closed system)."""

    def body():
        yield Compute(cost)

    def resubmit(task):
        counter["n"] += 1
        sim.spawn(body(), name=f"{name_prefix}-{counter['n']}", on_done=resubmit)

    sim.spawn(body(), name=f"{name_prefix}-0", on_done=resubmit)


class TestThroughputMeter:
    def test_throughput_of_closed_loop(self):
        sim = Simulator(processors=1)
        closed_loop_client(sim, cost=2.0, name_prefix="c", counter={"n": 0})
        meter = ThroughputMeter(sim)
        meter.warmup(10.0)
        stats = meter.measure(100.0)
        assert stats.throughput == pytest.approx(0.5, rel=0.05)
        assert stats.utilization == pytest.approx(1.0, rel=0.01)
        assert stats.duration == pytest.approx(100.0)

    def test_two_clients_two_cpus_double_throughput(self):
        sim = Simulator(processors=2)
        closed_loop_client(sim, 2.0, "a", {"n": 0})
        closed_loop_client(sim, 2.0, "b", {"n": 0})
        meter = ThroughputMeter(sim)
        meter.warmup(10.0)
        stats = meter.measure(100.0)
        assert stats.throughput == pytest.approx(1.0, rel=0.05)

    def test_completions_counted_in_window_only(self):
        sim = Simulator(processors=1)
        closed_loop_client(sim, 1.0, "c", {"n": 0})
        meter = ThroughputMeter(sim)
        meter.warmup(5.0)
        before = len(sim.completions)
        stats = meter.measure(10.0)
        assert stats.completions == len(sim.completions) - before

    def test_invalid_durations(self):
        sim = Simulator(processors=1)
        meter = ThroughputMeter(sim)
        with pytest.raises(SimulationError):
            meter.warmup(-1.0)
        with pytest.raises(SimulationError):
            meter.measure(0.0)

    def test_end_without_start_rejected(self):
        sim = Simulator(processors=1)
        with pytest.raises(SimulationError):
            ThroughputMeter(sim).end_window()

    def test_completed_in_window_helper(self):
        sim = Simulator(processors=1)

        def body():
            yield Compute(3.0)

        sim.spawn(body(), name="t")
        sim.run()
        assert sim.completed_in_window(0.0) == 1
        assert sim.completed_in_window(5.0) == 0
