"""Unit tests for join modeling (repro.core.joins, Section 5.3)."""

import pytest

from repro.core.joins import (
    hash_join,
    merge_join,
    nested_loop_join,
    sort_operator,
    symmetric_hash_join,
)
from repro.core.phases import decompose
from repro.core.spec import QuerySpec, op
from repro.errors import SpecError


def scan(name, p=5.0):
    return op(name, p)


class TestNestedLoopJoin:
    def test_fully_pipelined(self):
        j = nested_loop_join("nlj", scan("outer"), scan("inner"), work=4.0)
        q = QuerySpec(j, label="nlj-q")
        assert q.is_pipelined()
        assert len(decompose(q)) == 1

    def test_two_children(self):
        j = nested_loop_join("nlj", scan("outer"), scan("inner"), work=4.0)
        assert [c.name for c in j.children] == ["outer", "inner"]

    def test_negative_work_rejected(self):
        with pytest.raises(SpecError):
            nested_loop_join("nlj", scan("a"), scan("b"), work=-1.0)


class TestSortOperator:
    def test_blocking_with_cost_components(self):
        s = sort_operator("sort", scan("scan"), run_work=3.0, merge_work=2.0,
                          replay_work=0.5, output_cost=1.0)
        assert s.blocking
        assert s.work == 3.0
        assert s.internal_work == 2.0
        assert s.emit_work == 0.5

    def test_negative_component_rejected(self):
        with pytest.raises(SpecError):
            sort_operator("sort", scan("scan"), run_work=-1.0)


class TestMergeJoin:
    def test_three_subqueries_when_both_inputs_unsorted(self):
        j = merge_join("mj", scan("left"), scan("right"), merge_work=2.0)
        phases = decompose(QuerySpec(j, label="mj-q"))
        # two sort consumes + final merge pipeline
        assert len(phases) == 3
        assert phases[0].source == "mj_sortL"
        assert phases[1].source == "mj_sortR"

    def test_presorted_inputs_skip_sorts(self):
        j = merge_join(
            "mj", scan("left"), scan("right"), merge_work=2.0,
            left_sort=None, right_sort=None,
        )
        q = QuerySpec(j, label="mj-q")
        assert q.is_pipelined()
        assert len(decompose(q)) == 1

    def test_one_presorted_input(self):
        j = merge_join(
            "mj", scan("left"), scan("right"), merge_work=2.0, left_sort=None,
        )
        phases = decompose(QuerySpec(j, label="mj-q"))
        assert len(phases) == 2
        assert phases[0].source == "mj_sortR"

    def test_sort_with_internal_work_adds_phase(self):
        j = merge_join(
            "mj", scan("left"), scan("right"), merge_work=2.0,
            left_sort=(1.0, 0.5, 0.1), right_sort=None,
        )
        phases = decompose(QuerySpec(j, label="mj-q"))
        assert [p.kind for p in phases] == ["pipeline", "internal", "pipeline"]


class TestHashJoin:
    def test_two_subqueries(self):
        j = hash_join(
            "hj", scan("build_scan"), scan("probe_scan"),
            build_work=3.0, probe_work=2.0,
        )
        phases = decompose(QuerySpec(j, label="hj-q"))
        assert len(phases) == 2
        assert phases[0].source == "hj_build"

    def test_build_phase_contains_build_side_only(self):
        j = hash_join(
            "hj", scan("build_scan"), scan("probe_scan"),
            build_work=3.0, probe_work=2.0,
        )
        phases = decompose(QuerySpec(j, label="hj-q"))
        build_names = set(phases[0].query.operator_names())
        assert "build_scan" in build_names
        assert "probe_scan" not in build_names

    def test_probe_phase_gets_free_build_replay(self):
        j = hash_join(
            "hj", scan("build_scan"), scan("probe_scan"),
            build_work=3.0, probe_work=2.0,
        )
        final = decompose(QuerySpec(j, label="hj-q"))[-1].query
        assert final["hj_build#replay"].work == pytest.approx(0.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(SpecError):
            hash_join("hj", scan("a"), scan("b"), build_work=-1.0, probe_work=1.0)
        with pytest.raises(SpecError):
            hash_join("hj", scan("a"), scan("b"), build_work=1.0, probe_work=-1.0)


class TestSymmetricHashJoin:
    def test_fully_pipelined(self):
        j = symmetric_hash_join("shj", scan("l"), scan("r"), work=2.5)
        q = QuerySpec(j, label="shj-q")
        assert q.is_pipelined()
        assert len(decompose(q)) == 1

    def test_negative_work_rejected(self):
        with pytest.raises(SpecError):
            symmetric_hash_join("shj", scan("l"), scan("r"), work=-2.5)
