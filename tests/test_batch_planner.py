"""Tests for the offline MQO-style batch planner (Section 8.2)."""

import pytest

from repro.engine import Engine, execute_reference
from repro.errors import PolicyError
from repro.policies import BatchPlanner
from repro.profiling import QueryProfiler
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=71)


@pytest.fixture(scope="module")
def specs(catalog):
    profiler = QueryProfiler(catalog)
    result = {}
    for name in ("q1", "q4", "q6"):
        query = build(name, catalog)
        profile = profiler.profile(query.plan, query.pivot, label=name)
        result[name] = (profile.to_query_spec(), query.pivot)
    return result


class TestPlanning:
    def test_one_cpu_merges_everything(self, catalog, specs):
        planner = BatchPlanner(specs, processors=1)
        batch = [build("q6", catalog)] * 12
        plan = planner.plan(batch)
        (cluster,) = plan.clusters
        assert cluster.group_size == 12
        assert cluster.n_groups == 1

    def test_many_cpus_split_scan_heavy(self, catalog, specs):
        planner = BatchPlanner(specs, processors=32)
        plan = planner.plan([build("q6", catalog)] * 12)
        (cluster,) = plan.clusters
        assert cluster.group_size == 1
        assert cluster.n_groups == 12

    def test_mixed_batch_clusters_by_type(self, catalog, specs):
        # Enough q4 members that their processor share saturates —
        # the precondition for sharing to win (Section 6).
        planner = BatchPlanner(specs, processors=32)
        batch = [build("q1", catalog)] * 6 + [build("q4", catalog)] * 24
        plan = planner.plan(batch)
        by_name = {c.query_name: c for c in plan.clusters}
        assert set(by_name) == {"q1", "q4"}
        # Scan-heavy stays solo; join-heavy merges.
        assert by_name["q1"].group_size == 1
        assert by_name["q4"].group_size > 1

    def test_processor_shares_cover_machine(self, catalog, specs):
        planner = BatchPlanner(specs, processors=32)
        batch = [build("q1", catalog)] * 4 + [build("q4", catalog)] * 8
        plan = planner.plan(batch)
        assert sum(c.processor_share for c in plan.clusters) == (
            pytest.approx(32.0)
        )

    def test_render(self, catalog, specs):
        planner = BatchPlanner(specs, processors=8)
        text = planner.plan([build("q6", catalog)] * 3).render()
        assert "q6" in text and "group" in text

    def test_empty_batch_rejected(self, specs):
        with pytest.raises(PolicyError):
            BatchPlanner(specs, processors=4).plan([])

    def test_unknown_query_rejected(self, catalog, specs):
        planner = BatchPlanner(specs, processors=4)
        with pytest.raises(PolicyError):
            planner.plan([build("q13", catalog)])

    def test_invalid_construction(self, specs):
        with pytest.raises(PolicyError):
            BatchPlanner({}, processors=4)
        with pytest.raises(PolicyError):
            BatchPlanner(specs, processors=0)


class TestExecution:
    def run_batch(self, catalog, specs, batch, processors):
        planner = BatchPlanner(specs, processors=processors)
        sim = Simulator(processors=processors)
        engine = Engine(catalog, sim)
        groups = planner.execute(engine, batch)
        sim.run()
        return sim, groups

    def test_all_queries_complete_with_correct_answers(self, catalog, specs):
        batch = [build("q6", catalog)] * 5 + [build("q4", catalog)] * 5
        sim, groups = self.run_batch(catalog, specs, batch, processors=8)
        references = {
            name: execute_reference(build(name, catalog).plan, catalog)
            for name in ("q6", "q4")
        }
        completed = 0
        for group in groups:
            assert group.done
            for handle in group.handles:
                name = handle.label.split("/")[1].split("#")[0]
                assert handle.rows == references[name]
                completed += 1
        assert completed == 10

    def test_planned_batch_beats_naive_always_share_on_cmp(self, catalog,
                                                           specs):
        """On 32 cpus a single merged Q6 group is the always-share
        disaster; the planner's solo plan must finish far sooner."""
        batch = [build("q6", catalog)] * 12

        sim_planned, _ = self.run_batch(catalog, specs, batch, processors=32)

        q6 = build("q6", catalog)
        sim_naive = Simulator(processors=32)
        engine = Engine(catalog, sim_naive)
        engine.execute_group([q6.plan] * 12, pivot_op_id=q6.pivot,
                             labels=[f"n{i}" for i in range(12)])
        sim_naive.run()

        assert sim_planned.now < 0.5 * sim_naive.now
