"""Tests for the ASCII chart renderer (repro.experiments.report)."""

import pytest

from repro.experiments.report import ascii_chart


class TestAsciiChart:
    def test_basic_chart_shape(self):
        chart = ascii_chart(
            {"up": [0.5, 1.0, 1.5, 2.0], "down": [2.0, 1.5, 1.0, 0.5]},
            x_values=[1, 2, 4, 8],
            height=6,
        )
        lines = chart.splitlines()
        # 6 plot rows + axis + labels + legend
        assert len(lines) == 9
        assert "o=up" in lines[-1] and "x=down" in lines[-1]

    def test_marker_line_present(self):
        chart = ascii_chart({"s": [0.5, 2.0]}, x_values=[1, 2],
                            marker_line=1.0)
        assert "-" in chart

    def test_marker_can_be_disabled(self):
        chart = ascii_chart({"s": [0.5, 2.0]}, x_values=[1, 2],
                            marker_line=None)
        assert "-" not in chart.replace("+-", "+").splitlines()[0]

    def test_constant_series_handled(self):
        chart = ascii_chart({"flat": [1.0, 1.0, 1.0]}, x_values=[1, 2, 3])
        assert "o" in chart

    def test_empty_series(self):
        assert ascii_chart({}, x_values=[]) == "(no data)"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_chart({"s": [1.0]}, x_values=[1, 2])

    def test_too_small_height_rejected(self):
        with pytest.raises(ValueError, match="height"):
            ascii_chart({"s": [1.0, 2.0]}, x_values=[1, 2], height=2)

    def test_extreme_values_land_on_boundary_rows(self):
        chart = ascii_chart({"s": [0.0, 10.0]}, x_values=[0, 1], height=5,
                            marker_line=None)
        lines = chart.splitlines()
        assert "o" in lines[0]      # max on top row
        assert "o" in lines[4]      # min on bottom row
