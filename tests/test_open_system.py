"""Tests for the open-system (Poisson arrival) driver."""

import pytest

from repro.db import Database, RuntimeConfig
from repro.errors import WorkloadError
from repro.policies import AlwaysShare, NeverShare
from repro.tpch.generator import generate
from repro.workload import WorkloadMix, run_open_system


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=61)


class TestOpenSystem:
    def test_light_load_is_stable(self, catalog):
        result = run_open_system(
            catalog, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 50_000.0, config=RuntimeConfig(processors=8),
            horizon=600_000.0, drain=100_000.0, seed=1,
        )
        assert result.submitted > 3
        assert result.stable
        assert result.mean_response_time > 0
        assert result.max_response_time >= result.mean_response_time

    def test_overload_builds_backlog(self, catalog):
        """Arrivals far above service capacity leave a backlog."""
        result = run_open_system(
            catalog, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 500.0, config=RuntimeConfig(processors=1),
            horizon=100_000.0, drain=0.0, seed=1,
        )
        assert result.backlog > 0
        assert not result.stable

    def test_sharing_raises_sustainable_load_on_small_machine(self, catalog):
        """On one processor, sharing eliminates work, so the same
        arrival rate produces a smaller backlog under always-share."""
        kwargs = dict(
            catalog=catalog, mix=WorkloadMix.single("q6"),
            arrival_rate=1.0 / 4_000.0, config=RuntimeConfig(processors=1),
            horizon=400_000.0, drain=0.0, seed=2,
        )
        shared = run_open_system(policy=AlwaysShare(), **kwargs)
        unshared = run_open_system(policy=NeverShare(), **kwargs)
        assert shared.completed > unshared.completed

    def test_throughput_tracks_arrivals_when_stable(self, catalog):
        """Open-system property: response time does not set throughput;
        the arrival process does."""
        result = run_open_system(
            catalog, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 40_000.0, config=RuntimeConfig(processors=8),
            horizon=800_000.0, drain=200_000.0, seed=3,
        )
        expected = result.horizon * result.arrival_rate
        assert result.submitted == pytest.approx(expected, rel=0.5)
        assert result.completed == result.submitted

    def test_deterministic(self, catalog):
        kwargs = dict(
            catalog=catalog, policy=NeverShare(),
            mix=WorkloadMix.single("q6"),
            arrival_rate=1.0 / 20_000.0, config=RuntimeConfig(processors=4),
            horizon=300_000.0, drain=100_000.0, seed=7,
        )
        a = run_open_system(**kwargs)
        b = run_open_system(**kwargs)
        assert (a.submitted, a.completed, a.mean_response_time) == (
            b.submitted, b.completed, b.mean_response_time
        )

    def test_invalid_parameters(self, catalog):
        mix = WorkloadMix.single("q6")
        with pytest.raises(WorkloadError):
            run_open_system(catalog, NeverShare(), mix, arrival_rate=0.0,
                            config=RuntimeConfig(processors=1), horizon=1.0)
        with pytest.raises(WorkloadError):
            run_open_system(catalog, NeverShare(), mix, arrival_rate=1.0,
                            config=RuntimeConfig(processors=1), horizon=0.0)
        with pytest.raises(WorkloadError):
            run_open_system(catalog, NeverShare(), mix, arrival_rate=1.0,
                            config=RuntimeConfig(processors=1), horizon=1.0, drain=-1.0)


class TestFacadePort:
    """run_open_system now rides the Database/Session facade; the old
    hand-wired signature stays, deprecated, and bit-identical."""

    def test_legacy_knobs_warn_and_match_config_path(self, catalog):
        kwargs = dict(
            mix=WorkloadMix.single("q6"), arrival_rate=1.0 / 20_000.0,
            horizon=300_000.0, drain=100_000.0, seed=7,
        )
        with pytest.warns(DeprecationWarning, match="processors"):
            legacy = run_open_system(
                catalog, NeverShare(), processors=4, **kwargs
            )
        modern = run_open_system(
            catalog, NeverShare(),
            config=RuntimeConfig(processors=4), **kwargs
        )
        assert legacy == modern  # the full frozen dataclass, every field

    def test_session_first_argument(self, catalog):
        session = Database(catalog, RuntimeConfig(processors=4)).session()
        result = run_open_system(
            session, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 20_000.0, horizon=300_000.0,
            drain=100_000.0, seed=7,
        )
        baseline = run_open_system(
            catalog, NeverShare(), WorkloadMix.single("q6"),
            arrival_rate=1.0 / 20_000.0,
            config=RuntimeConfig(processors=4),
            horizon=300_000.0, drain=100_000.0, seed=7,
        )
        assert result == baseline
        # The run advanced the session's own clock and audited on it.
        assert session.now > 0
        assert any(
            r.source == "coordinator" for r in session.audit_log()
        )

    def test_session_rejects_machine_knobs(self, catalog):
        session = Database(catalog, RuntimeConfig(processors=4)).session()
        with pytest.raises(WorkloadError, match="Session already fixes"):
            run_open_system(
                session, NeverShare(), WorkloadMix.single("q6"),
                arrival_rate=0.001, processors=2, horizon=10.0,
            )

    def test_config_and_legacy_knobs_conflict(self, catalog):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(WorkloadError, match="not both"):
                run_open_system(
                    catalog, NeverShare(), WorkloadMix.single("q6"),
                    arrival_rate=0.001, processors=2,
                    config=RuntimeConfig(processors=2), horizon=10.0,
                )
