"""Tests for the engine profiler (repro.profiling)."""

import pytest

from repro.core import metrics
from repro.engine import AggSpec, aggregate, filter_, scan
from repro.engine.expressions import col, gt
from repro.errors import EstimationError
from repro.profiling import QueryProfiler
from repro.storage import Catalog, DataType, Schema
from repro.tpch.generator import generate
from repro.tpch.queries import build


@pytest.fixture(scope="module")
def catalog():
    cat = Catalog()
    items = cat.create("items", Schema([
        ("id", DataType.INT), ("grp", DataType.INT), ("v", DataType.FLOAT),
    ]))
    for i in range(400):
        items.insert((i, i % 5, float(i % 90)))
    return cat


@pytest.fixture(scope="module")
def simple_plan(catalog):
    pivot = filter_(scan(catalog, "items"), gt(col("v"), 10.0), op_id="pivot")
    return aggregate(pivot, ["grp"], [AggSpec("count", "n")], op_id="agg")


class TestProfiler:
    def test_profile_produces_all_operators(self, catalog, simple_plan):
        profile = QueryProfiler(catalog).profile(simple_plan, "pivot")
        assert set(profile.estimates) == {
            node.op_id for node in simple_plan.walk()
        }

    def test_pivot_separates_w_and_s(self, catalog, simple_plan):
        profile = QueryProfiler(catalog).profile(simple_plan, "pivot",
                                                 sharer_counts=(1, 2, 4))
        pivot = profile.operator("pivot")
        assert pivot.work > 0
        assert pivot.output_cost > 0
        # The linear model should fit engine measurements near-exactly:
        # costs are deterministic per pass.
        assert pivot.residual < 0.05 * (pivot.work + pivot.output_cost)

    def test_non_pivot_operators_fold_s_into_w(self, catalog, simple_plan):
        profile = QueryProfiler(catalog).profile(simple_plan, "pivot")
        agg = profile.operator("agg")
        assert agg.output_cost == 0.0
        assert agg.work > 0

    def test_profile_independent_of_processor_count(self, catalog,
                                                    simple_plan):
        p4 = QueryProfiler(catalog, processors=4).profile(simple_plan, "pivot")
        p16 = QueryProfiler(catalog, processors=16).profile(simple_plan,
                                                            "pivot")
        for op_id in p4.estimates:
            assert p4.estimates[op_id].work == pytest.approx(
                p16.estimates[op_id].work, rel=1e-9
            )

    def test_to_query_spec_mirrors_plan(self, catalog, simple_plan):
        profile = QueryProfiler(catalog).profile(simple_plan, "pivot")
        spec = profile.to_query_spec()
        assert set(spec.operator_names()) == set(profile.estimates)
        assert metrics.total_work(spec) > 0

    def test_unknown_operator_rejected(self, catalog, simple_plan):
        profile = QueryProfiler(catalog).profile(simple_plan, "pivot")
        with pytest.raises(EstimationError):
            profile.operator("ghost")

    def test_invalid_sharer_counts(self, catalog, simple_plan):
        profiler = QueryProfiler(catalog)
        with pytest.raises(EstimationError):
            profiler.profile(simple_plan, "pivot", sharer_counts=())
        with pytest.raises(EstimationError):
            profiler.profile(simple_plan, "pivot", sharer_counts=(0, 2))


class TestTpchProfiles:
    @pytest.fixture(scope="class")
    def tpch(self):
        return generate(scale_factor=0.0005, seed=3)

    def test_scan_heavy_pivot_has_large_s(self, tpch):
        """Q6's profiled scan stage spends output work comparable to its
        input work — the paper's measured regime (w=9.66, s=10.34)."""
        q = build("q6", tpch)
        profile = QueryProfiler(tpch).profile(q.plan, q.pivot, label="q6")
        pivot = profile.operator(q.pivot)
        assert 0.3 < pivot.output_cost / pivot.work < 3.0

    def test_join_heavy_pivot_has_small_s(self, tpch):
        """Q4's join pivot output is insignificant vs. the work below."""
        q = build("q4", tpch)
        profile = QueryProfiler(tpch).profile(q.plan, q.pivot, label="q4")
        spec = profile.to_query_spec()
        pivot = profile.operator(q.pivot)
        assert pivot.output_cost < 0.05 * metrics.total_work(spec)

    def test_q6_utilization_near_paper(self, tpch):
        """The paper's Q6 had u = 21/20 = 1.05; ours lands close."""
        q = build("q6", tpch)
        profile = QueryProfiler(tpch).profile(q.plan, q.pivot, label="q6")
        u = metrics.utilization(profile.to_query_spec())
        assert 1.0 < u < 1.4
