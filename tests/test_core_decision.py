"""Unit tests for the ShareAdvisor runtime decision API (Section 8)."""

import pytest

from repro.core.decision import ShareAdvisor
from repro.core.sensitivity import baseline_query
from repro.core.spec import QuerySpec, chain, op
from repro.errors import SpecError


def q6():
    return QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="q6")


def group_of(query, m):
    return [query.relabeled(f"{query.label}#{i}") for i in range(m)]


class TestConstruction:
    def test_invalid_processors(self):
        with pytest.raises(SpecError):
            ShareAdvisor(processors=0)

    def test_invalid_threshold(self):
        with pytest.raises(SpecError):
            ShareAdvisor(processors=4, threshold=0.0)


class TestEvaluate:
    def test_q6_one_cpu_recommends_sharing(self):
        decision = ShareAdvisor(processors=1).evaluate(group_of(q6(), 16), "scan")
        assert decision.share
        assert decision.benefit > 1.0
        assert bool(decision) is True

    def test_q6_32_cpu_rejects_sharing(self):
        decision = ShareAdvisor(processors=32).evaluate(group_of(q6(), 16), "scan")
        assert not decision.share
        assert decision.benefit < 1.0

    def test_singleton_group_never_shares(self):
        decision = ShareAdvisor(processors=1).evaluate(group_of(q6(), 1), "scan")
        assert not decision.share

    def test_rates_exposed(self):
        decision = ShareAdvisor(processors=2).evaluate(group_of(q6(), 8), "scan")
        assert decision.shared_rate > 0
        assert decision.unshared_rate > 0
        assert decision.group_size == 8
        assert decision.processors == 2

    def test_processors_override(self):
        advisor = ShareAdvisor(processors=32)
        n1 = advisor.evaluate(group_of(q6(), 16), "scan", processors=1)
        assert n1.share
        assert n1.processors == 1

    def test_threshold_raises_bar(self):
        group = group_of(q6(), 16)
        permissive = ShareAdvisor(processors=1, threshold=1.0).evaluate(group, "scan")
        strict = ShareAdvisor(processors=1, threshold=10.0).evaluate(group, "scan")
        assert permissive.share
        assert not strict.share
        assert permissive.benefit == pytest.approx(strict.benefit)


class TestShouldJoin:
    def test_join_uses_enlarged_group(self):
        advisor = ShareAdvisor(processors=1)
        base = group_of(q6(), 3)
        decision = advisor.should_join(base, q6().relabeled("new"), "scan")
        assert decision.group_size == 4

    def test_join_rejected_on_many_cores(self):
        advisor = ShareAdvisor(processors=32)
        base = group_of(q6(), 3)
        assert not advisor.should_join(base, q6().relabeled("new"), "scan")


class TestBestGroupSize:
    def test_q6_one_cpu_prefers_max(self):
        advisor = ShareAdvisor(processors=1)
        assert advisor.best_group_size(q6(), "scan", max_size=16) == 16

    def test_q6_32_cpu_prefers_one(self):
        advisor = ShareAdvisor(processors=32)
        assert advisor.best_group_size(q6(), "scan", max_size=16) == 1

    def test_baseline_16_cpu_intermediate(self):
        # Figure 4 (left): at 16 CPUs, sharing helps only past a load
        # threshold, so some group sizes share and small ones don't.
        advisor = ShareAdvisor(processors=16)
        best = advisor.best_group_size(baseline_query(), "pivot", max_size=40)
        assert best > 1

    def test_invalid_max_size(self):
        with pytest.raises(SpecError):
            ShareAdvisor(processors=4).best_group_size(q6(), "scan", max_size=0)
