"""Integration tests for the experiment drivers (reduced scale)."""

import pytest

from repro.experiments import fig1, fig2, fig4, fig5, fig6, section4_example
from repro.experiments.common import (
    SpeedupSeries,
    batch_speedup,
    shared_catalog,
    speedup_series,
)
from repro.experiments.report import format_table, series_table
from repro.tpch.queries import build

SCALE = 0.0005
SEED = 5


@pytest.fixture(scope="module")
def catalog():
    return shared_catalog(SCALE, SEED)


class TestCommon:
    def test_catalog_cache_returns_same_object(self):
        assert shared_catalog(SCALE, SEED) is shared_catalog(SCALE, SEED)

    def test_batch_speedup_one_client_is_unity(self, catalog):
        query = build("q6", catalog)
        assert batch_speedup(catalog, query, 1, 4) == pytest.approx(1.0)

    def test_speedup_series_shape(self, catalog):
        series = speedup_series(catalog, "q6", 1, clients=(1, 4))
        assert series.clients == (1, 4)
        assert len(series.speedups) == 2
        assert series.max_speedup() >= series.min_speedup()


class TestReport:
    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "4.125" in lines[3]

    def test_series_table_headers(self):
        series = SpeedupSeries("q6", 8, (1, 2), (1.0, 0.9))
        text = series_table([series])
        assert "q6@8cpu" in text

    def test_series_table_empty(self):
        assert series_table([]) == "(no data)"


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run(clients=(1, 8, 24), processor_counts=(1, 32),
                        scale_factor=SCALE, seed=SEED)

    def test_one_cpu_line_beneficial(self, result):
        assert result.line(1).as_mapping()[24] > 1.5

    def test_32_cpu_line_harmful(self, result):
        assert result.line(32).as_mapping()[24] < 0.3

    def test_unknown_processor_count(self, result):
        with pytest.raises(KeyError):
            result.line(7)

    def test_render_contains_series(self, result):
        assert "q6@1cpu" in result.render()


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(clients=(2, 16), processor_counts=(1, 32),
                        scale_factor=SCALE, seed=SEED)

    def test_scan_vs_join_contrast(self, result):
        assert result.line("q4", 1).max_speedup() > (
            result.line("q6", 1).max_speedup()
        )

    def test_join_heavy_grows(self, result):
        series = result.line("q4", 1)
        assert series.speedups[-1] > series.speedups[0]

    def test_render_has_both_panels(self, result):
        text = result.render()
        assert "scan-heavy" in text and "join-heavy" in text


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(clients=range(1, 21))

    def test_panels_present(self, result):
        assert result.processors.parameter == "processors"
        assert result.output_cost.parameter == "output_cost"
        assert result.work_below.parameter == "stages_below_pivot"

    def test_render(self, result):
        text = result.render()
        assert "Figure 4 (left)" in text
        assert "s=0.25" in text
        assert "(28%)" in text and "(98%)" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(clients=(8, 32), processor_counts=(1, 32),
                        queries=("q6", "q4"), scale_factor=SCALE, seed=SEED)

    def test_points_cover_grid(self, result):
        assert len(result.points) == 2 * 2 * 2

    def test_errors_first_order(self, result):
        assert result.avg_error("scan-heavy") < 0.35
        assert result.avg_error("join-heavy") < 0.45

    def test_decisions_mostly_agree(self, result):
        assert result.decision_accuracy() >= 0.75

    def test_render_summary(self, result):
        text = result.render()
        assert "paper: 22% / 5.7%" in text


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(fractions=(0.0, 1.0), processor_counts=(32,),
                        n_clients=8, warmup=50_000.0, window=200_000.0,
                        scale_factor=SCALE, seed=SEED)

    def test_always_collapses_on_scan_mix(self, result):
        assert result.throughput("always", 32, 0.0) < (
            result.throughput("never", 32, 0.0)
        )

    def test_model_never_materially_worst(self, result):
        for fraction in (0.0, 1.0):
            model = result.throughput("model", 32, fraction)
            never = result.throughput("never", 32, fraction)
            always = result.throughput("always", 32, fraction)
            assert model >= 0.85 * max(never, always)

    def test_render(self, result):
        assert "32 processors" in result.render()

    def test_unknown_cell(self, result):
        with pytest.raises(KeyError):
            result.throughput("model", 32, 0.33)


class TestSection4Example:
    def test_matches_paper_closed_forms(self):
        result = section4_example.run()
        assert result.p_max == pytest.approx(20.0)
        for m, n, ours_u, paper_u, ours_s, paper_s in result.rows:
            # The paper rounds u' to 21; exact is 20.97 — allow 1%.
            assert ours_u == pytest.approx(paper_u, rel=0.01)
            assert ours_s == pytest.approx(paper_s, rel=0.01)
