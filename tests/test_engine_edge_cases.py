"""Edge-case tests for the staged engine: empty inputs, degenerate
plans, extreme page sizes, and queue pressure."""

import pytest

from repro.engine import (
    AggSpec,
    Engine,
    aggregate,
    execute_reference,
    filter_,
    hash_join,
    project,
    scan,
    sort,
)
from repro.engine.expressions import col, gt, lt
from repro.sim import Simulator
from repro.storage import Catalog, DataType, Schema


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create("empty", Schema([("a", DataType.INT)]))
    items = cat.create("items", Schema([
        ("id", DataType.INT), ("v", DataType.FLOAT),
    ]))
    for i in range(50):
        items.insert((i, float(i)))
    single = cat.create("single", Schema([("x", DataType.INT)]))
    single.insert((7,))
    return cat


def run(catalog, plan, processors=2, **engine_kwargs):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, **engine_kwargs)
    handle = engine.execute(plan, "q")
    sim.run()
    return handle.rows


class TestEmptyInputs:
    def test_scan_empty_table(self, catalog):
        plan = scan(catalog, "empty")
        assert run(catalog, plan) == []

    def test_aggregate_over_empty_input(self, catalog):
        plan = aggregate(scan(catalog, "empty"), ["a"],
                         [AggSpec("count", "n")])
        assert run(catalog, plan) == []

    def test_filter_rejecting_everything(self, catalog):
        plan = filter_(scan(catalog, "items"), gt(col("v"), 1e9))
        assert run(catalog, plan) == []

    def test_sort_empty(self, catalog):
        plan = sort(scan(catalog, "empty"), [("a", True)])
        assert run(catalog, plan) == []

    def test_join_with_empty_build_side(self, catalog):
        plan = hash_join(
            build=scan(catalog, "empty"), probe=scan(catalog, "items"),
            build_key="a", probe_key="id",
        )
        assert run(catalog, plan) == []

    def test_left_join_with_empty_build_side_pads_all(self, catalog):
        plan = hash_join(
            build=scan(catalog, "empty"), probe=scan(catalog, "items"),
            build_key="a", probe_key="id", join_type="left",
        )
        rows = run(catalog, plan)
        assert len(rows) == 50
        assert all(r[2] is None for r in rows)

    def test_shared_group_over_empty_pivot_output(self, catalog):
        pivot = filter_(scan(catalog, "items"), gt(col("v"), 1e9),
                        op_id="pivot")
        plan = aggregate(pivot, [], [AggSpec("count", "n")])
        sim = Simulator(processors=2)
        engine = Engine(catalog, sim)
        group = engine.execute_group([plan] * 3, pivot_op_id="pivot")
        sim.run()
        for handle in group.handles:
            assert handle.rows == []


class TestDegenerateShapes:
    def test_single_row_table(self, catalog):
        plan = project(scan(catalog, "single"),
                       [("y", col("x"), DataType.INT)])
        assert run(catalog, plan) == [(7,)]

    def test_page_rows_one(self, catalog):
        plan = sort(scan(catalog, "items"), [("v", False)])
        rows = run(catalog, plan, page_rows=1)
        assert rows == execute_reference(plan, catalog)

    def test_huge_pages(self, catalog):
        plan = filter_(scan(catalog, "items"), lt(col("id"), 10))
        rows = run(catalog, plan, page_rows=10_000)
        assert rows == execute_reference(plan, catalog)

    def test_queue_capacity_one(self, catalog):
        plan = aggregate(
            filter_(scan(catalog, "items"), lt(col("id"), 40)),
            [], [AggSpec("sum", "s", col("v"))],
        )
        rows = run(catalog, plan, queue_capacity=1)
        assert rows == execute_reference(plan, catalog)

    def test_many_more_sharers_than_processors(self, catalog):
        pivot = filter_(scan(catalog, "items"), lt(col("id"), 40),
                        op_id="pivot")
        plan = aggregate(pivot, [], [AggSpec("count", "n")])
        sim = Simulator(processors=1)
        engine = Engine(catalog, sim)
        group = engine.execute_group([plan] * 24, pivot_op_id="pivot")
        sim.run()
        reference = execute_reference(plan, catalog)
        assert all(h.rows == reference for h in group.handles)

    def test_deep_linear_plan(self, catalog):
        node = scan(catalog, "items")
        for i in range(12):
            node = filter_(node, lt(col("id"), 1000 + i), op_id=f"f{i}")
        rows = run(catalog, node)
        assert rows == execute_reference(node, catalog)
