"""Tests for Simulator.call_soon and same-instant event ordering."""

import pytest

from repro.sim import Compute, Simulator


class TestCallSoon:
    def test_runs_at_current_time(self):
        sim = Simulator(processors=1)
        times = []

        def body():
            yield Compute(5.0)

        sim.spawn(body(), name="t",
                  on_done=lambda t: sim.call_soon(
                      lambda: times.append(sim.now)))
        sim.run()
        assert times == [pytest.approx(5.0)]

    def test_ordering_preserved_across_callbacks(self):
        """Several call_soon callbacks scheduled at one instant run in
        scheduling order."""
        sim = Simulator(processors=1)
        order = []

        def body():
            yield Compute(1.0)

        def finish(_task):
            sim.call_soon(lambda: order.append("first"))
            sim.call_soon(lambda: order.append("second"))

        sim.spawn(body(), name="t", on_done=finish)
        sim.run()
        assert order == ["first", "second"]

    def test_call_soon_can_spawn_tasks(self):
        sim = Simulator(processors=1)
        done = []

        def late():
            yield Compute(2.0)
            done.append(sim.now)

        def body():
            yield Compute(3.0)

        sim.spawn(body(), name="t",
                  on_done=lambda t: sim.call_soon(
                      lambda: sim.spawn(late(), name="late")))
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_call_soon_respects_run_until(self):
        sim = Simulator(processors=1)
        fired = []

        def body():
            yield Compute(10.0)

        sim.spawn(body(), name="t",
                  on_done=lambda t: sim.call_soon(lambda: fired.append(1)))
        sim.run(until=5.0)
        assert not fired
        sim.run()
        assert fired == [1]

    def test_mass_completions_coalesce(self):
        """The coordinator's pattern: many on_done callbacks at one
        instant, one deferred handler sees them all."""
        sim = Simulator(processors=4)
        arrived = []
        routed = []
        scheduled = {"flag": False}

        def route():
            scheduled["flag"] = False
            routed.append(list(arrived))
            arrived.clear()

        def on_done(task):
            arrived.append(task.name)
            if not scheduled["flag"]:
                scheduled["flag"] = True
                sim.call_soon(route)

        def body():
            yield Compute(3.0)

        for i in range(4):
            sim.spawn(body(), name=f"t{i}", on_done=on_done)
        sim.run()
        # All four completed at t=3 on 4 processors -> one routing batch.
        assert len(routed) == 1
        assert sorted(routed[0]) == ["t0", "t1", "t2", "t3"]
