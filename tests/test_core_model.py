"""Unit tests for shared/unshared rates and Z(m, n) (repro.core.model)."""

import pytest

from repro.core.model import (
    shared_metrics,
    shared_rate,
    sharing_benefit,
    unshared_rate,
    validate_group,
)
from repro.core.sensitivity import baseline_query
from repro.core.spec import QuerySpec, chain, op
from repro.errors import PivotError, SpecError


def q6_group(m):
    q6 = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="q6")
    return [q6.relabeled(f"q6#{i}") for i in range(m)]


def baseline_group(m):
    q = baseline_query()
    return [q.relabeled(f"b#{i}") for i in range(m)]


class TestValidateGroup:
    def test_empty_group_rejected(self):
        with pytest.raises(SpecError):
            validate_group([], "scan")

    def test_identical_group_ok(self):
        validate_group(q6_group(3), "scan")

    def test_missing_pivot_rejected(self):
        with pytest.raises(PivotError):
            validate_group(q6_group(2), "sort")

    def test_mismatched_pivot_work_rejected(self):
        a = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="a")
        b = QuerySpec(chain(op("scan", 5.0, 10.34), op("agg", 0.97)), label="b")
        with pytest.raises(PivotError, match="mismatched work"):
            validate_group([a, b], "scan")

    def test_mismatched_subtree_rejected(self):
        a = QuerySpec(
            chain(op("scan", 2.0), op("filter", 9.66, 10.34), op("agg", 0.97)),
            label="a",
        )
        b = QuerySpec(
            chain(op("scan", 3.0), op("filter", 9.66, 10.34), op("agg", 0.97)),
            label="b",
        )
        with pytest.raises(PivotError, match="differ below"):
            validate_group([a, b], "filter")

    def test_different_output_costs_allowed(self):
        a = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="a")
        b = QuerySpec(chain(op("scan", 9.66, 5.0), op("agg", 0.97)), label="b")
        validate_group([a, b], "scan")

    def test_blocking_plans_rejected(self):
        q = QuerySpec(chain(op("scan", 1.0), op("sort", 2.0, blocking=True)))
        with pytest.raises(SpecError):
            validate_group([q, q.relabeled("q2")], "scan")


class TestSharedMetrics:
    def test_q6_pivot_inflation(self):
        m = shared_metrics(q6_group(4), "scan")
        assert m.p_pivot == pytest.approx(9.66 + 4 * 10.34)
        assert m.p_max == pytest.approx(9.66 + 4 * 10.34)

    def test_q6_total_work(self):
        # u'_shared(M) = 9.66 + 11.31 M  (paper, Section 4.4)
        m = shared_metrics(q6_group(7), "scan")
        assert m.total_work == pytest.approx(9.66 + 11.31 * 7)

    def test_baseline_total_work(self):
        # bottom 10 once + pivot (6 + M) + top 10 per query = 16 + 11M
        m = shared_metrics(baseline_group(5), "pivot")
        assert m.total_work == pytest.approx(16 + 11 * 5)

    def test_baseline_p_max_transitions_to_pivot(self):
        # pivot p = 6 + M overtakes the p=10 stages at M > 4.
        assert shared_metrics(baseline_group(3), "pivot").p_max == pytest.approx(10.0)
        assert shared_metrics(baseline_group(4), "pivot").p_max == pytest.approx(10.0)
        assert shared_metrics(baseline_group(5), "pivot").p_max == pytest.approx(11.0)

    def test_baseline_utilization_saturates_near_eleven(self):
        # "work sharing ... utilizes only 10 cores even for large
        # numbers of shared queries" — u_shared -> 11 asymptotically,
        # ~9.9 at M=40.
        m = shared_metrics(baseline_group(40), "pivot")
        assert m.utilization == pytest.approx((16 + 11 * 40) / 46.0)
        assert 9.5 < m.utilization < 10.5

    def test_mixed_output_costs_sum_at_pivot(self):
        a = QuerySpec(chain(op("scan", 9.66, 10.0), op("agg", 0.97)), label="a")
        b = QuerySpec(chain(op("scan", 9.66, 2.0), op("agg", 0.97)), label="b")
        m = shared_metrics([a, b], "scan")
        assert m.p_pivot == pytest.approx(9.66 + 12.0)


class TestUnsharedRate:
    def test_q6_formula(self):
        # x_unshared(M, n) = min(M/20, n/20.97) for M copies of Q6.
        for m in (1, 4, 16, 48):
            for n in (1, 2, 8, 32):
                expected = min(m / 20.0, n / (20.97))
                assert unshared_rate(q6_group(m), n) == pytest.approx(expected)

    def test_scales_linearly_before_saturation(self):
        r1 = unshared_rate(baseline_group(1), 32)
        r2 = unshared_rate(baseline_group(2), 32)
        assert r2 == pytest.approx(2 * r1)

    def test_saturates_with_m(self):
        # With 2 processors the group saturates; adding queries cannot help.
        r8 = unshared_rate(baseline_group(8), 2)
        r16 = unshared_rate(baseline_group(16), 2)
        assert r16 == pytest.approx(r8)

    def test_monotone_in_n(self):
        group = baseline_group(16)
        rates = [unshared_rate(group, n) for n in (1, 2, 4, 8, 16, 32, 64)]
        assert rates == sorted(rates)

    def test_contention_reduces_rate(self):
        group = baseline_group(16)
        assert unshared_rate(group, 8, contention=0.8) < unshared_rate(group, 8)

    def test_empty_group_rejected(self):
        with pytest.raises(SpecError):
            unshared_rate([], 4)


class TestSharedRate:
    def test_q6_formula(self):
        # x_shared(M, n) = min(1/(9.66/M + 10.34), n/(9.66/M + 11.31))
        for m in (1, 4, 16, 48):
            for n in (1, 2, 8, 32):
                expected = min(
                    1.0 / (9.66 / m + 10.34),
                    n / (9.66 / m + 11.31),
                )
                assert shared_rate(q6_group(m), "scan", n) == pytest.approx(expected)

    def test_shared_rate_bounded_regardless_of_m(self):
        # The pivot caps shared throughput below 1/s no matter how many
        # sharers join.
        for m in (8, 16, 48):
            assert shared_rate(q6_group(m), "scan", 32) < 1 / 10.34

    def test_sharing_at_root_eliminates_whole_plan(self):
        group = q6_group(4)
        m = shared_metrics(group, "agg")
        # Everything below agg (the scan) is shared; the pivot pays s=0.
        assert m.total_work == pytest.approx(20.0 + 0.97)


class TestSharingBenefit:
    def test_single_cpu_sharing_wins_q6(self):
        # Figure 1: on one CPU, sharing the Q6 scan approaches ~1.8x.
        z = sharing_benefit(q6_group(48), "scan", 1)
        assert z > 1.5

    def test_many_cpu_sharing_loses_q6(self):
        # Figure 1: on 32 CPUs sharing is strongly detrimental (~10x).
        z = sharing_benefit(q6_group(48), "scan", 32)
        assert z < 0.3

    def test_two_cpu_sharing_loses_q6(self):
        # Figure 1 shows sharing harmful for q6 for more than one core.
        z = sharing_benefit(q6_group(48), "scan", 2)
        assert z < 1.0

    def test_q6_one_client_no_benefit(self):
        z = sharing_benefit(q6_group(1), "scan", 1)
        assert z <= 1.0 + 1e-12

    def test_closed_flag_matches_open_for_identical_queries(self):
        group = q6_group(12)
        z_open = sharing_benefit(group, "scan", 8)
        z_closed = sharing_benefit(group, "scan", 8, closed_system=True)
        assert z_open == pytest.approx(z_closed)

    def test_zero_output_cost_one_cpu_never_loses(self):
        q = QuerySpec(chain(op("scan", 10.0, 0.0), op("agg", 1.0)), label="free")
        group = [q.relabeled(f"f{i}") for i in range(10)]
        assert sharing_benefit(group, "scan", 1) >= 1.0
