"""Unit tests for physical plan construction (repro.engine.plan)."""

import pytest

from repro.engine.expressions import col, gt, lt, mul
from repro.engine.plan import (
    AggSpec,
    aggregate,
    filter_,
    hash_join,
    merge_join,
    nested_loop_join,
    project,
    scan,
    sort,
)
from repro.errors import PlanError, SchemaError
from repro.storage import Catalog, DataType, Schema


@pytest.fixture
def catalog():
    cat = Catalog()
    items = cat.create("items", Schema([
        ("id", DataType.INT), ("price", DataType.FLOAT),
    ]))
    for i in range(5):
        items.insert((i, float(i)))
    cat.create("tags", Schema([
        ("tag_id", DataType.INT), ("label", DataType.STR),
    ]))
    return cat


class TestScan:
    def test_plain_scan_schema(self, catalog):
        node = scan(catalog, "items")
        assert node.schema.names() == ("id", "price")
        assert node.kind == "scan"

    def test_projected_scan(self, catalog):
        node = scan(catalog, "items", columns=["price"])
        assert node.schema.names() == ("price",)

    def test_fused_scan_schema_from_outputs(self, catalog):
        node = scan(
            catalog, "items",
            predicate=lt(col("id"), 3),
            outputs=[("double", mul(col("price"), 2.0), DataType.FLOAT)],
        )
        assert node.schema.names() == ("double",)

    def test_fused_scan_empty_outputs_rejected(self, catalog):
        with pytest.raises(PlanError):
            scan(catalog, "items", outputs=[])

    def test_fused_scan_validates_predicate_columns(self, catalog):
        with pytest.raises(SchemaError):
            scan(catalog, "items", predicate=lt(col("ghost"), 3))

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(Exception):
            scan(catalog, "ghost")

    def test_signature_distinguishes_predicates(self, catalog):
        a = scan(catalog, "items", predicate=lt(col("id"), 3))
        b = scan(catalog, "items", predicate=lt(col("id"), 4))
        assert a.signature != b.signature

    def test_identical_scans_share_signature_and_auto_id(self, catalog):
        a = scan(catalog, "items", predicate=lt(col("id"), 3))
        b = scan(catalog, "items", predicate=lt(col("id"), 3))
        assert a.signature == b.signature
        assert a.op_id == b.op_id


class TestFilterProject:
    def test_filter_keeps_schema(self, catalog):
        node = filter_(scan(catalog, "items"), gt(col("price"), 1.0))
        assert node.schema.names() == ("id", "price")

    def test_filter_validates_columns(self, catalog):
        with pytest.raises(SchemaError):
            filter_(scan(catalog, "items"), gt(col("ghost"), 1.0))

    def test_filter_cost_factor_in_signature(self, catalog):
        base = scan(catalog, "items")
        cheap = filter_(base, gt(col("price"), 1.0))
        dear = filter_(base, gt(col("price"), 1.0), cost_factor=8.0)
        assert cheap.signature != dear.signature

    def test_filter_invalid_cost_factor(self, catalog):
        with pytest.raises(PlanError):
            filter_(scan(catalog, "items"), gt(col("price"), 1.0),
                    cost_factor=0.0)

    def test_project_schema(self, catalog):
        node = project(scan(catalog, "items"),
                       [("x", mul(col("price"), 3.0), DataType.FLOAT)])
        assert node.schema.names() == ("x",)
        assert node.schema.dtype_of("x") is DataType.FLOAT

    def test_project_empty_rejected(self, catalog):
        with pytest.raises(PlanError):
            project(scan(catalog, "items"), [])


class TestAggregate:
    def test_schema_keys_then_aggs(self, catalog):
        node = aggregate(scan(catalog, "items"), ["id"],
                         [AggSpec("sum", "total", col("price")),
                          AggSpec("count", "n")])
        assert node.schema.names() == ("id", "total", "n")
        assert node.schema.dtype_of("n") is DataType.INT
        assert node.schema.dtype_of("total") is DataType.FLOAT

    def test_unknown_group_key_rejected(self, catalog):
        with pytest.raises(SchemaError):
            aggregate(scan(catalog, "items"), ["ghost"],
                      [AggSpec("count", "n")])

    def test_empty_aggregate_rejected(self, catalog):
        with pytest.raises(PlanError):
            aggregate(scan(catalog, "items"), [], [])

    def test_agg_spec_validation(self):
        with pytest.raises(PlanError):
            AggSpec("median", "m", col("x"))
        with pytest.raises(PlanError):
            AggSpec("sum", "s")  # sum requires an expression
        AggSpec("count", "n")  # count(*) fine


class TestSort:
    def test_sort_keeps_schema(self, catalog):
        node = sort(scan(catalog, "items"), [("price", False)])
        assert node.schema.names() == ("id", "price")

    def test_empty_keys_rejected(self, catalog):
        with pytest.raises(PlanError):
            sort(scan(catalog, "items"), [])

    def test_unknown_key_rejected(self, catalog):
        with pytest.raises(SchemaError):
            sort(scan(catalog, "items"), [("ghost", True)])


class TestJoins:
    def test_inner_join_schema_probe_then_build(self, catalog):
        node = hash_join(
            build=scan(catalog, "tags"),
            probe=scan(catalog, "items"),
            build_key="tag_id",
            probe_key="id",
        )
        assert node.schema.names() == ("id", "price", "tag_id", "label")

    def test_semi_join_schema_probe_only(self, catalog):
        node = hash_join(
            build=scan(catalog, "tags"), probe=scan(catalog, "items"),
            build_key="tag_id", probe_key="id", join_type="semi",
        )
        assert node.schema.names() == ("id", "price")

    def test_duplicate_columns_rejected(self, catalog):
        with pytest.raises(PlanError, match="duplicate columns"):
            hash_join(
                build=scan(catalog, "items"), probe=scan(catalog, "items"),
                build_key="id", probe_key="id",
            )

    def test_unknown_join_type(self, catalog):
        with pytest.raises(PlanError):
            hash_join(
                build=scan(catalog, "tags"), probe=scan(catalog, "items"),
                build_key="tag_id", probe_key="id", join_type="cross",
            )

    def test_unknown_key_rejected(self, catalog):
        with pytest.raises(SchemaError):
            hash_join(
                build=scan(catalog, "tags"), probe=scan(catalog, "items"),
                build_key="ghost", probe_key="id",
            )

    def test_nlj_schema_and_predicate_scope(self, catalog):
        node = nested_loop_join(
            scan(catalog, "items"), scan(catalog, "tags"),
            predicate=lt(col("id"), col("tag_id")),
        )
        assert node.schema.names() == ("id", "price", "tag_id", "label")

    def test_merge_join_schema(self, catalog):
        node = merge_join(
            scan(catalog, "items"), scan(catalog, "tags"),
            left_key="id", right_key="tag_id",
        )
        assert node.schema.names() == ("id", "price", "tag_id", "label")


class TestNavigation:
    def test_walk_and_find(self, catalog):
        plan = aggregate(
            filter_(scan(catalog, "items", op_id="s"), gt(col("price"), 1.0),
                    op_id="f"),
            ["id"], [AggSpec("count", "n")], op_id="a",
        )
        assert [n.op_id for n in plan.walk()] == ["a", "f", "s"]
        assert plan.find("s").kind == "scan"
        with pytest.raises(PlanError):
            plan.find("ghost")
