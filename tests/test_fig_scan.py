"""The cooperative-scan experiment meets its acceptance criteria."""

import pytest

from repro.experiments import fig_scan


@pytest.fixture(scope="module")
def result():
    # The CLI's --quick configuration.
    return fig_scan.run(consumers=(2, 4), staggers=(0.0, 0.5),
                        prefetch_depths=(0, 2))


class TestAttachSharing:
    def test_one_physical_pass_serves_all_consumers(self, result):
        """N staggered scans cost <= 1.2x one table's io_page bill."""
        assert result.io_ratio_ok(1.2)

    def test_independent_baseline_pays_n_passes(self, result):
        assert result.independent_pays_n_passes()

    def test_answers_identical_to_independent_scans(self, result):
        assert result.answers_identical()

    def test_cooperative_makespan_beats_independent(self, result):
        for point in result.share:
            assert point.makespan_cooperative < point.makespan_independent

    def test_attach_depth_reflects_concurrency(self, result):
        lockstep = [p for p in result.share if p.stagger_fraction == 0.0]
        assert all(p.max_attach_depth == p.consumers for p in lockstep)


class TestPrefetch:
    def test_prefetch_strictly_reduces_cold_makespan(self, result):
        assert result.prefetch_strictly_helps()

    def test_overlap_is_accounted(self, result):
        deep = next(p for p in result.prefetch if p.depth > 0)
        base = next(p for p in result.prefetch if p.depth == 0)
        assert deep.io_overlapped_cost > 0
        assert base.io_overlapped_cost == 0
        assert deep.io_stall_cost < base.io_stall_cost

    def test_io_share_visible_in_stage_report(self, result):
        for point in result.prefetch:
            assert 0.0 < point.scan_io_share < 1.0


class TestScanAwareEviction:
    def test_scan_policy_beats_lru_on_second_pass(self, result):
        assert result.scan_aware_eviction_wins()
        assert result.eviction_point("lru").second_pass_hits == 0


class TestRender:
    def test_render_reports_criteria(self, result):
        text = result.render()
        assert "io ratio <= 1.2 everywhere: True" in text
        assert "answers identical: True" in text
        assert "strictly reduces makespan: True" in text
        assert "scan-aware beats LRU on reuse: True" in text
