"""Tests for stage reports (repro.engine.stats)."""

import pytest

from repro.engine import Engine, stage_report
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build


@pytest.fixture(scope="module")
def run():
    catalog = generate(scale_factor=0.0005, seed=51)
    query = build("q6", catalog)
    sim = Simulator(processors=4)
    engine = Engine(catalog, sim)
    group = engine.execute_group(
        [query.plan] * 3, pivot_op_id=query.pivot,
        labels=["a", "b", "c"],
    )
    sim.run()
    return sim, engine, group, query


class TestStageReport:
    def test_covers_all_operators(self, run):
        sim, _, _, query = run
        report = stage_report(sim)
        assert {s.op_id for s in report.stages} == {
            node.op_id for node in query.plan.walk()
        }

    def test_bottleneck_is_shared_scan(self, run):
        sim, _, _, query = run
        assert stage_report(sim).bottleneck().op_id == query.pivot

    def test_shares_sum_to_one(self, run):
        sim, _, _, _ = run
        report = stage_report(sim)
        assert sum(s.busy_share for s in report.stages) == pytest.approx(1.0)

    def test_instance_counts(self, run):
        sim, _, _, query = run
        report = stage_report(sim)
        # The shared scan ran once; the aggregate once per member.
        assert report.stage(query.pivot).instances == 1
        assert report.stage("q6_agg").instances == 3

    def test_sinks_excluded_by_default(self, run):
        sim, _, _, _ = run
        report = stage_report(sim)
        assert all(s.op_id != "sink" for s in report.stages)
        with_sinks = stage_report(sim, include_sinks=True)
        assert any(s.op_id == "sink" for s in with_sinks.stages)

    def test_group_task_source(self, run):
        _, engine, group, query = run
        report = stage_report(engine.group_tasks[group.group_id])
        assert report.stage(query.pivot).busy_time > 0

    def test_prefix_filter(self, run):
        sim, _, _, _ = run
        report = stage_report(sim, group_prefix="a/")
        # Only query a's private stages (agg) match the prefix.
        assert {s.op_id for s in report.stages} == {"q6_agg"}

    def test_render_contains_bars(self, run):
        sim, _, _, _ = run
        text = stage_report(sim).render()
        assert "#" in text
        assert "q6_scan" in text

    def test_unknown_stage(self, run):
        sim, _, _, _ = run
        with pytest.raises(KeyError):
            stage_report(sim).stage("ghost")

    def test_empty_report(self):
        report = stage_report([])
        assert report.stages == ()
        with pytest.raises(ValueError):
            report.bottleneck()
