"""Tenant-partitioned buffer pool: quotas, self-eviction, isolation."""

import pytest

from repro.db import RuntimeConfig
from repro.errors import StorageError
from repro.storage import (
    SHARED_PARTITION,
    TenantPartitionedPool,
    TenantShare,
    table_page_key,
)


def make_pool(capacity=10, shares=None):
    shares = shares if shares is not None else (
        TenantShare("acme", 4, tables=("orders",)),
        TenantShare("beta", 3, tables=("parts",)),
    )
    return TenantPartitionedPool(capacity, shares)


class TestConstruction:
    def test_share_validation(self):
        with pytest.raises(StorageError, match="non-empty name"):
            TenantShare("", 1)
        with pytest.raises(StorageError, match="reserved"):
            TenantShare(SHARED_PARTITION, 1)
        with pytest.raises(StorageError, match=">= 1 page"):
            TenantShare("acme", 0)

    def test_shares_must_fit_the_pool(self):
        with pytest.raises(StorageError, match="sum to 11"):
            make_pool(capacity=10, shares=(
                TenantShare("acme", 6), TenantShare("beta", 5),
            ))

    def test_duplicate_tenant_rejected(self):
        with pytest.raises(StorageError, match="duplicate"):
            make_pool(shares=(TenantShare("acme", 2), TenantShare("acme", 2)))

    def test_table_owned_twice_rejected(self):
        with pytest.raises(StorageError, match="owned by both"):
            make_pool(shares=(
                TenantShare("acme", 2, tables=("orders",)),
                TenantShare("beta", 2, tables=("orders",)),
            ))

    def test_needs_at_least_one_share(self):
        with pytest.raises(StorageError, match=">= 1 share"):
            TenantPartitionedPool(10, ())

    def test_only_lru_supported(self):
        with pytest.raises(StorageError, match="must be 'lru'"):
            TenantPartitionedPool(10, (TenantShare("acme", 2),), policy="mru")

    def test_config_tenants_knob_builds_a_partitioned_pool(self):
        config = RuntimeConfig(
            pool_pages=10,
            tenants=(TenantShare("acme", 4), TenantShare("beta", 3)),
        )
        pool, _, _, _ = config.build_storage()
        assert isinstance(pool, TenantPartitionedPool)
        assert pool.quota_of("acme") == 4
        assert pool.quota_of(SHARED_PARTITION) == 3

    def test_config_tenants_require_pool_pages(self):
        with pytest.raises(Exception):
            RuntimeConfig(tenants=(TenantShare("acme", 4),))

    def test_config_tenants_must_fit(self):
        with pytest.raises(Exception):
            RuntimeConfig(
                pool_pages=4,
                tenants=(TenantShare("acme", 4), TenantShare("beta", 3)),
            )


class TestRouting:
    def test_owned_table_bills_its_tenant(self):
        pool = make_pool()
        assert pool.tenant_of_table("orders") == "acme"
        assert pool.tenant_of_table("parts") == "beta"

    def test_unowned_table_and_spill_bill_shared(self):
        pool = make_pool()
        assert pool.tenant_of_table("lineitem") == SHARED_PARTITION
        assert pool.tenant_policy.partition_of(("spill", 0, 1)) == SHARED_PARTITION


class TestQuotaEnforcement:
    def test_tenant_at_quota_self_evicts_lru(self):
        pool = make_pool()
        for i in range(4):
            pool.access(table_page_key("orders", i))
        # Touch page 0 so page 1 becomes acme's LRU.
        pool.access(table_page_key("orders", 0))
        pool.access(table_page_key("orders", 4))
        assert pool.tenant_residency()["acme"] == 4
        assert table_page_key("orders", 1) not in pool
        assert table_page_key("orders", 0) in pool

    def test_hot_tenant_never_evicts_a_neighbour(self):
        pool = make_pool()
        for i in range(3):
            pool.access(table_page_key("parts", i))
        # acme loops a working set twice its own quota.
        for loop in range(3):
            for i in range(8):
                pool.access(table_page_key("orders", i))
        residency = pool.tenant_residency()
        assert residency["beta"] == 3  # untouched by acme's churn
        assert residency["acme"] == 4
        pool.check_isolation()

    def test_check_isolation_reports_violations(self):
        pool = make_pool()
        pool.access(table_page_key("orders", 0))
        # Corrupt the books to prove the checker checks.
        pool.tenant_policy._residency["acme"] = 99
        with pytest.raises(StorageError, match="over its"):
            pool.check_isolation()

    def test_zero_headroom_rejects_shared_pages(self):
        pool = make_pool(capacity=7)  # shares sum to exactly 7
        with pytest.raises(StorageError, match="no pages"):
            pool.access(table_page_key("lineitem", 0))

    def test_pinned_full_partition_raises(self):
        pool = make_pool()
        for i in range(4):
            pool.access(table_page_key("orders", i), pin=True)
        with pytest.raises(StorageError, match="every frame is pinned"):
            pool.access(table_page_key("orders", 4))

    def test_global_victim_picks_most_over_quota_partition(self):
        pool = make_pool()
        for i in range(2):
            pool.access(table_page_key("orders", i))
        for i in range(3):
            pool.access(table_page_key("parts", i))
        # beta is at quota (excess 0), acme below (excess -2).
        victim = pool.tenant_policy.victim(pool.is_pinned)
        assert victim[1] == "parts"


class TestInheritedBehaviour:
    def test_hits_and_misses_count_as_in_the_base_pool(self):
        pool = make_pool()
        assert pool.access(table_page_key("orders", 0)) is False  # miss
        assert pool.access(table_page_key("orders", 0)) is True  # hit
        snap = pool.snapshot()
        assert (snap.hits, snap.misses) == (1, 1)

    def test_residency_report_lists_shared_last(self):
        pool = make_pool()
        assert list(pool.tenant_residency()) == ["acme", "beta", SHARED_PARTITION]
