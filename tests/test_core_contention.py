"""Unit tests for the contention model (repro.core.contention)."""

import pytest

from repro.core.contention import (
    NO_CONTENTION,
    CallableContention,
    PowerLawContention,
    resolve,
)
from repro.errors import SpecError


class TestPowerLaw:
    def test_identity_at_kappa_one(self):
        assert NO_CONTENTION.effective(32) == pytest.approx(32.0)

    def test_sublinear(self):
        model = PowerLawContention(kappa=0.5)
        assert model.effective(16) == pytest.approx(4.0)

    def test_one_processor_unaffected(self):
        model = PowerLawContention(kappa=0.3)
        assert model.effective(1) == pytest.approx(1.0)

    @pytest.mark.parametrize("kappa", [0.0, -0.5, 1.5, float("nan")])
    def test_invalid_kappa_rejected(self, kappa):
        with pytest.raises(SpecError):
            PowerLawContention(kappa=kappa)

    def test_negative_n_rejected(self):
        with pytest.raises(SpecError):
            PowerLawContention(kappa=0.9).effective(-1)


class TestResolve:
    def test_none_is_no_contention(self):
        assert resolve(None).effective(8) == pytest.approx(8.0)

    def test_float_is_kappa(self):
        assert resolve(0.5).effective(16) == pytest.approx(4.0)

    def test_model_passthrough(self):
        model = PowerLawContention(kappa=0.8)
        assert resolve(model) is model

    def test_callable_wrapped(self):
        model = resolve(lambda n: n * 0.75)
        assert isinstance(model, CallableContention)
        assert model.effective(8) == pytest.approx(6.0)

    def test_callable_cannot_create_processors(self):
        with pytest.raises(SpecError):
            resolve(lambda n: n * 2).effective(4)

    def test_callable_must_be_finite(self):
        with pytest.raises(SpecError):
            resolve(lambda n: float("nan")).effective(4)

    def test_unknown_spec_rejected(self):
        with pytest.raises(SpecError):
            resolve("lots of contention")
