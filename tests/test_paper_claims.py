"""End-to-end tests pinning the paper's headline claims.

Each test quotes the claim it checks. These are the reproduction's
acceptance tests: if one fails, a shape from the paper has been lost.
"""

import pytest

from repro.engine import Engine
from repro.experiments.common import batch_speedup, shared_catalog
from repro.sim import Simulator
from repro.tpch.queries import build

SCALE = 0.001
SEED = 2007


@pytest.fixture(scope="module")
def catalog():
    return shared_catalog(SCALE, SEED)


class TestFigure1Claims:
    def test_uniprocessor_sharing_wins(self, catalog):
        """'Work sharing attains speedups up to 1.8x when the queries
        execute on a uniprocessor.'"""
        q6 = build("q6", catalog)
        assert batch_speedup(catalog, q6, 48, 1) > 1.7

    def test_multicore_sharing_harmful(self, catalog):
        """'For more than one core, work sharing is harmful for this
        specific workload' — and the 32-core case shows 'the resulting
        10x performance difference'."""
        q6 = build("q6", catalog)
        assert batch_speedup(catalog, q6, 8, 8) < 1.0
        assert batch_speedup(catalog, q6, 48, 32) < 0.15

    def test_idle_contexts_under_sharing(self, catalog):
        """'Under work sharing, the system in Figure 1 utilized only
        three of 32 available hardware contexts, while independent
        execution utilized all of them.'"""
        q6 = build("q6", catalog)

        def busy_contexts(shared):
            sim = Simulator(processors=32)
            engine = Engine(catalog, sim)
            labels = [f"q6#{i}" for i in range(48)]
            if shared:
                engine.execute_group([q6.plan] * 48, pivot_op_id=q6.pivot,
                                     labels=labels)
            else:
                for label in labels:
                    engine.execute(q6.plan, label)
            sim.run()
            return 32 * sim.utilization()

        assert busy_contexts(shared=True) < 4.0
        assert busy_contexts(shared=False) > 28.0


class TestFigure2Claims:
    def test_join_heavy_always_beneficial_small_machines(self, catalog):
        """'Work sharing is always beneficial for the join-heavy
        queries in our benchmark suite' — strictly so at 1-2 cpus."""
        for name in ("q4", "q13"):
            query = build(name, catalog)
            for n in (1, 2):
                for m in (2, 8, 32):
                    assert batch_speedup(catalog, query, m, n) > 1.5, (
                        f"{name} m={m} n={n}"
                    )

    def test_join_heavy_speedups_grow_with_clients(self, catalog):
        """'The join-heavy queries providing ever-increasing
        speedups' — Q4 approaches the paper's ~30x range."""
        q4 = build("q4", catalog)
        z = [batch_speedup(catalog, q4, m, 1) for m in (8, 24, 48)]
        assert z == sorted(z)
        assert z[-1] > 25.0

    def test_scan_heavy_curves_flatten(self, catalog):
        """'The scan-heavy speedup curves flattening out quickly':
        the marginal gain per added client shrinks.'"""
        q6 = build("q6", catalog)
        z8 = batch_speedup(catalog, q6, 8, 1)
        z24 = batch_speedup(catalog, q6, 24, 1)
        z48 = batch_speedup(catalog, q6, 48, 1)
        assert (z24 - z8) > (z48 - z24)

    def test_fewer_processors_larger_benefit(self, catalog):
        """'The fewer the processors participating, the larger the
        effect of saving work.'"""
        q4 = build("q4", catalog)
        z = {n: batch_speedup(catalog, q4, 16, n) for n in (1, 8, 32)}
        assert z[1] > z[8] > z[32]


class TestSection3Claims:
    def test_per_sharer_pivot_work_caps_scan_sharing(self, catalog):
        """'As the number of potential sharers increases, this slowdown
        quickly overwhelms the performance benefit of sharing work and
        causes speedup to level off': the shared Q6 makespan grows
        roughly linearly with m (the pivot serializes)."""
        from repro.experiments.common import batch_makespan

        q6 = build("q6", catalog)
        t8 = batch_makespan(catalog, q6, 8, 32, shared=True)
        t32 = batch_makespan(catalog, q6, 32, 32, shared=True)
        assert t32 > 2.5 * t8

    def test_join_pivot_work_insignificant(self, catalog):
        """'The per-sharer work at the pivot operator (join) is
        insignificant compared to the work performed by the scan and
        the rest of the join': the shared Q4 makespan barely grows
        with m."""
        from repro.experiments.common import batch_makespan

        q4 = build("q4", catalog)
        t8 = batch_makespan(catalog, q4, 8, 32, shared=True)
        t32 = batch_makespan(catalog, q4, 32, 32, shared=True)
        assert t32 < 1.5 * t8
