"""The drift-governance experiment meets its acceptance criteria."""

import pytest

from repro.experiments import fig_drift


@pytest.fixture(scope="module")
def result():
    # The CLI's --quick configuration plus the full top-skew cell.
    return fig_drift.run(skews=(1, 16, 64))


class TestRowSets:
    def test_identical_answers_in_every_arm(self, result):
        """Drift governance re-prices the work, never the answer."""
        assert result.answers_identical()


class TestSkewSweep:
    def test_all_arms_equal_without_skew(self, result):
        """A uniform convoy never drifts: the three arms coincide."""
        reads = {result.arm(arm, 1).physical_reads
                 for arm, _, _ in fig_drift.ARMS}
        assert len(reads) == 1

    def test_unbounded_drift_degrades_toward_private_passes(self, result):
        assert result.unbounded_degrades(floor=2.5)

    def test_throttle_restores_single_pass_at_every_skew(self, result):
        assert result.throttle_single_pass(bound=1.5)

    def test_throttle_pays_with_head_latency(self, result):
        assert result.throttle_costs_head_latency()

    def test_windows_hold_the_grouped_scan_bound(self, result):
        assert result.windows_grouped_bound(bound=2.75)

    def test_windows_pareto_dominate_at_top_skew(self, result):
        assert result.windows_dominate_at_high_skew()

    def test_windows_actually_split_under_skew(self, result):
        top = result.arm("windows", result.top_skew)
        assert top.splits >= 1
        assert top.merges >= 1

    def test_drift_bound_is_respected_by_governed_arms(self, result):
        top_throttle = result.arm("throttle", result.top_skew)
        assert top_throttle.max_lag <= fig_drift.DRIFT_BOUND
        assert (result.arm("unbounded", result.top_skew).max_lag
                > fig_drift.DRIFT_BOUND)

    def test_throttle_time_lands_in_stage_reports(self, result):
        """The pacing sleeps surface as the drift_throttle category."""
        top = result.arm("throttle", result.top_skew)
        assert top.drift_throttle_time > 0
        assert result.arm("unbounded", result.top_skew).drift_throttle_time == 0


class TestModelGuidedFlip:
    def test_discount_flips_the_decision_to_the_measured_winner(self, result):
        assert result.decision_flips()

    def test_undiscounted_projection_overpromises(self, result):
        flip = result.flip
        assert not flip.naive_share
        assert flip.shared_makespan < flip.solo_makespan

    def test_shared_group_reads_less(self, result):
        assert result.flip.shared_reads < result.flip.solo_reads


class TestRender:
    def test_render_reports_criteria(self, result):
        text = result.render()
        assert "identical answers everywhere: True" in text
        assert "windows Pareto-dominate at top skew: True" in text
        assert "discount flips the decision to the measured winner: True" in text
