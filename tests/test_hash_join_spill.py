"""The spilling hybrid hash join under memory governance.

Correctness: whatever the budget, the staged answer must equal the
reference executor's for every join type — partitioning, spilling and
recursion may reorder rows but never change the multiset.

Degradation: shrinking ``work_mem`` only ever adds spill traffic
(monotone) and never fails a query.
"""

import pytest

from repro.engine import (
    Engine,
    IO_AWARE_COST_MODEL,
    MemoryBroker,
    execute_reference,
    hash_join,
    resource_report,
    scan,
)
from repro.sim import Simulator
from repro.storage import BufferPool, Catalog, DataType, Schema

WORK_MEMS = (64, 8, 3, 1)


@pytest.fixture
def catalog():
    cat = Catalog()
    build = cat.create("build_side", Schema([
        ("bk", DataType.INT), ("bv", DataType.INT),
    ]))
    probe = cat.create("probe_side", Schema([
        ("pk", DataType.INT), ("pv", DataType.INT),
    ]))
    # Skewed keys: key 0 is heavy (stresses partition imbalance and
    # the recursion floor), plus keys without matches on either side.
    rows = []
    for i in range(900):
        key = 0 if i % 3 == 0 else i % 120
        rows.append((key, i))
    build.insert_many(rows)
    probe.insert_many([((i * 7) % 150, i) for i in range(1100)])
    return cat


def _join_plan(catalog, join_type):
    return hash_join(
        scan(catalog, "build_side"),
        scan(catalog, "probe_side"),
        build_key="bk",
        probe_key="pk",
        join_type=join_type,
        op_id=f"join_{join_type}",
    )


def _run(catalog, plan, work_mem, processors=4, pool_pages=32):
    sim = Simulator(processors=processors)
    engine = Engine(
        catalog, sim, costs=IO_AWARE_COST_MODEL,
        buffer_pool=BufferPool(pool_pages), memory=MemoryBroker(work_mem),
    )
    handle = engine.execute(plan, f"spill@{work_mem}")
    sim.run()
    return handle, engine, sim


class TestSpillingJoinCorrectness:
    @pytest.mark.parametrize("join_type", ["inner", "left", "semi", "anti"])
    @pytest.mark.parametrize("work_mem", WORK_MEMS)
    def test_matches_reference(self, catalog, join_type, work_mem):
        plan = _join_plan(catalog, join_type)
        expected = sorted(execute_reference(plan, catalog))
        handle, _, _ = _run(catalog, plan, work_mem)
        assert sorted(handle.rows) == expected

    def test_empty_probe(self, catalog):
        catalog.create("empty_probe", Schema([
            ("pk", DataType.INT), ("pv", DataType.INT),
        ]))
        plan = hash_join(
            scan(catalog, "build_side"), scan(catalog, "empty_probe"),
            build_key="bk", probe_key="pk", join_type="inner",
        )
        handle, _, _ = _run(catalog, plan, 2)
        assert handle.rows == []

    def test_empty_build_anti_join(self, catalog):
        catalog.create("empty_build", Schema([
            ("bk", DataType.INT), ("bv", DataType.INT),
        ]))
        plan = hash_join(
            scan(catalog, "empty_build"), scan(catalog, "probe_side"),
            build_key="bk", probe_key="pk", join_type="anti",
        )
        expected = sorted(execute_reference(plan, catalog))
        handle, _, _ = _run(catalog, plan, 2)
        assert sorted(handle.rows) == expected

    def test_shared_group_with_spilling_pivot(self, catalog):
        """A sharing group whose pivot is the spilling join still
        delivers every member the right answer."""
        plan = _join_plan(catalog, "inner")
        expected = sorted(execute_reference(plan, catalog))
        sim = Simulator(processors=4)
        engine = Engine(
            catalog, sim, costs=IO_AWARE_COST_MODEL,
            buffer_pool=BufferPool(32), memory=MemoryBroker(4),
        )
        group = engine.execute_group(
            [plan] * 3, pivot_op_id=plan.op_id, labels=["a", "b", "c"],
        )
        sim.run()
        for handle in group.handles:
            assert sorted(handle.rows) == expected


class TestGracefulDegradation:
    def test_spill_monotone_and_no_failure(self, catalog):
        plan = _join_plan(catalog, "inner")
        spills, makespans, answers = [], [], set()
        for work_mem in WORK_MEMS:  # descending budgets
            handle, engine, sim = _run(catalog, plan, work_mem)
            report = resource_report(engine)
            spills.append(report.spill_pages_written)
            makespans.append(sim.now)
            answers.add(len(handle.rows))
        assert len(answers) == 1
        assert spills == sorted(spills)  # shrinking budget, growing spill
        assert spills[0] == 0  # ample memory: the hybrid join never spills
        assert spills[-1] > 0  # one page: it must spill
        assert makespans[-1] >= makespans[0]

    def test_ungoverned_engine_unchanged(self, catalog):
        """Without a broker the join is the seed's in-memory build —
        no spill files, no grants, identical rows."""
        plan = _join_plan(catalog, "inner")
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim)
        handle = engine.execute(plan, "plain")
        sim.run()
        assert engine.pool is None and engine.memory is None
        assert sorted(handle.rows) == sorted(execute_reference(plan, catalog))

    def test_grants_closed_and_accounted(self, catalog):
        plan = _join_plan(catalog, "inner")
        _, engine, _ = _run(catalog, plan, 4)
        snap = engine.memory.snapshot()
        assert snap.in_use == 0
        assert all(grant.closed for grant in snap.grants)
        assert snap.high_water > 0

    def test_determinism(self, catalog):
        """Same budget, same trace: spill counters and makespan agree
        across runs (partitioning is PYTHONHASHSEED-independent)."""
        plan = _join_plan(catalog, "semi")
        first = _run(catalog, plan, 3)
        second = _run(catalog, plan, 3)
        assert first[2].now == second[2].now
        assert (resource_report(first[1]).spill_pages_written
                == resource_report(second[1]).spill_pages_written)
        assert first[0].rows == second[0].rows
