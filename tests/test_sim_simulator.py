"""Unit tests for the discrete-event simulator (repro.sim)."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import CLOSED, Close, Compute, Get, Put, Simulator, Sleep


def computer(cost, chunks=1):
    def gen():
        for _ in range(chunks):
            yield Compute(cost)

    return gen()


class TestComputeScheduling:
    def test_single_task_time(self):
        sim = Simulator(processors=1)
        sim.spawn(computer(5.0), name="t")
        sim.run()
        assert sim.now == pytest.approx(5.0)

    def test_two_tasks_one_processor_serialize(self):
        sim = Simulator(processors=1)
        sim.spawn(computer(3.0), name="a")
        sim.spawn(computer(4.0), name="b")
        sim.run()
        assert sim.now == pytest.approx(7.0)

    def test_two_tasks_two_processors_parallel(self):
        sim = Simulator(processors=2)
        sim.spawn(computer(3.0), name="a")
        sim.spawn(computer(4.0), name="b")
        sim.run()
        assert sim.now == pytest.approx(4.0)

    def test_round_robin_fairness(self):
        # Two equal tasks of 4 chunks on one CPU interleave, so both
        # finish within one chunk of each other, not back-to-back.
        sim = Simulator(processors=1)
        a = sim.spawn(computer(1.0, chunks=4), name="a")
        b = sim.spawn(computer(1.0, chunks=4), name="b")
        sim.run()
        assert abs(a.finished_at - b.finished_at) <= 1.0 + 1e-9
        assert sim.now == pytest.approx(8.0)

    def test_busy_time_accounting(self):
        sim = Simulator(processors=2)
        t1 = sim.spawn(computer(3.0), name="a")
        t2 = sim.spawn(computer(4.0), name="b")
        sim.run()
        assert t1.busy_time == pytest.approx(3.0)
        assert t2.busy_time == pytest.approx(4.0)
        assert sim.total_busy_time == pytest.approx(7.0)
        assert sim.utilization() == pytest.approx(7.0 / 8.0)

    def test_zero_cost_compute_advances_nothing(self):
        sim = Simulator(processors=1)
        sim.spawn(computer(0.0, chunks=3), name="t")
        sim.run()
        assert sim.now == 0.0

    def test_negative_cost_rejected(self):
        with pytest.raises(SimulationError):
            Compute(-1.0)

    def test_invalid_processor_count(self):
        with pytest.raises(SimulationError):
            Simulator(processors=0)

    def test_run_until_pauses_and_resumes(self):
        sim = Simulator(processors=1)
        sim.spawn(computer(10.0), name="t")
        sim.run(until=4.0)
        assert sim.now == pytest.approx(4.0)
        assert sim.completions == []
        sim.run()
        assert sim.now == pytest.approx(10.0)
        assert len(sim.completions) == 1

    def test_completion_callback_fires_at_finish_time(self):
        sim = Simulator(processors=1)
        seen = []
        sim.spawn(
            computer(2.0), name="t", on_done=lambda t: seen.append((t.name, sim.now))
        )
        sim.run()
        assert seen == [("t", pytest.approx(2.0))]

    def test_on_done_can_respawn(self):
        sim = Simulator(processors=1)
        counter = {"n": 0}

        def respawn(task):
            counter["n"] += 1
            if counter["n"] < 3:
                sim.spawn(computer(1.0), name=f"t{counter['n']}", on_done=respawn)

        sim.spawn(computer(1.0), name="t0", on_done=respawn)
        sim.run()
        assert counter["n"] == 3
        assert sim.now == pytest.approx(3.0)


class TestContention:
    def test_kappa_one_is_no_slowdown(self):
        sim = Simulator(processors=2, contention=1.0)
        sim.spawn(computer(3.0), name="a")
        sim.spawn(computer(3.0), name="b")
        sim.run()
        assert sim.now == pytest.approx(3.0)

    def test_sublinear_kappa_slows_parallel_tasks(self):
        sim = Simulator(processors=2, contention=0.5)
        sim.spawn(computer(3.0), name="a")
        sim.spawn(computer(3.0), name="b")
        sim.run()
        # 2 busy contexts at kappa=.5 -> speed 2**0.5/2 each.
        assert sim.now > 3.0

    def test_single_task_unaffected_by_contention(self):
        sim = Simulator(processors=4, contention=0.5)
        sim.spawn(computer(3.0), name="a")
        sim.run()
        assert sim.now == pytest.approx(3.0)


class TestQueues:
    def test_pipeline_transfers_all_items(self):
        sim = Simulator(processors=2)
        q = sim.queue("p->c", capacity=2)
        received = []

        def producer():
            for i in range(10):
                yield Compute(1.0)
                yield Put(q, i)
            yield Close(q)

        def consumer():
            while True:
                item = yield Get(q)
                if item is CLOSED:
                    return
                yield Compute(0.5)
                received.append(item)

        sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="c")
        sim.run()
        assert received == list(range(10))
        assert q.total_enqueued == 10
        assert q.total_dequeued == 10

    def test_bounded_queue_throttles_fast_producer(self):
        # Producer makes an item every 1.0; consumer needs 4.0 each.
        # With capacity 2 the producer must wait; total time is
        # consumer-bound: ~ 10 * 4.
        sim = Simulator(processors=2)
        q = sim.queue("p->c", capacity=2)

        def producer():
            for i in range(10):
                yield Compute(1.0)
                yield Put(q, i)
            yield Close(q)

        def consumer():
            while True:
                item = yield Get(q)
                if item is CLOSED:
                    return
                yield Compute(4.0)

        p = sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="c")
        sim.run()
        assert sim.now == pytest.approx(41.0)
        # The producer finished long before the consumer.
        assert p.finished_at < sim.now

    def test_consumer_blocks_until_item_arrives(self):
        sim = Simulator(processors=2)
        q = sim.queue("q", capacity=1)
        times = []

        def producer():
            yield Compute(5.0)
            yield Put(q, "x")
            yield Close(q)

        def consumer():
            item = yield Get(q)
            times.append((item, sim.now))
            while (yield Get(q)) is not CLOSED:
                pass

        sim.spawn(consumer(), name="c")
        sim.spawn(producer(), name="p")
        sim.run()
        assert times == [("x", pytest.approx(5.0))]

    def test_close_wakes_all_getters(self):
        sim = Simulator(processors=4)
        q = sim.queue("q", capacity=1)
        woken = []

        def consumer(i):
            item = yield Get(q)
            woken.append((i, item))

        def closer():
            yield Compute(1.0)
            yield Close(q)

        for i in range(3):
            sim.spawn(consumer(i), name=f"c{i}")
        sim.spawn(closer(), name="x")
        sim.run()
        assert sorted(woken) == [(0, CLOSED), (1, CLOSED), (2, CLOSED)]

    def test_get_after_close_drains_remaining_items(self):
        sim = Simulator(processors=1)
        q = sim.queue("q", capacity=4)
        got = []

        def producer():
            yield Put(q, 1)
            yield Put(q, 2)
            yield Close(q)
            yield Compute(1.0)

        def consumer():
            while True:
                item = yield Get(q)
                got.append(item)
                if item is CLOSED:
                    return

        sim.spawn(producer(), name="p")
        sim.spawn(consumer(), name="c")
        sim.run()
        assert got == [1, 2, CLOSED]

    def test_put_to_closed_queue_is_error(self):
        sim = Simulator(processors=1)
        q = sim.queue("q", capacity=1)

        def bad():
            yield Close(q)
            yield Put(q, 1)

        sim.spawn(bad(), name="bad")
        with pytest.raises(SimulationError):
            sim.run()

    def test_invalid_capacity(self):
        sim = Simulator(processors=1)
        with pytest.raises(SimulationError):
            sim.queue("q", capacity=0)

    def test_multiple_producers_single_consumer(self):
        sim = Simulator(processors=4)
        q = sim.queue("q", capacity=2)
        done = {"producers": 0}
        got = []

        def producer(i):
            for j in range(5):
                yield Compute(1.0)
                yield Put(q, (i, j))
            done["producers"] += 1
            if done["producers"] == 3:
                yield Close(q)

        def consumer():
            while True:
                item = yield Get(q)
                if item is CLOSED:
                    return
                yield Compute(0.1)
                got.append(item)

        for i in range(3):
            sim.spawn(producer(i), name=f"p{i}")
        sim.spawn(consumer(), name="c")
        sim.run()
        assert len(got) == 15
        assert sorted(got) == sorted((i, j) for i in range(3) for j in range(5))


class TestDeadlockAndErrors:
    def test_deadlock_detected(self):
        sim = Simulator(processors=1)
        q = sim.queue("never-fed", capacity=1)

        def starving():
            yield Get(q)

        sim.spawn(starving(), name="s")
        with pytest.raises(DeadlockError, match="s"):
            sim.run()

    def test_task_exception_propagates(self):
        sim = Simulator(processors=1)

        def crasher():
            yield Compute(1.0)
            raise ValueError("boom")

        sim.spawn(crasher(), name="crash")
        with pytest.raises(SimulationError, match="boom"):
            sim.run()

    def test_livelock_guard(self):
        sim = Simulator(processors=1, max_zero_time_steps=100)

        def spinner():
            while True:
                yield Compute(0.0)

        sim.spawn(spinner(), name="spin")
        with pytest.raises(SimulationError, match="livelock"):
            sim.run()

    def test_unknown_request_rejected(self):
        sim = Simulator(processors=1)

        def weird():
            yield "not-a-request"

        sim.spawn(weird(), name="w")
        with pytest.raises(SimulationError, match="unknown request"):
            sim.run()


class TestSleep:
    def test_sleep_does_not_hold_processor(self):
        sim = Simulator(processors=1)

        def sleeper():
            yield Sleep(10.0)
            yield Compute(1.0)

        def worker():
            yield Compute(5.0)

        sim.spawn(sleeper(), name="s")
        sim.spawn(worker(), name="w")
        sim.run()
        # worker's 5.0 of compute overlaps the sleep; total 11, not 16.
        assert sim.now == pytest.approx(11.0)

    def test_negative_sleep_rejected(self):
        with pytest.raises(SimulationError):
            Sleep(-1.0)


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build_and_run():
            sim = Simulator(processors=3)
            q = sim.queue("q", capacity=2)
            order = []

            def producer(i):
                for j in range(4):
                    yield Compute(1.0 + 0.1 * i)
                    yield Put(q, (i, j))
                if i == 2:
                    yield Close(q)

            def consumer():
                while True:
                    item = yield Get(q)
                    if item is CLOSED:
                        return
                    yield Compute(0.7)
                    order.append((item, round(sim.now, 9)))

            for i in range(3):
                sim.spawn(producer(i), name=f"p{i}")
            sim.spawn(consumer(), name="c")
            sim.run()
            return order, sim.now

        first = build_and_run()
        second = build_and_run()
        assert first == second
