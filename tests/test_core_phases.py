"""Unit tests for stop-&-go decomposition (repro.core.phases)."""

import pytest

from repro.core import metrics
from repro.core.phases import PHASE_INTERNAL, PHASE_PIPELINE, PhasedQuery, decompose
from repro.core.spec import QuerySpec, chain, op
from repro.errors import SpecError


def sort_query(run=3.0, merge=2.0, replay=0.5):
    root = chain(
        op("scan", 10.0),
        op("sort", run, 1.0, blocking=True, internal_work=merge, emit_work=replay),
        op("agg", 4.0),
    )
    return QuerySpec(root, label="sortq")


class TestDecompose:
    def test_pipelined_query_single_phase(self):
        q = QuerySpec(chain(op("scan", 1.0), op("agg", 2.0)), label="q")
        phases = decompose(q)
        assert len(phases) == 1
        assert phases[0].kind == PHASE_PIPELINE
        assert phases[0].source is None
        assert phases[0].query.operator_names() == q.operator_names()

    def test_sort_decomposes_to_three_phases(self):
        phases = decompose(sort_query())
        assert [p.kind for p in phases] == [
            PHASE_PIPELINE,
            PHASE_INTERNAL,
            PHASE_PIPELINE,
        ]
        assert phases[0].source == "sort"
        assert phases[1].source == "sort"
        assert phases[2].source is None

    def test_consume_phase_contents(self):
        phases = decompose(sort_query())
        consume = phases[0].query
        assert consume.root.name == "sort#consume"
        assert consume.root.work == pytest.approx(3.0)
        assert [n.name for n in consume.root.children] == ["scan"]

    def test_internal_phase_isolated(self):
        phases = decompose(sort_query())
        internal = phases[1].query
        assert internal.operator_names() == ("sort#internal",)
        assert internal.root.work == pytest.approx(2.0)

    def test_final_phase_replays_sorted_output(self):
        phases = decompose(sort_query())
        final = phases[-1].query
        assert final.operator_names() == ("agg", "sort#replay")
        replay = final["sort#replay"]
        assert replay.work == pytest.approx(0.5)
        assert replay.output_cost == pytest.approx(1.0)

    def test_zero_internal_work_skips_internal_phase(self):
        q = QuerySpec(
            chain(
                op("scan", 10.0),
                op("sort", 3.0, blocking=True, emit_work=0.5),
                op("agg", 4.0),
            ),
            label="q",
        )
        phases = decompose(q)
        assert [p.kind for p in phases] == [PHASE_PIPELINE, PHASE_PIPELINE]

    def test_all_phases_are_pipelined(self):
        for phase in decompose(sort_query()):
            assert phase.query.is_pipelined()

    def test_two_blocking_nodes_merge_join_shape(self):
        left = op("sortL", 2.0, blocking=True, emit_work=0.1)
        right = op("sortR", 3.0, blocking=True, emit_work=0.2)
        root = op(
            "merge",
            1.0,
            0.0,
            left.with_children((op("scanL", 5.0),)),
            right.with_children((op("scanR", 6.0),)),
        )
        phases = decompose(QuerySpec(root, label="mj"))
        # sortL consume, sortR consume, final merge over two replays.
        assert len(phases) == 3
        final = phases[-1].query
        assert set(final.operator_names()) == {"merge", "sortL#replay", "sortR#replay"}

    def test_nested_blocking_processed_innermost_first(self):
        inner = op("sortA", 2.0, blocking=True, emit_work=0.1)
        outer = op("sortB", 3.0, blocking=True, emit_work=0.2)
        root = outer.with_children(
            (op("mid", 1.0, 0.0, inner.with_children((op("scan", 4.0),))),)
        )
        phases = decompose(QuerySpec(root, label="nested"))
        assert phases[0].source == "sortA"
        assert phases[1].source == "sortB"
        # sortB's consume phase sees sortA replaced by its replay leaf.
        assert "sortA#replay" in phases[1].query

    def test_invalid_volume_rejected(self):
        with pytest.raises(SpecError):
            decompose(sort_query(), volume=0.0)

    def test_work_conservation(self):
        """Decomposition keeps every cost component exactly once."""
        q = sort_query(run=3.0, merge=2.0, replay=0.5)
        phases = decompose(q)
        total = sum(metrics.total_work(p.query) for p in phases)
        # scan 10 + sort consume 3 + internal 2 + replay (0.5 + s 1.0) + agg 4
        assert total == pytest.approx(10 + 3 + 2 + 1.5 + 4)


class TestPhasedQuery:
    def test_single_phase_matches_plain_model(self):
        q = QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="q6")
        pq = PhasedQuery(q)
        assert len(pq.phases) == 1
        z_direct = pq.sharing_benefit("scan", m=32, n=1)
        assert z_direct > 1.0

    def test_unshared_time_decreases_with_processors(self):
        pq = PhasedQuery(sort_query())
        t2 = pq.unshared_time(m=8, n=2)
        t8 = pq.unshared_time(m=8, n=8)
        assert t8 < t2

    def test_shared_time_only_shares_phase_containing_pivot(self):
        pq = PhasedQuery(sort_query())
        # scan lives in the consume phase only.
        t = pq.shared_time("scan", m=4, n=1)
        assert t > 0

    def test_sharing_benefit_positive(self):
        pq = PhasedQuery(sort_query())
        z = pq.sharing_benefit("scan", m=8, n=1)
        assert z > 0

    def test_sharing_scan_on_one_cpu_helps_sort_query(self):
        pq = PhasedQuery(sort_query())
        assert pq.sharing_benefit("scan", m=16, n=1) > 1.0

    def test_invalid_m_rejected(self):
        pq = PhasedQuery(sort_query())
        with pytest.raises(SpecError):
            pq.unshared_time(m=0, n=1)
        with pytest.raises(SpecError):
            pq.shared_time("scan", m=0, n=1)

    def test_total_work_matches_decomposition(self):
        pq = PhasedQuery(sort_query())
        assert pq.total_work() == pytest.approx(10 + 3 + 2 + 1.5 + 4)
