"""Tests for the repro-experiments command-line interface."""

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_section4_runs(self, capsys):
        assert main(["section4"]) == 0
        out = capsys.readouterr().out
        assert "Section 4.4 worked example" in out
        assert "[section4 completed" in out

    def test_fig4_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4 (left)" in out

    def test_multiple_experiments_deduplicated(self, capsys):
        assert main(["section4", "section4"]) == 0
        out = capsys.readouterr().out
        assert out.count("Section 4.4 worked example") == 1

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_requires_argument(self):
        with pytest.raises(SystemExit):
            main([])
