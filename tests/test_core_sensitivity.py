"""Unit tests for the Section 6 sensitivity sweeps (Figure 4)."""

import pytest

from repro.core import metrics
from repro.core.sensitivity import (
    baseline_query,
    staged_query,
    sweep_output_cost,
    sweep_processors,
    sweep_work_below_pivot,
    work_eliminated_fraction,
)
from repro.errors import SpecError


class TestBaselineQuery:
    def test_shape(self):
        q = baseline_query()
        assert q.operator_names() == ("top", "pivot", "bottom")

    def test_eliminates_nearly_sixty_percent(self):
        # "Work sharing therefore eliminates nearly 60% of the work"
        frac = work_eliminated_fraction(baseline_query(), "pivot")
        assert frac == pytest.approx(16 / 27, abs=1e-9)
        assert 0.55 < frac < 0.62


class TestStagedQuery:
    def test_all_stages_present(self):
        q = staged_query(2)
        names = set(q.operator_names())
        assert {"bottom", "pivot", "below0", "below1", "above0", "above1",
                "above2"} <= names

    def test_total_work_constant_across_splits(self):
        totals = {metrics.total_work(staged_query(k)) for k in range(6)}
        assert len(totals) == 1

    def test_fraction_eliminated_matches_figure_labels(self):
        # Figure 4 (right) labels: 0/5 -> 28%, ..., 5/5 -> 98%.
        # Total work = 10 + (6 + 1) + 5*8 = 57; eliminated = 16 + 8k.
        fractions = [
            work_eliminated_fraction(staged_query(k), "pivot") for k in range(6)
        ]
        for k, frac in enumerate(fractions):
            assert frac == pytest.approx((16 + 8 * k) / 57)
        assert round(fractions[0] * 100) == 28
        assert round(fractions[5] * 100) == 98

    def test_invalid_split_rejected(self):
        with pytest.raises(SpecError):
            staged_query(6)
        with pytest.raises(SpecError):
            staged_query(-1)


class TestSweepProcessors:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_processors(clients=range(1, 41))

    def test_series_keys(self, sweep):
        assert set(sweep.series) == {1.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0}

    def test_one_cpu_sharing_always_helps_at_load(self, sweep):
        row = dict(zip(sweep.clients, sweep.series[1.0]))
        assert row[40] > 1.5

    def test_32_cpu_sharing_never_helps(self, sweep):
        # "the model can help predict whether work sharing is always
        # (4 CPU), never (32 CPU), or sometimes (16 CPU) worthwhile"
        assert not sweep.ever_beneficial(32.0)

    def test_4_cpu_sharing_eventually_helps(self, sweep):
        assert sweep.ever_beneficial(4.0)

    def test_16_cpu_sometimes(self, sweep):
        row = sweep.series[16.0]
        assert any(z > 1.0 for z in row)
        assert any(z < 1.0 for z in row)

    def test_few_processors_benefit_most(self, sweep):
        # At heavy load, fewer processors -> larger benefit from sharing.
        at_40 = {n: dict(zip(sweep.clients, row))[40]
                 for n, row in sweep.series.items()}
        # 1 and 8 CPUs are both fully CPU-bound at m=40, so Z ties there;
        # the ordering is non-strict on the left and strict vs 32 CPUs.
        assert at_40[1.0] >= at_40[8.0] > at_40[32.0]
        # At lighter load the machine-size effect separates strictly.
        at_10 = {n: dict(zip(sweep.clients, row))[10]
                 for n, row in sweep.series.items()}
        assert at_10[1.0] > at_10[32.0]

    def test_best_client_count_helper(self, sweep):
        assert 1 <= sweep.best_client_count(1.0) <= 40


class TestSweepOutputCost:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_output_cost(clients=range(1, 41))

    def test_zero_cost_saturates_and_wins(self, sweep):
        # s=0: no serialization; sharing saturates the machine by ~30
        # queries and eventually wins.
        row = dict(zip(sweep.clients, sweep.series[0.0]))
        assert row[40] > 1.0

    def test_high_cost_never_wins_on_32_cores(self, sweep):
        assert not sweep.ever_beneficial(4.0)

    def test_benefit_decreases_with_s(self, sweep):
        at_40 = {s: dict(zip(sweep.clients, row))[40]
                 for s, row in sweep.series.items()}
        ordered = [at_40[s] for s in (0.0, 0.25, 0.5, 1.0, 2.0, 4.0)]
        assert ordered == sorted(ordered, reverse=True)


class TestSweepWorkBelowPivot:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_work_below_pivot(clients=range(1, 41))

    def test_six_series(self, sweep):
        assert set(sweep.series) == {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}

    def test_more_work_below_pivot_helps_more_until_last(self, sweep):
        # Figure 4 (right): each stage moved below the pivot increases
        # speedup, except the last one (diminishing return from the
        # parallelism cap).
        at_40 = {k: dict(zip(sweep.clients, row))[40]
                 for k, row in sweep.series.items()}
        assert at_40[0.0] < at_40[1.0] < at_40[2.0] < at_40[3.0] < at_40[4.0]

    def test_last_stage_diminishing_return(self, sweep):
        at_40 = {k: dict(zip(sweep.clients, row))[40]
                 for k, row in sweep.series.items()}
        gain_4 = at_40[4.0] - at_40[3.0]
        gain_5 = at_40[5.0] - at_40[4.0]
        assert gain_5 < gain_4

    def test_speedup_far_below_work_elimination_bound(self, sweep):
        # Eliminating 98% of work suggests 50x; parallelism loss caps
        # the benefit to a small multiple on 8 processors.
        at_40 = dict(zip(sweep.clients, sweep.series[5.0]))[40]
        assert at_40 < 10.0
