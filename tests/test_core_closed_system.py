"""Unit tests for Section 5.1 (repro.core.closed_system)."""

import pytest

from repro.core.closed_system import (
    closed_peak_rate,
    closed_utilization,
    little_throughput,
    unshared_rate_closed,
)
from repro.core.model import unshared_rate
from repro.core.spec import QuerySpec, chain, op
from repro.errors import SpecError


def make_query(p_bottom, p_top, label):
    return QuerySpec(chain(op("scan", p_bottom), op("agg", p_top)), label=label)


@pytest.fixture
def fast_slow():
    return [make_query(2.0, 1.0, "fast"), make_query(10.0, 1.0, "slow")]


class TestLittlesLaw:
    def test_basic(self):
        assert little_throughput(20, 4.0) == pytest.approx(5.0)

    def test_zero_clients(self):
        assert little_throughput(0, 1.0) == 0.0

    def test_negative_clients_rejected(self):
        with pytest.raises(SpecError):
            little_throughput(-1, 1.0)

    def test_nonpositive_response_time_rejected(self):
        with pytest.raises(SpecError):
            little_throughput(1, 0.0)


class TestClosedPeakRate:
    def test_identical_queries_match_open_model(self):
        q = make_query(4.0, 1.0, "q")
        group = [q.relabeled(f"q{i}") for i in range(6)]
        assert closed_peak_rate(group) == pytest.approx(6 / 4.0)

    def test_harmonic_mean_shape(self, fast_slow):
        # M^2 / sum(p_max) = 4 / 12
        assert closed_peak_rate(fast_slow) == pytest.approx(4 / 12.0)

    def test_faster_query_raises_aggregate(self, fast_slow):
        slow_only = [fast_slow[1], fast_slow[1].relabeled("slow2")]
        assert closed_peak_rate(fast_slow) > closed_peak_rate(slow_only)

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            closed_peak_rate([])


class TestClosedUtilization:
    def test_each_query_throttled_by_own_pmax(self, fast_slow):
        # fast: u' = 3, pmax = 2 -> 1.5; slow: u' = 11, pmax = 10 -> 1.1
        assert closed_utilization(fast_slow) == pytest.approx(1.5 + 1.1)

    def test_empty_rejected(self):
        with pytest.raises(SpecError):
            closed_utilization([])


class TestUnsharedRateClosed:
    def test_identical_queries_equal_open_variant(self):
        q = make_query(4.0, 3.0, "q")
        group = [q.relabeled(f"q{i}") for i in range(8)]
        for n in (1, 2, 4, 16):
            assert unshared_rate_closed(group, n) == pytest.approx(
                unshared_rate(group, n)
            )

    def test_mismatched_closed_exceeds_open_when_unsaturated(self, fast_slow):
        # Open model throttles the fast query to the slow one's rate;
        # the closed model lets its replacements keep arriving.
        n = 32
        assert unshared_rate_closed(fast_slow, n) > unshared_rate(fast_slow, n)

    def test_contention_reduces_rate(self, fast_slow):
        assert unshared_rate_closed(fast_slow, 2, contention=0.7) <= (
            unshared_rate_closed(fast_slow, 2)
        )

    def test_monotone_in_n(self, fast_slow):
        rates = [unshared_rate_closed(fast_slow, n) for n in (1, 2, 4, 8)]
        assert rates == sorted(rates)

    def test_blocking_plan_rejected(self):
        q = QuerySpec(chain(op("scan", 1.0), op("sort", 2.0, blocking=True)))
        with pytest.raises(SpecError):
            unshared_rate_closed([q], 2)
