"""The bench-trajectory checkpoint format and its regression diff.

Synthetic old/new trajectory pairs with injected regressions and
improvements drive the whole ``repro perf diff`` contract: per-bench
noise tolerances, the median-of-k wall rule, sim-time change flags,
exit statuses (0 clean / 1 past gate / 2 structural), legacy flat
files, and schema errors.
"""

import json

import pytest

from repro.cli import main
from repro.obs.bench import (
    LEGACY_SCHEMA,
    SCHEMA,
    BenchSchemaError,
    BenchTrajectory,
    diff_trajectories,
)


def _pair(old_wall=1.0, new_wall=1.0, sim=100.0, new_sim=None, **record):
    """One-bench old/new trajectory pair with the same fingerprint."""
    host = {"python": "3.11", "implementation": "CPython", "platform": "x"}
    old = BenchTrajectory(host=host)
    old.record("bench", sim_time=sim, wall_s=old_wall, **record)
    new = BenchTrajectory(host=host)
    new.record(
        "bench", sim_time=sim if new_sim is None else new_sim,
        wall_s=new_wall, **record,
    )
    return old, new


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------


def test_record_median_of_k_rule():
    trajectory = BenchTrajectory()
    entry = trajectory.record(
        "b", sim_time=1.0, wall_samples=[0.010, 0.500, 0.011]
    )
    assert entry.wall_s == 0.011  # the noisy 0.5 round cannot win
    assert entry.wall_samples == (0.010, 0.500, 0.011)


def test_record_needs_some_wall_measurement():
    with pytest.raises(ValueError, match="wall_s or wall_samples"):
        BenchTrajectory().record("b", sim_time=1.0)


def test_record_derives_throughput():
    entry = BenchTrajectory().record("b", sim_time=1.0, wall_s=0.5, rows=100)
    assert entry.rows_per_s == 200.0


def test_roundtrip_through_file(tmp_path):
    trajectory = BenchTrajectory()
    trajectory.record("b", sim_time=2.0, wall_s=0.25,
                      counters={"reads": 7}, rows=50)
    path = tmp_path / "BENCH.json"
    trajectory.write(path)
    loaded = BenchTrajectory.load(path)
    assert loaded.schema == SCHEMA
    assert loaded.host == trajectory.host
    assert loaded.entries["b"].counters == {"reads": 7}
    assert loaded.entries["b"].rows_per_s == 200.0


def test_legacy_flat_file_loads_as_schema_zero(tmp_path):
    path = tmp_path / "BENCH_6.json"
    path.write_text(json.dumps({
        "old_bench": {"sim_time": 6777.85, "wall_s": 0.02,
                      "counters": {"stall.cpu": 1.0}},
    }))
    loaded = BenchTrajectory.load(path)
    assert loaded.schema == LEGACY_SCHEMA
    assert loaded.host is None
    assert loaded.entries["old_bench"].wall_s == 0.02


# ----------------------------------------------------------------------
# diff verdicts
# ----------------------------------------------------------------------


def test_injected_regression_flagged_and_gated():
    old, new = _pair(old_wall=1.0, new_wall=1.25)  # +25%
    report = diff_trajectories(old, new, fail_over_pct=20.0)
    (delta,) = report.deltas
    assert delta.regressed and delta.verdict == "REGRESSED"
    assert delta.wall_delta_pct == pytest.approx(25.0)
    assert report.failures == [delta]
    assert report.exit_status() == 1
    assert "REGRESSED" in report.render()


def test_injected_improvement_is_not_a_failure():
    old, new = _pair(old_wall=1.0, new_wall=0.75)  # -25%
    report = diff_trajectories(old, new, fail_over_pct=20.0)
    (delta,) = report.deltas
    assert delta.improved and delta.verdict == "improved"
    assert report.exit_status() == 0


def test_noise_within_tolerance_is_ok():
    old, new = _pair(old_wall=1.0, new_wall=1.05)  # +5% < 10% default
    (delta,) = diff_trajectories(old, new).deltas
    assert delta.verdict == "ok"


def test_per_bench_tolerance_widens_the_gate():
    old, new = _pair(old_wall=1.0, new_wall=1.25, tolerance_pct=30.0)
    report = diff_trajectories(old, new, fail_over_pct=20.0)
    (delta,) = report.deltas
    assert not delta.regressed  # 25% < this bench's own 30% band
    assert report.exit_status() == 0


def test_report_only_never_fails_the_gate():
    old, new = _pair(old_wall=1.0, new_wall=3.0)
    report = diff_trajectories(old, new)  # no --fail-over
    assert report.regressions and not report.failures
    assert report.exit_status() == 0
    assert "report-only" in report.render()


def test_diff_judges_median_not_stored_wall():
    host = {"python": "3.11"}
    old = BenchTrajectory(host=host)
    old.record("b", sim_time=1.0, wall_s=1.0)
    new = BenchTrajectory(host=host)
    new.record("b", sim_time=1.0, wall_samples=[1.01, 9.0, 0.99])
    (delta,) = diff_trajectories(old, new).deltas
    assert delta.new_wall_s == 1.01
    assert delta.verdict == "ok"


def test_any_sim_time_change_is_flagged():
    old, new = _pair(sim=100.0, new_sim=100.001)
    (delta,) = diff_trajectories(old, new).deltas
    assert delta.sim_changed
    assert "[sim" in diff_trajectories(old, new).render()
    same_old, same_new = _pair(sim=100.0)
    assert not diff_trajectories(same_old, same_new).deltas[0].sim_changed


def test_sim_time_change_fails_a_gated_diff():
    # Report-only: flagged but exit 0. Gated: the simulator is
    # deterministic, so any sim delta is a behavior change and fails
    # regardless of wall tolerance.
    old, new = _pair(sim=100.0, new_sim=100.001)
    assert diff_trajectories(old, new).exit_status() == 0
    report = diff_trajectories(old, new, fail_over_pct=50.0)
    assert report.sim_changes and not report.failures
    assert report.exit_status() == 1


# ----------------------------------------------------------------------
# structural problems
# ----------------------------------------------------------------------


def test_missing_bench_is_structural_error():
    old = BenchTrajectory()
    old.record("kept", sim_time=1.0, wall_s=1.0)
    old.record("renamed", sim_time=1.0, wall_s=1.0)
    new = BenchTrajectory()
    new.record("kept", sim_time=1.0, wall_s=1.0)
    new.record("brand_new", sim_time=1.0, wall_s=1.0)
    report = diff_trajectories(old, new)
    assert report.missing == ("renamed",)
    assert report.added == ("brand_new",)
    assert report.exit_status() == 2
    assert "MISSING" in report.render()


def test_cross_host_and_legacy_warnings():
    old, new = _pair()
    report = diff_trajectories(old, new)
    assert report.warnings == ()

    other = BenchTrajectory(host={"python": "3.12", "platform": "y"})
    other.record("bench", sim_time=100.0, wall_s=1.0)
    (warning,) = diff_trajectories(old, other).warnings
    assert "cross-host" in warning

    legacy = BenchTrajectory(schema=LEGACY_SCHEMA, host=None)
    legacy.record("bench", sim_time=100.0, wall_s=1.0)
    warnings = diff_trajectories(legacy, new).warnings
    assert any("schema versions differ" in w for w in warnings)
    assert any("no host fingerprint" in w for w in warnings)


@pytest.mark.parametrize("raw", [
    [],                                     # not an object
    {"schema": "repro-bench/99", "benches": {}},  # unknown version
    {"schema": SCHEMA},                     # no benches object
    {"b": {"wall_s": 1.0}},                 # entry missing sim_time
    {},                                     # empty flat object
])
def test_schema_mismatches_raise(raw):
    with pytest.raises(BenchSchemaError):
        BenchTrajectory.from_dict(raw)


def test_load_rejects_non_json(tmp_path):
    path = tmp_path / "BENCH.json"
    path.write_text("not json {")
    with pytest.raises(BenchSchemaError, match="not JSON"):
        BenchTrajectory.load(path)


# ----------------------------------------------------------------------
# the CLI gate
# ----------------------------------------------------------------------


def _write_pair(tmp_path, new_wall):
    old, new = _pair(old_wall=1.0, new_wall=new_wall)
    old_path, new_path = tmp_path / "OLD.json", tmp_path / "NEW.json"
    old.write(old_path)
    new.write(new_path)
    return str(old_path), str(new_path)


def test_cli_diff_exit_statuses(tmp_path, capsys):
    old_path, new_path = _write_pair(tmp_path, new_wall=1.25)
    assert main(["perf", "diff", old_path, new_path]) == 0  # report-only
    assert main(["perf", "diff", old_path, new_path,
                 "--fail-over", "20"]) == 1
    out = capsys.readouterr().out
    assert "past gate" in out

    clean_old, clean_new = _write_pair(tmp_path, new_wall=1.0)
    assert main(["perf", "diff", clean_old, clean_new,
                 "--fail-over", "20"]) == 0


def test_cli_diff_structural_errors(tmp_path, capsys):
    old_path, _ = _write_pair(tmp_path, new_wall=1.0)
    assert main(["perf", "diff", old_path,
                 str(tmp_path / "absent.json")]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    assert main(["perf", "diff", old_path, str(bad)]) == 2
    assert "error:" in capsys.readouterr().err
