"""The share-vs-parallelize experiment meets its acceptance criteria."""

import pytest

from repro.experiments import fig_parallel


@pytest.fixture(scope="module")
def result():
    return fig_parallel.run()


class TestCrossover:
    def test_parallel_wins_uncontended(self, result):
        """Low skew, plentiful contexts, few consumers: fragmenting
        beats sharing."""
        assert result.parallel_wins_uncontended()

    def test_share_wins_contended(self, result):
        """Scarce, contended contexts and many consumers: the shared
        pivot beats m*dop fragments."""
        assert result.share_wins_contended()

    def test_crossover_spans_the_sweep(self, result):
        winners = {c.measured_winner for c in result.cells}
        assert winners == {"share", "parallel"}

    def test_consumer_axis_flips_the_winner_when_contended(self, result):
        contended = [
            c for c in result.cells
            if c.contention is not None and c.skew == "uniform"
        ]
        by_m = {c.consumers: c.measured_winner for c in contended}
        assert by_m[min(by_m)] == "parallel"
        assert by_m[max(by_m)] == "share"


class TestPolicyAccuracy:
    def test_policy_picks_the_winner_in_at_least_ninety_percent(self, result):
        assert result.policy_accuracy() >= 0.9

    def test_policy_consulted_in_every_cell(self, result):
        modes = {c.policy_mode for c in result.cells}
        assert modes <= {"solo", "share", "parallel", "both"}
        assert "parallel" in modes  # it does choose to fragment...
        assert modes & {"share", "both"}  # ...and also to share

    def test_skew_measurement_reflects_the_data(self, result):
        uniform = [c for c in result.cells if c.skew == "uniform"]
        skewed = [c for c in result.cells if c.skew == "skewed"]
        assert all(c.raw_partition_skew < 1.5 for c in uniform)
        # 85% of rows share one group: one partition holds most rows.
        assert all(c.raw_partition_skew > 2.0 for c in skewed)
        # ...but the parallel stage is scan-dominated, so the honest
        # (work-weighted) model input stays near 1.
        assert all(
            c.effective_skew <= c.raw_partition_skew for c in skewed
        )


class TestParity:
    def test_answers_identical_everywhere(self, result):
        assert result.answers_identical()

    def test_parity_covers_presets_and_dops(self, result):
        presets = {p.preset for p in result.parity}
        dops = {p.dop for p in result.parity}
        plans = {p.plan for p in result.parity}
        assert presets == set(fig_parallel.DEFAULT_PARITY_PRESETS)
        assert dops == set(fig_parallel.DEFAULT_PARITY_DOPS)
        assert plans == {"agg", "join"}

    def test_parallelism_pays_on_the_big_machine(self, result):
        spans = {
            p.dop: p.makespan
            for p in result.parity
            if p.preset == "cmp32" and p.plan == "agg"
        }
        assert spans[4] < spans[1]


class TestRender:
    def test_render_reports_criteria(self, result):
        text = result.render()
        assert "policy accuracy" in text
        assert "parallel wins uncontended: True" in text
        assert "share wins contended: True" in text
        assert "answers identical: True" in text
