"""Tests for CSV persistence (repro.storage.io)."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    DataType,
    Schema,
    Table,
    load_catalog,
    load_table,
    save_catalog,
    save_table,
)
from repro.tpch.generator import generate


@pytest.fixture
def table():
    t = Table("items", Schema([
        ("id", DataType.INT),
        ("price", DataType.FLOAT),
        ("name", DataType.STR),
        ("shipped", DataType.DATE),
    ]))
    t.insert((1, 9.5, "plain", 730000))
    t.insert((2, -3.25, 'quoted,"tricky"', 730001))
    t.insert((3, 0.0, "unicode ✓ and spaces", 730002))
    return t


class TestTableRoundTrip:
    def test_round_trip_preserves_rows(self, table, tmp_path):
        path = save_table(table, tmp_path)
        loaded = load_table(path)
        assert loaded.name == table.name
        assert loaded.schema == table.schema
        assert list(loaded.rows()) == list(table.rows())

    def test_round_trip_empty_table(self, tmp_path):
        empty = Table("empty", Schema([("a", DataType.INT)]))
        loaded = load_table(save_table(empty, tmp_path))
        assert len(loaded) == 0
        assert loaded.schema == empty.schema

    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError, match="no such table"):
            load_table(tmp_path / "ghost.csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(StorageError, match="empty table file"):
            load_table(path)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a:int,b:uuid\n1,2\n")
        with pytest.raises(StorageError, match="bad column header"):
            load_table(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a:int,b:int\n1\n")
        with pytest.raises(StorageError, match="expected 2 fields"):
            load_table(path)

    def test_null_round_trip(self, tmp_path):
        """Regression: NULLs are written as empty fields and used to
        crash the decoder (``int("")``) for INT/FLOAT/DATE columns."""
        t = Table("nullable", Schema([
            ("id", DataType.INT),
            ("price", DataType.FLOAT),
            ("name", DataType.STR),
            ("shipped", DataType.DATE),
        ]))
        t.insert((None, None, "row with nulls", None))
        t.insert((7, 1.25, "dense row", 730100))
        loaded = load_table(save_table(t, tmp_path))
        assert list(loaded.rows()) == [
            (None, None, "row with nulls", None),
            (7, 1.25, "dense row", 730100),
        ]

    def test_null_string_reloads_as_empty(self, tmp_path):
        """The documented lossy corner: CSV cannot tell a NULL string
        from an empty one, so NULL STR fields reload as ``""``."""
        t = Table("strs", Schema([("s", DataType.STR)]))
        t.insert((None,))
        t.insert(("",))
        loaded = load_table(save_table(t, tmp_path))
        assert list(loaded.rows()) == [("",), ("",)]


class TestCatalogRoundTrip:
    def test_round_trip_tpch_subset(self, tmp_path):
        catalog = generate(scale_factor=0.0003, seed=13)
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert set(loaded.names()) == set(catalog.names())
        for name in ("region", "customer", "lineitem"):
            assert list(loaded.table(name).rows()) == (
                list(catalog.table(name).rows())
            )

    def test_queries_run_on_reloaded_catalog(self, tmp_path):
        from repro.engine import execute_reference
        from repro.tpch.queries import build

        catalog = generate(scale_factor=0.0003, seed=13)
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        for name in ("q6", "q13"):
            original = execute_reference(build(name, catalog).plan, catalog)
            reloaded = execute_reference(build(name, loaded).plan, loaded)
            assert original == reloaded

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError, match="no such directory"):
            load_catalog(tmp_path / "ghost")

    def test_empty_directory(self, tmp_path):
        with pytest.raises(StorageError, match="no .csv tables"):
            load_catalog(tmp_path)
