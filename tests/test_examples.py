"""Smoke tests: every example script runs clean as a subprocess.

Examples are the library's public face; a refactor that breaks one
should fail CI, not a reader.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_complete():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py",
        "warehouse_consolidation.py",
        "policy_comparison.py",
        "custom_query_modeling.py",
        "adaptive_runtime.py",
    }


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_reaches_conclusion():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=600,
    )
    assert "SHARE" in result.stdout
    assert "run independently" in result.stdout
