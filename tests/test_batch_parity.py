"""Vectorized-vs-reference parity: the batch rewrite's invariant.

Every operator has two host-side implementations — the columnar batch
fast path (``vectorize=True``, the default) and the row-at-a-time
reference path (``vectorize=False``). The redesign's contract is that
they are *indistinguishable inside the model*: bit-identical result
rows and a bit-identical simulated clock, per operator, at any batch
size (aligned, ragged, degenerate 1), under every preset (including
``laptop``'s elevator scans and I/O charges).

Hypothesis drives the data and geometry; both paths run on one shared
catalog, so the fused-page memo (keyed separately per path) is also
exercised for cross-run reuse without cross-path leakage.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database, QueryBuilder, RuntimeConfig
from repro.engine.plan import AggSpec
from repro.engine.expressions import add, col, ge, lt, mul
from repro.storage import Catalog, DataType, Schema

PRESETS = ("unbounded", "cmp32", "laptop")

# Aligned (64 = every preset's page_rows), ragged, degenerate, and
# "inherit" (None): the geometries the emitter's flush logic branches
# on.
BATCH_SIZES = (None, 1, 7, 64)

ROWS = st.lists(
    st.tuples(
        st.integers(-50, 50),
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=150,
)

SIDE_ROWS = st.lists(
    st.tuples(
        st.integers(-20, 20),
        st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False),
    ),
    min_size=0,
    max_size=60,
)


def _catalog(rows, side_rows=()):
    catalog = Catalog()
    table = catalog.create(
        "t", Schema([("k", DataType.INT), ("v", DataType.FLOAT)])
    )
    table.insert_many(rows)
    side = catalog.create(
        "s", Schema([("sk", DataType.INT), ("sv", DataType.FLOAT)])
    )
    side.insert_many(side_rows)
    return catalog


def _run(catalog, build, preset, batch_size, vectorize):
    config = RuntimeConfig.preset(preset).with_(
        vectorize=vectorize, batch_size=batch_size
    )
    session = Database.open(catalog, config)
    result = session.run(build(catalog))
    return result.rows, session.now


def assert_parity(build, rows, preset, batch_size, side_rows=()):
    catalog = _catalog(rows, side_rows)
    fast_rows, fast_now = _run(catalog, build, preset, batch_size, True)
    ref_rows, ref_now = _run(catalog, build, preset, batch_size, False)
    # repr-compare: bit identity for floats (0.0 vs -0.0, exact
    # mantissas), not just ==.
    assert repr(fast_rows) == repr(ref_rows)
    assert repr(fast_now) == repr(ref_now)


def _geometry(preset_and_batch):
    preset, batch = preset_and_batch
    return pytest.param(preset, batch, id=f"{preset}-b{batch}")


GEOMETRIES = [
    _geometry((preset, batch)) for preset in PRESETS for batch in BATCH_SIZES
]


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=8, deadline=None)
@given(rows=ROWS)
def test_fused_scan_parity(preset, batch, rows):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .where(lt(col("k"), 10))
            .select(("kv", mul(col("v"), add(col("k"), 1)), DataType.FLOAT))
        ),
        rows, preset, batch,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=8, deadline=None)
@given(rows=ROWS)
def test_filter_project_limit_parity(preset, batch, rows):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .filter(ge(col("k"), 0))
            .project([("w", add(col("v"), col("k")), DataType.FLOAT)])
            .limit(17)
        ),
        rows, preset, batch,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=8, deadline=None)
@given(rows=ROWS)
def test_aggregate_parity(preset, batch, rows):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .agg(
                AggSpec("sum", "total", col("v")),
                AggSpec("count", "n"),
                AggSpec("avg", "mean", col("v")),
                by=("k",),
            )
        ),
        rows, preset, batch,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=8, deadline=None)
@given(rows=ROWS)
def test_sort_parity(preset, batch, rows):
    assert_parity(
        lambda c: QueryBuilder(c, "t").order_by(("v", False), "k"),
        rows, preset, batch,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=6, deadline=None)
@given(rows=ROWS, side=SIDE_ROWS)
def test_hash_join_parity(preset, batch, rows, side):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .hash_join(QueryBuilder(c, "s"), build_key="sk", probe_key="k")
        ),
        rows, preset, batch, side_rows=side,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=6, deadline=None)
@given(rows=ROWS, side=SIDE_ROWS)
def test_merge_join_parity(preset, batch, rows, side):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .order_by("k")
            .merge_join(
                QueryBuilder(c, "s").order_by("sk"),
                left_key="k", right_key="sk",
            )
        ),
        rows, preset, batch, side_rows=side,
    )


@pytest.mark.parametrize("preset,batch", GEOMETRIES)
@settings(max_examples=4, deadline=None)
@given(rows=ROWS, side=SIDE_ROWS)
def test_nested_loop_join_parity(preset, batch, rows, side):
    assert_parity(
        lambda c: (
            QueryBuilder(c, "t")
            .nl_join(QueryBuilder(c, "s"), lt(col("k"), col("sk")))
        ),
        rows, preset, batch, side_rows=side,
    )


@pytest.mark.parametrize("preset", PRESETS)
@settings(max_examples=6, deadline=None)
@given(rows=ROWS, members=st.integers(2, 4))
def test_shared_group_parity(preset, rows, members):
    """A forced sharing group multiplexes batches; parity must hold
    through the pivot's multi-consumer emitter too."""

    def run(vectorize):
        catalog = _catalog(rows)
        config = RuntimeConfig.preset(preset).with_(vectorize=vectorize)
        session = Database.open(catalog, config)
        for i in range(members):
            session.submit(
                session.table("t").where(ge(col("k"), -10)),
                label=f"m{i}",
                share=True,
            )
        results = session.run_all()
        return [r.rows for r in results], session.now

    fast_rows, fast_now = run(True)
    ref_rows, ref_now = run(False)
    assert repr(fast_rows) == repr(ref_rows)
    assert repr(fast_now) == repr(ref_now)
