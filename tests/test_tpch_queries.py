"""Tests for the paper's TPC-H query suite (repro.tpch.queries)."""

import pytest

from repro.engine import Engine, execute_reference
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import QUERIES, build


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.001, seed=11)


@pytest.fixture(scope="module")
def references(catalog):
    return {
        name: execute_reference(build(name, catalog).plan, catalog)
        for name in QUERIES
    }


class TestSuiteShape:
    def test_four_queries(self):
        assert set(QUERIES) == {"q1", "q4", "q6", "q13"}

    def test_unknown_query_rejected(self, catalog):
        with pytest.raises(KeyError, match="unknown TPC-H query"):
            build("q99", catalog)

    def test_kinds(self, catalog):
        assert build("q1", catalog).kind == "scan-heavy"
        assert build("q6", catalog).kind == "scan-heavy"
        assert build("q4", catalog).kind == "join-heavy"
        assert build("q13", catalog).kind == "join-heavy"

    def test_pivots_exist_in_plans(self, catalog):
        for name in QUERIES:
            q = build(name, catalog)
            assert q.pivot_node().op_id == q.pivot

    def test_scan_heavy_share_at_scan(self, catalog):
        assert build("q1", catalog).pivot_node().kind == "scan"
        assert build("q6", catalog).pivot_node().kind == "scan"

    def test_join_heavy_share_at_join(self, catalog):
        assert build("q4", catalog).pivot_node().kind == "hash_join"
        assert build("q13", catalog).pivot_node().kind == "hash_join"

    def test_identical_builds_are_mergeable(self, catalog):
        for name in QUERIES:
            a, b = build(name, catalog), build(name, catalog)
            assert (
                a.pivot_node().signature == b.pivot_node().signature
            )


@pytest.mark.parametrize("name", sorted(QUERIES))
class TestAnswers:
    def test_staged_matches_reference(self, name, catalog, references):
        q = build(name, catalog)
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        handle = engine.execute(q.plan, name)
        sim.run()
        assert handle.rows == references[name]

    def test_shared_group_matches_reference(self, name, catalog, references):
        q = build(name, catalog)
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        group = engine.execute_group(
            [q.plan] * 4, pivot_op_id=q.pivot,
            labels=[f"{name}#{i}" for i in range(4)],
        )
        sim.run()
        for handle in group.handles:
            assert handle.rows == references[name]


class TestResultSanity:
    def test_q1_groups(self, references):
        rows = references["q1"]
        # returnflag x linestatus combinations; our generator yields up
        # to 6 groups (A/N/R x O/F).
        assert 1 <= len(rows) <= 6
        for row in rows:
            flag, status = row[0], row[1]
            assert flag in {"A", "N", "R"}
            assert status in {"O", "F"}
            assert row[2] > 0  # sum_qty
            assert row[9] > 0  # count_order

    def test_q4_priorities_sorted(self, references):
        rows = references["q4"]
        priorities = [r[0] for r in rows]
        assert priorities == sorted(priorities)
        assert all(r[1] > 0 for r in rows)

    def test_q6_single_revenue_row(self, references):
        rows = references["q6"]
        assert len(rows) == 1
        assert rows[0][0] > 0

    def test_q13_distribution_accounts_for_all_customers(self, catalog,
                                                         references):
        rows = references["q13"]
        total_customers = sum(r[1] for r in rows)
        assert total_customers == len(catalog.table("customer"))
        # The zero-order spike must exist (a third of customers).
        zero = [r for r in rows if r[0] == 0]
        assert zero and zero[0][1] > 0

    def test_q13_sorted_by_custdist_desc(self, references):
        rows = references["q13"]
        dists = [r[1] for r in rows]
        assert dists == sorted(dists, reverse=True)
