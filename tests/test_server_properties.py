"""Property-based tests for the service tier.

Whatever the trace, the tenant mix, and the knob settings: the server
must never deadlock, shed monotonically in load, and reproduce the
same run byte-for-byte from the same seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policies import AlwaysShare, NeverShare
from repro.server import (
    AdmissionView,
    AdmitAll,
    Arrival,
    LatencyBound,
    QueueDepthBound,
    Server,
)
from repro.db import Database, RuntimeConfig
from repro.storage import TenantShare
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix

_CATALOG = generate(scale_factor=0.0003, seed=77)
_QUERIES = {name: build(name, _CATALOG) for name in ("q6", "q4")}

_TENANTS = ("acme", "beta", "carol")
_TENANT_CONFIG = RuntimeConfig(
    processors=4,
    pool_pages=64,
    page_rows=16,
    tenants=(
        TenantShare("acme", 24, tables=("lineitem",)),
        TenantShare("beta", 16, tables=("orders",)),
        TenantShare("carol", 4),
    ),
)

arrival_traces = st.lists(
    st.tuples(
        st.sampled_from(sorted(_QUERIES)),
        st.floats(min_value=0.0, max_value=50_000.0),
        st.sampled_from(_TENANTS),
    ),
    min_size=1,
    max_size=14,
)


@given(
    arrival_traces,
    st.sampled_from(["always", "never"]),
    st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
    st.booleans(),
)
@settings(max_examples=20, deadline=None)
def test_no_admitted_query_is_ever_stranded(
    trace, policy_name, max_inflight, attach_inflight
):
    """Random traces x tenant mixes x dispatch knobs: given drain, every
    admitted query completes — no deadlock, no lost completion, and the
    tenant quotas hold at the end."""
    policy = AlwaysShare() if policy_name == "always" else NeverShare()
    server = Server(
        Database(_CATALOG, _TENANT_CONFIG).session(),
        policy=policy,
        admission=AdmitAll(),
        max_inflight=max_inflight,
        attach_inflight=attach_inflight,
        keep_rows=False,
    )
    arrivals = [
        Arrival(at=at, query=_QUERIES[name], tenant=tenant)
        for name, at, tenant in trace
    ]
    report = server.serve_trace(arrivals, drain=5_000_000.0)
    assert report.submitted == len(arrivals)
    assert report.shed == 0
    assert report.completed == report.submitted
    assert report.backlog == 0
    server.session.pool.check_isolation()


views = st.builds(
    AdmissionView,
    queue_depth=st.integers(min_value=0, max_value=500),
    in_flight=st.integers(min_value=0, max_value=64),
    projected_latency=st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False
    ),
    tenant=st.sampled_from(_TENANTS),
)


@given(views, st.integers(min_value=1, max_value=100),
       st.integers(min_value=1, max_value=200))
@settings(max_examples=200, deadline=None)
def test_queue_depth_shedding_is_monotone(view, bound, deeper_by):
    """If a view is shed, every strictly deeper queue is shed too."""
    policy = QueueDepthBound(bound)
    deeper = AdmissionView(
        queue_depth=view.queue_depth + deeper_by,
        in_flight=view.in_flight,
        projected_latency=view.projected_latency,
        tenant=view.tenant,
    )
    assert policy.admit(deeper) <= policy.admit(view)


@given(views, st.floats(min_value=1e-3, max_value=1e9),
       st.floats(min_value=1e-3, max_value=1e9))
@settings(max_examples=200, deadline=None)
def test_latency_shedding_is_monotone(view, bound, extra):
    policy = LatencyBound(bound)
    slower = AdmissionView(
        queue_depth=view.queue_depth,
        in_flight=view.in_flight,
        projected_latency=view.projected_latency + extra,
        tenant=view.tenant,
    )
    assert policy.admit(slower) <= policy.admit(view)


@given(st.integers(min_value=0, max_value=2 ** 16),
       st.sampled_from([1 / 600.0, 1 / 1_500.0, 1 / 4_000.0]))
@settings(max_examples=8, deadline=None)
def test_same_seed_is_byte_identical(seed, rate):
    """Audit log and metrics registry serialize identically across two
    fresh servers fed the same seeded stream."""

    def snapshots():
        server = Server.open(
            _CATALOG,
            RuntimeConfig(processors=2),
            policy=AlwaysShare(),
            admission=QueueDepthBound(8),
            keep_rows=False,
        )
        server.serve(
            WorkloadMix({"q6": 0.7, "q4": 0.3}),
            _QUERIES,
            arrival_rate=rate,
            horizon=120_000.0,
            drain=60_000.0,
            seed=seed,
            tenant_weights={"acme": 0.5, "beta": 0.5},
        )
        return (
            server.session.audit_log().to_json(),
            server.session.metrics().to_json(),
        )

    assert snapshots() == snapshots()
