"""Tests for the Section 8.1 group-partitioning optimizer."""

import pytest

from repro.core.decision import ShareAdvisor
from repro.core.sensitivity import baseline_query
from repro.core.spec import QuerySpec, chain, op
from repro.errors import SpecError


def q6():
    return QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)),
                     label="q6")


class TestBestPartitioning:
    def test_one_cpu_prefers_single_group(self):
        """With no parallelism to protect, one maximal group wins."""
        result = ShareAdvisor(processors=1).best_partitioning(
            q6(), "scan", clients=24
        )
        assert result.group_size == 24
        assert result.n_groups == 1

    def test_many_cpus_prefer_no_sharing_for_q6(self):
        """Q6's pivot serialization makes solo execution optimal on a
        big CMP."""
        result = ShareAdvisor(processors=32).best_partitioning(
            q6(), "scan", clients=24
        )
        assert result.group_size == 1
        assert result.n_groups == 24

    def test_intermediate_machine_prefers_intermediate_groups(self):
        """The Figure 4 (left) baseline on a mid-size machine: multiple
        medium groups beat both extremes — the 8.1 sweet spot."""
        advisor = ShareAdvisor(processors=16)
        result = advisor.best_partitioning(baseline_query(), "pivot",
                                           clients=32)
        assert 1 < result.group_size < 32

    def test_partitioning_beats_both_static_extremes_when_intermediate(self):
        advisor = ShareAdvisor(processors=16)
        query = baseline_query()
        best = advisor.best_partitioning(query, "pivot", clients=32)

        def rate_for(group_size):
            full, remainder = divmod(32, group_size)
            # Recompute via the same API: force the arrangement.
            from repro.core.model import shared_rate, unshared_rate

            n_groups = -(-32 // group_size)
            per_n = 16 / n_groups
            total = 0.0
            for size, count in ((group_size, full),
                                (remainder, 1 if remainder else 0)):
                if count == 0:
                    continue
                members = [query.relabeled(f"b{i}") for i in range(size)]
                if size == 1:
                    total += count * unshared_rate(members, per_n)
                else:
                    total += count * shared_rate(members, "pivot", per_n)
            return total

        assert best.predicted_rate >= rate_for(1) - 1e-9
        assert best.predicted_rate >= rate_for(32) - 1e-9

    def test_rate_accounts_for_remainder_group(self):
        result = ShareAdvisor(processors=4).best_partitioning(
            q6(), "scan", clients=7
        )
        assert result.n_groups * result.group_size >= 7

    def test_single_client(self):
        result = ShareAdvisor(processors=8).best_partitioning(
            q6(), "scan", clients=1
        )
        assert result.group_size == 1
        assert result.n_groups == 1

    def test_invalid_clients(self):
        with pytest.raises(SpecError):
            ShareAdvisor(processors=8).best_partitioning(q6(), "scan",
                                                         clients=0)
