"""Unit tests for model-level plan specs (repro.core.spec)."""

import pytest

from repro.core.spec import OperatorSpec, QuerySpec, chain, op
from repro.errors import PivotError, SpecError


def q6_spec():
    return QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="q6")


class TestOperatorSpec:
    def test_p_single_consumer(self):
        node = op("scan", 9.66, 10.34)
        assert node.p(1) == pytest.approx(20.0)

    def test_p_multiple_consumers(self):
        node = op("scan", 9.66, 10.34)
        assert node.p(3) == pytest.approx(9.66 + 3 * 10.34)

    def test_p_zero_consumers_drops_output_cost(self):
        node = op("scan", 9.66, 10.34)
        assert node.p(0) == pytest.approx(9.66)

    def test_p_negative_consumers_rejected(self):
        with pytest.raises(SpecError):
            op("scan", 1.0).p(-1)

    def test_negative_work_rejected(self):
        with pytest.raises(SpecError):
            op("scan", -1.0)

    def test_negative_output_cost_rejected(self):
        with pytest.raises(SpecError):
            op("scan", 1.0, -0.5)

    def test_nan_work_rejected(self):
        with pytest.raises(SpecError):
            op("scan", float("nan"))

    def test_infinite_work_rejected(self):
        with pytest.raises(SpecError):
            op("scan", float("inf"))

    def test_empty_name_rejected(self):
        with pytest.raises(SpecError):
            op("", 1.0)

    def test_non_numeric_work_rejected(self):
        with pytest.raises(SpecError):
            OperatorSpec(name="scan", work="ten")

    def test_bool_work_rejected(self):
        with pytest.raises(SpecError):
            OperatorSpec(name="scan", work=True)

    def test_internal_work_requires_blocking(self):
        with pytest.raises(SpecError):
            op("sort", 1.0, internal_work=2.0)

    def test_emit_work_requires_blocking(self):
        with pytest.raises(SpecError):
            op("sort", 1.0, emit_work=0.5)

    def test_blocking_fields_accepted(self):
        node = op("sort", 3.0, blocking=True, internal_work=2.0, emit_work=0.5)
        assert node.blocking
        assert node.internal_work == 2.0
        assert node.emit_work == 0.5

    def test_walk_preorder(self):
        tree = op("join", 1.0, 0.0, op("left", 2.0), op("right", 3.0))
        assert [n.name for n in tree.walk()] == ["join", "left", "right"]

    def test_structurally_equal_true(self):
        a = op("scan", 2.0, 1.0)
        b = op("scan", 2.0, 1.0)
        assert a.structurally_equal(b)

    def test_structurally_equal_differs_on_work(self):
        assert not op("scan", 2.0).structurally_equal(op("scan", 3.0))

    def test_structurally_equal_differs_on_children(self):
        a = op("f", 1.0, 0.0, op("scan", 2.0))
        b = op("f", 1.0, 0.0, op("scan", 9.0))
        assert not a.structurally_equal(b)

    def test_structurally_equal_differs_on_blocking(self):
        a = op("sort", 1.0, blocking=True)
        b = op("sort", 1.0)
        assert not a.structurally_equal(b)

    def test_relabeled_preserves_costs(self):
        node = op("sort", 3.0, 1.5, blocking=True, internal_work=2.0, emit_work=0.5)
        copy = node.relabeled("sort2")
        assert copy.name == "sort2"
        assert copy.work == node.work
        assert copy.output_cost == node.output_cost
        assert copy.internal_work == node.internal_work
        assert copy.emit_work == node.emit_work

    def test_with_children_replaces_inputs(self):
        node = op("agg", 1.0)
        child = op("scan", 5.0)
        updated = node.with_children((child,))
        assert updated.children == (child,)
        assert node.children == ()


class TestChain:
    def test_chain_builds_linear_pipeline(self):
        root = chain(op("scan", 1.0), op("filter", 2.0), op("agg", 3.0))
        assert root.name == "agg"
        assert root.children[0].name == "filter"
        assert root.children[0].children[0].name == "scan"

    def test_chain_single_node(self):
        root = chain(op("scan", 1.0))
        assert root.name == "scan"

    def test_chain_empty_rejected(self):
        with pytest.raises(SpecError):
            chain()

    def test_chain_rejects_nodes_with_children(self):
        parent = op("join", 1.0, 0.0, op("scan", 1.0))
        with pytest.raises(SpecError):
            chain(op("scan2", 1.0), parent)


class TestQuerySpec:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SpecError):
            QuerySpec(chain(op("scan", 1.0), op("scan", 2.0)))

    def test_operator_lookup(self):
        q = q6_spec()
        assert q["scan"].work == pytest.approx(9.66)
        assert "agg" in q
        assert "sort" not in q

    def test_unknown_pivot_raises(self):
        with pytest.raises(PivotError):
            q6_spec()["missing"]

    def test_operators_preorder_from_root(self):
        assert q6_spec().operator_names() == ("agg", "scan")

    def test_below_pivot(self):
        q = QuerySpec(
            chain(op("scan", 1.0), op("filter", 2.0), op("agg", 3.0)), label="q"
        )
        assert [n.name for n in q.below("filter")] == ["scan"]
        assert q.below("scan") == ()

    def test_above_pivot(self):
        q = QuerySpec(
            chain(op("scan", 1.0), op("filter", 2.0), op("agg", 3.0)), label="q"
        )
        assert [n.name for n in q.above("filter")] == ["agg"]
        assert [n.name for n in q.above("agg")] == []

    def test_above_and_below_partition_plan(self):
        q = QuerySpec(
            op("join", 1.0, 0.0, chain(op("s1", 1.0), op("f1", 1.0)), op("s2", 2.0)),
            label="q",
        )
        for pivot in q.operator_names():
            names = {n.name for n in q.below(pivot)}
            names |= {n.name for n in q.above(pivot)}
            names |= {n.name for n in q[pivot].walk()} - {
                n.name for n in q.below(pivot)
            }
            assert names == set(q.operator_names())

    def test_is_pipelined(self):
        assert q6_spec().is_pipelined()
        blocked = QuerySpec(
            chain(op("scan", 1.0), op("sort", 2.0, blocking=True), op("agg", 1.0))
        )
        assert not blocked.is_pipelined()
        assert [n.name for n in blocked.blocking_operators()] == ["sort"]

    def test_require_pipelined_raises_with_names(self):
        blocked = QuerySpec(
            chain(op("scan", 1.0), op("sort", 2.0, blocking=True)), label="qs"
        )
        with pytest.raises(SpecError, match="sort"):
            blocked.require_pipelined("test")

    def test_relabeled(self):
        q = q6_spec().relabeled("q6-copy")
        assert q.label == "q6-copy"
        assert q.root is q6_spec().root or q.root.structurally_equal(q6_spec().root)

    def test_root_must_be_operator(self):
        with pytest.raises(SpecError):
            QuerySpec(root="scan")
