"""The open-system serving experiment meets its acceptance criteria.

One full sweep per module: 2 machines x 5 arrival rates x 3 sharing
policies, each cell a fresh server over the shared catalog.
"""

import pytest

from repro.experiments import fig_server


@pytest.fixture(scope="module")
def result():
    return fig_server.run()


class TestShape:
    def test_every_cell_present(self, result):
        assert len(result.cells) == (
            len(result.rate_multiples)
            * len(result.processor_counts)
            * 3
        )
        assert result.service_time > 0

    def test_unknown_cell_raises(self, result):
        with pytest.raises(KeyError):
            result.cell("sometimes", 2, 1.0)

    def test_arrival_counts_match_across_policies(self, result):
        """Same seed, same rate: every policy faces the identical
        arrival stream."""
        for n in result.processor_counts:
            for rate in result.rate_multiples:
                counts = {
                    result.cell(p, n, rate).submitted
                    for p in ("always", "model", "never")
                }
                assert len(counts) == 1


class TestFewCores:
    """2 processors: straggler factory at light load, capacity win
    under overload — the flip lives on this machine."""

    def test_light_load_sharing_is_a_straggler_factory(self, result):
        for rate in (0.5, 1.0):
            always = result.cell("always", 2, rate)
            never = result.cell("never", 2, rate)
            # Stable: goodput is set by arrivals, not by the policy...
            assert always.goodput == pytest.approx(never.goodput, rel=0.05)
            # ...so convoying latecomers buys nothing and costs tail.
            assert always.p99 > never.p99

    def test_overload_flips_sharing_into_a_goodput_win(self, result):
        always = result.cell("always", 2, 8.0)
        never = result.cell("never", 2, 8.0)
        assert always.goodput > 2 * never.goodput
        assert always.max_group_size > 8
        assert never.max_group_size == 1

    def test_crossover_rate_is_measured_not_assumed(self, result):
        crossover = result.crossover_rate(2)
        assert crossover is not None
        # Sharing wins only past saturation: the flip sits strictly
        # inside the sweep, above the stable rates.
        assert 1.0 < crossover < max(result.rate_multiples)

    def test_model_tracks_the_winning_envelope(self, result):
        for rate in result.rate_multiples:
            model = result.cell("model", 2, rate)
            never = result.cell("never", 2, rate)
            # Never worse than never-share on goodput...
            assert model.goodput >= 0.95 * never.goodput
        # ...and past the flip it finds the sharing capacity win.
        model = result.cell("model", 2, 4.0)
        never = result.cell("never", 2, 4.0)
        assert model.goodput > 1.5 * never.goodput
        assert model.max_group_size > 1

    def test_model_avoids_the_light_load_convoy(self, result):
        for rate in (0.5, 1.0):
            model = result.cell("model", 2, rate)
            always = result.cell("always", 2, rate)
            assert model.p99 < always.p99


class TestManyCores:
    """8 processors: Figure 2's collapse restated on the load axis —
    sharing never wins, and the model knows it."""

    def test_sharing_never_wins_goodput(self, result):
        assert result.crossover_rate(8) is None

    def test_parallelism_absorbs_the_overload_solo(self, result):
        always = result.cell("always", 8, 8.0)
        never = result.cell("never", 8, 8.0)
        assert never.goodput > 2 * always.goodput

    def test_model_matches_never_share_everywhere(self, result):
        for rate in result.rate_multiples:
            model = result.cell("model", 8, rate)
            never = result.cell("never", 8, rate)
            assert model.goodput == pytest.approx(never.goodput, rel=0.05)
            assert model.max_group_size == 1


class TestRender:
    def test_render_states_both_verdicts(self, result):
        text = result.render()
        assert "sharing wins goodput from rate" in text
        assert "sharing never wins goodput on this machine" in text
        assert "2 processors" in text and "8 processors" in text
