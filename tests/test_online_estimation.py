"""Tests for online parameter estimation and the learning policy."""

import pytest

from repro.core import metrics
from repro.errors import EstimationError, PolicyError
from repro.policies import OnlineModelGuidedPolicy
from repro.profiling import OnlineEstimator, QueryProfiler
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=41)


@pytest.fixture(scope="module")
def q6(catalog):
    return build("q6", catalog)


@pytest.fixture(scope="module")
def offline_profile(catalog, q6):
    return QueryProfiler(catalog).profile(q6.plan, q6.pivot, label="q6")


def run_group(catalog, query, m, processors=8):
    """Execute one (possibly shared) group, return its stage tasks."""
    from repro.engine import Engine
    from repro.sim import Simulator

    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim)
    if m == 1:
        group = engine.execute_group([query.plan], pivot_op_id=None)
    else:
        group = engine.execute_group([query.plan] * m,
                                     pivot_op_id=query.pivot)
    sim.run()
    return engine.group_tasks[group.group_id]


class TestOnlineEstimator:
    def test_not_ready_until_shared_and_unshared_seen(self, catalog, q6):
        estimator = OnlineEstimator(q6.plan, q6.pivot, label="q6")
        assert not estimator.ready()
        estimator.observe_group(1, run_group(catalog, q6, 1))
        assert not estimator.ready()  # pivot only seen with 1 consumer
        estimator.observe_group(4, run_group(catalog, q6, 4))
        assert estimator.ready()

    def test_not_ready_spec_raises(self, q6):
        estimator = OnlineEstimator(q6.plan, q6.pivot)
        with pytest.raises(EstimationError, match="not ready"):
            estimator.current_spec()

    def test_converges_to_offline_profile(self, catalog, q6,
                                          offline_profile):
        estimator = OnlineEstimator(q6.plan, q6.pivot, label="q6")
        for m in (1, 2, 4):
            estimator.observe_group(m, run_group(catalog, q6, m))
        online_spec = estimator.current_spec()
        offline_spec = offline_profile.to_query_spec()
        assert metrics.p_max(online_spec) == pytest.approx(
            metrics.p_max(offline_spec), rel=0.02
        )
        assert metrics.total_work(online_spec) == pytest.approx(
            metrics.total_work(offline_spec), rel=0.02
        )

    def test_prior_seeds_readiness(self, q6, offline_profile):
        estimator = OnlineEstimator(q6.plan, q6.pivot, label="q6",
                                    prior=offline_profile)
        assert estimator.ready()
        spec = estimator.current_spec()
        assert metrics.p_max(spec) == pytest.approx(
            metrics.p_max(offline_profile.to_query_spec()), rel=1e-6
        )

    def test_rolling_window_bounds_memory(self, catalog, q6):
        estimator = OnlineEstimator(q6.plan, q6.pivot, window=4)
        tasks = run_group(catalog, q6, 2)
        for _ in range(10):
            estimator.observe_group(2, tasks)
        for bucket in estimator._samples.values():
            assert len(bucket) <= 4

    def test_invalid_window(self, q6):
        with pytest.raises(EstimationError):
            OnlineEstimator(q6.plan, q6.pivot, window=1)

    def test_invalid_group_size(self, catalog, q6):
        estimator = OnlineEstimator(q6.plan, q6.pivot)
        with pytest.raises(EstimationError):
            estimator.observe_group(0, run_group(catalog, q6, 1))


class TestOnlineModelGuidedPolicy:
    def test_explores_then_settles_on_many_cores(self, catalog, q6):
        """On 32 cpus the policy must learn that Q6 sharing loses: after
        the exploration budget, shared submissions stop."""
        policy = OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=2)
        result = run_closed_system(
            catalog, policy, WorkloadMix.single("q6"),
            n_clients=10, processors=32, warmup=100_000.0, window=400_000.0,
        )
        estimator = policy.estimators["q6"]
        assert estimator.ready()
        # Exploration happened, then the learned model said no.
        assert policy.exploration_shares > 0
        assert result.solo_submissions > 5 * result.shared_submissions

    def test_keeps_sharing_on_one_core(self, catalog, q6):
        """On 1 cpu the learned model keeps approving Q6 sharing."""
        policy = OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=2)
        result = run_closed_system(
            catalog, policy, WorkloadMix.single("q6"),
            n_clients=10, processors=1, warmup=100_000.0, window=400_000.0,
        )
        assert result.shared_submissions > result.solo_submissions

    def test_zero_budget_without_prior_never_shares(self, catalog, q6):
        policy = OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=0)
        result = run_closed_system(
            catalog, policy, WorkloadMix.single("q6"),
            n_clients=6, processors=1, warmup=50_000.0, window=150_000.0,
        )
        assert result.shared_submissions == 0

    def test_prior_enables_decisions_without_exploration(
        self, catalog, q6, offline_profile
    ):
        policy = OnlineModelGuidedPolicy(
            {"q6": q6}, exploration_budget=0,
            priors={"q6": offline_profile},
        )
        assert policy.should_share("q6", 10, 1)
        assert not policy.should_share("q6", 10, 32)

    def test_unknown_query_rejected(self, q6):
        policy = OnlineModelGuidedPolicy({"q6": q6})
        with pytest.raises(PolicyError):
            policy.should_share("q99", 4, 2)

    def test_empty_queries_rejected(self):
        with pytest.raises(PolicyError):
            OnlineModelGuidedPolicy({})

    def test_negative_budget_rejected(self, q6):
        with pytest.raises(PolicyError):
            OnlineModelGuidedPolicy({"q6": q6}, exploration_budget=-1)
