"""MemoryBroker: grants, high-water marks, overcommit accounting."""

import pytest

from repro.engine import MemoryBroker
from repro.errors import EngineError


class TestGrants:
    def test_grant_caps_at_available(self):
        broker = MemoryBroker(10)
        first = broker.grant("a", 6)
        second = broker.grant("b", 6)
        assert first.pages == 6
        assert second.pages == 4
        assert broker.available() == 0

    def test_default_request_takes_everything(self):
        broker = MemoryBroker(8)
        assert broker.grant("a").pages == 8

    def test_starved_grant_still_gets_one_page(self):
        broker = MemoryBroker(2)
        broker.grant("a")
        starved = broker.grant("b", 5)
        assert starved.pages == 1  # guaranteed minimum, no deadlock

    def test_close_releases_budget(self):
        broker = MemoryBroker(6)
        grant = broker.grant("a", 6)
        grant.close()
        assert broker.available() == 6
        assert broker.grant("b", 4).pages == 4

    def test_close_is_idempotent(self):
        broker = MemoryBroker(4)
        grant = broker.grant("a", 2)
        grant.close()
        grant.close()  # must not release the budget twice
        assert broker.reserved == 0
        assert broker.available() == 4

    def test_work_mem_must_be_positive(self):
        with pytest.raises(EngineError):
            MemoryBroker(0)

    def test_bad_request_rejected(self):
        broker = MemoryBroker(4)
        with pytest.raises(EngineError):
            broker.grant("a", 0)


class TestUsageTracking:
    def test_high_water_marks(self):
        broker = MemoryBroker(10)
        a = broker.grant("a", 5)
        b = broker.grant("b", 5)
        a.resize_used(3)
        b.resize_used(4)
        a.resize_used(1)
        assert broker.in_use == 5
        assert broker.high_water == 7
        assert a.high_water == 3
        assert b.high_water == 4

    def test_overcommit_counted_once_per_grant(self):
        broker = MemoryBroker(4)
        grant = broker.grant("a", 2)
        grant.resize_used(3)
        grant.resize_used(5)
        assert broker.overcommits == 1

    def test_resize_after_close_raises(self):
        broker = MemoryBroker(4)
        grant = broker.grant("a", 2)
        grant.close()
        with pytest.raises(EngineError, match="closed"):
            grant.resize_used(1)

    def test_negative_usage_rejected(self):
        broker = MemoryBroker(4)
        grant = broker.grant("a", 2)
        with pytest.raises(EngineError):
            grant.resize_used(-1)

    def test_snapshot_reflects_grants(self):
        broker = MemoryBroker(6)
        grant = broker.grant("join@1", 4)
        grant.resize_used(2)
        snap = broker.snapshot()
        assert snap.work_mem == 6
        assert snap.in_use == 2
        assert snap.grants[0].owner == "join@1"
        assert snap.grants[0].high_water == 2
        assert "join@1" in snap.render()
