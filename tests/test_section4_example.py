"""Golden tests pinning the paper's Section 4.4 worked example.

TPC-H Q6 on the authors' machine: scan w = 9.66, s = 10.34; aggregate
p = 0.97; contention k = 1. The paper derives:

    p_max               = p_scan = 20
    u'_unshared(M)      = 21 * M            (rounded; exact 20.97 M)
    x_unshared(M, n)    = min(M/20, n/21)
    p_max_shared(M)     = 9.66 + 10.34 M
    u'_shared(M)        = 9.66 + 11.31 M
    x_shared(M, n)      = min(1/(9.66/M + 10.34), n/(9.66/M + 11.31))

and observes that shared execution "only utilizes slightly more than
one processor no matter how many sharers are added".
"""

import pytest

from repro.core import metrics
from repro.core.model import shared_metrics, shared_rate, unshared_rate
from repro.core.spec import QuerySpec, chain, op

SCAN_W = 9.66
SCAN_S = 10.34
AGG_P = 0.97


@pytest.fixture
def q6():
    return QuerySpec(chain(op("scan", SCAN_W, SCAN_S), op("agg", AGG_P)), label="q6")


def group(q6, m):
    return [q6.relabeled(f"q6#{i}") for i in range(m)]


def test_p_max_is_twenty(q6):
    assert metrics.p_max(q6) == pytest.approx(20.0)


def test_unshared_total_work_near_21_per_query(q6):
    assert metrics.total_work(q6) == pytest.approx(20.97)


@pytest.mark.parametrize("m", [1, 2, 5, 10, 20, 48])
@pytest.mark.parametrize("n", [1, 2, 8, 32])
def test_unshared_rate_closed_form(q6, m, n):
    assert unshared_rate(group(q6, m), n) == pytest.approx(
        min(m / 20.0, n / 20.97)
    )


@pytest.mark.parametrize("m", [1, 2, 5, 10, 20, 48])
def test_shared_p_max_closed_form(q6, m):
    assert shared_metrics(group(q6, m), "scan").p_max == pytest.approx(
        SCAN_W + SCAN_S * m
    )


@pytest.mark.parametrize("m", [1, 2, 5, 10, 20, 48])
def test_shared_total_work_closed_form(q6, m):
    assert shared_metrics(group(q6, m), "scan").total_work == pytest.approx(
        9.66 + 11.31 * m
    )


@pytest.mark.parametrize("m", [1, 2, 5, 10, 20, 48])
@pytest.mark.parametrize("n", [1, 2, 8, 32])
def test_shared_rate_closed_form(q6, m, n):
    expected = min(1.0 / (9.66 / m + 10.34), n / (9.66 / m + 11.31))
    assert shared_rate(group(q6, m), "scan", n) == pytest.approx(expected)


def test_shared_utilization_barely_exceeds_one(q6):
    """Sharing caps Q6's utilization near (9.66 + 11.31M)/(9.66 + 10.34M)
    -> ~1.09: 'slightly more than one processor no matter how many
    sharers are added'."""
    for m in (4, 16, 48):
        u = shared_metrics(group(q6, m), "scan").utilization
        assert 1.0 < u < 1.2


def test_unshared_scales_until_all_processors_used(q6):
    """Unshared performance scales linearly until n processors saturate."""
    n = 32
    rates = [unshared_rate(group(q6, m), n) for m in range(1, 40)]
    saturation = n / 20.97
    for m, rate in enumerate(rates, start=1):
        if m / 20.0 < saturation:
            assert rate == pytest.approx(m / 20.0)
    assert rates[-1] == pytest.approx(saturation)


def test_sharing_attractive_only_on_one_processor(q6):
    """'Work sharing is only attractive when one processor is
    available' — check the binary verdict across the paper's processor
    counts at a loaded client count."""
    m = 32
    verdicts = {}
    for n in (1, 2, 8, 32):
        z = shared_rate(group(q6, m), "scan", n) / unshared_rate(group(q6, m), n)
        verdicts[n] = z > 1.0
    assert verdicts[1] is True
    assert verdicts[2] is False
    assert verdicts[8] is False
    assert verdicts[32] is False
