"""Unit tests for parameter estimation (repro.core.estimation)."""

import pytest

from repro.core.estimation import (
    Observation,
    estimate_many,
    estimate_operator,
)
from repro.errors import EstimationError


def synthetic_runs(w, s, sharer_counts, units=1000.0):
    """Observations generated exactly by the linear cost model."""
    return [
        Observation(busy_time=(w + s * m) * units, units=units, consumers=m)
        for m in sharer_counts
    ]


class TestObservation:
    def test_nonpositive_units_rejected(self):
        with pytest.raises(EstimationError):
            Observation(busy_time=1.0, units=0.0)

    def test_negative_busy_time_rejected(self):
        with pytest.raises(EstimationError):
            Observation(busy_time=-1.0, units=1.0)

    def test_zero_consumers_rejected(self):
        with pytest.raises(EstimationError):
            Observation(busy_time=1.0, units=1.0, consumers=0)


class TestEstimateOperator:
    def test_recovers_exact_parameters(self):
        est = estimate_operator(synthetic_runs(9.66, 10.34, [1, 2, 4, 8]))
        assert est.work == pytest.approx(9.66, abs=1e-9)
        assert est.output_cost == pytest.approx(10.34, abs=1e-9)
        assert est.residual == pytest.approx(0.0, abs=1e-9)

    def test_two_runs_suffice(self):
        est = estimate_operator(synthetic_runs(6.0, 1.0, [1, 4]))
        assert est.work == pytest.approx(6.0)
        assert est.output_cost == pytest.approx(1.0)

    def test_single_consumer_count_attributes_all_to_work(self):
        est = estimate_operator(synthetic_runs(6.0, 1.0, [1, 1, 1]))
        assert est.work == pytest.approx(7.0)
        assert est.output_cost == 0.0

    def test_noisy_observations_average_out(self):
        clean = synthetic_runs(5.0, 2.0, [1, 2, 3, 4, 5, 6])
        noisy = [
            Observation(
                busy_time=obs.busy_time * (1 + (0.01 if i % 2 else -0.01)),
                units=obs.units,
                consumers=obs.consumers,
            )
            for i, obs in enumerate(clean)
        ]
        est = estimate_operator(noisy)
        assert est.work == pytest.approx(5.0, rel=0.05)
        assert est.output_cost == pytest.approx(2.0, rel=0.05)
        assert est.residual > 0

    def test_estimates_clamped_nonnegative(self):
        # Pathological data sloping downward in consumers yields s < 0;
        # the estimate clamps it to 0.
        obs = [
            Observation(busy_time=10.0, units=1.0, consumers=1),
            Observation(busy_time=1.0, units=1.0, consumers=8),
        ]
        est = estimate_operator(obs)
        assert est.output_cost == 0.0
        assert est.work >= 0.0

    def test_p_helper(self):
        est = estimate_operator(synthetic_runs(6.0, 1.0, [1, 4]))
        assert est.p(5) == pytest.approx(11.0)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            estimate_operator([])


class TestEstimateMany:
    def test_groups_by_name(self):
        samples = [
            ("scan", obs) for obs in synthetic_runs(9.66, 10.34, [1, 2, 4])
        ] + [("agg", obs) for obs in synthetic_runs(0.97, 0.0, [1, 1])]
        estimates = estimate_many(samples)
        assert set(estimates) == {"scan", "agg"}
        assert estimates["scan"].work == pytest.approx(9.66)
        assert estimates["agg"].work == pytest.approx(0.97)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            estimate_many([])
