"""Unit tests for the open-system service tier.

Admission policies, latency statistics, the serve loop's accounting,
facade wiring (``Database.serve`` / ``Server.open``), and the
observability surface (metrics family, audit records, trace events).
"""

import pytest

from repro.db import Database, RuntimeConfig
from repro.errors import EngineError, PolicyError
from repro.policies import AlwaysShare, NeverShare
from repro.server import (
    AdmissionView,
    AdmitAll,
    Arrival,
    LatencyBound,
    LatencyStats,
    QueueDepthBound,
    Server,
)
from repro.storage import TenantShare
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=0.0005, seed=61)


@pytest.fixture(scope="module")
def q6(catalog):
    return build("q6", catalog)


def make_server(catalog, *, processors=4, policy=None, config=None, **kwargs):
    config = config or RuntimeConfig(processors=processors)
    return Server.open(catalog, config, policy=policy, **kwargs)


def serve_q6(server, q6, *, rate, horizon, drain=0.0, seed=0, **kwargs):
    return server.serve(
        WorkloadMix.single("q6"), {"q6": q6},
        arrival_rate=rate, horizon=horizon, drain=drain, seed=seed, **kwargs
    )


class TestAdmissionPolicies:
    def view(self, depth=0, latency=0.0):
        return AdmissionView(
            queue_depth=depth, in_flight=0, projected_latency=latency
        )

    def test_admit_all(self):
        assert AdmitAll().admit(self.view(depth=10 ** 6))

    def test_queue_depth_bound(self):
        policy = QueueDepthBound(4)
        assert policy.admit(self.view(depth=3))
        assert not policy.admit(self.view(depth=4))

    def test_latency_bound(self):
        policy = LatencyBound(100.0)
        assert policy.admit(self.view(latency=100.0))
        assert not policy.admit(self.view(latency=100.1))

    def test_validation(self):
        with pytest.raises(PolicyError):
            QueueDepthBound(0)
        with pytest.raises(PolicyError):
            LatencyBound(0.0)

    def test_shedding_is_monotone_in_queue_depth(self):
        """Once a depth is shed, every deeper queue is shed too."""
        policy = QueueDepthBound(7)
        admitted = [policy.admit(self.view(depth=d)) for d in range(20)]
        assert admitted == sorted(admitted, reverse=True)


class TestLatencyStats:
    def test_empty_stats_are_zero(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.p50 == 0.0 and stats.p99 == 0.0
        assert stats.mean == 0.0 and stats.max == 0.0

    def test_quantiles_interpolate(self):
        stats = LatencyStats()
        for v in (10.0, 20.0, 30.0, 40.0):
            stats.add(v)
        assert stats.p50 == pytest.approx(25.0)
        assert stats.quantile(0.0) == 10.0
        assert stats.quantile(1.0) == 40.0
        assert stats.quantile(1.0 / 3.0) == pytest.approx(20.0)

    def test_insertion_order_does_not_matter(self):
        a, b = LatencyStats(), LatencyStats()
        for v in (5.0, 1.0, 3.0):
            a.add(v)
        for v in (1.0, 3.0, 5.0):
            b.add(v)
        assert a.to_dict() == b.to_dict()

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyStats().quantile(1.5)


class TestServeLoop:
    def test_conservation_and_outcomes(self, catalog, q6):
        server = make_server(catalog, policy=AlwaysShare(),
                             admission=QueueDepthBound(4))
        report = serve_q6(server, q6, rate=1.0 / 2_000.0,
                          horizon=200_000.0, drain=50_000.0, seed=3)
        assert report.submitted > 20
        assert report.submitted == (
            report.completed + report.shed + report.backlog
        )
        outcomes = {r.outcome for r in report.records}
        assert outcomes <= {"completed", "shed", "backlog"}
        assert report.shed > 0  # the bound actually bit at this rate

    def test_deterministic_reports(self, catalog, q6):
        kwargs = dict(rate=1.0 / 5_000.0, horizon=150_000.0,
                      drain=50_000.0, seed=9)
        a = serve_q6(make_server(catalog, policy=NeverShare()), q6, **kwargs)
        b = serve_q6(make_server(catalog, policy=NeverShare()), q6, **kwargs)
        assert a.submitted == b.submitted
        assert a.latency.to_dict() == b.latency.to_dict()
        assert [r.finished_at for r in a.records] == [
            r.finished_at for r in b.records
        ]

    def test_results_bit_identical_to_solo_run(self, catalog, q6):
        server = make_server(catalog, policy=AlwaysShare(), keep_rows=True)
        report = serve_q6(server, q6, rate=1.0 / 10_000.0,
                          horizon=100_000.0, drain=200_000.0, seed=4)
        solo = Database(catalog, RuntimeConfig(processors=4)).session()
        from repro.db.builder import Query

        reference = solo.run(
            Query(plan=q6.plan, pivot_op_id=q6.pivot, name="q6"),
            share=False,
        ).rows
        completed = [r for r in report.records if r.outcome == "completed"]
        assert completed
        for record in completed:
            assert record.rows == tuple(reference)

    def test_serve_trace_and_horizon_default(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare())
        arrivals = [Arrival(at=float(i) * 100.0, query=q6) for i in range(5)]
        report = server.serve_trace(arrivals, drain=500_000.0)
        assert report.arrival_rate is None
        assert report.horizon == 400.0
        assert report.submitted == 5
        assert report.completed == 5
        assert report.backlog == 0

    def test_goodput_excludes_drain_completions(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare())
        arrivals = [Arrival(at=0.0, query=q6)]
        report = server.serve_trace(arrivals, horizon=1.0, drain=500_000.0)
        assert report.completed == 1
        assert report.goodput == 0.0  # finished after the horizon

    def test_max_inflight_gates_dispatch(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare(), max_inflight=1)
        arrivals = [Arrival(at=0.0, query=q6), Arrival(at=1.0, query=q6)]
        report = server.serve_trace(arrivals, drain=500_000.0)
        assert report.completed == 2
        second = report.records[1]
        assert second.queue_wait > 0  # waited for the first to finish
        queued = [r for r in server.session.audit_log()
                  if r.source == "server" and r.outcome == "queue"]
        assert len(queued) == 1

    def test_validation(self, catalog, q6):
        server = make_server(catalog)
        with pytest.raises(PolicyError):
            make_server(catalog, max_inflight=0)
        with pytest.raises(EngineError):
            Arrival(at=-1.0, query=q6)
        with pytest.raises(EngineError):
            serve_q6(server, q6, rate=0.0, horizon=1.0)
        with pytest.raises(EngineError):
            serve_q6(server, q6, rate=1.0, horizon=0.0)
        with pytest.raises(EngineError):
            serve_q6(server, q6, rate=1.0, horizon=1.0, drain=-1.0)

    def test_second_serve_starts_warm(self, catalog, q6):
        """The session clock persists: a second serve call runs later
        on the same timeline and reports only its own arrivals."""
        server = make_server(catalog, policy=NeverShare())
        first = serve_q6(server, q6, rate=1.0 / 10_000.0,
                         horizon=50_000.0, drain=100_000.0, seed=1)
        clock_after_first = server.session.now
        second = serve_q6(server, q6, rate=1.0 / 10_000.0,
                          horizon=50_000.0, drain=100_000.0, seed=2)
        assert clock_after_first > 0
        assert second.submitted > 0
        assert server.total_submitted == first.submitted + second.submitted
        assert all(
            r.submitted_at >= clock_after_first for r in second.records
        )


class TestAdmissionInTheLoop:
    def test_sheds_are_audited_with_server_source(self, catalog, q6):
        server = make_server(catalog, policy=AlwaysShare(),
                             admission=QueueDepthBound(2))
        report = serve_q6(server, q6, rate=1.0 / 1_000.0,
                          horizon=100_000.0, seed=5)
        assert report.shed > 0
        audited = [r for r in server.session.audit_log()
                   if r.source == "server" and r.outcome == "shed"]
        assert len(audited) == report.shed

    def test_admit_all_never_sheds(self, catalog, q6):
        server = make_server(catalog, policy=AlwaysShare(),
                             admission=AdmitAll())
        report = serve_q6(server, q6, rate=1.0 / 1_000.0,
                          horizon=50_000.0, seed=5)
        assert report.shed == 0

    def test_projected_latency_uses_the_service_ewma(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare())
        assert server.view().projected_latency == 0.0  # no completions yet
        server.serve_trace([Arrival(at=0.0, query=q6)], drain=500_000.0)
        assert server.view().projected_latency > 0.0

    def test_latency_bound_sheds_under_load(self, catalog, q6):
        server = make_server(catalog, processors=1, policy=NeverShare(),
                             admission=LatencyBound(20_000.0))
        report = serve_q6(server, q6, rate=1.0 / 2_000.0,
                          horizon=200_000.0, seed=6)
        assert report.shed > 0
        assert report.backlog < report.submitted - report.shed + 1


class TestTenants:
    CONFIG = dict(processors=4, pool_pages=64, page_rows=16)

    def tenant_config(self):
        return RuntimeConfig(
            tenants=(
                TenantShare("acme", 40, tables=("lineitem",)),
                TenantShare("beta", 8),
            ),
            **self.CONFIG,
        )

    def test_tenant_weights_split_the_stream(self, catalog, q6):
        server = make_server(catalog, config=self.tenant_config(),
                             policy=NeverShare())
        report = serve_q6(server, q6, rate=1.0 / 5_000.0,
                          horizon=200_000.0, drain=300_000.0, seed=8,
                          tenant_weights={"acme": 0.7, "beta": 0.3})
        assert set(report.tenants) == {"acme", "beta"}
        assert report.tenants["acme"].submitted > report.tenants["beta"].submitted
        assert sum(t.submitted for t in report.tenants.values()) == report.submitted
        assert sum(t.backlog for t in report.tenants.values()) == report.backlog

    def test_isolation_holds_after_serving(self, catalog, q6):
        server = make_server(catalog, config=self.tenant_config(),
                             policy=AlwaysShare())
        serve_q6(server, q6, rate=1.0 / 5_000.0,
                 horizon=100_000.0, drain=200_000.0, seed=8,
                 tenant_weights={"acme": 0.5, "beta": 0.5})
        server.session.pool.check_isolation()

    def test_tenant_metrics_exported(self, catalog, q6):
        server = make_server(catalog, config=self.tenant_config(),
                             policy=NeverShare())
        serve_q6(server, q6, rate=1.0 / 10_000.0,
                 horizon=50_000.0, drain=100_000.0, seed=8)
        snapshot = server.session.metrics().snapshot()
        assert snapshot["tenant.acme.quota"] == 40.0
        assert snapshot["tenant.beta.quota"] == 8.0
        assert snapshot["tenant.acme.resident"] <= 40.0


class TestObservability:
    def test_server_metric_family(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare(),
                             admission=QueueDepthBound(2))
        report = serve_q6(server, q6, rate=1.0 / 1_000.0,
                          horizon=50_000.0, drain=200_000.0, seed=5)
        snapshot = server.session.metrics().snapshot()
        assert snapshot["server.submitted"] == float(report.submitted)
        assert snapshot["server.shed"] == float(report.shed)
        assert snapshot["server.completed"] == float(report.completed)
        assert snapshot["server.queue_depth"] == 0.0
        assert snapshot["server.in_flight"] == float(report.backlog)

    def test_trace_events_cover_the_lifecycle(self, catalog, q6):
        config = RuntimeConfig(processors=4, trace=True)
        server = make_server(catalog, config=config, policy=NeverShare(),
                             admission=QueueDepthBound(1))
        serve_q6(server, q6, rate=1.0 / 1_000.0,
                 horizon=50_000.0, drain=200_000.0, seed=5)
        names = {
            e.name for e in server.session.tracer.events
            if e.cat == "server"
        }
        assert {"arrive", "dispatch", "complete", "shed"} <= names

    def test_render_mentions_every_tenant(self, catalog, q6):
        server = make_server(catalog, policy=NeverShare())
        report = serve_q6(server, q6, rate=1.0 / 10_000.0,
                          horizon=50_000.0, drain=100_000.0, seed=5,
                          tenant_weights={"acme": 1.0})
        text = report.render()
        assert "tenant acme" in text
        assert "goodput" in text and "p99" in text


class TestFacadeWiring:
    def test_database_serve_builds_a_server(self, catalog, q6):
        db = Database(catalog, RuntimeConfig(processors=4))
        server = db.serve(policy=NeverShare(), max_inflight=2)
        assert isinstance(server, Server)
        assert server.max_inflight == 2
        report = server.serve_trace([Arrival(at=0.0, query=q6)],
                                    drain=500_000.0)
        assert report.completed == 1

    def test_open_accepts_preset_names(self, catalog, q6):
        server = Server.open(catalog, "laptop", policy=NeverShare())
        report = server.serve_trace([Arrival(at=0.0, query=q6)],
                                    drain=500_000.0)
        assert report.completed == 1

    def test_default_policy_is_the_session_advisor(self, catalog, q6):
        server = make_server(catalog)
        assert server.policy.name == "advisor"
        report = serve_q6(server, q6, rate=1.0 / 5_000.0,
                          horizon=100_000.0, drain=300_000.0, seed=2)
        assert report.completed > 0
        # The advisor was actually consulted: decisions were audited.
        assert any(
            r.source == "coordinator" for r in server.session.audit_log()
        )
