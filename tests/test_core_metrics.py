"""Unit tests for Section 4.1 pipeline metrics (repro.core.metrics)."""

import pytest

from repro.core import metrics
from repro.core.sensitivity import baseline_query
from repro.core.spec import QuerySpec, chain, op


@pytest.fixture
def q6():
    """The paper's TPC-H Q6 model: scan (w=9.66, s=10.34) -> agg (p=0.97)."""
    return QuerySpec(chain(op("scan", 9.66, 10.34), op("agg", 0.97)), label="q6")


class TestQ6Metrics:
    def test_p_max_is_scan(self, q6):
        assert metrics.p_max(q6) == pytest.approx(20.0)

    def test_bottleneck_is_scan(self, q6):
        assert metrics.bottleneck(q6).name == "scan"

    def test_peak_rate(self, q6):
        assert metrics.peak_rate(q6) == pytest.approx(1 / 20.0)

    def test_total_work(self, q6):
        # The paper rounds u' to 21; the exact value is 20.97.
        assert metrics.total_work(q6) == pytest.approx(20.97)

    def test_utilization(self, q6):
        assert metrics.utilization(q6) == pytest.approx(20.97 / 20.0)


class TestBaselineMetrics:
    """Figure 3 baseline: p=10 below, pivot w=6 s=1, p=10 above."""

    def test_p_max(self):
        assert metrics.p_max(baseline_query()) == pytest.approx(10.0)

    def test_total_work(self):
        assert metrics.total_work(baseline_query()) == pytest.approx(27.0)

    def test_utilization_is_2_7(self):
        # "each query requires 2.7 processors for peak throughput"
        assert metrics.utilization(baseline_query()) == pytest.approx(2.7)


class TestGeneralMetrics:
    def test_single_operator_query(self):
        q = QuerySpec(op("scan", 5.0), label="s")
        assert metrics.p_max(q) == pytest.approx(5.0)
        assert metrics.utilization(q) == pytest.approx(1.0)

    def test_operator_p_with_consumers(self):
        node = op("pivot", 6.0, 1.0)
        assert metrics.operator_p(node, consumers=5) == pytest.approx(11.0)

    def test_bushy_plan_p_max(self):
        q = QuerySpec(
            op("join", 4.0, 0.5, op("left", 7.0), op("right", 2.0)), label="j"
        )
        assert metrics.p_max(q) == pytest.approx(7.0)
        assert metrics.total_work(q) == pytest.approx(4.5 + 7.0 + 2.0)

    def test_blocking_plan_rejected(self):
        q = QuerySpec(chain(op("scan", 1.0), op("sort", 2.0, blocking=True)))
        for fn in (
            metrics.p_max,
            metrics.bottleneck,
            metrics.peak_rate,
            metrics.total_work,
            metrics.utilization,
        ):
            with pytest.raises(Exception, match="stop-&-go"):
                fn(q)

    def test_utilization_can_exceed_one(self):
        q = QuerySpec(chain(op("a", 10.0), op("b", 10.0), op("c", 10.0)))
        assert metrics.utilization(q) == pytest.approx(3.0)

    def test_root_output_cost_counts_once(self):
        q = QuerySpec(op("scan", 3.0, 2.0), label="s")
        assert metrics.p_max(q) == pytest.approx(5.0)
