"""Tests for the limit operator and the extended TPC-H suite."""

import pytest

from repro.engine import Engine, execute_reference, limit, scan, sort
from repro.errors import PlanError
from repro.sim import Simulator
from repro.storage import Catalog, DataType, Schema
from repro.tpch.extended_queries import EXTENDED_QUERIES, build_extended
from repro.tpch.generator import generate


@pytest.fixture(scope="module")
def tpch():
    return generate(scale_factor=0.001, seed=23)


@pytest.fixture
def small_catalog():
    cat = Catalog()
    t = cat.create("items", Schema([("id", DataType.INT)]))
    for i in range(100):
        t.insert((i,))
    return cat


def run_staged(catalog, plan, processors=4):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim)
    handle = engine.execute(plan, "q")
    sim.run()
    return handle.rows


class TestLimit:
    def test_takes_first_n(self, small_catalog):
        plan = limit(scan(small_catalog, "items"), 7)
        assert run_staged(small_catalog, plan) == [(i,) for i in range(7)]

    def test_zero_limit(self, small_catalog):
        plan = limit(scan(small_catalog, "items"), 0)
        assert run_staged(small_catalog, plan) == []

    def test_limit_larger_than_input(self, small_catalog):
        plan = limit(scan(small_catalog, "items"), 1000)
        assert len(run_staged(small_catalog, plan)) == 100

    def test_negative_limit_rejected(self, small_catalog):
        with pytest.raises(PlanError):
            limit(scan(small_catalog, "items"), -1)

    def test_top_n_pattern(self, small_catalog):
        plan = limit(sort(scan(small_catalog, "items"), [("id", False)]), 3)
        assert run_staged(small_catalog, plan) == [(99,), (98,), (97,)]

    def test_matches_reference(self, small_catalog):
        plan = limit(scan(small_catalog, "items"), 13)
        assert run_staged(small_catalog, plan) == (
            execute_reference(plan, small_catalog)
        )

    def test_no_deadlock_with_tiny_queues(self, small_catalog):
        """The limit stage must drain its producer even after the quota
        is reached, or the scan deadlocks on a full queue."""
        plan = limit(scan(small_catalog, "items"), 2)
        sim = Simulator(processors=1)
        engine = Engine(small_catalog, sim, page_rows=4, queue_capacity=1)
        handle = engine.execute(plan, "q")
        sim.run()
        assert handle.rows == [(0,), (1,)]


class TestExtendedSuite:
    def test_four_queries(self):
        assert set(EXTENDED_QUERIES) == {"q3", "q10", "q12", "q14"}

    def test_unknown_rejected(self, tpch):
        with pytest.raises(KeyError):
            build_extended("q99", tpch)

    @pytest.mark.parametrize("name", sorted(EXTENDED_QUERIES))
    def test_staged_matches_reference(self, name, tpch):
        query = build_extended(name, tpch)
        assert run_staged(tpch, query.plan) == (
            execute_reference(query.plan, tpch)
        )

    @pytest.mark.parametrize("name", sorted(EXTENDED_QUERIES))
    def test_shared_groups_correct(self, name, tpch):
        query = build_extended(name, tpch)
        reference = execute_reference(query.plan, tpch)
        sim = Simulator(processors=4)
        engine = Engine(tpch, sim)
        group = engine.execute_group(
            [query.plan] * 3, pivot_op_id=query.pivot,
            labels=[f"{name}#{i}" for i in range(3)],
        )
        sim.run()
        assert all(h.rows == reference for h in group.handles)

    def test_q3_top10(self, tpch):
        rows = execute_reference(build_extended("q3", tpch).plan, tpch)
        assert len(rows) <= 10
        revenues = [r[3] for r in rows]
        assert revenues == sorted(revenues, reverse=True)

    def test_q10_top20_revenue_positive(self, tpch):
        rows = execute_reference(build_extended("q10", tpch).plan, tpch)
        assert 0 < len(rows) <= 20
        assert all(r[3] > 0 for r in rows)

    def test_q12_ship_modes(self, tpch):
        rows = execute_reference(build_extended("q12", tpch).plan, tpch)
        modes = [r[0] for r in rows]
        assert set(modes) <= {"MAIL", "SHIP"}
        for _, high, low in rows:
            assert high >= 0 and low >= 0

    def test_q14_percentage_in_range(self, tpch):
        rows = execute_reference(build_extended("q14", tpch).plan, tpch)
        assert len(rows) == 1
        assert 0.0 <= rows[0][0] <= 100.0

    def test_join_heavy_sharing_wins_on_small_machines(self, tpch):
        """The extended joins inherit the paper's join-sharing result."""
        from repro.experiments.common import batch_speedup

        for name in ("q3", "q12"):
            query = build_extended(name, tpch)
            assert batch_speedup(tpch, query, 8, 1) > 2.0
