"""End-to-end determinism: identical runs produce identical results.

Reproducibility is a design requirement (DESIGN.md): the same seed
must regenerate every figure bit-for-bit. These tests pin it across
the whole stack — engine runs, profiled parameters, closed-system
throughput, and experiment cells.
"""

import pytest

from repro.engine import Engine
from repro.experiments.common import batch_speedup
from repro.policies import AlwaysShare, ModelGuidedPolicy
from repro.profiling import QueryProfiler
from repro.sim import Simulator
from repro.tpch.generator import generate
from repro.tpch.queries import build
from repro.workload import WorkloadMix, run_closed_system

SCALE = 0.0005
SEED = 99


@pytest.fixture(scope="module")
def catalog():
    return generate(scale_factor=SCALE, seed=SEED)


def test_engine_run_timeline_identical(catalog):
    query = build("q4", catalog)

    def run():
        sim = Simulator(processors=8)
        engine = Engine(catalog, sim)
        group = engine.execute_group(
            [query.plan] * 4, pivot_op_id=query.pivot,
            labels=[f"q{i}" for i in range(4)],
        )
        sim.run()
        return sim.now, [h.finished_at for h in group.handles]

    assert run() == run()


def test_profiles_identical(catalog):
    query = build("q6", catalog)

    def profile():
        result = QueryProfiler(catalog).profile(query.plan, query.pivot)
        return {
            op_id: (est.work, est.output_cost)
            for op_id, est in result.estimates.items()
        }

    assert profile() == profile()


def test_batch_speedup_identical(catalog):
    query = build("q13", catalog)
    assert batch_speedup(catalog, query, 6, 8) == (
        batch_speedup(catalog, query, 6, 8)
    )


def test_closed_system_run_identical(catalog):
    def run():
        result = run_closed_system(
            catalog, AlwaysShare(), WorkloadMix.single("q6", seed=3),
            n_clients=6, processors=4, warmup=30_000.0, window=120_000.0,
        )
        return (result.completions, result.throughput,
                dict(result.completions_by_query))

    assert run() == run()


def test_model_policy_run_identical(catalog):
    query = build("q4", catalog)
    profile = QueryProfiler(catalog).profile(query.plan, query.pivot,
                                             label="q4")
    specs = {"q4": (profile.to_query_spec(), query.pivot)}

    def run():
        result = run_closed_system(
            catalog, ModelGuidedPolicy(specs),
            WorkloadMix.single("q4", seed=3),
            n_clients=6, processors=8, warmup=30_000.0, window=120_000.0,
        )
        return (result.completions, result.shared_submissions,
                result.solo_submissions)

    assert run() == run()


def test_catalog_regeneration_identical():
    a = generate(scale_factor=SCALE, seed=SEED)
    b = generate(scale_factor=SCALE, seed=SEED)
    for name in a.names():
        assert list(a.table(name).rows()) == list(b.table(name).rows())
