"""The unified metrics registry and the canonical stall table."""

import json

import pytest

from repro.db import Database, RuntimeConfig
from repro.obs.metrics import (
    MetricsRegistry,
    render_stall_table,
    stall_breakdown,
)
from repro.storage import Catalog, DataType, Schema


def _session(preset="laptop", pages=8):
    catalog = Catalog()
    table = catalog.create("t", Schema([("k", DataType.INT)]))
    table.insert_many([(i,) for i in range(pages * 64)])
    return Database.open(catalog, RuntimeConfig.preset(preset))


# ----------------------------------------------------------------------
# the registry core
# ----------------------------------------------------------------------


def test_counters_gauges_and_sources():
    registry = MetricsRegistry()
    registry.inc("a.count")
    registry.inc("a.count", 4)
    registry.set("a.gauge", 7.5)
    registry.register("a.live", lambda: 42)
    snap = registry.snapshot()
    assert snap == {"a.count": 5, "a.gauge": 7.5, "a.live": 42}
    assert list(snap) == sorted(snap)


def test_register_group_families():
    registry = MetricsRegistry()
    registry.register_group(lambda: {"x.b": 2, "x.a": 1})
    assert list(registry.snapshot()) == ["x.a", "x.b"]


def test_delta_diffs_snapshots():
    before = {"a": 1.0, "b": 5.0}
    after = {"a": 3.0, "b": 5.0, "c": 2.0}
    assert MetricsRegistry.delta(before, after) == {"a": 2.0, "b": 0.0, "c": 2.0}


def test_to_json_and_render():
    registry = MetricsRegistry()
    registry.set("m.v", 1.25)
    assert json.loads(registry.to_json()) == {"m.v": 1.25}
    assert "m.v" in registry.render()
    assert MetricsRegistry().render() == "(no metrics registered)"


# ----------------------------------------------------------------------
# the canonical engine wiring
# ----------------------------------------------------------------------


def test_for_engine_registers_every_family():
    session = _session()
    result = session.run(session.table("t", columns=["k"]), label="probe")
    snap = session.metrics().snapshot()
    assert snap["sim.now"] == session.now
    assert snap["buffer.capacity"] == 256
    assert snap["buffer.misses"] > 0
    assert snap["memory.work_mem"] == 32
    assert snap["scan.t.pages_served"] > 0
    assert any(name.startswith("stage.") for name in snap)
    for category in ("cpu", "io", "drift_throttle", "queue_block"):
        assert f"stall.{category}" in snap
    # The result carries the batch-drain snapshot.
    assert result.metrics == snap


def test_for_engine_registers_spill_family():
    """Any engine with a pool serves the spill.* family, mirroring the
    buffer.spill_* aliases value-for-value."""
    session = _session()
    session.run(session.table("t", columns=["k"]))
    snap = session.metrics().snapshot()
    for counter in (
        "pages_written",
        "pages_read",
        "prefetch_issued",
        "read_stall",
        "read_overlapped",
    ):
        assert snap[f"spill.{counter}"] == snap[f"buffer.spill_{counter}"]


def test_spill_family_counts_external_sort_traffic():
    """An under-memory sort spills and the family records the traffic."""
    catalog = Catalog()
    table = catalog.create("t", Schema([("k", DataType.INT)]))
    table.insert_many([((i * 7919) % 4096,) for i in range(4096)])
    config = RuntimeConfig(work_mem=2, pool_pages=64, processors=2)
    session = Database.open(catalog, config)
    session.run(session.table("t", columns=["k"]).order_by("k"))
    snap = session.metrics().snapshot()
    assert snap["spill.pages_written"] > 0
    assert snap["spill.pages_read"] > 0


def test_snapshot_is_live_and_delta_isolates_batches():
    session = _session()
    query = session.table("t", columns=["k"])
    session.run(query, label="one")
    first = session.metrics().snapshot()
    session.run(session.table("t", columns=["k"]), label="two")
    second = session.metrics().snapshot()
    delta = MetricsRegistry.delta(first, second)
    assert delta["sim.now"] > 0
    assert delta["buffer.capacity"] == 0


def test_scan_stall_reconciles_with_stage_io():
    """The stall.* totals come from the task ledger; io is bounded by
    busy time (it is busy time's overlapped component)."""
    session = _session()
    session.run(session.table("t", columns=["k"]))
    snap = session.metrics().snapshot()
    breakdown = stall_breakdown(snap)
    assert set(breakdown) == {"cpu", "io", "drift_throttle", "queue_block"}
    assert breakdown["cpu"] >= 0
    assert breakdown["io"] >= 0


# ----------------------------------------------------------------------
# the stall table
# ----------------------------------------------------------------------


def test_render_stall_table_shares_sum_to_one():
    snap = {"stall.cpu": 75.0, "stall.io": 25.0,
            "stall.drift_throttle": 0.0, "stall.queue_block": 0.0}
    table = render_stall_table(snap)
    lines = table.splitlines()
    assert lines[0].split() == ["category", "time", "share"]
    assert "75.0%" in table and "25.0%" in table
    assert "#" in lines[1] or "#" in lines[2]


def test_render_stall_table_handles_empty():
    table = render_stall_table({})
    assert "0.0%" in table


def test_query_result_render_includes_stall_table():
    session = _session()
    result = session.run(session.table("t", columns=["k"]), label="probe")
    text = result.render()
    assert "category" in text and "queue_block" in text
    assert result.stalls == stall_breakdown(result.metrics)


def test_render_stall_table_spill_footer():
    """Snapshots carrying the spill.* family gain a read-back footer;
    stall-only snapshots render exactly as before."""
    stalls = {"stall.cpu": 75.0, "stall.io": 25.0,
              "stall.drift_throttle": 0.0, "stall.queue_block": 0.0}
    plain = render_stall_table(stalls)
    assert "spill" not in plain
    with_spill = render_stall_table({
        **stalls,
        "spill.pages_written": 12.0,
        "spill.pages_read": 12.0,
        "spill.read_stall": 30.0,
        "spill.read_overlapped": 10.0,
    })
    lines = with_spill.splitlines()
    assert lines[:5] == plain.splitlines()
    assert "spill read-back" in lines[5]
    assert "25.0% overlapped" in lines[5]
    assert "12w/12r pages" in lines[5]


def test_report_stall_table_wrapper():
    from repro.experiments.report import stall_table

    snap = {"stall.cpu": 1.0, "stall.io": 0.0,
            "stall.drift_throttle": 0.0, "stall.queue_block": 0.0}
    assert stall_table(snap) == render_stall_table(snap)


@pytest.mark.parametrize("preset", ["unbounded", "cmp32"])
def test_for_engine_tolerates_absent_layers(preset):
    """Presets without scans (or any storage at all) still snapshot."""
    session = _session(preset=preset)
    session.run(session.table("t", columns=["k"]))
    snap = session.metrics().snapshot()
    assert "sim.now" in snap
    assert not any(name.startswith("scan.") for name in snap)
    if preset == "unbounded":
        assert not any(name.startswith("buffer.") for name in snap)
