"""Property-based tests: staged engine == reference executor.

Randomized tables, predicates and plans; whatever the scheduler does,
the staged answer must equal the naive answer, and sharing must never
change any member's result.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    AggSpec,
    Engine,
    aggregate,
    execute_reference,
    filter_,
    hash_join,
    project,
    scan,
    sort,
)
from repro.engine.expressions import add, col, gt, lt, mul
from repro.sim import Simulator
from repro.storage import Catalog, DataType, Schema


def make_catalog(rows, tag_rows):
    cat = Catalog()
    items = cat.create("items", Schema([
        ("id", DataType.INT), ("grp", DataType.INT), ("v", DataType.FLOAT),
    ]))
    for i, (grp, v) in enumerate(rows):
        items.insert((i, grp, v))
    tags = cat.create("tags", Schema([
        ("tid", DataType.INT), ("w", DataType.FLOAT),
    ]))
    for tid, w in tag_rows:
        tags.insert((tid, w))
    return cat


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5),
              st.floats(min_value=-100, max_value=100, allow_nan=False)),
    min_size=0, max_size=120,
)
tags_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60),
              st.floats(min_value=0, max_value=10, allow_nan=False)),
    min_size=0, max_size=40,
    unique_by=lambda t: t[0],
)


def staged(catalog, plan, processors, page_rows=16, capacity=2):
    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, page_rows=page_rows,
                    queue_capacity=capacity)
    handle = engine.execute(plan, "q")
    sim.run()
    return handle.rows


@given(rows_strategy, st.floats(min_value=-50, max_value=50,
                                allow_nan=False),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=40, deadline=None)
def test_filter_aggregate_equivalence(rows, threshold, processors):
    catalog = make_catalog(rows, [])
    plan = aggregate(
        filter_(scan(catalog, "items"), gt(col("v"), threshold)),
        ["grp"],
        [AggSpec("count", "n"), AggSpec("sum", "total", col("v")),
         AggSpec("avg", "mean", col("v"))],
    )
    assert staged(catalog, plan, processors) == execute_reference(plan, catalog)


@given(rows_strategy, st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=40, deadline=None)
def test_sort_equivalence_any_page_size(rows, processors, page_rows, capacity):
    catalog = make_catalog(rows, [])
    plan = sort(scan(catalog, "items"), [("grp", True), ("v", False)])
    assert staged(catalog, plan, processors, page_rows, capacity) == (
        execute_reference(plan, catalog)
    )


@given(rows_strategy, tags_strategy, st.integers(min_value=1, max_value=8),
       st.sampled_from(["inner", "left", "semi", "anti"]))
@settings(max_examples=40, deadline=None)
def test_hash_join_equivalence(rows, tag_rows, processors, join_type):
    catalog = make_catalog(rows, tag_rows)
    plan = hash_join(
        build=scan(catalog, "tags"), probe=scan(catalog, "items"),
        build_key="tid", probe_key="id", join_type=join_type,
    )
    assert staged(catalog, plan, processors) == execute_reference(plan, catalog)


@given(rows_strategy, st.integers(min_value=2, max_value=6),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_sharing_preserves_every_members_answer(rows, members, processors):
    catalog = make_catalog(rows, [])
    pivot = project(
        filter_(scan(catalog, "items"), lt(col("v"), 10.0)),
        [("grp", col("grp"), DataType.INT),
         ("u", add(mul(col("v"), 2.0), 1.0), DataType.FLOAT)],
        op_id="pivot",
    )
    plan = aggregate(pivot, ["grp"], [AggSpec("sum", "s", col("u"))])
    reference = execute_reference(plan, catalog)

    sim = Simulator(processors=processors)
    engine = Engine(catalog, sim, page_rows=16, queue_capacity=2)
    group = engine.execute_group(
        [plan] * members, pivot_op_id="pivot",
        labels=[f"m{i}" for i in range(members)],
    )
    sim.run()
    for handle in group.handles:
        assert handle.rows == reference


@given(rows_strategy)
@settings(max_examples=25, deadline=None)
def test_shared_busy_time_never_exceeds_unshared(rows):
    """Sharing removes work; with equal cost models the group's total
    busy time can never exceed independent execution's."""
    catalog = make_catalog(rows, [])
    plan = aggregate(
        filter_(scan(catalog, "items"), gt(col("v"), -1000.0), op_id="pivot"),
        ["grp"], [AggSpec("count", "n")],
    )

    def busy(shared):
        sim = Simulator(processors=4)
        engine = Engine(catalog, sim, page_rows=16)
        if shared:
            engine.execute_group([plan] * 4, pivot_op_id="pivot")
        else:
            for i in range(4):
                engine.execute(plan, f"q{i}")
        sim.run()
        return sim.total_busy_time

    assert busy(True) <= busy(False) + 1e-6
