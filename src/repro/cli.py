"""The ``repro`` command: operate the reproduction from a shell.

The experiment figures have their own entry point
(``repro-experiments``); this CLI is for the *observability* surface
added with the ``repro.obs`` package. Two subcommand families drive
the simulated-time and wall-clock instruments end to end::

    repro trace                      # text timeline of a shared demo run
    repro trace --out trace.json     # Chrome/Perfetto trace_event JSON
    repro trace --validate           # schema-check the export (CI smoke)
    repro trace --queries 4 --pages 32 --metrics --audit

    repro perf                       # hotspot table of the same demo run
    repro perf run --out perf.json   # speedscope/Perfetto-loadable JSON
    repro perf run --collapsed out.folded   # flamegraph collapsed stacks
    repro perf diff BENCH_8.json BENCH_9.json --fail-over 20

``repro trace`` and ``repro perf run`` build the same small
deterministic catalog, open a ``laptop``-preset session with the
requested instrument attached, run a forced-share batch of identical
scans (so the elevator attach/prefetch/throttle machinery fires), and
export what the instrument saw. The trace side is simulated-time only
(two invocations produce byte-identical JSON); the perf side reports
*host* wall time, so numbers vary run to run while the simulated
outcome stays fixed. ``repro perf diff`` compares two ``BENCH_*.json``
trajectory checkpoints and exits 1 when a wall-clock regression
exceeds the gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.db import Database, RuntimeConfig
from repro.obs.bench import BenchSchemaError, BenchTrajectory, diff_trajectories
from repro.obs.trace import validate_chrome_trace
from repro.storage.catalog import Catalog
from repro.storage.page import DEFAULT_PAGE_ROWS
from repro.storage.schema import DataType, Schema

__all__ = ["main", "demo_session", "demo_trace_session"]


def demo_session(
    pages: int = 16,
    queries: int = 2,
    preset: str = "laptop",
    trace: bool = False,
    perf: bool = False,
):
    """Run the canonical instrumented demo batch; returns the session.

    ``queries`` identical full scans of a ``pages``-page table are
    forced into one sharing group on a ``preset`` session — the
    smallest workload that exercises every event family (compute
    slices, queue blocks, pool hits/misses, elevator attach/prefetch,
    drift throttling when the preset bounds drift). ``trace``/``perf``
    pick which instruments ride along.
    """
    catalog = Catalog()
    table = catalog.create(
        "lineitem", Schema([("k", DataType.INT), ("v", DataType.INT)])
    )
    table.insert_many(
        [(i, i % 7) for i in range(pages * DEFAULT_PAGE_ROWS)]
    )
    config = RuntimeConfig.preset(preset).with_(trace=trace, perf=perf)
    session = Database.open(catalog, config)
    for i in range(queries):
        session.submit(
            session.table("lineitem", columns=["k"]),
            label=f"client{i}",
            share=True,
        )
    session.run_all()
    return session


def demo_trace_session(pages: int = 16, queries: int = 2, preset: str = "laptop"):
    """The traced demo batch (kept as the stable name ``repro trace``
    and its tests import; :func:`demo_session` is the general form)."""
    return demo_session(pages=pages, queries=queries, preset=preset, trace=True)


# ----------------------------------------------------------------------
# shared export plumbing
# ----------------------------------------------------------------------


def _add_export_args(parser) -> None:
    """The ``--out``/``--validate`` pair every chrome-trace-exporting
    subcommand shares (``repro trace``, ``repro perf run``)."""
    parser.add_argument(
        "--out", metavar="PATH",
        help="write Chrome/Perfetto trace_event JSON to PATH",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="schema-check the export; exit 1 on problems",
    )


def _export(args, exporter, valid_line: str, unit: str) -> int:
    """Run the shared ``--validate``/``--out`` handling.

    ``exporter`` needs ``to_chrome()`` and ``write(path) -> int``
    (both the tracer and the profiler satisfy this); ``valid_line``
    is printed when validation passes and ``unit`` names what
    ``write`` counts. Returns the exit status (1 on invalid export).
    """
    status = 0
    if args.validate:
        problems = validate_chrome_trace(exporter.to_chrome())
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            status = 1
        else:
            print(valid_line)
    if args.out:
        count = exporter.write(args.out)
        print(f"wrote {count} {unit} to {args.out}")
    return status


# ----------------------------------------------------------------------
# repro trace
# ----------------------------------------------------------------------


def _cmd_trace(args) -> int:
    session = demo_trace_session(
        pages=args.pages, queries=args.queries, preset=args.preset
    )
    tracer = session.tracer
    assert tracer is not None  # trace=True attached it

    status = _export(
        args, tracer, f"trace valid: {len(tracer.events)} events", "events"
    )
    if args.text or not (args.out or args.validate):
        print(tracer.timeline(limit=args.limit))
    if args.metrics:
        print(session.metrics().render())
    if args.audit:
        print(session.audit_log().render())
    return status


# ----------------------------------------------------------------------
# repro serve
# ----------------------------------------------------------------------


def _cmd_serve(args) -> int:
    from repro.policies import AlwaysShare, NeverShare
    from repro.server import LatencyBound, QueueDepthBound, Server
    from repro.tpch.generator import generate
    from repro.tpch.queries import build
    from repro.workload.mixes import WorkloadMix

    catalog = generate(scale_factor=args.scale_factor, seed=args.seed)
    names = args.queries.split(",")
    queries = {name: build(name, catalog) for name in names}
    weights = {name: 1.0 for name in names}
    mix = WorkloadMix(weights)

    config = RuntimeConfig.preset(args.preset)
    policy = {"always": AlwaysShare(), "never": NeverShare(), "auto": None}[
        args.policy
    ]
    admission = (
        LatencyBound(args.latency_bound)
        if args.latency_bound is not None
        else QueueDepthBound(args.max_queue)
    )
    server = Server.open(
        catalog,
        config,
        policy=policy,
        admission=admission,
        max_inflight=args.max_inflight,
        keep_rows=False,
    )
    report = server.serve(
        mix,
        queries,
        arrival_rate=args.rate,
        horizon=args.horizon,
        drain=args.drain,
        seed=args.seed,
    )
    print(report.render())
    if args.metrics:
        print(server.session.metrics().render())
    if args.audit:
        print(server.session.audit_log().render())
    return 0


# ----------------------------------------------------------------------
# repro perf
# ----------------------------------------------------------------------


def _cmd_perf_run(args) -> int:
    session = demo_session(
        pages=args.pages, queries=args.queries, preset=args.preset, perf=True
    )
    profiler = session.perf()

    status = _export(
        args, profiler,
        f"perf export valid: {len(profiler.profile())} operators",
        "operator profiles",
    )
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as handle:
            handle.write(profiler.collapsed() + "\n")
        print(f"wrote collapsed stacks to {args.collapsed}")
    if args.text or not (args.out or args.validate or args.collapsed):
        print(profiler.hotspot_table(limit=args.limit))
    return status


def _cmd_perf_diff(args) -> int:
    try:
        old = BenchTrajectory.load(args.old)
        new = BenchTrajectory.load(args.new)
    except (OSError, BenchSchemaError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = diff_trajectories(old, new, fail_over_pct=args.fail_over)
    print(report.render())
    return report.exit_status()


# ----------------------------------------------------------------------
# argument wiring
# ----------------------------------------------------------------------


def _add_demo_args(parser) -> None:
    """The demo-batch shape arguments ``trace`` and ``perf run`` share."""
    parser.add_argument(
        "--queries", type=int, default=2,
        help="identical scans forced into one sharing group (default 2)",
    )
    parser.add_argument(
        "--pages", type=int, default=16,
        help="pages in the scanned table (default 16)",
    )
    parser.add_argument(
        "--preset", default="laptop",
        choices=["laptop", "cmp32", "unbounded"],
        help="RuntimeConfig preset to run under (default laptop)",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operate the 'To Share or Not To Share?' reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser(
        "trace",
        help="record a traced demo batch and export the flight recording",
    )
    _add_demo_args(trace)
    _add_export_args(trace)
    trace.add_argument(
        "--text", action="store_true",
        help="print the text timeline (default when no --out/--validate)",
    )
    trace.add_argument(
        "--limit", type=int, default=None,
        help="cap the text timeline at this many events",
    )
    trace.add_argument(
        "--metrics", action="store_true",
        help="also print the session's metric snapshot",
    )
    trace.add_argument(
        "--audit", action="store_true",
        help="also print the routing-decision audit table",
    )
    trace.set_defaults(func=_cmd_trace)

    serve = sub.add_parser(
        "serve",
        help="run the open-system service tier: Poisson arrivals, "
        "admission control, sharing, and an open-system report",
    )
    serve.add_argument(
        "--rate", type=float, default=1.0 / 20_000.0,
        help="Poisson arrival rate, queries per simulated time unit "
        "(the default sits just under the demo catalog's capacity "
        "on the laptop preset)",
    )
    serve.add_argument(
        "--horizon", type=float, default=400_000.0,
        help="arrival window in simulated time units",
    )
    serve.add_argument(
        "--drain", type=float, default=100_000.0,
        help="extra time after the horizon for in-flight work",
    )
    serve.add_argument(
        "--queries", default="q1,q6",
        help="comma-separated TPC-H query names, mixed evenly",
    )
    serve.add_argument(
        "--policy", default="auto", choices=["auto", "always", "never"],
        help="sharing policy (auto = the session's outlook advisor)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission bound on the waiting-queue depth (default 64)",
    )
    serve.add_argument(
        "--latency-bound", type=float, default=None, metavar="T",
        help="shed on projected latency > T instead of queue depth",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=None,
        help="cap on concurrently dispatched queries",
    )
    serve.add_argument(
        "--scale-factor", type=float, default=0.001,
        help="TPC-H scale factor of the served catalog",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--preset", default="laptop",
        choices=["laptop", "cmp32", "unbounded"],
        help="RuntimeConfig preset to serve under (default laptop)",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="also print the session's metric snapshot",
    )
    serve.add_argument(
        "--audit", action="store_true",
        help="also print the decision/shed audit table",
    )
    serve.set_defaults(func=_cmd_serve)

    perf = sub.add_parser(
        "perf",
        help="wall-clock profiling: hotspots, flamegraphs, and the "
        "BENCH trajectory regression gate",
    )
    # Bare `repro perf` behaves like `repro perf run` with defaults.
    perf.set_defaults(
        func=_cmd_perf_run, queries=2, pages=16, preset="laptop",
        out=None, validate=False, collapsed=None, text=False, limit=None,
    )
    perf_sub = perf.add_subparsers(dest="perf_command")

    perf_run = perf_sub.add_parser(
        "run",
        help="profile a demo batch and export hotspots / flamegraph JSON",
    )
    _add_demo_args(perf_run)
    _add_export_args(perf_run)
    perf_run.add_argument(
        "--collapsed", metavar="PATH",
        help="write collapsed-stack flamegraph text to PATH",
    )
    perf_run.add_argument(
        "--text", action="store_true",
        help="print the hotspot table (default when nothing else asked)",
    )
    perf_run.add_argument(
        "--limit", type=int, default=None,
        help="cap the hotspot table at this many operators",
    )
    perf_run.set_defaults(func=_cmd_perf_run)

    perf_diff = perf_sub.add_parser(
        "diff",
        help="compare two BENCH_*.json checkpoints; exit 1 past the gate",
    )
    perf_diff.add_argument("old", help="baseline BENCH_*.json")
    perf_diff.add_argument("new", help="candidate BENCH_*.json")
    perf_diff.add_argument(
        "--fail-over", type=float, default=None, metavar="PCT",
        help="fail when any bench regresses more than PCT percent over "
        "its own noise tolerance floor (default: tolerance only)",
    )
    perf_diff.set_defaults(func=_cmd_perf_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
