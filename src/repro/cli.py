"""The ``repro`` command: operate the reproduction from a shell.

The experiment figures have their own entry point
(``repro-experiments``); this CLI is for the *observability* surface
added with the ``repro.obs`` package. Its first subcommand drives the
flight recorder end to end::

    repro trace                      # text timeline of a shared demo run
    repro trace --out trace.json     # Chrome/Perfetto trace_event JSON
    repro trace --validate           # schema-check the export (CI smoke)
    repro trace --queries 4 --pages 32 --metrics --audit

``repro trace`` builds a small deterministic catalog, opens a
``laptop``-preset session with ``trace=True``, runs a forced-share
batch of identical scans (so the elevator attach/prefetch/throttle
machinery fires), and exports what the recorder saw. Everything is
simulated-time only: two invocations with the same arguments produce
byte-identical JSON.
"""

from __future__ import annotations

import argparse
import sys

from repro.db import Database, RuntimeConfig
from repro.obs.trace import validate_chrome_trace
from repro.storage.catalog import Catalog
from repro.storage.page import DEFAULT_PAGE_ROWS
from repro.storage.schema import DataType, Schema

__all__ = ["main", "demo_trace_session"]


def demo_trace_session(pages: int = 16, queries: int = 2, preset: str = "laptop"):
    """Run the canonical traced demo batch; returns the live session.

    ``queries`` identical full scans of a ``pages``-page table are
    forced into one sharing group on a traced ``preset`` session — the
    smallest workload that exercises every event family (compute
    slices, queue blocks, pool hits/misses, elevator attach/prefetch,
    drift throttling when the preset bounds drift).
    """
    catalog = Catalog()
    table = catalog.create(
        "lineitem", Schema([("k", DataType.INT), ("v", DataType.INT)])
    )
    table.insert_many(
        [(i, i % 7) for i in range(pages * DEFAULT_PAGE_ROWS)]
    )
    config = RuntimeConfig.preset(preset).with_(trace=True)
    session = Database.open(catalog, config)
    for i in range(queries):
        session.submit(
            session.table("lineitem", columns=["k"]),
            label=f"client{i}",
            share=True,
        )
    session.run_all()
    return session


def _cmd_trace(args) -> int:
    session = demo_trace_session(
        pages=args.pages, queries=args.queries, preset=args.preset
    )
    tracer = session.tracer
    assert tracer is not None  # trace=True attached it

    status = 0
    if args.validate:
        problems = validate_chrome_trace(tracer.to_chrome())
        if problems:
            for problem in problems:
                print(f"invalid: {problem}", file=sys.stderr)
            status = 1
        else:
            print(f"trace valid: {len(tracer.events)} events")
    if args.out:
        count = tracer.write(args.out)
        print(f"wrote {count} events to {args.out}")
    if args.text or not (args.out or args.validate):
        print(tracer.timeline(limit=args.limit))
    if args.metrics:
        print(session.metrics().render())
    if args.audit:
        print(session.audit_log().render())
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Operate the 'To Share or Not To Share?' reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trace = sub.add_parser(
        "trace",
        help="record a traced demo batch and export the flight recording",
    )
    trace.add_argument(
        "--queries", type=int, default=2,
        help="identical scans forced into one sharing group (default 2)",
    )
    trace.add_argument(
        "--pages", type=int, default=16,
        help="pages in the scanned table (default 16)",
    )
    trace.add_argument(
        "--preset", default="laptop",
        choices=["laptop", "cmp32", "unbounded"],
        help="RuntimeConfig preset to trace under (default laptop)",
    )
    trace.add_argument(
        "--out", metavar="PATH",
        help="write Chrome/Perfetto trace_event JSON to PATH",
    )
    trace.add_argument(
        "--text", action="store_true",
        help="print the text timeline (default when no --out/--validate)",
    )
    trace.add_argument(
        "--limit", type=int, default=None,
        help="cap the text timeline at this many events",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help="schema-check the export; exit 1 on problems",
    )
    trace.add_argument(
        "--metrics", action="store_true",
        help="also print the session's metric snapshot",
    )
    trace.add_argument(
        "--audit", action="store_true",
        help="also print the routing-decision audit table",
    )
    trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
