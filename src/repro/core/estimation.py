"""Model parameter estimation from profiled measurements (Section 3.1).

The model's inputs — per-operator ``w`` and ``s`` — are not directly
observable. What a system *can* measure is each operator's active
(busy) time during a run, together with how many units of forward
progress the run completed and how many consumers each operator fed.
Profiling a few invocations with and without work sharing yields a
system of linear equations

    ``busy_k = (w_k + s_k * consumers_k) * units``

which least squares separates into ``w_k`` and ``s_k`` (the paper:
"we then solve a system of linear equations to divide up the active
time of each operator among the different nodes of the query plan").

The key identifying observation is that varying the number of sharers
varies ``consumers`` at the pivot while leaving ``w`` fixed; two runs
with different sharer counts suffice to separate the two unknowns, and
more runs over-determine the system and average out noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import EstimationError

__all__ = ["Observation", "OperatorEstimate", "estimate_operator", "estimate_many"]


@dataclass(frozen=True)
class Observation:
    """One profiled run of one operator.

    Attributes
    ----------
    busy_time:
        Total time the operator was actively executing during the run.
    units:
        Units of forward progress the run completed (e.g. reference
        tuples processed, or pages at the reference stream).
    consumers:
        How many consumers the operator fed during this run (1 for
        unshared execution, the sharer count at a shared pivot).
    """

    busy_time: float
    units: float
    consumers: int = 1

    def __post_init__(self) -> None:
        if self.units <= 0:
            raise EstimationError(f"units must be > 0, got {self.units!r}")
        if self.busy_time < 0:
            raise EstimationError(f"busy_time must be >= 0, got {self.busy_time!r}")
        if self.consumers < 1:
            raise EstimationError(f"consumers must be >= 1, got {self.consumers!r}")


@dataclass(frozen=True)
class OperatorEstimate:
    """Fitted per-operator parameters and the fit's residual.

    ``residual`` is the root-mean-square error of the least-squares
    fit in busy-time-per-unit space; large residuals signal that the
    linear model (constant per-unit costs) does not describe the
    operator well.
    """

    work: float
    output_cost: float
    residual: float
    observations: int

    def p(self, consumers: int = 1) -> float:
        return self.work + self.output_cost * consumers


def estimate_operator(observations: Sequence[Observation]) -> OperatorEstimate:
    """Fit ``w`` and ``s`` for one operator from profiled runs.

    With observations at a single consumer count the system cannot
    separate ``w`` from ``s``; in that case all per-unit cost is
    attributed to ``w`` and ``s`` is reported as 0 — appropriate for
    operators that are never pivots. Observations at two or more
    distinct consumer counts identify both parameters.

    Estimates are clamped to be non-negative (negative fitted costs are
    measurement noise; the model requires ``w, s >= 0``).
    """
    if not observations:
        raise EstimationError("need at least one observation")
    per_unit = np.array([obs.busy_time / obs.units for obs in observations])
    consumers = np.array([float(obs.consumers) for obs in observations])

    if len(set(consumers.tolist())) == 1:
        work = float(per_unit.mean())
        fitted = np.full_like(per_unit, work)
        residual = float(np.sqrt(np.mean((per_unit - fitted) ** 2)))
        return OperatorEstimate(
            work=max(work, 0.0),
            output_cost=0.0,
            residual=residual,
            observations=len(observations),
        )

    design = np.column_stack([np.ones_like(consumers), consumers])
    solution, *_ = np.linalg.lstsq(design, per_unit, rcond=None)
    work, output_cost = (float(v) for v in solution)
    fitted = design @ solution
    residual = float(np.sqrt(np.mean((per_unit - fitted) ** 2)))
    return OperatorEstimate(
        work=max(work, 0.0),
        output_cost=max(output_cost, 0.0),
        residual=residual,
        observations=len(observations),
    )


def estimate_many(
    samples: Iterable[tuple[str, Observation]],
) -> dict[str, OperatorEstimate]:
    """Group observations by operator name and fit each one."""
    grouped: dict[str, list[Observation]] = {}
    for name, obs in samples:
        grouped.setdefault(name, []).append(obs)
    if not grouped:
        raise EstimationError("no samples provided")
    return {name: estimate_operator(obs) for name, obs in grouped.items()}
