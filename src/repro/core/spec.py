"""Model-level query plan specifications (Table 1 of the paper).

The analytical model of Section 4 sees a query as a tree of operators,
each characterized by two scalars measured *per unit of forward
progress* of the whole query:

``work`` (the paper's *w*)
    CPU work the operator spends consuming its inputs and doing its own
    processing, per unit of forward progress.

``output_cost`` (the paper's *s*)
    CPU work the operator spends handing one unit of forward progress
    to **each** consumer. An operator with one consumer pays
    ``output_cost`` once per unit; a shared pivot with *M* consumers
    pays ``M * output_cost`` per unit — this is the serialization
    penalty at the heart of the paper.

"Forward progress" normalizes all streams in a plan to the completion
of one reference tuple stream, which implicitly captures selectivities
(Section 4.1.1); the model therefore never needs tuple counts.

:class:`OperatorSpec` nodes are immutable; :class:`QuerySpec` wraps a
root node, validates the tree, and offers navigation helpers (lookup by
name, below/above a pivot) used by :mod:`repro.core.model`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PivotError, SpecError

__all__ = ["OperatorSpec", "QuerySpec", "op", "chain"]


@dataclass(frozen=True)
class OperatorSpec:
    """One operator in a model-level plan tree.

    Parameters
    ----------
    name:
        Identifier, unique within a query plan. The sharing pivot is
        referenced by this name.
    work:
        *w* — work per unit of forward progress spent on inputs and
        internal processing. Must be finite and non-negative.
    output_cost:
        *s* — work per unit of forward progress per consumer. Must be
        finite and non-negative. The root's consumer is the client, so
        its ``output_cost`` still counts once toward its *p*.
    children:
        Input operators (producers feeding this one). A scan has no
        children; a join has two.
    blocking:
        True for stop-&-go operators (sort, hash build). Blocking
        operators decouple the pipeline and are handled by
        :mod:`repro.core.phases`; the plain Section-4 model requires a
        fully pipelined plan (no blocking nodes).
    internal_work:
        For blocking operators only: work of the middle, non-interacting
        phase (e.g. merging sorted runs), per unit of forward progress.
        Section 5.2 models it as a sub-query "that does not interact
        with the system".
    emit_work:
        For blocking operators only: *w* of the leaf that replays the
        materialized result in the following phase (e.g. scanning the
        sorted output — "an extremely fast scan", Section 5.2).
    """

    name: str
    work: float
    output_cost: float = 0.0
    children: tuple["OperatorSpec", ...] = ()
    blocking: bool = False
    internal_work: float = 0.0
    emit_work: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("operator name must be non-empty")
        if not self.blocking and (self.internal_work or self.emit_work):
            raise SpecError(
                f"operator {self.name!r}: internal_work/emit_work are only "
                "meaningful for blocking (stop-&-go) operators"
            )
        for label, value in (
            ("work", self.work),
            ("output_cost", self.output_cost),
            ("internal_work", self.internal_work),
            ("emit_work", self.emit_work),
        ):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SpecError(f"{label} must be a number, got {value!r}")
            if not math.isfinite(value) or value < 0:
                raise SpecError(
                    f"operator {self.name!r}: {label} must be finite and >= 0, "
                    f"got {value!r}"
                )
        if not isinstance(self.children, tuple):
            # Accept any iterable at construction for convenience.
            object.__setattr__(self, "children", tuple(self.children))
        for child in self.children:
            if not isinstance(child, OperatorSpec):
                raise SpecError(
                    f"operator {self.name!r}: child {child!r} is not an OperatorSpec"
                )

    def p(self, consumers: int = 1) -> float:
        """Total work per unit of forward progress (the paper's *p*).

        ``p = w + s * consumers`` — Section 4.1.1 with the output sum
        expanded for ``consumers`` identical output streams.
        """
        if consumers < 0:
            raise SpecError(f"consumers must be >= 0, got {consumers}")
        return self.work + self.output_cost * consumers

    def walk(self) -> Iterator["OperatorSpec"]:
        """Yield this operator and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def structurally_equal(self, other: "OperatorSpec") -> bool:
        """True if two subtrees describe the same operation.

        Sharing requires the merged packets to request identical work;
        the model enforces it by comparing names, costs and shape of
        the subtrees below the pivot.
        """
        if (
            self.name != other.name
            or self.work != other.work
            or self.output_cost != other.output_cost
            or self.blocking != other.blocking
            or self.internal_work != other.internal_work
            or self.emit_work != other.emit_work
            or len(self.children) != len(other.children)
        ):
            return False
        return all(
            a.structurally_equal(b) for a, b in zip(self.children, other.children)
        )

    def relabeled(self, name: str) -> "OperatorSpec":
        """Return a copy of this node (same children) with a new name."""
        return OperatorSpec(
            name=name,
            work=self.work,
            output_cost=self.output_cost,
            children=self.children,
            blocking=self.blocking,
            internal_work=self.internal_work,
            emit_work=self.emit_work,
        )

    def with_children(self, children: tuple["OperatorSpec", ...]) -> "OperatorSpec":
        """Return a copy of this node with a different input list."""
        return OperatorSpec(
            name=self.name,
            work=self.work,
            output_cost=self.output_cost,
            children=children,
            blocking=self.blocking,
            internal_work=self.internal_work,
            emit_work=self.emit_work,
        )


def op(
    name: str,
    work: float,
    output_cost: float = 0.0,
    *children: OperatorSpec,
    blocking: bool = False,
    internal_work: float = 0.0,
    emit_work: float = 0.0,
) -> OperatorSpec:
    """Shorthand constructor for :class:`OperatorSpec`."""
    return OperatorSpec(
        name=name,
        work=work,
        output_cost=output_cost,
        children=tuple(children),
        blocking=blocking,
        internal_work=internal_work,
        emit_work=emit_work,
    )


def chain(*ops_bottom_up: OperatorSpec) -> OperatorSpec:
    """Link operators into a linear pipeline, bottom-up.

    ``chain(scan, filter, agg)`` returns the aggregation root with the
    filter as its child and the scan below that. Existing children of
    the non-leaf arguments must be empty (use explicit trees for bushy
    plans).
    """
    if not ops_bottom_up:
        raise SpecError("chain() requires at least one operator")
    current = ops_bottom_up[0]
    for node in ops_bottom_up[1:]:
        if node.children:
            raise SpecError(
                f"chain(): operator {node.name!r} already has children; "
                "build bushy plans explicitly"
            )
        current = node.with_children((current,))
    return current


@dataclass(frozen=True)
class QuerySpec:
    """A validated model-level query plan.

    Wraps the root :class:`OperatorSpec` and precomputes name lookups.
    Operator names must be unique within the plan so a pivot can be
    addressed unambiguously.
    """

    root: OperatorSpec
    label: str = "query"
    _by_name: dict = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.root, OperatorSpec):
            raise SpecError(f"root must be an OperatorSpec, got {self.root!r}")
        by_name: dict[str, OperatorSpec] = {}
        for node in self.root.walk():
            if node.name in by_name:
                raise SpecError(
                    f"duplicate operator name {node.name!r} in query {self.label!r}"
                )
            by_name[node.name] = node
        object.__setattr__(self, "_by_name", by_name)

    # -- navigation ------------------------------------------------------

    def operators(self) -> tuple[OperatorSpec, ...]:
        """All operators in the plan, pre-order from the root."""
        return tuple(self.root.walk())

    def operator_names(self) -> tuple[str, ...]:
        return tuple(node.name for node in self.root.walk())

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> OperatorSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise PivotError(
                f"operator {name!r} not found in query {self.label!r}; "
                f"available: {sorted(self._by_name)}"
            ) from None

    def pivot(self, name: str) -> OperatorSpec:
        """Return the pivot operator, validating it exists."""
        return self[name]

    def below(self, pivot_name: str) -> tuple[OperatorSpec, ...]:
        """Operators strictly below the pivot (the shared subtree)."""
        return tuple(
            node for child in self[pivot_name].children for node in child.walk()
        )

    def above(self, pivot_name: str) -> tuple[OperatorSpec, ...]:
        """Operators strictly above the pivot (private to each sharer)."""
        shared = {id(node) for node in self[pivot_name].walk()}
        return tuple(node for node in self.root.walk() if id(node) not in shared)

    # -- properties ------------------------------------------------------

    def is_pipelined(self) -> bool:
        """True if no operator is a stop-&-go (blocking) operator."""
        return not any(node.blocking for node in self.root.walk())

    def blocking_operators(self) -> tuple[OperatorSpec, ...]:
        return tuple(node for node in self.root.walk() if node.blocking)

    def relabeled(self, label: str) -> "QuerySpec":
        return QuerySpec(root=self.root, label=label)

    def require_pipelined(self, context: str) -> None:
        """Raise :class:`SpecError` if the plan has blocking operators.

        The Section-4 model assumes fully pipelinable plans; callers
        that cannot handle stop-&-go nodes use this guard and direct
        users to :mod:`repro.core.phases`.
        """
        blockers = self.blocking_operators()
        if blockers:
            names = ", ".join(node.name for node in blockers)
            raise SpecError(
                f"{context}: query {self.label!r} contains stop-&-go operators "
                f"({names}); decompose it with repro.core.phases.decompose() first"
            )
