"""The work-sharing/parallelism model (Sections 4.2-4.4).

Given *m* potentially shared queries and *n* processors, the model
predicts the aggregate rate of forward progress with and without work
sharing, and their ratio

    ``Z(m, n) = x_shared(m, n) / x_unshared(m, n)``

(Section 4). ``Z > 1`` means sharing is a net win.

Unshared execution (Section 4.2) of a set *M* of identical queries:

    ``x_unshared(M, n) = |M| * min(1 / p_max, n_eff / (|M| * u'))``

Shared execution at pivot φ (Section 4.3):

  1. all replicated work below φ is eliminated (one copy runs),
  2. φ multiplexes output to all |M| consumers:
     ``p_φ(M) = w_φ + sum_m s_φm``,
  3. the slowest operator throttles every query in the group:
     ``x_shared(M, n) = |M| * min(1 / p_max(M), n_eff / u'_shared(M))``.

These functions handle fully pipelined plans; stop-&-go plans must be
decomposed first (:mod:`repro.core.phases`). Mismatched peak rates in
closed systems are handled by :mod:`repro.core.closed_system`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core import metrics
from repro.core.contention import ContentionLike, resolve
from repro.core.spec import QuerySpec
from repro.errors import PivotError, SpecError

__all__ = [
    "SharedPlanMetrics",
    "shared_metrics",
    "unshared_rate",
    "shared_rate",
    "sharing_benefit",
    "validate_group",
]


def _check_group(queries: Sequence[QuerySpec]) -> None:
    if not queries:
        raise SpecError("query group must contain at least one query")
    for query in queries:
        query.require_pipelined("sharing model")


def validate_group(queries: Sequence[QuerySpec], pivot_name: str) -> None:
    """Check that a group of queries can legally share at ``pivot_name``.

    Every query must contain the pivot, the pivot's *work* must agree
    (they merge into one execution), and the subtrees below the pivot
    must be structurally identical — merged packets must request the
    same operation. Per-query output costs ``s`` at the pivot *may*
    differ (each consumer can be arbitrarily expensive to feed).
    """
    _check_group(queries)
    reference = queries[0].pivot(pivot_name)
    for query in queries[1:]:
        candidate = query.pivot(pivot_name)
        if candidate.work != reference.work:
            raise PivotError(
                f"pivot {pivot_name!r} has mismatched work across the group: "
                f"{reference.work!r} ({queries[0].label}) vs "
                f"{candidate.work!r} ({query.label})"
            )
        if len(candidate.children) != len(reference.children) or not all(
            a.structurally_equal(b)
            for a, b in zip(reference.children, candidate.children)
        ):
            raise PivotError(
                f"queries {queries[0].label!r} and {query.label!r} differ below "
                f"pivot {pivot_name!r}; only identical sub-plans can be shared"
            )


@dataclass(frozen=True)
class SharedPlanMetrics:
    """Aggregate metrics of a shared execution plan (Section 4.3).

    Attributes
    ----------
    m:
        Number of sharers.
    p_pivot:
        ``w_φ + sum_m s_φm`` — the pivot's per-unit work including the
        multiplexing cost to every consumer.
    p_max:
        Bottleneck per-unit work of the whole shared plan.
    total_work:
        ``u'_shared`` — one copy of the subtree below φ, the inflated
        pivot, plus each query's private operators above φ.
    utilization:
        ``u'_shared / p_max`` — processors the shared plan can use.
    """

    m: int
    p_pivot: float
    p_max: float
    total_work: float
    utilization: float


def shared_metrics(
    queries: Sequence[QuerySpec], pivot_name: str
) -> SharedPlanMetrics:
    """Compute Section 4.3's shared-plan quantities for a query group."""
    validate_group(queries, pivot_name)
    reference = queries[0]
    pivot = reference.pivot(pivot_name)

    p_pivot = pivot.work + sum(q.pivot(pivot_name).output_cost for q in queries)
    below = reference.below(pivot_name)
    p_below = [node.p(1) for node in below]
    p_above = [node.p(1) for q in queries for node in q.above(pivot_name)]

    p_max_shared = max([p_pivot, *p_below, *p_above])
    total = sum(p_below) + p_pivot + sum(p_above)
    return SharedPlanMetrics(
        m=len(queries),
        p_pivot=p_pivot,
        p_max=p_max_shared,
        total_work=total,
        utilization=total / p_max_shared,
    )


def unshared_rate(
    queries: Sequence[QuerySpec],
    n: float,
    contention: ContentionLike = None,
) -> float:
    """Aggregate rate of independent execution, ``x_unshared(M, n)``.

    Section 4.2 assumes the group's queries share one peak rate; for
    mismatched rates this function applies the open-system treatment of
    Section 5.1 (everyone throttled to the slowest query), which leaves
    the Section 4.2 equations unchanged. Closed systems should use
    :func:`repro.core.closed_system.unshared_rate_closed`.
    """
    _check_group(queries)
    n_eff = resolve(contention).effective(n)
    m = len(queries)
    worst_p_max = max(metrics.p_max(q) for q in queries)
    total = sum(metrics.total_work(q) for q in queries)
    return m * min(1.0 / worst_p_max, n_eff / total)


def shared_rate(
    queries: Sequence[QuerySpec],
    pivot_name: str,
    n: float,
    contention: ContentionLike = None,
) -> float:
    """Aggregate rate of shared execution, ``x_shared(M, n)``."""
    n_eff = resolve(contention).effective(n)
    shared = shared_metrics(queries, pivot_name)
    return shared.m * min(1.0 / shared.p_max, n_eff / shared.total_work)


def sharing_benefit(
    queries: Sequence[QuerySpec],
    pivot_name: str,
    n: float,
    contention: ContentionLike = None,
    closed_system: bool = False,
) -> float:
    """``Z(m, n)`` — the benefit of sharing the group at the pivot.

    ``Z > 1`` means work sharing is a net win; ``Z < 1`` means the
    serialization at the pivot outweighs the work saved and unshared
    execution is better (Section 4).

    With ``closed_system=True`` the unshared baseline uses the
    Section 5.1 closed-system approximation, which matters only when
    the group's peak rates differ.
    """
    shared = shared_rate(queries, pivot_name, n, contention)
    if closed_system:
        from repro.core.closed_system import unshared_rate_closed

        unshared = unshared_rate_closed(queries, n, contention)
    else:
        unshared = unshared_rate(queries, n, contention)
    return shared / unshared
