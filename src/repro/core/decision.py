"""Binary share/don't-share decisions (Section 8).

:class:`ShareAdvisor` wraps the analytical model behind the interface a
database engine needs at runtime: *"this query could join that sharing
group — should it?"*. The paper integrates exactly this decision into
Cordoba; queries join a group only when the model predicts a benefit,
otherwise the next group is tried, and failing all groups the query
runs independently (Section 8.1).

The advisor is deliberately stateless about the engine: it sees model
specs and processor counts and returns predictions, so the same object
serves offline (multi-query-optimizer style) and online use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.contention import ContentionLike, resolve
from repro.core.model import shared_rate, sharing_benefit, unshared_rate
from repro.core.spec import QuerySpec
from repro.errors import SpecError

__all__ = ["ShareDecision", "ShareAdvisor", "GroupPartitioning"]


@dataclass(frozen=True)
class GroupPartitioning:
    """A Section 8.1 arrangement: k groups of g sharers on n/k CPUs."""

    group_size: int
    n_groups: int
    processors_per_group: float
    predicted_rate: float


@dataclass(frozen=True)
class ShareDecision:
    """The advisor's verdict for one candidate group.

    ``benefit`` is the predicted ``Z(m, n)``; ``share`` is simply
    ``benefit > threshold``. The rates are exposed for logging and for
    the experiments that validate the model against measurements.
    """

    share: bool
    benefit: float
    shared_rate: float
    unshared_rate: float
    group_size: int
    processors: float

    def __bool__(self) -> bool:
        return self.share


class ShareAdvisor:
    """Model-guided sharing oracle for a machine with ``n`` processors.

    Parameters
    ----------
    processors:
        Hardware contexts available to the candidate group.
    contention:
        Optional contention model (see :mod:`repro.core.contention`).
    threshold:
        Minimum predicted ``Z`` to recommend sharing. The paper uses a
        strict win (``Z > 1``); a threshold slightly above 1 trades a
        little predicted benefit for robustness to model error.
    closed_system:
        Use the Section 5.1 closed-system unshared baseline for groups
        with mismatched peak rates.
    """

    def __init__(
        self,
        processors: float,
        contention: ContentionLike = None,
        threshold: float = 1.0,
        closed_system: bool = True,
    ) -> None:
        if processors <= 0:
            raise SpecError(f"processors must be > 0, got {processors!r}")
        if threshold <= 0:
            raise SpecError(f"threshold must be > 0, got {threshold!r}")
        self.processors = float(processors)
        self.contention = resolve(contention)
        self.threshold = float(threshold)
        self.closed_system = bool(closed_system)

    def evaluate(
        self,
        queries: Sequence[QuerySpec],
        pivot_name: str,
        processors: float | None = None,
    ) -> ShareDecision:
        """Predict the effect of sharing ``queries`` at ``pivot_name``.

        A group of one cannot eliminate any work, so it is never worth
        the multiplexing overhead; the advisor still reports its
        (trivial) rates for uniformity.
        """
        n = self.processors if processors is None else float(processors)
        shared = shared_rate(queries, pivot_name, n, self.contention)
        unshared = unshared_rate(queries, n, self.contention)
        benefit = sharing_benefit(
            queries,
            pivot_name,
            n,
            self.contention,
            closed_system=self.closed_system,
        )
        share = len(queries) > 1 and benefit > self.threshold
        return ShareDecision(
            share=share,
            benefit=benefit,
            shared_rate=shared,
            unshared_rate=unshared,
            group_size=len(queries),
            processors=n,
        )

    def should_join(
        self,
        group: Sequence[QuerySpec],
        candidate: QuerySpec,
        pivot_name: str,
        processors: float | None = None,
    ) -> ShareDecision:
        """Should ``candidate`` join an existing sharing ``group``?

        The runtime question from Section 8.1: the decision compares
        the *enlarged* group's shared rate against unshared execution
        of the enlarged group. (The group members are already committed
        to sharing; the paper's policy likewise asks whether the model
        predicts a benefit for the group the candidate would form.)
        """
        return self.evaluate([*group, candidate], pivot_name, processors)

    def best_group_size(
        self,
        query: QuerySpec,
        pivot_name: str,
        max_size: int,
        processors: float | None = None,
    ) -> int:
        """Largest group of identical queries that the model still
        predicts to benefit from sharing, up to ``max_size``.

        Supports the Section 8.1 optimization of capping group sizes so
        the pivot never becomes the dominating bottleneck. Returns 1
        when no group size helps.
        """
        if max_size < 1:
            raise SpecError(f"max_size must be >= 1, got {max_size}")
        best = 1
        for m in range(2, max_size + 1):
            group = [query.relabeled(f"{query.label}#{i}") for i in range(m)]
            if self.evaluate(group, pivot_name, processors).share:
                best = m
        return best

    def best_partitioning(
        self,
        query: QuerySpec,
        pivot_name: str,
        clients: int,
        processors: float | None = None,
    ) -> GroupPartitioning:
        """Section 8.1 in full: split ``clients`` identical queries into
        several concurrent sharing groups and partition the processors
        among them.

        "If the system instead limits the number of queries allowed to
        join any one work sharing group, and partitions the available
        processors among multiple groups of shared queries, the system
        could reap the benefits of both work sharing and parallelism."

        Evaluates every group size g (k = ceil(clients/g) groups, each
        granted n/k processors) and returns the arrangement maximizing
        the predicted aggregate rate. ``group_size == 1`` degenerates
        to never-share; ``group_size == clients`` to a single shared
        group.
        """
        if clients < 1:
            raise SpecError(f"clients must be >= 1, got {clients}")
        n = self.processors if processors is None else float(processors)
        best: GroupPartitioning | None = None
        for group_size in range(1, clients + 1):
            n_groups = -(-clients // group_size)  # ceil division
            per_group_n = n / n_groups
            # Last group may be smaller; model the two shapes exactly.
            full_groups, remainder = divmod(clients, group_size)
            rate = 0.0
            for size, count in ((group_size, full_groups),
                                (remainder, 1 if remainder else 0)):
                if count == 0:
                    continue
                members = [
                    query.relabeled(f"{query.label}#{i}") for i in range(size)
                ]
                if size == 1:
                    rate += count * unshared_rate(
                        members, per_group_n, self.contention
                    )
                else:
                    rate += count * shared_rate(
                        members, pivot_name, per_group_n, self.contention
                    )
            candidate = GroupPartitioning(
                group_size=group_size,
                n_groups=n_groups,
                processors_per_group=per_group_n,
                predicted_rate=rate,
            )
            if best is None or candidate.predicted_rate > best.predicted_rate:
                best = candidate
        return best
