"""Stop-&-go decomposition of query plans (Section 5.2).

A stop-&-go (blocking) operator — a sort, or the build side of a hash
join — decouples the production/consumption rates below it from those
above it. For modeling purposes the paper splits such a query into a
sequence of *phases*, each of which is a fully pipelined sub-query that
the Section-4 model can handle:

* a **consume** phase whose root is the blocking operator absorbing its
  input ("sorting runs" — a moderately slow root node),
* optionally an **internal** phase that does not interact with the rest
  of the system ("merging runs"),
* the remaining plan, where the blocking operator is replaced by a leaf
  that replays the materialized result ("an extremely fast scan").

Work sharing applies *within* a phase: during the consume phase the
blocking operator's inputs can be shared; during the replay phase its
output can be shared. Phases of one query execute strictly in
sequence, so a query's response time is the sum of its phase times —
:class:`PhasedQuery` captures this for end-to-end estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core import metrics
from repro.core.contention import ContentionLike
from repro.core.model import shared_rate, unshared_rate
from repro.core.spec import OperatorSpec, QuerySpec, op
from repro.errors import SpecError

__all__ = ["Phase", "decompose", "PhasedQuery"]

PHASE_PIPELINE = "pipeline"
PHASE_INTERNAL = "internal"


@dataclass(frozen=True)
class Phase:
    """One fully pipelined phase of a decomposed query.

    Attributes
    ----------
    query:
        The pipelined :class:`QuerySpec` modeling this phase.
    kind:
        ``"pipeline"`` for phases that stream tuples between operators,
        ``"internal"`` for non-interacting work (e.g. merging runs).
    source:
        Name of the blocking operator that produced this phase, or
        ``None`` for the final phase of the original plan.
    volume:
        Units of forward progress this phase must complete, relative to
        the query's reference stream. Used to combine phase durations.
    """

    query: QuerySpec
    kind: str
    source: str | None
    volume: float = 1.0


def _innermost_blocking(root: OperatorSpec) -> OperatorSpec | None:
    """Find a blocking node none of whose descendants are blocking.

    Uses pre-order position for determinism when several qualify.
    """
    for node in root.walk():
        if node.blocking and not any(
            child_desc.blocking
            for child in node.children
            for child_desc in child.walk()
        ):
            return node
    return None


def _replace(root: OperatorSpec, target: OperatorSpec, leaf: OperatorSpec) -> OperatorSpec:
    """Rebuild the tree with ``target`` (by identity) replaced by ``leaf``."""
    if root is target:
        return leaf
    if not root.children:
        return root
    new_children = tuple(_replace(child, target, leaf) for child in root.children)
    if all(a is b for a, b in zip(new_children, root.children)):
        return root
    return root.with_children(new_children)


def decompose(query: QuerySpec, volume: float = 1.0) -> list[Phase]:
    """Split a plan with stop-&-go operators into pipelined phases.

    Blocking operators are processed innermost-first: each contributes
    a consume phase (its input sub-plan with the blocking node as a
    non-emitting root), an optional internal phase, and is then
    replaced in the remaining plan by a replay leaf with the operator's
    ``emit_work``. A fully pipelined query decomposes to a single
    phase equal to itself.
    """
    if volume <= 0:
        raise SpecError(f"phase volume must be > 0, got {volume!r}")
    phases: list[Phase] = []
    root = query.root
    counter = 0
    while True:
        blocker = _innermost_blocking(root)
        if blocker is None:
            break
        counter += 1
        consume_root = op(
            f"{blocker.name}#consume",
            blocker.work,
            0.0,
            *blocker.children,
        )
        phases.append(
            Phase(
                query=QuerySpec(
                    root=consume_root,
                    label=f"{query.label}/{blocker.name}#consume",
                ),
                kind=PHASE_PIPELINE,
                source=blocker.name,
                volume=volume,
            )
        )
        if blocker.internal_work > 0:
            internal_root = op(f"{blocker.name}#internal", blocker.internal_work)
            phases.append(
                Phase(
                    query=QuerySpec(
                        root=internal_root,
                        label=f"{query.label}/{blocker.name}#internal",
                    ),
                    kind=PHASE_INTERNAL,
                    source=blocker.name,
                    volume=volume,
                )
            )
        replay_leaf = op(
            f"{blocker.name}#replay",
            blocker.emit_work,
            blocker.output_cost,
        )
        root = _replace(root, blocker, replay_leaf)
    phases.append(
        Phase(
            query=QuerySpec(root=root, label=f"{query.label}/final"),
            kind=PHASE_PIPELINE,
            source=None,
            volume=volume,
        )
    )
    return phases


@dataclass(frozen=True)
class PhasedQuery:
    """End-to-end model of a stop-&-go query as sequential phases.

    The per-phase rates come from the Section-4 model; response time is
    the sum over phases of ``volume / per-query-rate``. Sharing is
    evaluated per phase: a pivot below the blocking operator shares
    during the consume phase, a pivot above it shares during the final
    phase (Section 5.2's observation that inputs can be shared only
    until the stop-&-go completes, and outputs only afterwards).
    """

    query: QuerySpec
    phases: tuple[Phase, ...] = field(init=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", tuple(decompose(self.query)))

    def unshared_time(
        self, m: int, n: float, contention: ContentionLike = None
    ) -> float:
        """Average response time of ``m`` independent copies on ``n``
        processors (time for the group to complete one query each)."""
        if m < 1:
            raise SpecError(f"m must be >= 1, got {m}")
        total = 0.0
        for phase in self.phases:
            if metrics.total_work(phase.query) == 0:
                continue  # free phases (e.g. zero-cost replays) take no time
            group = [phase.query.relabeled(f"{phase.query.label}#{i}") for i in range(m)]
            rate = unshared_rate(group, n, contention)
            total += m * phase.volume / rate
        return total

    def _base_name(self, name: str) -> str:
        """Strip the ``#consume``/``#internal``/``#replay`` suffixes
        decomposition adds, recovering the original operator name."""
        return name.split("#", 1)[0]

    def _phase_fully_below(self, phase: Phase, pivot_name: str) -> bool:
        """True if every operator of the phase derives from the subtree
        strictly below the pivot (plus blocking nodes inside it)."""
        pivot = self.query.pivot(pivot_name)
        below = {node.name for node in pivot.walk()} - {pivot_name}
        return all(
            self._base_name(name) in below
            for name in phase.query.operator_names()
        )

    def shared_time(
        self,
        pivot_name: str,
        m: int,
        n: float,
        contention: ContentionLike = None,
    ) -> float:
        """Response time of ``m`` copies sharing at ``pivot_name``.

        Three phase classes (Sections 4.3 + 5.2 combined):

        * phases **fully below** the pivot (e.g. the consume phase of a
          stop-&-go operator inside the shared subtree) execute once
          for the whole group — their work is eliminated for m-1
          members;
        * the phase **containing** the pivot uses the Section 4.3
          shared-execution model (pivot multiplexing to m consumers);
        * phases **above** the pivot run as m independent copies.
        """
        if m < 1:
            raise SpecError(f"m must be >= 1, got {m}")
        total = 0.0
        for phase in self.phases:
            if metrics.total_work(phase.query) == 0:
                continue  # free phases (e.g. zero-cost replays) take no time
            if pivot_name in phase.query:
                group = [
                    phase.query.relabeled(f"{phase.query.label}#{i}")
                    for i in range(m)
                ]
                rate = shared_rate(group, pivot_name, n, contention)
                total += m * phase.volume / rate
            elif self._phase_fully_below(phase, pivot_name):
                # One execution serves the whole group.
                rate = unshared_rate([phase.query], n, contention)
                total += phase.volume / rate
            else:
                group = [
                    phase.query.relabeled(f"{phase.query.label}#{i}")
                    for i in range(m)
                ]
                rate = unshared_rate(group, n, contention)
                total += m * phase.volume / rate
        return total

    def sharing_benefit(
        self,
        pivot_name: str,
        m: int,
        n: float,
        contention: ContentionLike = None,
    ) -> float:
        """End-to-end ``Z(m, n)`` for a stop-&-go query: the ratio of
        unshared to shared response time (rates are reciprocal times
        for a fixed amount of work)."""
        return self.unshared_time(m, n, contention) / self.shared_time(
            pivot_name, m, n, contention
        )

    def total_work(self) -> float:
        """Total work per unit of forward progress over all phases."""
        return sum(
            metrics.total_work(phase.query) * phase.volume for phase in self.phases
        )


def _phase_names(phases: Sequence[Phase]) -> list[str]:
    return [phase.query.label for phase in phases]
