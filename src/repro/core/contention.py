"""Shared-hardware contention model (Section 4.1.4).

CMPs share caches, memory bandwidth and functional units across
contexts. The paper folds all such effects into a single empirical
exponent: with *n* hardware contexts, only ``n ** kappa`` processors'
worth of effective compute is available, for some ``0 < kappa <= 1``
that depends on hardware, workload, and whether sharing is applied.

``kappa = 1`` recovers the contention-free model (the paper uses
``k = 1`` for its TPC-H Q6 example because the simple model was already
accurate). A different contention curve can be substituted by passing
any callable ``n -> n_eff`` where the model accepts a
:class:`ContentionModel`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Union

from repro.errors import SpecError

__all__ = ["ContentionModel", "PowerLawContention", "NO_CONTENTION", "resolve"]


class ContentionModel:
    """Maps available hardware contexts to effective processors."""

    def effective(self, n: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class PowerLawContention(ContentionModel):
    """``n_eff = n ** kappa`` with ``0 < kappa <= 1`` (Section 4.1.4)."""

    kappa: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.kappa <= 1.0) or not math.isfinite(self.kappa):
            raise SpecError(f"kappa must be in (0, 1], got {self.kappa!r}")

    def effective(self, n: float) -> float:
        if n < 0:
            raise SpecError(f"processor count must be >= 0, got {n!r}")
        return float(n) ** self.kappa


@dataclass(frozen=True)
class CallableContention(ContentionModel):
    """Wraps an arbitrary ``n -> n_eff`` function."""

    fn: Callable[[float], float]

    def effective(self, n: float) -> float:
        n_eff = float(self.fn(n))
        if not math.isfinite(n_eff) or n_eff < 0:
            raise SpecError(
                f"contention function returned invalid n_eff={n_eff!r} for n={n!r}"
            )
        if n_eff > n:
            raise SpecError(
                f"contention cannot create processors: n_eff={n_eff!r} > n={n!r}"
            )
        return n_eff


NO_CONTENTION = PowerLawContention(kappa=1.0)

ContentionLike = Union[ContentionModel, Callable[[float], float], float, None]


def resolve(contention: ContentionLike) -> ContentionModel:
    """Normalize the accepted contention inputs to a model object.

    Accepts ``None`` (no contention), a bare float (treated as the
    power-law kappa), a callable ``n -> n_eff``, or a ready
    :class:`ContentionModel`.
    """
    if contention is None:
        return NO_CONTENTION
    if isinstance(contention, ContentionModel):
        return contention
    if isinstance(contention, (int, float)) and not isinstance(contention, bool):
        return PowerLawContention(kappa=float(contention))
    if callable(contention):
        return CallableContention(fn=contention)
    raise SpecError(f"cannot interpret contention spec {contention!r}")
