"""Per-query pipeline metrics (Section 4.1 and Table 1).

Given a :class:`~repro.core.spec.QuerySpec` these functions compute:

``p_max``
    Work per unit of forward progress of the slowest (bottleneck)
    operator. The pipeline advances at the bottleneck's pace.

``peak_rate`` (*r*)
    ``1 / p_max`` — peak rate of forward progress (Section 4.1.2).

``total_work`` (*u'*)
    ``sum(p_k for k in plan)`` — total work per unit of forward
    progress across all operators.

``utilization`` (*u*)
    ``u' / p_max`` — maximum processor utilization of the query, i.e.
    the amount of pipeline parallelism available. Can exceed 1.

All of these assume a fully pipelined plan where every operator has
exactly one consumer (its parent, or the client for the root).
"""

from __future__ import annotations

from repro.core.spec import OperatorSpec, QuerySpec

__all__ = [
    "operator_p",
    "p_max",
    "bottleneck",
    "peak_rate",
    "total_work",
    "utilization",
]


def operator_p(node: OperatorSpec, consumers: int = 1) -> float:
    """*p* for one operator: ``w + s * consumers`` (Section 4.1.1)."""
    return node.p(consumers)


def p_max(query: QuerySpec) -> float:
    """Work per unit of forward progress at the bottleneck operator."""
    query.require_pipelined("p_max")
    return max(node.p(1) for node in query.operators())


def bottleneck(query: QuerySpec) -> OperatorSpec:
    """The operator that bounds the pipeline's rate of progress."""
    query.require_pipelined("bottleneck")
    return max(query.operators(), key=lambda node: node.p(1))


def peak_rate(query: QuerySpec) -> float:
    """*r = 1 / p_max* — peak rate of forward progress (Section 4.1.2)."""
    return 1.0 / p_max(query)


def total_work(query: QuerySpec) -> float:
    """*u'* — total work per unit of forward progress, all operators."""
    query.require_pipelined("total_work")
    return sum(node.p(1) for node in query.operators())


def utilization(query: QuerySpec) -> float:
    """*u = u' / p_max* — peak processor utilization (Section 4.1.2).

    This is the number of processors the query can keep busy at its
    peak rate; values above 1 indicate available pipeline parallelism.
    """
    return total_work(query) / p_max(query)
