"""Open- vs closed-system treatment of mismatched rates (Section 5.1).

The base model assumes every query in a group has the same peak rate.
When rates differ, unshared execution is no longer uniform over time —
fast queries finish and leave. The paper distinguishes:

**Open systems** — arrivals are independent of response times, so
throttling everyone to the slowest query's rate is equivalent to
letting fast queries finish early and idle. The Section 4.2 equations
stand unchanged; :func:`repro.core.model.unshared_rate` already
implements this.

**Closed systems** — a completed query is immediately replaced
(Little's law: ``X = N / R``), so per-query response time directly
controls throughput. The paper's crude approximation assumes a similar
query replaces each one on completion, and modifies the unshared
estimate so that

* the aggregate rate reflects the *harmonic mean* of the group's peak
  throughputs: ``r_unshared = |M| * HM(r_m) = |M|^2 / sum_m p_max(m)``,
* each query is throttled only by its own ``p_max`` when computing
  utilization: ``u_unshared = sum_m u'_m / p_max(m)``.

For groups of identical queries these reduce exactly to Section 4.2.
Shared execution needs no correction: the pivot already throttles the
group to one rate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import metrics
from repro.core.contention import ContentionLike, resolve
from repro.core.spec import QuerySpec
from repro.errors import SpecError

__all__ = [
    "unshared_rate_closed",
    "closed_peak_rate",
    "closed_utilization",
    "little_throughput",
]


def little_throughput(n_requests: float, response_time: float) -> float:
    """Little's law, ``X = N / R`` (Section 1.2).

    ``n_requests`` is the multiprogramming level of the closed system
    and ``response_time`` the average time to process one query.
    """
    if n_requests < 0:
        raise SpecError(f"N must be >= 0, got {n_requests!r}")
    if response_time <= 0:
        raise SpecError(f"R must be > 0, got {response_time!r}")
    return n_requests / response_time


def closed_peak_rate(queries: Sequence[QuerySpec]) -> float:
    """Aggregate peak rate under the closed-system approximation.

    ``|M| * harmonic_mean(1 / p_max(m)) = |M|^2 / sum_m p_max(m)``;
    faster queries raise the aggregate because their replacements keep
    arriving, but slow queries drag the mean down harmonically.
    """
    if not queries:
        raise SpecError("query group must contain at least one query")
    return len(queries) ** 2 / sum(metrics.p_max(q) for q in queries)


def closed_utilization(queries: Sequence[QuerySpec]) -> float:
    """``u_unshared = sum_m u'_m / p_max(m)`` — each query throttled
    only by its own bottleneck (it uses its full resource allotment
    until the last query completes)."""
    if not queries:
        raise SpecError("query group must contain at least one query")
    return sum(metrics.total_work(q) / metrics.p_max(q) for q in queries)


def unshared_rate_closed(
    queries: Sequence[QuerySpec],
    n: float,
    contention: ContentionLike = None,
) -> float:
    """Closed-system unshared aggregate rate, ``x_unshared(M, n)``.

    ``x = r_closed * min(1, n_eff / u_closed)``. For identical queries
    this equals :func:`repro.core.model.unshared_rate` exactly; the two
    estimates diverge only for mismatched peak rates, where the closed
    variant is the better basis for binary share/don't-share decisions
    (Section 5.1).
    """
    for query in queries:
        query.require_pipelined("closed-system model")
    n_eff = resolve(contention).effective(n)
    rate = closed_peak_rate(queries)
    util = closed_utilization(queries)
    return rate * min(1.0, n_eff / util)
