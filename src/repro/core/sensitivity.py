"""Sensitivity analysis of the sharing trade-off (Section 6).

The paper sweeps three parameters of a baseline three-stage query
(Figure 3: bottom ``p = 10``, pivot ``w = 6, s = 1``, top ``p = 10``)
and reports predicted speedup curves:

* available processing power *n* (Figure 4 left),
* the pivot's per-consumer output cost *s* (Figure 4 center),
* the fraction of work eliminated by sharing, varied by moving stages
  below the pivot (Figure 4 right).

Each sweep returns a :class:`SweepResult` whose ``series`` maps the
swept value to the list of ``Z(m, n)`` over the client counts, i.e.
exactly the lines of the corresponding figure panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core import metrics
from repro.core.contention import ContentionLike
from repro.core.model import sharing_benefit
from repro.core.spec import QuerySpec, chain, op
from repro.errors import SpecError

__all__ = [
    "SweepResult",
    "baseline_query",
    "staged_query",
    "sweep_processors",
    "sweep_output_cost",
    "sweep_work_below_pivot",
    "work_eliminated_fraction",
]

DEFAULT_CLIENTS = tuple(range(1, 41))


@dataclass(frozen=True)
class SweepResult:
    """One panel of Figure 4.

    ``series[value][i]`` is the predicted ``Z`` for ``clients[i]`` at
    the swept parameter ``value``.
    """

    parameter: str
    clients: tuple[int, ...]
    series: Mapping[float, tuple[float, ...]]
    pivot: str

    def best_client_count(self, value: float) -> int:
        """Client count maximizing Z for the given parameter value."""
        row = self.series[value]
        return self.clients[max(range(len(row)), key=row.__getitem__)]

    def ever_beneficial(self, value: float) -> bool:
        """True if sharing wins (Z > 1) for any swept client count."""
        return any(z > 1.0 for z in self.series[value])


def baseline_query(
    bottom_p: float = 10.0,
    pivot_work: float = 6.0,
    pivot_output_cost: float = 1.0,
    top_p: float = 10.0,
    label: str = "baseline",
) -> QuerySpec:
    """The Section-6 baseline: three stages, sharing at the middle one.

    Work sharing at the pivot eliminates the bottom stage plus the
    pivot's own input-side work — "nearly 60% of the work" for the
    default parameters.
    """
    root = chain(
        op("bottom", bottom_p),
        op("pivot", pivot_work, pivot_output_cost),
        op("top", top_p),
    )
    return QuerySpec(root=root, label=label)


def staged_query(
    stages_below_pivot: int,
    total_stages: int = 5,
    stage_p: float = 8.0,
    bottom_p: float = 10.0,
    pivot_work: float = 6.0,
    pivot_output_cost: float = 1.0,
    label: str | None = None,
) -> QuerySpec:
    """The Figure 4 (right) variant: the top operator split into five
    balanced ``p = 8`` stages, with ``stages_below_pivot`` of them
    moved below the pivot to increase the work sharing eliminates."""
    if not (0 <= stages_below_pivot <= total_stages):
        raise SpecError(
            f"stages_below_pivot must be in [0, {total_stages}], "
            f"got {stages_below_pivot}"
        )
    nodes = [op("bottom", bottom_p)]
    for i in range(stages_below_pivot):
        nodes.append(op(f"below{i}", stage_p))
    nodes.append(op("pivot", pivot_work, pivot_output_cost))
    for i in range(total_stages - stages_below_pivot):
        nodes.append(op(f"above{i}", stage_p))
    return QuerySpec(
        root=chain(*nodes),
        label=label or f"staged[{stages_below_pivot}/{total_stages}]",
    )


def work_eliminated_fraction(query: QuerySpec, pivot_name: str) -> float:
    """Fraction of a query's total work that sharing with one other
    identical query eliminates: everything below the pivot plus the
    pivot's input-side work (its output must still be multiplexed)."""
    below = sum(node.p(1) for node in query.below(pivot_name))
    pivot = query.pivot(pivot_name)
    total = metrics.total_work(query)
    return (below + pivot.work) / total


def _benefit_row(
    query: QuerySpec,
    pivot: str,
    clients: Sequence[int],
    n: float,
    contention: ContentionLike,
) -> tuple[float, ...]:
    row = []
    for m in clients:
        group = [query.relabeled(f"{query.label}#{i}") for i in range(m)]
        row.append(sharing_benefit(group, pivot, n, contention))
    return tuple(row)


def sweep_processors(
    query: QuerySpec | None = None,
    pivot: str = "pivot",
    processor_counts: Sequence[float] = (1, 4, 8, 12, 16, 24, 32),
    clients: Sequence[int] = DEFAULT_CLIENTS,
    contention: ContentionLike = None,
) -> SweepResult:
    """Figure 4 (left): Z vs. clients for each processor count."""
    query = query or baseline_query()
    series = {
        float(n): _benefit_row(query, pivot, clients, n, contention)
        for n in processor_counts
    }
    return SweepResult(
        parameter="processors",
        clients=tuple(clients),
        series=series,
        pivot=pivot,
    )


def sweep_output_cost(
    output_costs: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
    n: float = 32,
    clients: Sequence[int] = DEFAULT_CLIENTS,
    contention: ContentionLike = None,
) -> SweepResult:
    """Figure 4 (center): Z vs. clients as the pivot's *s* varies, on a
    32-core system by default."""
    series = {}
    for s in output_costs:
        query = baseline_query(pivot_output_cost=s, label=f"baseline[s={s}]")
        series[float(s)] = _benefit_row(query, "pivot", clients, n, contention)
    return SweepResult(
        parameter="output_cost",
        clients=tuple(clients),
        series=series,
        pivot="pivot",
    )


def sweep_work_below_pivot(
    n: float = 8,
    total_stages: int = 5,
    clients: Sequence[int] = DEFAULT_CLIENTS,
    contention: ContentionLike = None,
) -> SweepResult:
    """Figure 4 (right): Z vs. clients as stages move below the pivot.

    The swept key is the number of stages below the pivot (0..5); use
    :func:`work_eliminated_fraction` to translate to the percentage
    labels of the figure (28%...98%).
    """
    series = {}
    for k in range(total_stages + 1):
        query = staged_query(k, total_stages=total_stages)
        series[float(k)] = _benefit_row(query, "pivot", clients, n, contention)
    return SweepResult(
        parameter="stages_below_pivot",
        clients=tuple(clients),
        series=series,
        pivot="pivot",
    )
