"""Model-level join constructors (Section 5.3).

The base model captures fully pipelined operators; joins fall into
three classes with different pipelining behaviour:

* **Nested-loop join (NLJ)** — fully pipelinable; just an operator with
  two input streams, one usually far more expensive than the other
  (Section 5.3.1).
* **Merge join (MJ)** — two sort phases (stop-&-go) plus a pipelined
  merge; inputs that arrive pre-sorted skip their sort (Section 5.3.2).
* **Hash join (HJ)** — a stop-&-go build phase followed by a pipelined
  probe phase (Section 5.3.3). The *symmetric* hash join variant is
  fully pipelined and needs no decomposition.

All constructors return :class:`~repro.core.spec.OperatorSpec` trees;
trees containing blocking nodes are consumed by
:func:`repro.core.phases.decompose`.
"""

from __future__ import annotations

from repro.core.spec import OperatorSpec, op
from repro.errors import SpecError

__all__ = [
    "nested_loop_join",
    "merge_join",
    "hash_join",
    "symmetric_hash_join",
    "sort_operator",
]


def _check_cost(label: str, value: float) -> None:
    if value < 0:
        raise SpecError(f"{label} must be >= 0, got {value!r}")


def nested_loop_join(
    name: str,
    outer: OperatorSpec,
    inner: OperatorSpec,
    work: float,
    output_cost: float = 0.0,
) -> OperatorSpec:
    """A fully pipelinable (block) nested-loop join.

    ``work`` is the join's total per-unit input work across both
    streams; forward-progress normalization already folds the streams'
    relative costs into it.
    """
    _check_cost("work", work)
    return op(name, work, output_cost, outer, inner)


def sort_operator(
    name: str,
    child: OperatorSpec,
    run_work: float,
    merge_work: float = 0.0,
    replay_work: float = 0.0,
    output_cost: float = 0.0,
) -> OperatorSpec:
    """A stop-&-go sort: run generation, run merging, sorted replay.

    Matches the Section 5.2 example: ``run_work`` is the moderately
    slow root of the first sub-query, ``merge_work`` the
    non-interacting middle sub-query, ``replay_work`` the fast leaf of
    the final sub-query.
    """
    for label, value in (
        ("run_work", run_work),
        ("merge_work", merge_work),
        ("replay_work", replay_work),
    ):
        _check_cost(label, value)
    return op(
        name,
        run_work,
        output_cost,
        child,
        blocking=True,
        internal_work=merge_work,
        emit_work=replay_work,
    )


def merge_join(
    name: str,
    left: OperatorSpec,
    right: OperatorSpec,
    merge_work: float,
    output_cost: float = 0.0,
    left_sort: tuple[float, float, float] | None = (1.0, 0.0, 0.0),
    right_sort: tuple[float, float, float] | None = (1.0, 0.0, 0.0),
) -> OperatorSpec:
    """A merge join modeled as (up to) two sorts plus a pipelined merge.

    ``left_sort`` / ``right_sort`` are ``(run_work, merge_work,
    replay_work)`` triples for the respective sort operators, or
    ``None`` when that input is already sorted and the sort can be
    skipped entirely (Section 5.3.2).
    """
    _check_cost("merge_work", merge_work)
    if left_sort is not None:
        left = sort_operator(f"{name}_sortL", left, *left_sort)
    if right_sort is not None:
        right = sort_operator(f"{name}_sortR", right, *right_sort)
    return op(name, merge_work, output_cost, left, right)


def hash_join(
    name: str,
    build: OperatorSpec,
    probe: OperatorSpec,
    build_work: float,
    probe_work: float,
    output_cost: float = 0.0,
) -> OperatorSpec:
    """A mainstream hash join: stop-&-go build phase, pipelined probe.

    Decomposition yields one sub-query of everything below and
    including the hash build, and a second with everything above it
    (Section 5.3.3). The built table is available to the probe at no
    replay cost (``emit_work = 0``).
    """
    _check_cost("build_work", build_work)
    _check_cost("probe_work", probe_work)
    build_node = op(
        f"{name}_build",
        build_work,
        0.0,
        build,
        blocking=True,
        internal_work=0.0,
        emit_work=0.0,
    )
    return op(f"{name}_probe", probe_work, output_cost, probe, build_node)


def symmetric_hash_join(
    name: str,
    left: OperatorSpec,
    right: OperatorSpec,
    work: float,
    output_cost: float = 0.0,
) -> OperatorSpec:
    """A fully pipelined hash join (symmetric hash join [25]).

    Both inputs stream; the simple Section-4 model suffices, so this is
    structurally identical to an NLJ node with different cost
    semantics.
    """
    _check_cost("work", work)
    return op(name, work, output_cost, left, right)
