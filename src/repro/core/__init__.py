"""The paper's primary contribution: the work-sharing/parallelism model.

Public surface:

* :mod:`repro.core.spec` — :class:`OperatorSpec` / :class:`QuerySpec`
  model-level plans (Table 1).
* :mod:`repro.core.metrics` — ``p_max``, peak rate *r*, total work
  *u'*, utilization *u* (Section 4.1).
* :mod:`repro.core.model` — shared/unshared rates and ``Z(m, n)``
  (Sections 4.2-4.3).
* :mod:`repro.core.closed_system` — mismatched rates, open vs. closed
  systems (Section 5.1).
* :mod:`repro.core.phases` — stop-&-go decomposition (Section 5.2).
* :mod:`repro.core.joins` — NLJ/MJ/HJ constructors (Section 5.3).
* :mod:`repro.core.contention` — the ``n^kappa`` hardware contention
  model (Section 4.1.4).
* :mod:`repro.core.sensitivity` — the Section 6 sweeps (Figure 4).
* :mod:`repro.core.decision` — :class:`ShareAdvisor`, the runtime
  binary decision (Section 8).
* :mod:`repro.core.estimation` — parameter fitting from profiles
  (Section 3.1).
"""

from repro.core.contention import NO_CONTENTION, PowerLawContention
from repro.core.decision import ShareAdvisor, ShareDecision
from repro.core.metrics import p_max, peak_rate, total_work, utilization
from repro.core.model import (
    SharedPlanMetrics,
    shared_metrics,
    shared_rate,
    sharing_benefit,
    unshared_rate,
)
from repro.core.phases import Phase, PhasedQuery, decompose
from repro.core.spec import OperatorSpec, QuerySpec, chain, op

__all__ = [
    "NO_CONTENTION",
    "PowerLawContention",
    "ShareAdvisor",
    "ShareDecision",
    "p_max",
    "peak_rate",
    "total_work",
    "utilization",
    "SharedPlanMetrics",
    "shared_metrics",
    "shared_rate",
    "sharing_benefit",
    "unshared_rate",
    "Phase",
    "PhasedQuery",
    "decompose",
    "OperatorSpec",
    "QuerySpec",
    "chain",
    "op",
]
