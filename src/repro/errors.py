"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the package
layout: model/spec errors, simulator errors, storage errors, and engine
errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SpecError(ReproError):
    """An analytical-model specification is malformed.

    Raised for negative work parameters, duplicate operator names,
    cyclic plan structures, and similar construction-time problems.
    """


class PivotError(SpecError):
    """A sharing pivot is invalid for the query group.

    Raised when the named pivot does not exist in a plan, or when the
    subtrees below the pivot differ across queries that are supposed to
    share (they must request the *same* operation to be mergeable).
    """


class EstimationError(ReproError):
    """Parameter estimation failed (e.g. a singular or empty system)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable task exists but tasks remain blocked.

    Signals an execution graph whose bounded queues can never drain,
    e.g. a consumer that exited without closing its input.
    """


class StorageError(ReproError):
    """In-memory storage layer misuse (schema mismatch, unknown table)."""


class SchemaError(StorageError):
    """A row or expression does not match the table schema."""


class EngineError(ReproError):
    """Staged-engine construction or execution error."""


class PlanError(EngineError):
    """An engine physical plan is structurally invalid."""


class PolicyError(ReproError):
    """A sharing policy was configured or used incorrectly."""


class WorkloadError(ReproError):
    """Workload or closed-system driver misconfiguration."""
