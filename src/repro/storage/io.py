"""CSV persistence for the in-memory database.

dbgen writes ``.tbl`` pipe-delimited files; this module provides the
equivalent round-trip so a generated catalog can be saved once and
reloaded across processes (or inspected with standard tools). Schemas
travel in a sidecar header line, so a directory is self-describing.

Format: one ``<table>.csv`` per table. Line 1 is the header
``name:dtype`` per column; subsequent lines are rows. Strings are
escaped via :mod:`csv`; dates are stored as ordinals (ints), exactly
as in memory. NULLs are written as empty fields and decode back to
``None`` for INT/FLOAT/DATE columns; for STR columns an empty field is
indistinguishable from an empty string, so NULL strings reload as
``""`` (the one lossy corner of the round-trip).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import StorageError
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, DataType, Schema
from repro.storage.table import Table

__all__ = ["save_catalog", "load_catalog", "save_table", "load_table"]


def _encode(value) -> str:
    return "" if value is None else str(value)


def _decode(text: str, dtype: DataType):
    """Inverse of :func:`_encode` for one field.

    NULLs are written as empty fields, so an empty INT/FLOAT/DATE field
    decodes back to ``None`` (it used to crash in ``int("")``). STR is
    the one lossy case: CSV cannot distinguish an empty field from an
    empty string, so a NULL string reloads as ``""``.
    """
    if dtype is DataType.INT or dtype is DataType.DATE:
        return None if text == "" else int(text)
    if dtype is DataType.FLOAT:
        return None if text == "" else float(text)
    return text


def save_table(table: Table, directory: Path) -> Path:
    """Write one table as ``<directory>/<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{table.name}.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            f"{c.name}:{c.dtype.value}" for c in table.schema.columns
        )
        for row in table.rows():
            writer.writerow(_encode(v) for v in row)
    return path


def load_table(path: Path) -> Table:
    """Read one table written by :func:`save_table`."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"no such table file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"empty table file: {path}") from None
        columns = []
        for entry in header:
            name, _, dtype_text = entry.partition(":")
            try:
                dtype = DataType(dtype_text)
            except ValueError:
                raise StorageError(
                    f"{path}: bad column header {entry!r}"
                ) from None
            columns.append(Column(name, dtype))
        schema = Schema(columns)
        table = Table(path.stem, schema)
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(columns):
                raise StorageError(
                    f"{path}:{line_no}: expected {len(columns)} fields, "
                    f"got {len(row)}"
                )
            table.insert(tuple(
                _decode(text, column.dtype)
                for text, column in zip(row, columns)
            ))
    return table


def save_catalog(catalog: Catalog, directory: Path) -> list[Path]:
    """Write every table of the catalog; returns the file paths."""
    return [save_table(table, Path(directory)) for table in catalog]


def load_catalog(directory: Path) -> Catalog:
    """Load every ``*.csv`` in a directory into a fresh catalog."""
    directory = Path(directory)
    if not directory.is_dir():
        raise StorageError(f"no such directory: {directory}")
    catalog = Catalog()
    paths = sorted(directory.glob("*.csv"))
    if not paths:
        raise StorageError(f"no .csv tables found in {directory}")
    for path in paths:
        catalog.add(load_table(path))
    return catalog
