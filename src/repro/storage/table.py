"""Columnar in-memory tables.

Tables store data column-wise (one Python list per column), which
matches the scan-dominated access pattern of the paper's workloads and
makes projected scans cheap. Rows are materialized as tuples only when
an operator needs them.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_ROWS, Page
from repro.storage.schema import Schema

__all__ = ["Table"]


class Table:
    """An append-only, memory-resident, columnar table."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise StorageError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._columns: list[list[Any]] = [[] for _ in schema.columns]
        # Decoded-page cache for the batched scan path: per
        # (projection, page_rows) key, the lazily filled list of column
        # slices of each page. Cleared on ingest; entries are shared
        # with callers and read-only by convention (like ``column``).
        self._page_cache: dict[tuple, list] = {}

    def __len__(self) -> int:
        return len(self._columns[0])

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"

    # -- ingest ----------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> None:
        """Validate and append one row."""
        stored = self.schema.validate_row(row)
        for column, value in zip(self._columns, stored):
            column.append(value)
        if self._page_cache:
            self._page_cache.clear()

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # -- access ----------------------------------------------------------

    def column(self, name: str) -> Sequence[Any]:
        """The raw column list (read-only by convention)."""
        return self._columns[self.schema.index_of(name)]

    def row(self, i: int) -> tuple[Any, ...]:
        if not (0 <= i < len(self)):
            raise StorageError(f"row index {i} out of range for {self.name!r}")
        return tuple(column[i] for column in self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(len(self)):
            yield self.row(i)

    def scan_pages(
        self,
        columns: Sequence[str] | None = None,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> Iterator[Page]:
        """Iterate the table as pages, optionally projecting columns.

        This is the physical scan the engine's scan stage drives; the
        projection happens here so pages carry only the needed data.
        """
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        if columns is None:
            cols = self._columns
        else:
            cols = [self._columns[self.schema.index_of(c)] for c in columns]
        n = len(self)
        for start in range(0, n, page_rows):
            end = min(start + page_rows, n)
            rows = list(zip(*(col[start:end] for col in cols)))
            if rows:
                yield Page(rows)

    def page_count(self, page_rows: int = DEFAULT_PAGE_ROWS) -> int:
        """Number of pages a scan of this table touches."""
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        return -(-len(self) // page_rows)

    def page_at(
        self,
        index: int,
        columns: Sequence[str] | None = None,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> Page:
        """Materialize one page by index (random access).

        Page ``i`` covers rows ``[i * page_rows, (i+1) * page_rows)``,
        matching :meth:`scan_pages` and the buffer pool's
        :func:`~repro.storage.buffer.table_page_key` convention. Used
        by cooperative (elevator) scans, which start mid-table and
        wrap around rather than walking from row 0.
        """
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        n_pages = self.page_count(page_rows)
        if not (0 <= index < n_pages):
            raise StorageError(
                f"page index {index} out of range for {self.name!r} "
                f"({n_pages} pages at {page_rows} rows/page)"
            )
        if columns is None:
            cols = self._columns
        else:
            cols = [self._columns[self.schema.index_of(c)] for c in columns]
        start = index * page_rows
        end = min(start + page_rows, len(self))
        return Page(list(zip(*(col[start:end] for col in cols))))

    def column_slices(
        self,
        index: int,
        columns: Sequence[str] | None = None,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> list[list[Any]]:
        """One page's worth of raw column slices (columnar page access).

        Same page geometry as :meth:`page_at`, but the page stays
        column-wise — the batched scan path wraps these slices into a
        :class:`~repro.engine.packet.RowBatch` without ever zipping
        rows the downstream may never materialize.

        Decoded pages are cached per (projection, page_rows) until the
        next ingest, so concurrent scans of one table (and repeated
        scans across queries) slice each page exactly once. The
        returned lists are shared with the cache: read-only by
        convention, like :meth:`column`.
        """
        key = (None if columns is None else tuple(columns), page_rows)
        pages = self._page_cache.get(key)
        if pages is not None and 0 <= index < len(pages):
            cached = pages[index]
            if cached is not None:
                return cached
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        n_pages = self.page_count(page_rows)
        if not (0 <= index < n_pages):
            raise StorageError(
                f"page index {index} out of range for {self.name!r} "
                f"({n_pages} pages at {page_rows} rows/page)"
            )
        if columns is None:
            cols = self._columns
        else:
            cols = [self._columns[self.schema.index_of(c)] for c in columns]
        start = index * page_rows
        end = min(start + page_rows, len(self))
        slices = [col[start:end] for col in cols]
        if pages is None:
            pages = self._page_cache[key] = [None] * n_pages
        pages[index] = slices
        return slices

    def fused_cache(self, key: tuple, n_pages: int) -> list:
        """Per-page memo slots for a derived (fused) scan of this table.

        The engine's scan stage parks its decoded/filtered/projected
        pages here, keyed by the scan's signature, so queries that
        perform the same scan work — re-submissions, convoy members,
        recurring templates — decode and filter each page once. This
        is the storage-side analogue of the engine's cross-query work
        sharing, and it shares the ingest invalidation of the plain
        page cache. Slots start as ``None``; entries are shared and
        read-only by convention.
        """
        pages = self._page_cache.get(key)
        if pages is None or len(pages) != n_pages:
            pages = self._page_cache[key] = [None] * n_pages
        return pages

    def projected_schema(self, columns: Sequence[str] | None) -> Schema:
        return self.schema if columns is None else self.schema.project(columns)
