"""Columnar in-memory tables.

Tables store data column-wise (one Python list per column), which
matches the scan-dominated access pattern of the paper's workloads and
makes projected scans cheap. Rows are materialized as tuples only when
an operator needs them.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.errors import StorageError
from repro.storage.page import DEFAULT_PAGE_ROWS, Page
from repro.storage.schema import Schema

__all__ = ["Table"]


class Table:
    """An append-only, memory-resident, columnar table."""

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise StorageError("table name must be non-empty")
        self.name = name
        self.schema = schema
        self._columns: list[list[Any]] = [[] for _ in schema.columns]

    def __len__(self) -> int:
        return len(self._columns[0])

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows)"

    # -- ingest ----------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> None:
        """Validate and append one row."""
        stored = self.schema.validate_row(row)
        for column, value in zip(self._columns, stored):
            column.append(value)

    def insert_many(self, rows: Sequence[Sequence[Any]]) -> None:
        for row in rows:
            self.insert(row)

    # -- access ----------------------------------------------------------

    def column(self, name: str) -> Sequence[Any]:
        """The raw column list (read-only by convention)."""
        return self._columns[self.schema.index_of(name)]

    def row(self, i: int) -> tuple[Any, ...]:
        if not (0 <= i < len(self)):
            raise StorageError(f"row index {i} out of range for {self.name!r}")
        return tuple(column[i] for column in self._columns)

    def rows(self) -> Iterator[tuple[Any, ...]]:
        for i in range(len(self)):
            yield self.row(i)

    def scan_pages(
        self,
        columns: Sequence[str] | None = None,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> Iterator[Page]:
        """Iterate the table as pages, optionally projecting columns.

        This is the physical scan the engine's scan stage drives; the
        projection happens here so pages carry only the needed data.
        """
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        if columns is None:
            cols = self._columns
        else:
            cols = [self._columns[self.schema.index_of(c)] for c in columns]
        n = len(self)
        for start in range(0, n, page_rows):
            end = min(start + page_rows, n)
            rows = list(zip(*(col[start:end] for col in cols)))
            if rows:
                yield Page(rows)

    def page_count(self, page_rows: int = DEFAULT_PAGE_ROWS) -> int:
        """Number of pages a scan of this table touches."""
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        return -(-len(self) // page_rows)

    def page_at(
        self,
        index: int,
        columns: Sequence[str] | None = None,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> Page:
        """Materialize one page by index (random access).

        Page ``i`` covers rows ``[i * page_rows, (i+1) * page_rows)``,
        matching :meth:`scan_pages` and the buffer pool's
        :func:`~repro.storage.buffer.table_page_key` convention. Used
        by cooperative (elevator) scans, which start mid-table and
        wrap around rather than walking from row 0.
        """
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        n_pages = self.page_count(page_rows)
        if not (0 <= index < n_pages):
            raise StorageError(
                f"page index {index} out of range for {self.name!r} "
                f"({n_pages} pages at {page_rows} rows/page)"
            )
        if columns is None:
            cols = self._columns
        else:
            cols = [self._columns[self.schema.index_of(c)] for c in columns]
        start = index * page_rows
        end = min(start + page_rows, len(self))
        return Page(list(zip(*(col[start:end] for col in cols))))

    def projected_schema(self, columns: Sequence[str] | None) -> Schema:
        return self.schema if columns is None else self.schema.project(columns)
