"""Page-granular buffer pool fronting table and spill pages.

The seed reproduction models a memory-resident database: every scan
touches storage for free, so an entire axis of the paper's trade-off
space — shared scans amortizing *cold I/O* — is invisible. This module
adds the missing storage layer:

* :class:`BufferPool` caches page frames identified by :func:`PageKey`
  tuples. An access is a *hit* (CPU-only) or a *miss*; the caller
  charges :attr:`~repro.engine.costs.CostModel.io_page` per miss, so a
  shared scan pivot pays cold misses once for all of its consumers
  while independent execution of M queries can pay them M times.
* Frames can be *pinned* — pinned frames are never evicted (operators
  pin pages they are actively mutating).
* Eviction is pluggable: :class:`LRUPolicy`, :class:`ClockPolicy`
  (second chance), :class:`MRUPolicy` (optimal for looping scans
  larger than the pool) and :class:`ScanAwarePolicy` (LRU that
  switches to MRU victims for tables observed or hinted to be larger
  than the pool — the adaptive choice for cooperative circular scans)
  are provided; :func:`make_policy` resolves a policy by name.
* :class:`SpillFile` is the spill channel used by memory-governed
  operators (the spilling hybrid hash join): pages written to a spill
  file live "on disk" (they survive eviction) but are also admitted to
  the pool, so a partition spilled and re-read while its frames are
  still resident costs nothing — graceful degradation rather than a
  cliff. Spill traffic is counted in :class:`BufferStats`
  (``spill_pages_written`` / ``spill_pages_read``); the caller charges
  :attr:`~repro.engine.costs.CostModel.spill_page` per page written
  and ``io_page`` per page that misses on read-back.

The pool is pure bookkeeping — it never talks to the simulator. Stage
tasks translate miss/spill counts into ``Compute`` charges, keeping
all timing in one place (the operator code).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.obs.trace import TID_POOL, TID_SPILL
from repro.storage.page import Page

__all__ = [
    "PageKey",
    "table_page_key",
    "spill_page_key",
    "BufferStats",
    "BufferSnapshot",
    "EvictionPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "ClockPolicy",
    "ScanAwarePolicy",
    "make_policy",
    "BufferPool",
    "SpillFile",
]

PageKey = Tuple[str, Any, int]


def table_page_key(table_name: str, index: int) -> PageKey:
    """The pool key of one base-table page (``page_rows`` granular)."""
    return ("tbl", table_name, index)


def spill_page_key(file_id: int, index: int) -> PageKey:
    """The pool key of one spill-file page."""
    return ("spill", file_id, index)


@dataclass(frozen=True)
class BufferSnapshot:
    """Immutable view of a pool's counters, for reports."""

    capacity: int
    resident: int
    pinned: int
    policy: str
    hits: int
    misses: int
    evictions: int
    hit_rate: float
    spill_pages_written: int
    spill_pages_read: int
    spill_prefetch_issued: int = 0
    spill_read_stall: float = 0.0
    spill_read_overlapped: float = 0.0

    def render(self) -> str:
        text = (
            f"buffer pool [{self.policy}]: {self.resident}/{self.capacity} "
            f"pages resident ({self.pinned} pinned), "
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.1%} hit rate), {self.evictions} evictions, "
            f"spill {self.spill_pages_written} written / "
            f"{self.spill_pages_read} read"
        )
        if self.spill_prefetch_issued or self.spill_read_stall:
            text += (
                f"; spill read-back: {self.spill_prefetch_issued} "
                f"prefetches, stall {self.spill_read_stall:.0f} / "
                f"overlapped {self.spill_read_overlapped:.0f}"
            )
        return text


class BufferStats:
    """Mutable hit/miss/eviction and spill-traffic counters.

    ``spill_prefetch_issued`` / ``spill_read_stall`` /
    ``spill_read_overlapped`` aggregate the
    :class:`~repro.storage.spill_cursor.SpillCursor` read-back model:
    how many spill-page reads were issued ahead of use, and how the
    resulting ``io_page`` bill split between synchronous stall and
    CPU-overlapped prefetch.
    """

    __slots__ = (
        "hits",
        "misses",
        "evictions",
        "spill_pages_written",
        "spill_pages_read",
        "spill_prefetch_issued",
        "spill_read_stall",
        "spill_read_overlapped",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.spill_pages_written = 0
        self.spill_pages_read = 0
        self.spill_prefetch_issued = 0
        self.spill_read_stall = 0.0
        self.spill_read_overlapped = 0.0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"BufferStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, "
            f"spill_w={self.spill_pages_written}, "
            f"spill_r={self.spill_pages_read})"
        )


class EvictionPolicy:
    """Victim-selection strategy; subclasses keep their own ordering.

    The pool notifies the policy on admit/access/remove and asks
    :meth:`victim` for an unpinned key to evict. ``is_pinned`` is a
    predicate supplied by the pool; a policy must never name a pinned
    frame as the victim.
    """

    name = "abstract"

    def on_admit(self, key: PageKey) -> None:
        raise NotImplementedError

    def on_access(self, key: PageKey) -> None:
        raise NotImplementedError

    def on_remove(self, key: PageKey) -> None:
        raise NotImplementedError

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        raise NotImplementedError

    def bind_capacity(self, capacity: int) -> None:
        """Told the pool's frame count at attach time. Most policies
        ignore it; adaptive policies use it to classify footprints."""

    def scan_hint(self, table_name: str, n_pages: int) -> None:
        """Advice that ``table_name`` is under a scan of ``n_pages``
        pages. Default: ignored."""


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used unpinned frame."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[PageKey, None]" = OrderedDict()

    def on_admit(self, key: PageKey) -> None:
        self._order[key] = None

    def on_access(self, key: PageKey) -> None:
        self._order.move_to_end(key)

    def on_remove(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        for key in self._order:
            if not is_pinned(key):
                return key
        raise StorageError("buffer pool: every frame is pinned")


class MRUPolicy(LRUPolicy):
    """Evict the *most* recently used unpinned frame.

    MRU is the classic answer to looping scans over data slightly
    larger than the pool: LRU evicts exactly the page the next loop
    iteration needs, while MRU preserves the prefix of the loop.
    """

    name = "mru"

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        for key in reversed(self._order):
            if not is_pinned(key):
                return key
        raise StorageError("buffer pool: every frame is pinned")


class ClockPolicy(EvictionPolicy):
    """Second-chance eviction with a clock hand over the frames."""

    name = "clock"

    def __init__(self) -> None:
        self._keys: list[PageKey] = []
        self._ref: dict[PageKey, bool] = {}
        self._hand = 0

    def on_admit(self, key: PageKey) -> None:
        self._keys.append(key)
        self._ref[key] = True

    def on_access(self, key: PageKey) -> None:
        self._ref[key] = True

    def on_remove(self, key: PageKey) -> None:
        if key in self._ref:
            index = self._keys.index(key)
            del self._keys[index]
            del self._ref[key]
            if index < self._hand:
                self._hand -= 1
            if self._keys:
                self._hand %= len(self._keys)
            else:
                self._hand = 0

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        if not self._keys:
            raise StorageError("buffer pool: no frames to evict")
        # Two sweeps clear every reference bit; a third finds a victim
        # unless every frame is pinned.
        for _ in range(3 * len(self._keys)):
            key = self._keys[self._hand]
            self._hand = (self._hand + 1) % len(self._keys)
            if is_pinned(key):
                continue
            if self._ref[key]:
                self._ref[key] = False
                continue
            return key
        raise StorageError("buffer pool: every frame is pinned")


class ScanAwarePolicy(LRUPolicy):
    """LRU that turns into MRU for tables bigger than the pool.

    The failure mode this prevents: a circular scan over a table that
    does not fit wipes the pool under LRU (every page evicted is
    exactly the one the next revolution needs first) and evicts every
    *other* table's working set along the way. The policy watches the
    per-table page footprint (and accepts explicit
    :meth:`scan_hint` advice from the scan-share manager); once a
    table's footprint exceeds the pool capacity it is classified as a
    *looping scan* and its **most** recently used page becomes the
    preferred victim — preserving the prefix of the loop for the next
    revolution and leaving unrelated tables' frames alone. Tables that
    fit keep plain LRU behavior.

    Classification triggers at footprint >= capacity: a table that
    large cannot coexist with anything else, and with observation-only
    detection the policy cannot see the true size until the scan has
    already overflowed the pool — the manager's explicit
    :meth:`scan_hint` (sent at attach time) classifies before the
    first eviction.
    """

    name = "scan"

    def __init__(self) -> None:
        super().__init__()
        self._capacity: Optional[int] = None
        self._footprint: dict[str, int] = {}
        self._looping: set[str] = set()

    def bind_capacity(self, capacity: int) -> None:
        self._capacity = capacity
        for table, pages in self._footprint.items():
            if pages >= capacity:
                self._looping.add(table)

    def scan_hint(self, table_name: str, n_pages: int) -> None:
        self._observe(table_name, n_pages)

    def is_looping(self, table_name: str) -> bool:
        """True once the table has been classified as a looping scan."""
        return table_name in self._looping

    def on_admit(self, key: PageKey) -> None:
        super().on_admit(key)
        if key[0] == "tbl":
            self._observe(key[1], key[2] + 1)

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        if self._looping:
            for key in reversed(self._order):
                if (key[0] == "tbl" and key[1] in self._looping
                        and not is_pinned(key)):
                    return key
        return super().victim(is_pinned)

    def _observe(self, table_name: str, n_pages: int) -> None:
        seen = self._footprint.get(table_name, 0)
        if n_pages > seen:
            self._footprint[table_name] = n_pages
            if self._capacity is not None and n_pages >= self._capacity:
                self._looping.add(table_name)


_POLICIES = {
    p.name: p for p in (LRUPolicy, MRUPolicy, ClockPolicy, ScanAwarePolicy)
}


def make_policy(policy: str | EvictionPolicy) -> EvictionPolicy:
    """Resolve ``"lru"`` / ``"clock"`` / ``"mru"`` / ``"scan"`` (or
    pass an :class:`EvictionPolicy` instance through)."""
    if isinstance(policy, EvictionPolicy):
        return policy
    try:
        return _POLICIES[policy]()
    except KeyError:
        raise StorageError(
            f"unknown eviction policy {policy!r}; have {sorted(_POLICIES)}"
        ) from None


class BufferPool:
    """A fixed-capacity cache of page frames with pluggable eviction.

    Parameters
    ----------
    capacity_pages:
        Number of page frames (>= 1).
    policy:
        Eviction policy name (``"lru"``, ``"clock"``, ``"mru"``) or an
        :class:`EvictionPolicy` instance.
    """

    def __init__(self, capacity_pages: int, policy: str | EvictionPolicy = "lru") -> None:
        if capacity_pages < 1:
            raise StorageError(
                f"buffer pool capacity must be >= 1, got {capacity_pages}"
            )
        self.capacity = int(capacity_pages)
        self.policy = make_policy(policy)
        self.policy.bind_capacity(self.capacity)
        self.stats = BufferStats()
        self._pins: dict[PageKey, int] = {}  # key -> pin count (0 = unpinned)
        self._spill_counter = 0
        # Optional flight recorder (repro.obs.trace); ``None`` keeps
        # the access path a single identity check away from the seed.
        self.tracer = None

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._pins)

    def __contains__(self, key: PageKey) -> bool:
        return key in self._pins

    def pinned_count(self) -> int:
        return sum(1 for count in self._pins.values() if count)

    def resident_pages(self, table_name: str) -> int:
        """How many of a table's pages are currently resident."""
        return sum(
            1 for key in self._pins
            if key[0] == "tbl" and key[1] == table_name
        )

    def scan_hint(self, table_name: str, n_pages: int) -> None:
        """Advise the eviction policy that a scan of ``n_pages`` pages
        is running over ``table_name`` (no-op for unaware policies)."""
        self.policy.scan_hint(table_name, n_pages)

    def is_pinned(self, key: PageKey) -> bool:
        return self._pins.get(key, 0) > 0

    def snapshot(self) -> BufferSnapshot:
        return BufferSnapshot(
            capacity=self.capacity,
            resident=len(self._pins),
            pinned=self.pinned_count(),
            policy=self.policy.name,
            hits=self.stats.hits,
            misses=self.stats.misses,
            evictions=self.stats.evictions,
            hit_rate=self.stats.hit_rate,
            spill_pages_written=self.stats.spill_pages_written,
            spill_pages_read=self.stats.spill_pages_read,
            spill_prefetch_issued=self.stats.spill_prefetch_issued,
            spill_read_stall=self.stats.spill_read_stall,
            spill_read_overlapped=self.stats.spill_read_overlapped,
        )

    # -- the cache protocol ----------------------------------------------

    def access(self, key: PageKey, pin: bool = False) -> bool:
        """Touch a page: returns True on hit, False on (admitted) miss.

        A miss admits the page, evicting an unpinned victim when the
        pool is full. The caller charges ``io_page`` for misses.
        """
        hit = key in self._pins
        if hit:
            self.stats.hits += 1
            self.policy.on_access(key)
        else:
            self.stats.misses += 1
            self._admit(key)
        if self.tracer is not None:
            self.tracer.instant(
                "hit" if hit else "miss", "pool", tid=TID_POOL, key=str(key)
            )
        if pin:
            self._pins[key] += 1
        return hit

    def _admit(self, key: PageKey) -> None:
        if len(self._pins) >= self.capacity:
            self._evict(self.policy.victim(self.is_pinned))
        self._pins[key] = 0
        self.policy.on_admit(key)

    def _evict(self, victim: PageKey) -> None:
        del self._pins[victim]
        self.policy.on_remove(victim)
        self.stats.evictions += 1
        if self.tracer is not None:
            self.tracer.instant(
                "evict", "pool", tid=TID_POOL, key=str(victim)
            )

    def admit(self, key: PageKey) -> None:
        """Place a page in the pool without counting a hit or a miss.

        Used by prewarming and by spill writes (a write is not a read
        miss); evicts like any admission.
        """
        if key in self._pins:
            self.policy.on_access(key)
            return
        self._admit(key)

    def pin(self, key: PageKey) -> None:
        """Pin a resident page; pinned pages are never evicted."""
        if key not in self._pins:
            raise StorageError(f"cannot pin non-resident page {key!r}")
        self._pins[key] += 1

    def unpin(self, key: PageKey) -> None:
        count = self._pins.get(key)
        if not count:
            raise StorageError(f"cannot unpin {key!r}: not pinned")
        self._pins[key] = count - 1

    def discard(self, key: PageKey) -> None:
        """Drop a frame without counting an eviction (file deletion)."""
        if key in self._pins:
            del self._pins[key]
            self.policy.on_remove(key)

    # -- conveniences ----------------------------------------------------

    def prewarm_table(self, table, page_rows: int) -> int:
        """Admit every page of a table (a warmed cache); returns count.

        Keys match the scan stage's: page ``i`` covers rows
        ``[i * page_rows, (i+1) * page_rows)``.
        """
        n_pages = -(-len(table) // page_rows)
        for index in range(n_pages):
            self.admit(table_page_key(table.name, index))
        return n_pages

    def spill_file(self, page_rows: int) -> "SpillFile":
        """Open a fresh spill file writing through this pool."""
        self._spill_counter += 1
        return SpillFile(self, self._spill_counter, page_rows)


class SpillFile:
    """An append-only run of pages spilled by a memory-governed operator.

    Pages always survive on the simulated disk (``self._pages``); each
    written page is also admitted to the buffer pool, so read-back of a
    recently spilled partition may hit. The file tracks its own page
    and row counts; the owning operator charges ``spill_page`` per page
    reported written and ``io_page`` per read-back miss.
    """

    def __init__(self, pool: Optional[BufferPool], file_id: int, page_rows: int) -> None:
        if page_rows < 1:
            raise StorageError(f"page_rows must be >= 1, got {page_rows}")
        self.pool = pool
        self.file_id = file_id
        self.page_rows = page_rows
        self._pages: list[Page] = []
        self._buffer: list[tuple] = []
        self.dropped = False

    @property
    def page_count(self) -> int:
        return len(self._pages)

    @property
    def row_count(self) -> int:
        return sum(len(p) for p in self._pages) + len(self._buffer)

    def append_rows(self, rows: Iterable[tuple]) -> int:
        """Buffer rows; returns the number of full pages written now."""
        if self.dropped:
            raise StorageError("spill file already dropped")
        written = 0
        self._buffer.extend(rows)
        while len(self._buffer) >= self.page_rows:
            self._write_page(self._buffer[: self.page_rows])
            del self._buffer[: self.page_rows]
            written += 1
        return written

    def flush(self) -> int:
        """Write out a partial trailing page, if any; returns 0 or 1."""
        if self.dropped:
            raise StorageError("spill file already dropped")
        if not self._buffer:
            return 0
        self._write_page(self._buffer)
        self._buffer = []
        return 1

    def _write_page(self, rows: Sequence[tuple]) -> None:
        index = len(self._pages)
        self._pages.append(Page(rows))
        if self.pool is not None:
            self.pool.stats.spill_pages_written += 1
            if self.pool.tracer is not None:
                self.pool.tracer.instant(
                    "spill_write", "spill", tid=TID_SPILL,
                    file=self.file_id, page=index,
                )
            self.pool.admit(spill_page_key(self.file_id, index))

    def page_at(self, index: int) -> Page:
        """The ``index``-th written page, without any I/O accounting.

        Used by :class:`~repro.storage.spill_cursor.SpillCursor`, which
        does its own pool accesses and miss accounting per page.
        """
        if self.dropped:
            raise StorageError("spill file already dropped")
        if not 0 <= index < len(self._pages):
            raise StorageError(
                f"spill file {self.file_id} has {len(self._pages)} pages, "
                f"no page {index}"
            )
        return self._pages[index]

    def key_of(self, index: int) -> PageKey:
        """The pool key of this file's ``index``-th page."""
        return spill_page_key(self.file_id, index)

    def read_all(self) -> tuple[list[Page], int]:
        """Read every written page back; returns ``(pages, misses)``.

        Counts ``spill_pages_read`` on the pool; ``misses`` is the
        number of pages no longer resident (the caller charges
        ``io_page`` for each).
        """
        if self.dropped:
            raise StorageError("spill file already dropped")
        misses = 0
        for index in range(len(self._pages)):
            if self.pool is not None:
                self.pool.stats.spill_pages_read += 1
                if self.pool.tracer is not None:
                    self.pool.tracer.instant(
                        "spill_read", "spill", tid=TID_SPILL,
                        file=self.file_id, page=index,
                    )
                if not self.pool.access(spill_page_key(self.file_id, index)):
                    misses += 1
            else:
                misses += 1
        return list(self._pages), misses

    def drop(self) -> None:
        """Delete the file: discard its frames and release the pages."""
        if self.dropped:
            return
        if self.pool is not None:
            for index in range(len(self._pages)):
                self.pool.discard(spill_page_key(self.file_id, index))
        self._pages = []
        self._buffer = []
        self.dropped = True
