"""Per-tenant buffer-pool partitions: capacity shares with hard quotas.

The open-system service tier runs many tenants' queries through *one*
engine so cross-tenant scan sharing stays possible, but a single
buffer pool then couples their working sets: one looping analyst
scanning a giant table evicts everyone else's pages (the classic noisy
neighbour). :class:`TenantPartitionedPool` is the isolation answer —
the pool's frames are divided into named partitions, each with a page
*quota*, and table ownership maps every admission to the partition
that must pay for it:

* a partition at its quota **self-evicts** (LRU within the partition)
  rather than stealing a frame from anyone else — so no tenant's
  resident footprint ever exceeds its share, no matter how hot its
  scan loop runs;
* pages of unowned tables (and spill pages, which any governed
  operator may write) land in the implicit ``__shared__`` partition
  holding whatever capacity the tenant shares left over;
* hits, misses, spill accounting, pinning, and the eviction-policy
  protocol are all inherited from :class:`BufferPool` — a partitioned
  pool drops into every existing consumer (scan manager, spill files,
  metrics) unchanged.

The invariant the service tier's soak tests assert, enforced here by
construction: ``resident(tenant) <= quota(tenant)`` at every instant,
for every tenant, regardless of interleaving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, EvictionPolicy, LRUPolicy, PageKey

__all__ = ["TenantShare", "TenantPartitionPolicy", "TenantPartitionedPool", "SHARED_PARTITION"]

# The implicit partition owning unmapped tables and all spill pages.
SHARED_PARTITION = "__shared__"


@dataclass(frozen=True)
class TenantShare:
    """One tenant's slice of the pool: a name, a page quota, and the
    tables whose pages bill against it.

    ``pages`` is a hard ceiling on the tenant's resident footprint;
    ``tables`` lists the base tables the tenant owns (a table belongs
    to at most one tenant — validated by the pool).
    """

    name: str
    pages: int
    tables: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise StorageError("tenant share needs a non-empty name")
        if self.name == SHARED_PARTITION:
            raise StorageError(
                f"{SHARED_PARTITION!r} is the reserved shared partition name"
            )
        if self.pages < 1:
            raise StorageError(
                f"tenant {self.name!r} share must be >= 1 page, got {self.pages}"
            )


class TenantPartitionPolicy(EvictionPolicy):
    """LRU eviction kept *per partition*, with key-to-partition routing.

    The policy tracks one LRU order per partition plus the global
    residency count of each, so the pool can ask for a victim *within*
    a named partition (quota enforcement) or fall back to the most
    over-quota partition's LRU page (global pressure).
    """

    name = "tenant"

    def __init__(
        self,
        shares: Sequence[TenantShare],
        shared_quota: int,
    ) -> None:
        self._table_owner: Dict[str, str] = {}
        self.quotas: Dict[str, int] = {SHARED_PARTITION: shared_quota}
        for share in shares:
            if share.name in self.quotas:
                raise StorageError(f"duplicate tenant name {share.name!r}")
            self.quotas[share.name] = share.pages
            for table in share.tables:
                owner = self._table_owner.setdefault(table, share.name)
                if owner != share.name:
                    raise StorageError(
                        f"table {table!r} owned by both {owner!r} "
                        f"and {share.name!r}"
                    )
        self._orders: Dict[str, LRUPolicy] = {
            partition: LRUPolicy() for partition in self.quotas
        }
        self._residency: Dict[str, int] = {p: 0 for p in self.quotas}
        self._partition_of_key: Dict[PageKey, str] = {}

    # -- routing -----------------------------------------------------------

    def partition_of(self, key: PageKey) -> str:
        """The partition a page bills against: its table's owner, or
        the shared partition (spill pages and unowned tables)."""
        if key[0] == "tbl":
            return self._table_owner.get(key[1], SHARED_PARTITION)
        return SHARED_PARTITION

    def residency(self, partition: str) -> int:
        return self._residency.get(partition, 0)

    def quota(self, partition: str) -> int:
        return self.quotas.get(partition, 0)

    def partitions(self) -> Tuple[str, ...]:
        return tuple(self.quotas)

    # -- the eviction-policy protocol --------------------------------------

    def on_admit(self, key: PageKey) -> None:
        partition = self.partition_of(key)
        self._partition_of_key[key] = partition
        self._residency[partition] += 1
        self._orders[partition].on_admit(key)

    def on_access(self, key: PageKey) -> None:
        partition = self._partition_of_key.get(key)
        if partition is not None:
            self._orders[partition].on_access(key)

    def on_remove(self, key: PageKey) -> None:
        partition = self._partition_of_key.pop(key, None)
        if partition is not None:
            self._residency[partition] -= 1
            self._orders[partition].on_remove(key)

    def victim_in(
        self, partition: str, is_pinned: Callable[[PageKey], bool]
    ) -> PageKey:
        """The partition's own LRU unpinned page."""
        try:
            return self._orders[partition].victim(is_pinned)
        except StorageError:
            raise StorageError(
                f"tenant partition {partition!r}: every frame is pinned "
                f"({self._residency.get(partition, 0)} resident)"
            ) from None

    def victim(self, is_pinned: Callable[[PageKey], bool]) -> PageKey:
        """Global fallback: the LRU page of the most over-quota
        partition (ties broken by partition order, deterministic)."""
        best: Optional[str] = None
        best_excess: Optional[int] = None
        for partition, resident in self._residency.items():
            if resident <= 0:
                continue
            excess = resident - self.quotas.get(partition, 0)
            if best_excess is None or excess > best_excess:
                best, best_excess = partition, excess
        if best is None:
            raise StorageError("buffer pool: no frames to evict")
        return self.victim_in(best, is_pinned)


class TenantPartitionedPool(BufferPool):
    """A :class:`BufferPool` whose capacity is divided among tenants.

    Parameters
    ----------
    capacity_pages:
        Total frame count, as for :class:`BufferPool`.
    shares:
        One :class:`TenantShare` per tenant. Quotas must sum to at
        most ``capacity_pages``; the remainder becomes the implicit
        ``__shared__`` partition (spill pages, unowned tables). When
        the shares consume the whole pool, anything billed to the
        shared partition is rejected at admission — configure
        headroom if governed operators will spill.

    Eviction discipline: an admission whose partition is at quota
    evicts that partition's own LRU page (never another tenant's);
    under global pressure with the admitting partition below quota,
    the most over-quota partition pays. Hence the isolation invariant:
    a tenant's resident pages never exceed its share.
    """

    def __init__(
        self,
        capacity_pages: int,
        shares: Sequence[TenantShare],
        policy: str = "lru",
    ) -> None:
        if policy != "lru":
            raise StorageError(
                "tenant partitions keep per-partition LRU order; "
                f"pool_policy must be 'lru', got {policy!r}"
            )
        shares = tuple(shares)
        if not shares:
            raise StorageError("tenant-partitioned pool needs >= 1 share")
        total = sum(share.pages for share in shares)
        if total > capacity_pages:
            raise StorageError(
                f"tenant shares sum to {total} pages but the pool has "
                f"only {capacity_pages}"
            )
        tenant_policy = TenantPartitionPolicy(
            shares, shared_quota=capacity_pages - total
        )
        super().__init__(capacity_pages, tenant_policy)
        self.shares = shares
        self.tenant_policy = tenant_policy

    # -- introspection -----------------------------------------------------

    def tenant_residency(self) -> Dict[str, int]:
        """Resident page count per partition (shared partition last)."""
        policy = self.tenant_policy
        ordered = [p for p in policy.partitions() if p != SHARED_PARTITION]
        ordered.append(SHARED_PARTITION)
        return {p: policy.residency(p) for p in ordered}

    def quota_of(self, partition: str) -> int:
        return self.tenant_policy.quota(partition)

    def tenant_of_table(self, table_name: str) -> str:
        from repro.storage.buffer import table_page_key

        return self.tenant_policy.partition_of(table_page_key(table_name, 0))

    def check_isolation(self) -> None:
        """Raise unless every partition is within its quota — the
        invariant the service tier's soak tests lean on."""
        for partition in self.tenant_policy.partitions():
            resident = self.tenant_policy.residency(partition)
            quota = self.tenant_policy.quota(partition)
            if resident > quota:
                raise StorageError(
                    f"tenant partition {partition!r} holds {resident} "
                    f"pages over its {quota}-page share"
                )

    # -- quota-enforcing admission -----------------------------------------

    def _admit(self, key: PageKey) -> None:
        policy = self.tenant_policy
        partition = policy.partition_of(key)
        quota = policy.quota(partition)
        if quota < 1:
            raise StorageError(
                f"partition {partition!r} has no pages: give the pool "
                "headroom beyond the tenant shares (or map the table "
                "to a tenant)"
            )
        if policy.residency(partition) >= quota:
            # At quota: the partition pays for itself, always.
            self._evict(policy.victim_in(partition, self.is_pinned))
        elif len(self._pins) >= self.capacity:
            # Global pressure while under quota: the most over-quota
            # partition pays (with exact quotas this cannot happen —
            # full pool means every partition is exactly at quota).
            self._evict(policy.victim(self.is_pinned))
        self._pins[key] = 0
        policy.on_admit(key)
