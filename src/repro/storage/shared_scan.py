"""Cooperative scan sharing: elevator cursors with async prefetch.

``fig_mem`` showed that identical concurrent scans through one shared
:class:`~repro.storage.buffer.BufferPool` *convoy*: the first toucher
of every page misses and the lockstep followers hit. That sharing is
implicit — it only works when the followers happen to stay page-
synchronized, and a scan arriving mid-table still starts at page 0.
This module makes the sharing explicit, in the style of QPipe's
on-the-fly scan sharing and the circular scans of commercial engines:

* :class:`ScanShareManager` runs one **elevator cursor** per hot table.
  A scan *attaches* at the cursor's current position, consumes pages in
  circular order, wraps past the end, and *completes after one full
  revolution* back to its start offset — so a late arrival rides the
  in-flight physical pass instead of forcing a second one, and only
  pays a private read for the prefix it missed (which is usually still
  resident behind the cursor).
* Each cursor carries an **async prefetch** pipeline of depth ``k``:
  while a consumer computes over page ``i``, the (simulated) disk
  fetches pages ``i+1 .. i+k``. The disk is modeled as a sequential
  device draining a FIFO of issued reads; a consumer arriving at a
  page whose read has not finished pays only the *remaining* cost
  (the stall), so prefetch converts cold-scan cost from
  ``cpu + io`` per page toward ``max(cpu, io)`` per page.
* Tables larger than the pool are registered with the pool's eviction
  policy via :meth:`~repro.storage.buffer.BufferPool.scan_hint`, so a
  scan-aware policy (:class:`~repro.storage.buffer.ScanAwarePolicy`)
  can switch those tables to MRU-style victims and keep a circular
  scan from flushing the cache.

All accounting is in cost-model units, like the rest of the storage
layer: :meth:`ScanShareManager.acquire` returns the stall cost the
scan stage charges (as the ``io`` component of a
:class:`~repro.sim.events.Compute`). The caller passes the CPU cost
of the page it just finished as ``cpu_credit``; the acquire that
advances the elevator head drains the disk FIFO by that amount —
exactly one CPU interval of overlap per physical page, however many
lockstep consumers ride the cursor. The manager never talks to the
simulator directly, keeping all timing in the operator code.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.buffer import BufferPool, table_page_key

__all__ = [
    "PrefetchFIFO",
    "ScanTicket",
    "TableScanStats",
    "ScanShareManager",
]


class PrefetchFIFO:
    """The sequential-disk model shared by every prefetching reader.

    A FIFO of issued-but-incomplete reads ``[index, remaining_cost]``.
    The disk works strictly in issue order: CPU intervals passed to
    :meth:`drain` pay down the head of the queue (the overlap), and a
    consumer arriving at an unfinished read stalls for everything
    issued up to and including it (:meth:`complete_through`). Used by
    the elevator cursors of :class:`ScanShareManager` and by
    :class:`~repro.storage.spill_cursor.SpillCursor` for spill
    read-back, so table scans and spill runs share one disk model.
    """

    __slots__ = ("_pending", "_inflight")

    def __init__(self) -> None:
        self._pending: deque[list] = deque()
        self._inflight: set[int] = set()

    def __contains__(self, index: int) -> bool:
        return index in self._inflight

    def __len__(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()
        self._inflight.clear()

    def issue(self, index: int, cost: float) -> None:
        """Queue the read of ``index`` behind everything in flight."""
        self._pending.append([index, cost])
        self._inflight.add(index)

    def drain(self, cpu_credit: float) -> float:
        """The disk worked for one CPU interval: pay down the FIFO.

        Returns the amount of read cost overlapped (completed reads
        leave the in-flight set).
        """
        remaining = cpu_credit
        overlapped = 0.0
        while remaining > 0 and self._pending:
            head = self._pending[0]
            if head[1] <= remaining:
                remaining -= head[1]
                overlapped += head[1]
                self._inflight.discard(head[0])
                self._pending.popleft()
            else:
                head[1] -= remaining
                overlapped += remaining
                remaining = 0.0
        return overlapped

    def complete_through(self, index: int) -> float:
        """Finish every read issued up to and including ``index``.

        Returns the stall: the sum of the remaining costs the consumer
        must wait out before its page is ready.
        """
        stall = 0.0
        while self._pending:
            issued_index, remaining = self._pending.popleft()
            self._inflight.discard(issued_index)
            stall += remaining
            if issued_index == index:
                break
        return stall

    def drop(self, index: int) -> float:
        """Abandon the issued read of ``index`` (evicted before use).

        Returns the remaining cost the abandoned read still had, so
        callers can account the waste.
        """
        self._inflight.discard(index)
        for position, entry in enumerate(self._pending):
            if entry[0] == index:
                del self._pending[position]
                return entry[1]
        return 0.0

    def settle(self, index: int, resident: bool, io_page: float):
        """One consumer arrives at page ``index``: classify its read.

        Returns ``(stall, kind, dropped)`` where ``kind`` is

        * ``"ready"`` — resident and complete: no stall;
        * ``"inflight"`` — resident but the read has not finished: the
          sequential disk completes everything issued up to and
          including this page first (the stall);
        * ``"cold"`` — a synchronous miss nobody issued ahead of time:
          stall is the full ``io_page``;
        * ``"wasted"`` — prefetched but evicted before use: the
          read-ahead was wasted (``dropped`` is its abandoned
          in-flight cost) and a fresh synchronous read is paid.

        This is the single definition of the disk model's arrival
        rules, shared by the elevator table scans and by spill
        read-back so the two can never diverge.
        """
        if resident:
            if index in self._inflight:
                return self.complete_through(index), "inflight", 0.0
            return 0.0, "ready", 0.0
        if index in self._inflight:
            return io_page, "wasted", self.drop(index)
        return io_page, "cold", 0.0

    def pending_cost(self) -> float:
        """Read cost still in flight (unconsumed prefetch)."""
        return sum(entry[1] for entry in self._pending)


@dataclass(frozen=True)
class TableScanStats:
    """Immutable per-table share statistics, for reports.

    ``pages_served / physical_reads`` is the sharing factor: with m
    attached consumers riding one physical pass it approaches m, with
    independent scans it stays near 1.
    """

    table: str
    n_pages: int
    attaches: int
    max_attach_depth: int
    pages_served: int
    physical_reads: int
    prefetch_issued: int
    prefetch_wasted: int
    io_stall_cost: float
    io_overlapped_cost: float

    @property
    def pages_per_read(self) -> float:
        """Logical pages served per physical page read."""
        if not self.physical_reads:
            return float(self.pages_served) if self.pages_served else 0.0
        return self.pages_served / self.physical_reads

    def render(self) -> str:
        return (
            f"scan[{self.table}]: {self.attaches} attaches "
            f"(depth <= {self.max_attach_depth}), "
            f"{self.pages_served} pages served / "
            f"{self.physical_reads} physical reads "
            f"({self.pages_per_read:.2f}x), "
            f"prefetch {self.prefetch_issued} issued "
            f"({self.prefetch_wasted} wasted), "
            f"io stall {self.io_stall_cost:.0f} / "
            f"overlapped {self.io_overlapped_cost:.0f}"
        )


class ScanTicket:
    """One consumer's ride on a table's elevator cursor.

    The ticket records where the consumer attached (``start_page``) and
    how many pages it has been served; :attr:`page_index` walks the
    table in circular order from the start offset and the ticket is
    :attr:`exhausted` after exactly one revolution.
    """

    __slots__ = ("table", "n_pages", "start_page", "served", "detached")

    def __init__(self, table: str, n_pages: int, start_page: int) -> None:
        self.table = table
        self.n_pages = n_pages
        self.start_page = start_page
        self.served = 0
        self.detached = False

    @property
    def page_index(self) -> int:
        """Physical index of the next page this consumer reads."""
        return (self.start_page + self.served) % self.n_pages

    @property
    def exhausted(self) -> bool:
        """True once the consumer has seen every page exactly once."""
        return self.served >= self.n_pages

    def advance(self) -> None:
        if self.exhausted:
            raise StorageError(
                f"scan ticket for {self.table!r} already completed "
                "its revolution"
            )
        self.served += 1

    def __repr__(self) -> str:
        return (
            f"ScanTicket({self.table!r}, start={self.start_page}, "
            f"{self.served}/{self.n_pages})"
        )


class _Cursor:
    """Elevator state for one table: head position, disk FIFO, stats."""

    __slots__ = (
        "table", "n_pages", "head", "tickets", "fifo",
        "attaches", "max_attach_depth", "pages_served",
        "physical_reads", "prefetch_issued", "prefetch_wasted",
        "io_stall_cost", "io_overlapped_cost",
    )

    def __init__(self, table: str, n_pages: int) -> None:
        self.table = table
        self.n_pages = n_pages
        self.head = 0            # next physical page the elevator reads
        self.tickets: list[ScanTicket] = []
        self.fifo = PrefetchFIFO()  # the sequential disk
        self.attaches = 0
        self.max_attach_depth = 0
        self.pages_served = 0
        self.physical_reads = 0
        self.prefetch_issued = 0
        self.prefetch_wasted = 0
        self.io_stall_cost = 0.0
        self.io_overlapped_cost = 0.0

    def stats(self) -> TableScanStats:
        return TableScanStats(
            table=self.table,
            n_pages=self.n_pages,
            attaches=self.attaches,
            max_attach_depth=self.max_attach_depth,
            pages_served=self.pages_served,
            physical_reads=self.physical_reads,
            prefetch_issued=self.prefetch_issued,
            prefetch_wasted=self.prefetch_wasted,
            io_stall_cost=self.io_stall_cost,
            io_overlapped_cost=self.io_overlapped_cost,
        )


class ScanShareManager:
    """Coordinates cooperative (elevator) scans over one buffer pool.

    Parameters
    ----------
    pool:
        The buffer pool all cooperative scans read through.
    prefetch_depth:
        Pages of read-ahead issued past the elevator head (0 disables
        prefetch — every miss is a synchronous ``io_page`` stall).
    """

    def __init__(self, pool: BufferPool, prefetch_depth: int = 0) -> None:
        if prefetch_depth < 0:
            raise StorageError(
                f"prefetch_depth must be >= 0, got {prefetch_depth}"
            )
        self.pool = pool
        self.prefetch_depth = int(prefetch_depth)
        self._cursors: dict[str, _Cursor] = {}

    # -- consumer lifecycle ----------------------------------------------

    def attach(self, table: str, n_pages: int) -> ScanTicket:
        """Join the table's elevator at its current position.

        The first consumer starts a cursor at page 0; later arrivals
        start at the head — the page the in-flight pass is about to
        read — and wrap around.
        """
        if n_pages < 1:
            raise StorageError(f"n_pages must be >= 1, got {n_pages}")
        cursor = self._cursors.get(table)
        if cursor is None:
            cursor = _Cursor(table, n_pages)
            self._cursors[table] = cursor
        elif cursor.n_pages != n_pages:
            if cursor.tickets:
                raise StorageError(
                    f"table {table!r} changed size mid-scan: cursor has "
                    f"{cursor.n_pages} pages, attach requests {n_pages}"
                )
            # Idle cursor over a table that grew (or shrank) between
            # queries: re-size its geometry, keep its lifetime stats.
            cursor.n_pages = n_pages
            cursor.head = 0
            cursor.fifo.clear()
        ticket = ScanTicket(table, n_pages, cursor.head % n_pages)
        cursor.tickets.append(ticket)
        cursor.attaches += 1
        cursor.max_attach_depth = max(
            cursor.max_attach_depth, len(cursor.tickets)
        )
        if n_pages > self.pool.capacity:
            self.pool.scan_hint(table, n_pages)
        return ticket

    def detach(self, ticket: ScanTicket) -> None:
        """Remove a finished (or abandoned) consumer from its cursor."""
        if ticket.detached:
            return
        ticket.detached = True
        cursor = self._cursors.get(ticket.table)
        if cursor is None:
            return
        try:
            cursor.tickets.remove(ticket)
        except ValueError:
            pass

    # -- the per-page protocol -------------------------------------------

    def acquire(
        self, ticket: ScanTicket, io_page: float, cpu_credit: float = 0.0
    ) -> float:
        """Obtain the ticket's next page; returns the I/O stall cost.

        ``cpu_credit`` is the CPU cost of the page the consumer just
        finished. When this acquire advances the elevator head — one
        consumer does, once per physical page, whichever of the
        lockstep riders gets there first — the credit drains the disk
        FIFO: that is the interval the disk spent fetching ahead while
        the pipeline computed. The returned stall is what remains of
        this page's read (the full ``io_page`` on an unprefetched
        miss, zero on a finished prefetch); the caller charges it as
        the ``io`` component of its ``Compute``. If this consumer is
        at the head, the next ``prefetch_depth`` pages' reads are also
        issued here.
        """
        if ticket.exhausted or ticket.detached:
            raise StorageError(f"{ticket!r} is not active")
        if cpu_credit < 0:
            raise StorageError(f"cpu_credit must be >= 0, got {cpu_credit}")
        cursor = self._cursor_of(ticket)
        index = ticket.page_index
        cursor.pages_served += 1
        at_head = index == cursor.head
        if at_head:
            cursor.io_overlapped_cost += cursor.fifo.drain(cpu_credit)
        resident = self.pool.access(table_page_key(ticket.table, index))

        stall, kind, _ = cursor.fifo.settle(index, resident, io_page)
        if kind in ("cold", "wasted"):
            cursor.physical_reads += 1
        if kind == "wasted":
            cursor.prefetch_wasted += 1
        cursor.io_stall_cost += stall

        # Elevator-head bookkeeping and read-ahead.
        if at_head:
            cursor.head = (index + 1) % cursor.n_pages
            self._issue_prefetch(cursor, index, io_page)
        return stall

    # -- projections and reports -----------------------------------------

    def cold_pages(self, table: str, n_pages: int) -> int:
        """Pages of the table not currently resident in the pool."""
        return max(0, n_pages - self.pool.resident_pages(table))

    def projected_attach_benefit(
        self, table: str, n_pages: int, consumers: int
    ) -> float:
        """Expected cold pages *each* of ``consumers`` concurrent
        scans pays with attach sharing on.

        One elevator pass serves everyone, so the physical read bill
        splits across the riders; history refines the estimate once a
        cursor has run (observed pages-per-read can fall short of the
        consumer count when arrivals outpace a revolution).
        """
        if consumers < 1:
            raise StorageError(f"consumers must be >= 1, got {consumers}")
        cold = self.cold_pages(table, n_pages)
        share = float(consumers)
        cursor = self._cursors.get(table)
        if cursor is not None and cursor.physical_reads:
            observed = cursor.pages_served / cursor.physical_reads
            share = min(share, max(1.0, observed))
        return cold / share

    def snapshot(self) -> tuple[TableScanStats, ...]:
        return tuple(
            cursor.stats()
            for _, cursor in sorted(self._cursors.items())
        )

    def render(self) -> str:
        stats = self.snapshot()
        if not stats:
            return "scan sharing: no cursors"
        return "\n".join(s.render() for s in stats)

    # -- internals ---------------------------------------------------------

    def _cursor_of(self, ticket: ScanTicket) -> _Cursor:
        try:
            return self._cursors[ticket.table]
        except KeyError:
            raise StorageError(
                f"no cursor for table {ticket.table!r}"
            ) from None

    def _issue_prefetch(self, cursor: _Cursor, index: int, io_page: float) -> None:
        if not self.prefetch_depth or io_page <= 0:
            return
        for step in range(1, self.prefetch_depth + 1):
            target = (index + step) % cursor.n_pages
            key = table_page_key(cursor.table, target)
            if target in cursor.fifo or key in self.pool:
                continue
            # Issue the read: the frame is admitted now (so followers
            # see it), its cost sits in the disk FIFO until overlapped
            # CPU work or an acquire-stall pays it down.
            self.pool.access(key)
            cursor.fifo.issue(target, io_page)
            cursor.physical_reads += 1
            cursor.prefetch_issued += 1
