"""Cooperative scan sharing: elevator cursors with async prefetch.

``fig_mem`` showed that identical concurrent scans through one shared
:class:`~repro.storage.buffer.BufferPool` *convoy*: the first toucher
of every page misses and the lockstep followers hit. That sharing is
implicit — it only works when the followers happen to stay page-
synchronized, and a scan arriving mid-table still starts at page 0.
This module makes the sharing explicit, in the style of QPipe's
on-the-fly scan sharing and the circular scans of commercial engines:

* :class:`ScanShareManager` runs one **elevator cursor** per hot table.
  A scan *attaches* at the cursor's current position, consumes pages in
  circular order, wraps past the end, and *completes after one full
  revolution* back to its start offset — so a late arrival rides the
  in-flight physical pass instead of forcing a second one, and only
  pays a private read for the prefix it missed (which is usually still
  resident behind the cursor).
* Each cursor carries an **async prefetch** pipeline of depth ``k``:
  while a consumer computes over page ``i``, the (simulated) disk
  fetches pages ``i+1 .. i+k``. The disk is modeled as a sequential
  device draining a FIFO of issued reads; a consumer arriving at a
  page whose read has not finished pays only the *remaining* cost
  (the stall), so prefetch converts cold-scan cost from
  ``cpu + io`` per page toward ``max(cpu, io)`` per page.
* Tables larger than the pool are registered with the pool's eviction
  policy via :meth:`~repro.storage.buffer.BufferPool.scan_hint`, so a
  scan-aware policy (:class:`~repro.storage.buffer.ScanAwarePolicy`)
  can switch those tables to MRU-style victims and keep a circular
  scan from flushing the cache.

All accounting is in cost-model units, like the rest of the storage
layer: :meth:`ScanShareManager.acquire` returns the stall cost the
scan stage charges (as the ``io`` component of a
:class:`~repro.sim.events.Compute`). The caller passes the CPU cost
of the page it just finished as ``cpu_credit``; the acquire that
advances the elevator head drains the disk FIFO by that amount —
exactly one CPU interval of overlap per physical page, however many
lockstep consumers ride the cursor. The manager never talks to the
simulator directly, keeping all timing in the operator code.

Drift governance (the "to share or not to share" regret bound)
--------------------------------------------------------------
A consumer much slower than the rest silently falls behind the head:
once its lag exceeds what the pool retains, its reads degrade to
private cold misses — the worst of both worlds (it neither shares the
physical pass nor left the convoy). With ``drift_bound`` set, each
cursor tracks per-consumer *lag* (pages behind its group's head) and
bounds it, the way DB2's grouped scans do, by one of two moves:

* **Throttle** — :meth:`ScanShareManager.throttle_wait` tells the
  consumer driving the head to pause (no new physical reads) until
  the convoy closes back up. The scan stage cooperates by sleeping
  the returned quantum and retrying; the paused time is the
  ``drift_throttle`` stall category in stage reports.
* **Group windows** — the convoy splits into two elevator groups
  (``group_windows=True``), each with its own head and disk FIFO:
  the fast riders keep their pace, the stragglers share a second,
  slower window instead of each degrading to private reads. Groups
  merge back when one laps the other or a window drains.

``group_windows="auto"`` picks between the two per violation with a
cost rule (:meth:`ScanShareManager.drift_split_gain`): pausing costs
every fast rider the lag gap, splitting costs one extra pass over
whatever the pool cannot retain — split when the first bill is
larger. ``drift_bound=None`` (the default) reproduces the historical
fall-behind behavior bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.errors import StorageError
from repro.obs.trace import TID_SCANS
from repro.storage.buffer import BufferPool, table_page_key

__all__ = [
    "PrefetchFIFO",
    "ScanTicket",
    "TableScanStats",
    "ScanShareManager",
]


class PrefetchFIFO:
    """The sequential-disk model shared by every prefetching reader.

    A FIFO of issued-but-incomplete reads ``[index, remaining_cost]``.
    The disk works strictly in issue order: CPU intervals passed to
    :meth:`drain` pay down the head of the queue (the overlap), and a
    consumer arriving at an unfinished read stalls for everything
    issued up to and including it (:meth:`complete_through`). Used by
    the elevator cursors of :class:`ScanShareManager` and by
    :class:`~repro.storage.spill_cursor.SpillCursor` for spill
    read-back, so table scans and spill runs share one disk model.
    """

    __slots__ = ("_pending", "_inflight")

    def __init__(self) -> None:
        self._pending: deque[list] = deque()
        self._inflight: set[int] = set()

    def __contains__(self, index: int) -> bool:
        return index in self._inflight

    def __len__(self) -> int:
        return len(self._pending)

    def clear(self) -> None:
        self._pending.clear()
        self._inflight.clear()

    def issue(self, index: int, cost: float) -> None:
        """Queue the read of ``index`` behind everything in flight."""
        self._pending.append([index, cost])
        self._inflight.add(index)

    def drain(self, cpu_credit: float) -> float:
        """The disk worked for one CPU interval: pay down the FIFO.

        Returns the amount of read cost overlapped (completed reads
        leave the in-flight set).
        """
        remaining = cpu_credit
        overlapped = 0.0
        while remaining > 0 and self._pending:
            head = self._pending[0]
            if head[1] <= remaining:
                remaining -= head[1]
                overlapped += head[1]
                self._inflight.discard(head[0])
                self._pending.popleft()
            else:
                head[1] -= remaining
                overlapped += remaining
                remaining = 0.0
        return overlapped

    def complete_through(self, index: int) -> float:
        """Finish every read issued up to and including ``index``.

        Returns the stall: the sum of the remaining costs the consumer
        must wait out before its page is ready.
        """
        stall = 0.0
        while self._pending:
            issued_index, remaining = self._pending.popleft()
            self._inflight.discard(issued_index)
            stall += remaining
            if issued_index == index:
                break
        return stall

    def drop(self, index: int) -> float:
        """Abandon the issued read of ``index`` (evicted before use).

        Returns the remaining cost the abandoned read still had, so
        callers can account the waste.
        """
        self._inflight.discard(index)
        for position, entry in enumerate(self._pending):
            if entry[0] == index:
                del self._pending[position]
                return entry[1]
        return 0.0

    def settle(self, index: int, resident: bool, io_page: float):
        """One consumer arrives at page ``index``: classify its read.

        Returns ``(stall, kind, dropped)`` where ``kind`` is

        * ``"ready"`` — resident and complete: no stall;
        * ``"inflight"`` — resident but the read has not finished: the
          sequential disk completes everything issued up to and
          including this page first (the stall);
        * ``"cold"`` — a synchronous miss nobody issued ahead of time:
          stall is the full ``io_page``;
        * ``"wasted"`` — prefetched but evicted before use: the
          read-ahead was wasted (``dropped`` is its abandoned
          in-flight cost) and a fresh synchronous read is paid.

        This is the single definition of the disk model's arrival
        rules, shared by the elevator table scans and by spill
        read-back so the two can never diverge.
        """
        if resident:
            if index in self._inflight:
                return self.complete_through(index), "inflight", 0.0
            return 0.0, "ready", 0.0
        if index in self._inflight:
            return io_page, "wasted", self.drop(index)
        return io_page, "cold", 0.0

    def pending_cost(self) -> float:
        """Read cost still in flight (unconsumed prefetch)."""
        return sum(entry[1] for entry in self._pending)


@dataclass(frozen=True)
class TableScanStats:
    """Immutable per-table share statistics, for reports.

    ``pages_served / physical_reads`` is the sharing factor: with m
    attached consumers riding one physical pass it approaches m, with
    independent scans it stays near 1. The drift block records how
    far consumers fell behind their group head (``max_lag``), the
    head-pause bill charged by throttling (``throttle_stall_cost``),
    and how often the convoy split into / merged back from group
    windows. ``io_abandoned_cost`` is in-flight read cost dropped
    before completion (evicted prefetches, retired group FIFOs); the
    conservation identity is ``io_stall + io_overlapped +
    io_abandoned + still-in-flight == physical_reads * io_page``.
    """

    table: str
    n_pages: int
    attaches: int
    max_attach_depth: int
    pages_served: int
    physical_reads: int
    prefetch_issued: int
    prefetch_wasted: int
    io_stall_cost: float
    io_overlapped_cost: float
    max_lag: int = 0
    throttle_stall_cost: float = 0.0
    splits: int = 0
    merges: int = 0
    io_abandoned_cost: float = 0.0
    groups: int = 1

    @property
    def pages_per_read(self) -> float:
        """Logical pages served per physical page read."""
        if not self.physical_reads:
            return float(self.pages_served) if self.pages_served else 0.0
        return self.pages_served / self.physical_reads

    def render(self) -> str:
        text = (
            f"scan[{self.table}]: {self.attaches} attaches "
            f"(depth <= {self.max_attach_depth}), "
            f"{self.pages_served} pages served / "
            f"{self.physical_reads} physical reads "
            f"({self.pages_per_read:.2f}x), "
            f"prefetch {self.prefetch_issued} issued "
            f"({self.prefetch_wasted} wasted), "
            f"io stall {self.io_stall_cost:.0f} / "
            f"overlapped {self.io_overlapped_cost:.0f}"
        )
        if (self.max_lag or self.throttle_stall_cost or self.splits
                or self.merges):
            text += (
                f"; drift lag <= {self.max_lag}, "
                f"throttle stall {self.throttle_stall_cost:.0f}, "
                f"{self.splits} splits / {self.merges} merges"
            )
        return text


class ScanTicket:
    """One consumer's ride on a table's elevator cursor.

    The ticket records where the consumer attached (``start_page``) and
    how many pages it has been served; :attr:`page_index` walks the
    table in circular order from the start offset and the ticket is
    :attr:`exhausted` after exactly one revolution — or after ``span``
    pages for a *ranged* ticket (a parallel scan fragment that reads
    only its page range but still rides the table's cursor, sharing
    residency and convoy reads with every other consumer).
    """

    __slots__ = ("table", "n_pages", "start_page", "span", "served",
                 "detached", "group", "acquired")

    def __init__(
        self,
        table: str,
        n_pages: int,
        start_page: int,
        span: Optional[int] = None,
    ) -> None:
        self.table = table
        self.n_pages = n_pages
        self.start_page = start_page
        self.span = n_pages if span is None else span
        self.served = 0
        self.detached = False
        # The elevator group this ticket rides (set by attach, moved
        # by group-window splits/merges). Managed by ScanShareManager.
        self.group: "_Group" | None = None
        # True between acquire() and advance(): the consumer holds
        # page_index but has not finished computing over it. Drift
        # accounting measures such a consumer at its *next* page —
        # a group-window split that seeded its head from an already-
        # acquired index would point at a page nobody requests again.
        self.acquired = False

    @property
    def page_index(self) -> int:
        """Physical index of the next page this consumer reads."""
        return (self.start_page + self.served) % self.n_pages

    @property
    def next_page(self) -> int:
        """Physical index of the next page this consumer will
        *request*: ``page_index``, plus one while the current page is
        acquired but not yet advanced past."""
        return (self.start_page + self.served
                + (1 if self.acquired else 0)) % self.n_pages

    @property
    def exhausted(self) -> bool:
        """True once the consumer has seen every page of its span."""
        return self.served >= self.span

    def advance(self) -> None:
        if self.exhausted:
            raise StorageError(
                f"scan ticket for {self.table!r} already completed "
                "its revolution"
            )
        self.served += 1
        self.acquired = False

    def __repr__(self) -> str:
        return (
            f"ScanTicket({self.table!r}, start={self.start_page}, "
            f"{self.served}/{self.span})"
        )


class _Group:
    """One elevator window: a head, its own disk FIFO, its riders.

    A cursor normally has exactly one group. A drift-bound violation
    under ``group_windows`` splits the convoy into two; groups merge
    back when their heads meet or a window drains.
    """

    __slots__ = ("head", "fifo", "tickets", "advanced")

    def __init__(self, head: int = 0, advanced: int = 0) -> None:
        self.head = head         # next physical page this window reads
        self.fifo = PrefetchFIFO()  # this window's sequential disk
        self.tickets: list[ScanTicket] = []
        # Monotone count of head advances: the circular heads cannot
        # be compared directly, so inter-window gaps are measured on
        # this counter (a split seeds the new window with the lead's
        # count minus its head lag).
        self.advanced = advanced

    def active_tickets(self) -> list[ScanTicket]:
        return [
            t for t in self.tickets if not (t.exhausted or t.detached)
        ]

    def lag_of(self, ticket: ScanTicket, n_pages: int) -> int:
        """Pages this consumer is behind the group head (0 = at it).

        Measured at the consumer's *next requested* page, so one
        mid-compute on the head page counts as caught up.
        """
        return (self.head - ticket.next_page) % n_pages

    def max_lag(self, n_pages: int) -> int:
        # Ranged tickets (parallel scan fragments pinned to a page
        # range) are not convoy stragglers: their distance from the
        # head is fixed by their range, not by their speed, so they
        # are excluded — counting them would throttle the head for
        # the fragment's whole lifetime.
        lags = [
            self.lag_of(t, n_pages)
            for t in self.active_tickets()
            if t.span >= n_pages
        ]
        return max(lags, default=0)


class _Cursor:
    """Elevator state for one table: its group windows and stats."""

    __slots__ = (
        "table", "n_pages", "groups",
        "attaches", "max_attach_depth", "pages_served",
        "physical_reads", "prefetch_issued", "prefetch_wasted",
        "io_stall_cost", "io_overlapped_cost",
        "max_lag", "throttle_stall_cost", "splits", "merges",
        "io_abandoned_cost",
    )

    def __init__(self, table: str, n_pages: int) -> None:
        self.table = table
        self.n_pages = n_pages
        self.groups: list[_Group] = [_Group()]
        self.attaches = 0
        self.max_attach_depth = 0
        self.pages_served = 0
        self.physical_reads = 0
        self.prefetch_issued = 0
        self.prefetch_wasted = 0
        self.io_stall_cost = 0.0
        self.io_overlapped_cost = 0.0
        self.max_lag = 0
        self.throttle_stall_cost = 0.0
        self.splits = 0
        self.merges = 0
        self.io_abandoned_cost = 0.0

    # The single-group accessors older callers (and tests) rely on:
    # with drift governance off there is exactly one group, and these
    # are that group's head and FIFO.

    @property
    def head(self) -> int:
        return self.groups[0].head

    @property
    def fifo(self) -> PrefetchFIFO:
        return self.groups[0].fifo

    @property
    def tickets(self) -> list[ScanTicket]:
        return [t for g in self.groups for t in g.tickets]

    def pending_cost(self) -> float:
        """Unconsumed in-flight read cost across all group FIFOs."""
        return sum(g.fifo.pending_cost() for g in self.groups)

    def stats(self) -> TableScanStats:
        return TableScanStats(
            table=self.table,
            n_pages=self.n_pages,
            attaches=self.attaches,
            max_attach_depth=self.max_attach_depth,
            pages_served=self.pages_served,
            physical_reads=self.physical_reads,
            prefetch_issued=self.prefetch_issued,
            prefetch_wasted=self.prefetch_wasted,
            io_stall_cost=self.io_stall_cost,
            io_overlapped_cost=self.io_overlapped_cost,
            max_lag=self.max_lag,
            throttle_stall_cost=self.throttle_stall_cost,
            splits=self.splits,
            merges=self.merges,
            io_abandoned_cost=self.io_abandoned_cost,
            groups=len(self.groups),
        )


class ScanShareManager:
    """Coordinates cooperative (elevator) scans over one buffer pool.

    Parameters
    ----------
    pool:
        The buffer pool all cooperative scans read through.
    prefetch_depth:
        Pages of read-ahead issued past the elevator head (0 disables
        prefetch — every miss is a synchronous ``io_page`` stall).
    drift_bound:
        Maximum pages any consumer may lag behind its group's head
        before the manager intervenes (``None`` — the default — keeps
        the historical unbounded fall-behind behavior). Enforcement
        is cooperative: the scan stage asks :meth:`throttle_wait`
        before driving the head, so raw :meth:`acquire` callers see
        the bound as advisory (lag is still tracked and splits still
        happen under ``group_windows``).
    group_windows:
        What a drift violation does. ``False`` (default): throttle —
        pause the head until the convoy closes up. ``True``: split
        the convoy into two elevator groups (fast riders keep their
        pace, stragglers share a second window). ``"auto"``: choose
        per violation by :meth:`drift_split_gain`'s cost rule.
    """

    _MAX_GROUPS = 2
    _WINDOW_MODES = (False, True, "auto")

    def __init__(
        self,
        pool: BufferPool,
        prefetch_depth: int = 0,
        drift_bound: int | None = None,
        group_windows: bool | str = False,
    ) -> None:
        if prefetch_depth < 0:
            raise StorageError(
                f"prefetch_depth must be >= 0, got {prefetch_depth}"
            )
        if drift_bound is not None and drift_bound < 1:
            raise StorageError(
                f"drift_bound must be >= 1 page, got {drift_bound}"
            )
        if group_windows not in self._WINDOW_MODES:
            raise StorageError(
                f"group_windows must be one of {self._WINDOW_MODES}, "
                f"got {group_windows!r}"
            )
        if group_windows and drift_bound is None:
            raise StorageError(
                "group_windows needs a drift_bound: windows open when "
                "a consumer's lag crosses the bound"
            )
        self.pool = pool
        self.prefetch_depth = int(prefetch_depth)
        self.drift_bound = drift_bound
        self.group_windows = group_windows
        self._cursors: dict[str, _Cursor] = {}
        # Optional flight recorder (repro.obs.trace); every elevator
        # lifecycle edge below guards on one identity check.
        self.tracer = None

    # -- consumer lifecycle ----------------------------------------------

    def attach(
        self,
        table: str,
        n_pages: int,
        start: Optional[int] = None,
        span: Optional[int] = None,
    ) -> ScanTicket:
        """Join the table's elevator at its current position.

        The first consumer starts a cursor at page 0; later arrivals
        start at the head — the page the in-flight pass is about to
        read — and wrap around.

        ``start`` / ``span`` attach a *ranged* ticket: a parallel scan
        fragment reading ``span`` pages from a fixed ``start`` offset
        (not the head). Ranged tickets ride the same cursor as every
        full-revolution consumer — they share pool residency and any
        in-flight convoy reads, and they count in the cursor's sharing
        statistics — but they do not begin at the head, so they pay
        their own cold reads where their range has not been warmed.
        """
        if n_pages < 1:
            raise StorageError(f"n_pages must be >= 1, got {n_pages}")
        if start is not None and not 0 <= start < n_pages:
            raise StorageError(
                f"start must be in [0, {n_pages}), got {start}"
            )
        if span is not None and not 1 <= span <= n_pages:
            raise StorageError(
                f"span must be in [1, {n_pages}], got {span}"
            )
        cursor = self._cursors.get(table)
        if cursor is None:
            cursor = _Cursor(table, n_pages)
            self._cursors[table] = cursor
        elif cursor.n_pages != n_pages:
            if cursor.tickets:
                raise StorageError(
                    f"table {table!r} changed size mid-scan: cursor has "
                    f"{cursor.n_pages} pages, attach requests {n_pages}"
                )
            # Idle cursor over a table that grew (or shrank) between
            # queries: re-size its geometry, keep its lifetime stats
            # (abandoning still-in-flight reads keeps the conservation
            # identity honest across the reset).
            cursor.n_pages = n_pages
            cursor.io_abandoned_cost += cursor.pending_cost()
            cursor.groups = [_Group()]
        lead = cursor.groups[0]
        start_page = lead.head % n_pages if start is None else start
        ticket = ScanTicket(table, n_pages, start_page, span=span)
        ticket.group = lead
        lead.tickets.append(ticket)
        cursor.attaches += 1
        cursor.max_attach_depth = max(
            cursor.max_attach_depth, len(cursor.tickets)
        )
        if self.tracer is not None:
            self.tracer.instant(
                "attach", "scan", tid=TID_SCANS,
                table=table, start=ticket.start_page,
                depth=len(cursor.tickets),
            )
        if n_pages > self.pool.capacity:
            self.pool.scan_hint(table, n_pages)
        return ticket

    def detach(self, ticket: ScanTicket) -> None:
        """Remove a finished (or abandoned) consumer from its cursor.

        Detaching a straggler mid-drift unblocks a throttled head on
        the spot (its lag no longer counts), and draining a group
        window retires the window — the abandoned in-flight read cost
        is recorded in ``io_abandoned_cost``.
        """
        if ticket.detached:
            return
        ticket.detached = True
        if self.tracer is not None:
            self.tracer.instant(
                "detach", "scan", tid=TID_SCANS,
                table=ticket.table, served=ticket.served,
            )
        cursor = self._cursors.get(ticket.table)
        if cursor is None:
            return
        group = ticket.group
        if group is None:
            return
        try:
            group.tickets.remove(ticket)
        except ValueError:
            pass
        if not group.tickets and len(cursor.groups) > 1:
            self._retire_group(cursor, group)

    # -- the per-page protocol -------------------------------------------

    def acquire(
        self, ticket: ScanTicket, io_page: float, cpu_credit: float = 0.0
    ) -> float:
        """Obtain the ticket's next page; returns the I/O stall cost.

        ``cpu_credit`` is the CPU cost of the page the consumer just
        finished. When this acquire advances the elevator head — one
        consumer does, once per physical page, whichever of the
        lockstep riders gets there first — the credit drains the disk
        FIFO: that is the interval the disk spent fetching ahead while
        the pipeline computed. The returned stall is what remains of
        this page's read (the full ``io_page`` on an unprefetched
        miss, zero on a finished prefetch); the caller charges it as
        the ``io`` component of its ``Compute``. If this consumer is
        at the head, the next ``prefetch_depth`` pages' reads are also
        issued here.
        """
        if ticket.exhausted or ticket.detached:
            raise StorageError(f"{ticket!r} is not active")
        if cpu_credit < 0:
            raise StorageError(f"cpu_credit must be >= 0, got {cpu_credit}")
        cursor = self._cursor_of(ticket)
        group = ticket.group
        index = ticket.page_index
        cursor.pages_served += 1
        at_head = index == group.head
        if at_head:
            cursor.io_overlapped_cost += group.fifo.drain(cpu_credit)
        resident = self.pool.access(table_page_key(ticket.table, index))

        stall, kind, dropped = group.fifo.settle(index, resident, io_page)
        if kind in ("cold", "wasted"):
            cursor.physical_reads += 1
        if kind == "wasted":
            cursor.prefetch_wasted += 1
        if self.tracer is not None:
            if kind == "wasted":
                self.tracer.instant(
                    "prefetch_waste", "scan", tid=TID_SCANS,
                    table=ticket.table, page=index,
                )
            elif kind == "ready":
                self.tracer.instant(
                    "prefetch_arrive", "scan", tid=TID_SCANS,
                    table=ticket.table, page=index,
                )
        cursor.io_stall_cost += stall
        cursor.io_abandoned_cost += dropped
        ticket.acquired = True

        # Elevator-head bookkeeping, drift tracking, and read-ahead.
        if at_head:
            group.head = (index + 1) % cursor.n_pages
            group.advanced += 1
            self._note_drift(cursor, group, io_page)
            self._issue_prefetch(cursor, group, index, io_page)
            self._maybe_merge(cursor, group)
        return stall

    def throttle_wait(self, ticket: ScanTicket, io_page: float) -> float:
        """Ask permission to drive the head; 0.0 means go ahead.

        The per-consumer pacing hook: a scan stage calls this before
        each :meth:`acquire`. A positive return means the consumer is
        driving a head, a drift bound is violated, and the chosen
        response is to *pause physical reads* — the caller should
        wait that long (off-processor) and retry; the quantum is one
        ``io_page`` (the disk's natural tick) and is accounted as
        ``throttle_stall_cost``. Two bounds are enforced:

        * *intra-group*: some rider of this consumer's own group lags
          ``drift_bound`` or more behind its head (answered by a
          group-window split instead when the mode and cost rule say
          so — then this returns 0.0 and the next acquire splits);
        * *inter-group*: this group leads a trailing group window by
          :meth:`window_span` pages or more. Without this coupling a
          free-running lead would evict the whole table behind it and
          hand the trailing window a full second physical pass — the
          bounded span is what keeps group windows cheaper than
          private re-reads, the way DB2's grouped scans stay within
          one buffer window.

        Returns 0.0 when neither bound is violated, the consumer is
        not driving a head, or drift governance is off
        (``drift_bound=None``, or a free ``io_page`` makes private
        re-reads costless).
        """
        if self.drift_bound is None or io_page <= 0:
            return 0.0
        if ticket.exhausted or ticket.detached:
            return 0.0
        cursor = self._cursors.get(ticket.table)
        group = ticket.group
        if cursor is None or group is None:
            return 0.0
        if ticket.page_index != group.head:
            return 0.0
        span = self.window_span(cursor.n_pages)
        outruns = any(
            group.advanced - other.advanced >= span
            for other in cursor.groups
            if other is not group and other.active_tickets()
        )
        if not outruns:
            if group.max_lag(cursor.n_pages) < self.drift_bound:
                return 0.0
            if self._wants_split(cursor, group, io_page):
                return 0.0  # the next acquire opens a window instead
        cursor.throttle_stall_cost += io_page
        if self.tracer is not None:
            self.tracer.instant(
                "throttle", "scan", tid=TID_SCANS,
                table=ticket.table, wait=io_page,
            )
        return io_page

    def window_span(self, n_pages: int) -> int:
        """Maximum lead (in head advances) one group window may hold
        over another: as much of the pool as read-ahead leaves free —
        clamped to the table (one revolution is the largest
        meaningful lead) — but never less than the drift bound. A
        span beyond the pool's reach would let the lead evict the
        trailing window's future pages and re-bill them as a private
        pass."""
        span = min(self.pool.capacity - self.prefetch_depth - 2,
                   n_pages - 1)
        bound = self.drift_bound if self.drift_bound is not None else 1
        return max(bound, span, 1)

    def drift_split_gain(self, table: str, io_page: float) -> float:
        """The split-vs-throttle cost rule, in cost-model units.

        Throttling the lead group's head bills every fast rider the
        lag gap (each idles ~``max_lag`` page-ticks of ``io_page``);
        splitting bills one extra pass over whatever the pool cannot
        retain (``n_pages - capacity`` cold re-reads, 0 for tables
        the pool covers). Positive gain → split, else throttle.
        ``group_windows="auto"`` applies this rule per violation;
        policies can call it to anticipate the choice.
        """
        cursor = self._cursors.get(table)
        if cursor is None:
            return 0.0
        group = cursor.groups[0]
        lag = group.max_lag(cursor.n_pages)
        fast = sum(
            1 for t in group.active_tickets()
            if group.lag_of(t, cursor.n_pages) < lag
        )
        throttle_cost = fast * lag * io_page
        replay = max(0, cursor.n_pages - self.pool.capacity)
        return throttle_cost - replay * io_page

    # -- projections and reports -----------------------------------------

    def cold_pages(self, table: str, n_pages: int) -> int:
        """Pages of the table not currently resident in the pool."""
        return max(0, n_pages - self.pool.resident_pages(table))

    def projected_attach_benefit(
        self, table: str, n_pages: int, consumers: int,
        cpu_skew: float = 1.0,
    ) -> float:
        """Expected cold pages *each* of ``consumers`` concurrent
        scans pays with attach sharing on.

        One elevator pass serves everyone, so the physical read bill
        splits across the riders; history refines the estimate once a
        cursor has run (observed pages-per-read can fall short of the
        consumer count when arrivals outpace a revolution).

        ``cpu_skew`` is the projected per-page CPU ratio between the
        slowest and fastest rider. A skewed convoy does not share a
        single pass: the effective split factor is *discounted by
        projected drift* according to this manager's governance —
        unbounded drift degrades toward private passes
        (``1 + (m-1)/skew``), group windows hold two passes
        (``m/2``), and throttling preserves the single pass (its bill
        is head latency, not extra reads). The discount is what keeps
        :class:`~repro.policies.resource_outlook.ResourceOutlook`
        from over-promising sharing to skewed convoys.
        """
        if consumers < 1:
            raise StorageError(f"consumers must be >= 1, got {consumers}")
        if cpu_skew < 1:
            raise StorageError(f"cpu_skew must be >= 1, got {cpu_skew}")
        cold = self.cold_pages(table, n_pages)
        share = self.projected_drift_share(
            table, n_pages, consumers, cpu_skew
        )
        cursor = self._cursors.get(table)
        if cursor is not None and cursor.physical_reads:
            observed = cursor.pages_served / cursor.physical_reads
            share = min(share, max(1.0, observed))
        return cold / share

    def projected_drift_share(
        self, table: str, n_pages: int, consumers: int,
        cpu_skew: float = 1.0,
    ) -> float:
        """Effective sharing factor a convoy of ``consumers`` with
        per-page CPU skew ``cpu_skew`` is projected to achieve under
        this manager's drift governance (see
        :meth:`projected_attach_benefit`)."""
        if cpu_skew <= 1.0 or consumers < 2:
            return float(consumers)
        if self.drift_bound is None:
            # Unbounded drift: only same-speed riders stay together.
            return 1.0 + (consumers - 1) / cpu_skew
        if self._splits_projected(n_pages, consumers):
            # Group windows: two passes, each shared by half the
            # convoy in the worst case.
            return max(1.0, consumers / 2.0)
        return float(consumers)

    def _splits_projected(self, n_pages: int, consumers: int) -> bool:
        """Would a drift violation open a group window (vs throttle)?"""
        if self.group_windows is True:
            return True
        if self.group_windows == "auto" and self.drift_bound is not None:
            replay = max(0, n_pages - self.pool.capacity)
            return (consumers - 1) * self.drift_bound > replay
        return False

    def snapshot(self) -> tuple[TableScanStats, ...]:
        return tuple(
            cursor.stats()
            for _, cursor in sorted(self._cursors.items())
        )

    def render(self) -> str:
        stats = self.snapshot()
        if not stats:
            return "scan sharing: no cursors"
        return "\n".join(s.render() for s in stats)

    # -- internals ---------------------------------------------------------

    def _cursor_of(self, ticket: ScanTicket) -> _Cursor:
        try:
            return self._cursors[ticket.table]
        except KeyError:
            raise StorageError(
                f"no cursor for table {ticket.table!r}"
            ) from None

    def _issue_prefetch(
        self, cursor: _Cursor, group: _Group, index: int, io_page: float
    ) -> None:
        if not self.prefetch_depth or io_page <= 0:
            return
        for step in range(1, self.prefetch_depth + 1):
            target = (index + step) % cursor.n_pages
            key = table_page_key(cursor.table, target)
            if target in group.fifo or key in self.pool:
                continue
            # Issue the read: the frame is admitted now (so followers
            # see it), its cost sits in the disk FIFO until overlapped
            # CPU work or an acquire-stall pays it down.
            self.pool.access(key)
            group.fifo.issue(target, io_page)
            cursor.physical_reads += 1
            cursor.prefetch_issued += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "prefetch_issue", "scan", tid=TID_SCANS,
                    table=cursor.table, page=target,
                )

    # -- drift governance --------------------------------------------------

    def _note_drift(
        self, cursor: _Cursor, group: _Group, io_page: float
    ) -> None:
        """Track lag after a head advance; open a window on violation."""
        lag = group.max_lag(cursor.n_pages)
        if lag > cursor.max_lag:
            cursor.max_lag = lag
        if (self.drift_bound is None or lag < self.drift_bound
                or not self._wants_split(cursor, group, io_page)):
            return
        self._split(cursor, group)

    def _wants_split(
        self, cursor: _Cursor, group: _Group, io_page: float
    ) -> bool:
        """Would this group answer a drift violation with a split?"""
        if not self.group_windows or len(cursor.groups) >= self._MAX_GROUPS:
            return False
        if self._split_point(cursor, group) is None:
            return False
        if self.group_windows == "auto":
            return self.drift_split_gain(cursor.table, io_page) > 0
        return True

    def _split_point(
        self, cursor: _Cursor, group: _Group
    ) -> int | None:
        """Lag threshold separating the convoy's two natural clusters.

        Sorts the riders by lag and cuts at the largest gap between
        consecutive lags — the grouped-scan clustering rule. Returns
        the smallest lag of the slow cluster, or ``None`` when the
        convoy has no gap to cut at (fewer than two distinct lags).
        """
        # Ranged fragments sit at range-fixed offsets, not speed-derived
        # lags; they stay in the lead group and never seed a window.
        lags = sorted(
            group.lag_of(t, cursor.n_pages)
            for t in group.active_tickets()
            if t.span >= cursor.n_pages
        )
        if len(lags) < 2 or lags[0] == lags[-1]:
            return None
        best_gap, threshold = 0, None
        for faster, slower in zip(lags, lags[1:]):
            if slower - faster > best_gap:
                best_gap, threshold = slower - faster, slower
        return threshold

    def _split(self, cursor: _Cursor, group: _Group) -> None:
        """Open a group window: move the slow cluster to its own
        elevator, headed at its least-lagging member's next page."""
        threshold = self._split_point(cursor, group)
        if threshold is None:
            return
        slow = [
            t for t in group.active_tickets()
            if t.span >= cursor.n_pages
            and group.lag_of(t, cursor.n_pages) >= threshold
        ]
        slow_head = min(
            (t for t in slow),
            key=lambda t: group.lag_of(t, cursor.n_pages),
        ).next_page
        head_lag = (group.head - slow_head) % cursor.n_pages
        window = _Group(head=slow_head,
                        advanced=group.advanced - head_lag)
        for ticket in slow:
            group.tickets.remove(ticket)
            ticket.group = window
            window.tickets.append(ticket)
        cursor.groups.append(window)
        cursor.splits += 1
        if self.tracer is not None:
            self.tracer.instant(
                "split", "scan", tid=TID_SCANS,
                table=cursor.table, head=slow_head,
                riders=len(window.tickets),
            )

    def _maybe_merge(self, cursor: _Cursor, group: _Group) -> None:
        """Merge group windows whose heads meet (one lapped the other)."""
        for other in list(cursor.groups):
            if other is group or other.head != group.head:
                continue
            for ticket in other.tickets:
                ticket.group = group
                group.tickets.append(ticket)
            other.tickets = []
            self._retire_group(cursor, other)

    def _retire_group(self, cursor: _Cursor, group: _Group) -> None:
        """Drop an empty group window, abandoning its in-flight reads."""
        cursor.io_abandoned_cost += group.fifo.pending_cost()
        group.fifo.clear()
        cursor.groups.remove(group)
        cursor.merges += 1
        if self.tracer is not None:
            self.tracer.instant(
                "merge", "scan", tid=TID_SCANS, table=cursor.table
            )
