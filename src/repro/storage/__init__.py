"""In-memory columnar storage substrate.

The paper's workloads are memory-resident (1 GB TPC-H on a 16 GB
machine); this package provides the equivalent: columnar
:class:`~repro.storage.table.Table` objects grouped in a
:class:`~repro.storage.catalog.Catalog`, scanned as tuple
:class:`~repro.storage.page.Page` batches.
"""

from repro.storage.catalog import Catalog
from repro.storage.io import load_catalog, load_table, save_catalog, save_table
from repro.storage.page import DEFAULT_PAGE_ROWS, Page, paginate
from repro.storage.schema import (
    Column,
    DataType,
    Schema,
    date_to_ordinal,
    ordinal_to_date,
)
from repro.storage.table import Table

__all__ = [
    "Catalog",
    "DEFAULT_PAGE_ROWS",
    "Page",
    "paginate",
    "Column",
    "DataType",
    "Schema",
    "date_to_ordinal",
    "ordinal_to_date",
    "Table",
    "save_catalog",
    "load_catalog",
    "save_table",
    "load_table",
]
