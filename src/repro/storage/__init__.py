"""In-memory columnar storage substrate.

The paper's workloads are memory-resident (1 GB TPC-H on a 16 GB
machine); this package provides the equivalent: columnar
:class:`~repro.storage.table.Table` objects grouped in a
:class:`~repro.storage.catalog.Catalog`, scanned as tuple
:class:`~repro.storage.page.Page` batches.

For workloads that do *not* fit (or whose operators must not assume
they do), :mod:`repro.storage.buffer` adds the memory-governed layer:
a page-granular :class:`~repro.storage.buffer.BufferPool` with
pluggable eviction (LRU / CLOCK / MRU / scan-aware) fronting table
pages — cold reads charge the cost model's ``io_page`` — plus
:class:`~repro.storage.buffer.SpillFile` runs used by spilling
operators under :class:`~repro.engine.memory.MemoryBroker` grants.
:mod:`repro.storage.shared_scan` layers cooperative (elevator) scan
sharing with async prefetch on top of the pool.
"""

from repro.storage.buffer import (
    BufferPool,
    BufferSnapshot,
    BufferStats,
    ClockPolicy,
    EvictionPolicy,
    LRUPolicy,
    MRUPolicy,
    ScanAwarePolicy,
    SpillFile,
    make_policy,
    spill_page_key,
    table_page_key,
)
from repro.storage.catalog import Catalog
from repro.storage.shared_scan import (
    PrefetchFIFO,
    ScanShareManager,
    ScanTicket,
    TableScanStats,
)
from repro.storage.spill_cursor import SpillCursor
from repro.storage.tenant_pool import (
    SHARED_PARTITION,
    TenantPartitionedPool,
    TenantPartitionPolicy,
    TenantShare,
)
from repro.storage.io import load_catalog, load_table, save_catalog, save_table
from repro.storage.page import DEFAULT_PAGE_ROWS, Page, paginate
from repro.storage.schema import (
    Column,
    DataType,
    Schema,
    date_to_ordinal,
    ordinal_to_date,
)
from repro.storage.table import Table

__all__ = [
    "BufferPool",
    "BufferSnapshot",
    "BufferStats",
    "ClockPolicy",
    "EvictionPolicy",
    "LRUPolicy",
    "MRUPolicy",
    "ScanAwarePolicy",
    "PrefetchFIFO",
    "ScanShareManager",
    "ScanTicket",
    "TableScanStats",
    "SpillCursor",
    "SpillFile",
    "SHARED_PARTITION",
    "TenantPartitionedPool",
    "TenantPartitionPolicy",
    "TenantShare",
    "make_policy",
    "spill_page_key",
    "table_page_key",
    "Catalog",
    "DEFAULT_PAGE_ROWS",
    "Page",
    "paginate",
    "Column",
    "DataType",
    "Schema",
    "date_to_ordinal",
    "ordinal_to_date",
    "Table",
    "save_catalog",
    "load_catalog",
    "save_table",
    "load_table",
]
