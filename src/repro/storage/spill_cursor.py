"""Prefetched spill read-back: stream a SpillFile like a cold scan.

Every consumer of spilled state used to call
:meth:`~repro.storage.buffer.SpillFile.read_all`, paying one
synchronous ``io_page`` per non-resident page before doing any work
with it. But a spill run is exactly the workload the sequential-disk
prefetch model of :mod:`repro.storage.shared_scan` was built for: the
pages are read front to back, once, and the CPU work per page (re-
hashing a partition, merging sorted runs, absorbing accumulator
states) is substantial — so read-ahead can drain the next pages'
I/O against this page's compute, just as the elevator cursors do for
table scans.

:class:`SpillCursor` is that reader. It walks one spill file's pages
in order through the owning :class:`~repro.storage.buffer.BufferPool`,
carrying a private :class:`~repro.storage.shared_scan.PrefetchFIFO`
(one spill file = one sequential stream on the simulated disk). Each
:meth:`next_page` call:

* drains the FIFO by the caller's ``cpu_credit`` — the CPU cost of
  the work done since the previous call (the overlap);
* accesses the page in the pool, classifying it as a synchronous miss
  (full ``io_page`` stall), an unfinished prefetch (stall for the
  remainder), or a hit (free);
* issues reads for the next ``prefetch_depth`` pages behind it.

The caller charges the returned stall as the ``io`` component of its
``Compute``, exactly like the elevator scan. With ``prefetch_depth=0``
the cursor degenerates to ``read_all``'s accounting: same pool
accesses in the same order, same miss count, the whole ``io_page``
bill paid as stall.

All stall/overlap traffic is also aggregated on the pool's
:class:`~repro.storage.buffer.BufferStats` so resource reports can
show how much cleanup I/O was hidden behind CPU work.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import StorageError
from repro.obs.trace import TID_SPILL
from repro.storage.buffer import BufferPool, SpillFile
from repro.storage.shared_scan import PrefetchFIFO

__all__ = ["SpillCursor"]


class SpillCursor:
    """Sequential reader over one spill file with async read-ahead.

    Parameters
    ----------
    spill_file:
        The run to read; pages stream in write order.
    io_page:
        Cost of one cold page read (the cost model's ``io_page``).
    prefetch_depth:
        Pages of read-ahead issued past the current page (0 disables
        prefetch — every miss is a synchronous stall).
    """

    __slots__ = (
        "file",
        "pool",
        "io_page",
        "prefetch_depth",
        "fifo",
        "pages_read",
        "misses",
        "prefetch_issued",
        "prefetch_wasted",
        "stall_cost",
        "overlapped_cost",
        "wasted_cost",
        "_next",
    )

    def __init__(
        self,
        spill_file: SpillFile,
        io_page: float,
        prefetch_depth: int = 0,
    ) -> None:
        if io_page < 0:
            raise StorageError(f"io_page must be >= 0, got {io_page}")
        if prefetch_depth < 0:
            raise StorageError(f"prefetch_depth must be >= 0, got {prefetch_depth}")
        self.file = spill_file
        self.pool: Optional[BufferPool] = spill_file.pool
        self.io_page = float(io_page)
        self.prefetch_depth = int(prefetch_depth)
        self.fifo = PrefetchFIFO()
        self.pages_read = 0
        self.misses = 0
        self.prefetch_issued = 0
        self.prefetch_wasted = 0
        self.stall_cost = 0.0
        self.overlapped_cost = 0.0
        self.wasted_cost = 0.0
        self._next = 0

    @property
    def exhausted(self) -> bool:
        """True once every written page has been returned."""
        return self._next >= self.file.page_count

    def pending_cost(self) -> float:
        """Prefetched read cost still in flight (issued, unconsumed)."""
        return self.fifo.pending_cost()

    def next_page(self, cpu_credit: float = 0.0):
        """Return ``(page, stall)`` for the next page of the run.

        ``cpu_credit`` is the CPU cost of the work the caller did since
        the previous call; it drains the disk FIFO (the overlap). The
        returned stall is the un-overlapped remainder of this page's
        read — the caller charges it as the ``io`` component of its
        ``Compute``.
        """
        if self.exhausted:
            raise StorageError(f"spill cursor over file {self.file.file_id} is exhausted")
        if cpu_credit < 0:
            raise StorageError(f"cpu_credit must be >= 0, got {cpu_credit}")
        index = self._next
        self._next += 1
        self.pages_read += 1

        overlapped = self.fifo.drain(cpu_credit)
        self.overlapped_cost += overlapped

        stall = 0.0
        if self.pool is None:
            # No pool: every page is a cold synchronous read.
            stall = self.io_page
            self.misses += 1
        else:
            self.pool.stats.spill_pages_read += 1
            resident = self.pool.access(self.file.key_of(index))
            stall, kind, dropped = self.fifo.settle(index, resident, self.io_page)
            if kind in ("cold", "wasted"):
                self.misses += 1
            if kind == "wasted":
                self.prefetch_wasted += 1
                self.wasted_cost += dropped
            tracer = self.pool.tracer
            if tracer is not None and kind in ("ready", "wasted"):
                tracer.instant(
                    "prefetch_waste" if kind == "wasted" else "prefetch_arrive",
                    "spill",
                    tid=TID_SPILL,
                    file=self.file.file_id,
                    page=index,
                )
        self.stall_cost += stall

        self._issue_prefetch(index)
        if self.pool is not None:
            self.pool.stats.spill_read_stall += stall
            self.pool.stats.spill_read_overlapped += overlapped
        return self.file.page_at(index), stall

    def _issue_prefetch(self, index: int) -> None:
        if not self.prefetch_depth or self.io_page <= 0 or self.pool is None:
            return
        limit = min(index + self.prefetch_depth, self.file.page_count - 1)
        for target in range(index + 1, limit + 1):
            key = self.file.key_of(target)
            if target in self.fifo or key in self.pool:
                continue
            # Issue the read: the frame is admitted now, its cost sits
            # in the disk FIFO until CPU credit (or a stall) pays it.
            self.pool.access(key)
            self.fifo.issue(target, self.io_page)
            self.misses += 1
            self.prefetch_issued += 1
            self.pool.stats.spill_prefetch_issued += 1
            if self.pool.tracer is not None:
                self.pool.tracer.instant(
                    "prefetch_issue", "spill", tid=TID_SPILL, file=self.file.file_id, page=target
                )
