"""Relational schemas for the in-memory storage layer.

A :class:`Schema` is an ordered list of typed :class:`Column`
definitions. The storage layer is deliberately simple — enough to host
a memory-resident TPC-H database and feed the staged engine — but it
validates types on ingest so that query bugs surface as schema errors
rather than silent wrong answers.

Supported types: ``INT``, ``FLOAT``, ``STR`` and ``DATE``. Dates are
stored as proleptic-Gregorian ordinals (``datetime.date.toordinal``)
so predicates are integer comparisons, mirroring how a real engine
stores DATE columns as integers.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable, Sequence

from repro.errors import SchemaError

__all__ = ["DataType", "Column", "Schema", "date_to_ordinal", "ordinal_to_date"]


class DataType(Enum):
    """Column data types, with ingestion-time validation rules."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    DATE = "date"

    def validate(self, value: Any, column: str) -> Any:
        """Check/coerce one value; returns the stored representation.

        ``None`` is SQL NULL and is valid for every type — outer joins
        produce NULL-padded rows and aggregates skip NULL inputs, so
        storage must be able to hold (and round-trip) them.
        """
        if value is None:
            return None
        if self is DataType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"column {column!r} expects INT, got {value!r}")
            return value
        if self is DataType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"column {column!r} expects FLOAT, got {value!r}")
            return float(value)
        if self is DataType.STR:
            if not isinstance(value, str):
                raise SchemaError(f"column {column!r} expects STR, got {value!r}")
            return value
        if self is DataType.DATE:
            if isinstance(value, _dt.date):
                return value.toordinal()
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"column {column!r} expects DATE (date or ordinal int), "
                    f"got {value!r}"
                )
            return value
        raise SchemaError(f"unknown data type {self!r}")  # pragma: no cover


def date_to_ordinal(year: int, month: int, day: int) -> int:
    """Convenience: a calendar date as its stored ordinal."""
    return _dt.date(year, month, day).toordinal()


def ordinal_to_date(ordinal: int) -> _dt.date:
    return _dt.date.fromordinal(ordinal)


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    dtype: DataType

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


class Schema:
    """An ordered, named collection of columns."""

    def __init__(self, columns: Iterable[Column | tuple[str, DataType]]) -> None:
        resolved: list[Column] = []
        for c in columns:
            if isinstance(c, Column):
                resolved.append(c)
            else:
                name, dtype = c
                resolved.append(Column(name, dtype))
        if not resolved:
            raise SchemaError("schema must have at least one column")
        names = [c.name for c in resolved]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self.columns: tuple[Column, ...] = tuple(resolved)
        self._index = {c.name: i for i, c in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.dtype.value}" for c in self.columns)
        return f"Schema({cols})"

    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def index_of(self, name: str) -> int:
        """Ordinal position of a column; raises SchemaError if absent."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {self.names()}"
            ) from None

    def dtype_of(self, name: str) -> DataType:
        return self.columns[self.index_of(name)].dtype

    def validate_row(self, row: Sequence[Any]) -> tuple[Any, ...]:
        """Validate/coerce a full row to its stored representation."""
        if len(row) != len(self.columns):
            raise SchemaError(
                f"row has {len(row)} values, schema expects {len(self.columns)}"
            )
        return tuple(
            col.dtype.validate(value, col.name)
            for col, value in zip(self.columns, row)
        )

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema with the given columns, in the given order."""
        return Schema([self.columns[self.index_of(n)] for n in names])
