"""Tuple pages — the unit of data flow through the engine.

Cordoba departs from tuple-at-a-time iteration: "the intermediate
results between operators are packed into pages (of typical size of
4K)", improving locality and cutting producer/consumer synchronization
(Section 3.2). A :class:`Page` is an immutable batch of tuples; scans
emit pages, operators consume and produce pages, and the simulator
schedules one page's worth of work at a time.

``DEFAULT_PAGE_ROWS`` plays the role of the 4K byte budget: with the
narrow projected tuples the engine passes around, ~64 tuples per page
is the same order of batch the paper used.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from repro.errors import StorageError

__all__ = ["Page", "paginate", "DEFAULT_PAGE_ROWS"]

DEFAULT_PAGE_ROWS = 64


class Page:
    """An immutable batch of tuples flowing between stages."""

    __slots__ = ("rows",)

    def __init__(self, rows: Sequence[tuple[Any, ...]]) -> None:
        self.rows: tuple[tuple[Any, ...], ...] = tuple(rows)
        if not self.rows:
            raise StorageError("pages must contain at least one tuple")

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"Page({len(self.rows)} rows)"


def paginate(
    rows: Iterable[tuple[Any, ...]], page_rows: int = DEFAULT_PAGE_ROWS
) -> Iterator[Page]:
    """Pack a tuple stream into pages of at most ``page_rows`` tuples."""
    if page_rows < 1:
        raise StorageError(f"page_rows must be >= 1, got {page_rows}")
    batch: list[tuple[Any, ...]] = []
    for row in rows:
        batch.append(row)
        if len(batch) == page_rows:
            yield Page(batch)
            batch = []
    if batch:
        yield Page(batch)
