"""A named collection of tables — the in-memory database."""

from __future__ import annotations

from typing import Iterator

from repro.errors import StorageError
from repro.storage.schema import Schema
from repro.storage.table import Table

__all__ = ["Catalog"]


class Catalog:
    """The database the engine queries: a dict of tables with checks."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def create(self, name: str, schema: Schema) -> Table:
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def add(self, table: Table) -> Table:
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(
                f"unknown table {name!r}; catalog has {sorted(self._tables)}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def total_rows(self) -> int:
        return sum(len(t) for t in self._tables.values())
