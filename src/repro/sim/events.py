"""Request vocabulary for simulated tasks.

A simulated task is a Python generator that *yields* requests to the
scheduler and receives results via ``send``. The vocabulary mirrors
what a staged database thread does:

* :class:`Compute` — burn CPU for a given amount of work (the only
  request that advances simulated time while holding a processor),
* :class:`Put` / :class:`Get` — exchange items over bounded queues
  (blocking when full/empty — this is the finite buffering that lets
  slow consumers throttle producers),
* :class:`Close` — end-of-stream a queue,
* :class:`Sleep` — wait without holding a processor (think times).

``CLOSED`` is the sentinel a :class:`Get` receives once its queue is
closed and drained.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.queues import SimQueue

__all__ = ["Compute", "Put", "Get", "Close", "Sleep", "CLOSED", "Request"]

# The request classes are deliberately plain ``__slots__`` classes
# rather than dataclasses: every simulated event allocates one, so
# construction sits on the hot path of every benchmark. A hand-written
# ``__init__`` with inline validation is ~3x cheaper than the frozen
# dataclass + ``__post_init__`` it replaces, with identical semantics.


class _Closed:
    """Singleton end-of-stream marker returned by Get on closed queues."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<CLOSED>"


CLOSED = _Closed()


class Compute:
    """Consume ``cost`` units of work on the holding processor.

    ``io`` tags the portion of ``cost`` that is I/O stall rather than
    CPU work (a buffer-pool miss the task synchronously waits out, or
    the un-overlapped remainder of a prefetched read). It changes
    nothing about scheduling — the processor is held either way, as a
    thread blocked on a synchronous read holds its context — but the
    simulator accounts it separately on the task (``Task.io_time``),
    so stage reports can show how much of a stage's busy time was
    spent waiting for storage versus computing.
    """

    __slots__ = ("cost", "io")

    def __init__(self, cost: float, io: float = 0.0) -> None:
        if not (cost >= 0):  # also rejects NaN
            raise SimulationError(f"Compute cost must be >= 0, got {cost!r}")
        if not (0 <= io <= cost):
            raise SimulationError(
                f"Compute io must be within [0, cost], got io={io!r} "
                f"with cost={cost!r}"
            )
        self.cost = cost
        self.io = io

    def __repr__(self) -> str:
        return f"Compute(cost={self.cost!r}, io={self.io!r})"


class Put:
    """Enqueue ``item`` on ``queue``; blocks while the queue is full."""

    __slots__ = ("queue", "item")

    def __init__(self, queue: "SimQueue", item: Any) -> None:
        self.queue = queue
        self.item = item

    def __repr__(self) -> str:
        return f"Put(queue={self.queue!r}, item={self.item!r})"


class Get:
    """Dequeue one item from ``queue``; blocks while empty. Receives
    ``CLOSED`` once the queue is closed and fully drained."""

    __slots__ = ("queue",)

    def __init__(self, queue: "SimQueue") -> None:
        self.queue = queue

    def __repr__(self) -> str:
        return f"Get(queue={self.queue!r})"


class Close:
    """Mark ``queue`` closed: waiting and future getters see CLOSED
    after the remaining items drain."""

    __slots__ = ("queue",)

    def __init__(self, queue: "SimQueue") -> None:
        self.queue = queue

    def __repr__(self) -> str:
        return f"Close(queue={self.queue!r})"


class Sleep:
    """Suspend the task for ``duration`` without occupying a processor.

    ``throttle`` tags the sleep as drift-throttle pacing: the task is
    a scan head paused by the share manager's drift bound, waiting
    off-processor for its convoy to close up. The simulator accounts
    tagged sleeps on ``Task.throttle_time`` so stage reports can show
    a ``drift_throttle`` stall category distinct from both CPU work
    and synchronous I/O stall.
    """

    __slots__ = ("duration", "throttle")

    def __init__(self, duration: float, throttle: bool = False) -> None:
        if not (duration >= 0):
            raise SimulationError(
                f"Sleep duration must be >= 0, got {duration!r}"
            )
        self.duration = duration
        self.throttle = throttle

    def __repr__(self) -> str:
        return f"Sleep(duration={self.duration!r}, throttle={self.throttle!r})"


Request = (Compute, Put, Get, Close, Sleep)
