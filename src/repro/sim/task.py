"""Task bookkeeping for the simulator.

A :class:`Task` wraps a user generator together with its scheduling
state and accounting (busy time, completion time). States:

``READY``   in the run queue waiting for a processor,
``RUNNING`` holding a processor (inside a Compute),
``BLOCKED`` parked on a queue or sleeping,
``DONE``    generator exhausted,
``FAILED``  generator raised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

__all__ = ["Task", "READY", "RUNNING", "BLOCKED", "DONE", "FAILED"]

READY = "ready"
RUNNING = "running"
BLOCKED = "blocked"
DONE = "done"
FAILED = "failed"


@dataclass(slots=True)
class Task:
    """One simulated thread of execution.

    Attributes
    ----------
    name:
        Diagnostic label, e.g. ``"q6#3/scan"``.
    gen:
        The generator yielding :mod:`repro.sim.events` requests.
    group:
        Free-form tag used to aggregate stats (e.g. the query id).
    on_done:
        Callback invoked at the simulated completion instant; receives
        the task. Closed-system clients use it to resubmit queries.
    """

    name: str
    gen: Generator[Any, Any, Any]
    group: str = ""
    on_done: Optional[Callable[["Task"], None]] = None

    state: str = field(default=READY, init=False)
    resume_value: Any = field(default=None, init=False)
    busy_time: float = field(default=0.0, init=False)
    # Portion of busy_time tagged as I/O stall by Compute(io=...).
    io_time: float = field(default=0.0, init=False)
    # Off-processor time tagged as drift-throttle pacing by
    # Sleep(throttle=True) — a scan head paused for its convoy.
    throttle_time: float = field(default=0.0, init=False)
    # Off-processor time spent parked on a full/empty bounded queue
    # (Put/Get blocking) — the serialization component of the paper's
    # time decomposition. Accrued at wake time via ``blocked_since``.
    queue_block_time: float = field(default=0.0, init=False)
    blocked_since: Optional[float] = field(default=None, init=False)
    spawned_at: float = field(default=0.0, init=False)
    finished_at: Optional[float] = field(default=None, init=False)
    error: Optional[BaseException] = field(default=None, init=False)
    # Guard against zero-time livelock (yield loops with no Compute).
    zero_time_steps: int = field(default=0, init=False)

    def __repr__(self) -> str:
        return f"Task({self.name!r}, {self.state})"

    @property
    def alive(self) -> bool:
        return self.state not in (DONE, FAILED)

    def response_time(self) -> float:
        """Wall-clock (simulated) time from spawn to completion."""
        if self.finished_at is None:
            raise ValueError(f"task {self.name!r} has not finished")
        return self.finished_at - self.spawned_at
