"""Processor contexts and the contention-driven speed model.

The simulated machine is ``n`` identical hardware contexts (the
UltraSparc T1 of the paper exposes 32). A context executes one task's
:class:`~repro.sim.events.Compute` at a time; round-robin fairness
comes from the scheduler re-queueing tasks after every compute chunk.

Contention for shared hardware (Section 4.1.4) is modeled as a speed
multiplier that depends on how many contexts are busy: with the
power-law model, ``b`` busy contexts deliver ``b ** kappa`` contexts'
worth of throughput, i.e. each runs at speed ``b ** (kappa - 1)``.
The speed is sampled when a compute chunk is issued — an approximation
that is exact for ``kappa = 1`` (the paper's validated setting) and
first-order correct otherwise because chunks are small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.contention import ContentionLike, resolve
from repro.sim.task import Task

__all__ = ["Processor", "SpeedModel"]


class SpeedModel:
    """Maps the busy-context count to a per-context speed factor."""

    def __init__(self, contention: ContentionLike = None) -> None:
        self._model = resolve(contention)

    def speed(self, busy: int) -> float:
        """Per-context speed when ``busy`` contexts are executing.

        ``busy`` includes the context asking, so it is always >= 1.
        """
        if busy <= 1:
            return 1.0
        return self._model.effective(busy) / busy


@dataclass(slots=True)
class Processor:
    """One hardware context."""

    index: int
    busy_until: float = 0.0
    current: Optional[Task] = None
    busy_time: float = field(default=0.0, init=False)

    @property
    def idle(self) -> bool:
        return self.current is None

    def __repr__(self) -> str:
        who = self.current.name if self.current else "idle"
        return f"Processor({self.index}, {who})"
