"""Discrete-event chip-multiprocessor simulator.

This package is the hardware substrate of the reproduction: it stands
in for the paper's UltraSparc T1 server (8 cores x 4 contexts,
round-robin fairness). See DESIGN.md for why this substitution
preserves the behaviours the paper's experiments measure.

Public surface:

* :class:`~repro.sim.simulator.Simulator` — the event loop and
  scheduler,
* :mod:`repro.sim.events` — the task request vocabulary (``Compute``,
  ``Put``, ``Get``, ``Close``, ``Sleep``, ``CLOSED``),
* :class:`~repro.sim.queues.SimQueue` — bounded inter-stage buffers,
* :class:`~repro.sim.stats.ThroughputMeter` — warmup/measure windows.
"""

from repro.sim.events import CLOSED, Close, Compute, Get, Put, Sleep
from repro.sim.queues import SimQueue
from repro.sim.simulator import Simulator
from repro.sim.stats import ThroughputMeter, WindowStats
from repro.sim.task import Task

__all__ = [
    "CLOSED",
    "Close",
    "Compute",
    "Get",
    "Put",
    "Sleep",
    "SimQueue",
    "Simulator",
    "ThroughputMeter",
    "WindowStats",
    "Task",
]
