"""The discrete-event chip-multiprocessor simulator.

This module is the substrate that replaces the paper's UltraSparc T1
testbed. It executes cooperative *tasks* (generators yielding the
:mod:`repro.sim.events` vocabulary) on ``n`` processor contexts:

* tasks run until they issue a :class:`~repro.sim.events.Compute`,
  which occupies a context for ``cost / speed`` simulated time;
* after each compute chunk the task rejoins the tail of the run queue,
  giving round-robin fairness across all runnable tasks — the T1's
  scheduling policy ("each core executes instructions from available
  threads in a round-robin fashion");
* :class:`~repro.sim.events.Put`/:class:`~repro.sim.events.Get` on
  bounded queues block when full/empty, providing the finite buffering
  that throttles producers behind slow consumers;
* contention for shared hardware scales per-context speed via
  :class:`~repro.sim.processor.SpeedModel` (Section 4.1.4).

Determinism: the event heap breaks time ties by insertion order and
all queues are FIFO, so a given task program yields identical
timelines on every run.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import count
from typing import Any, Callable, Generator, Optional

from repro.core.contention import ContentionLike
from repro.errors import DeadlockError, SimulationError
from repro.obs.trace import TID_QUEUES, TID_TASKS
from repro.sim.events import CLOSED, Close, Compute, Get, Put, Sleep
from repro.sim.processor import Processor, SpeedModel
from repro.sim.queues import SimQueue
from repro.sim.task import BLOCKED, DONE, FAILED, READY, RUNNING, Task

__all__ = ["Simulator"]


class Simulator:
    """Event-driven multiprocessor executing cooperative tasks.

    Parameters
    ----------
    processors:
        Number of hardware contexts (the paper sweeps 1, 2, 8, 32).
    contention:
        Optional contention spec (kappa float, callable, or model); see
        :mod:`repro.core.contention`.
    max_zero_time_steps:
        Livelock guard: a task performing this many consecutive
        requests without any positive-cost Compute is assumed stuck in
        a zero-time loop and the simulation aborts.
    """

    def __init__(
        self,
        processors: int,
        contention: ContentionLike = None,
        max_zero_time_steps: int = 1_000_000,
    ) -> None:
        if processors < 1:
            raise SimulationError(f"processors must be >= 1, got {processors}")
        self.n_processors = int(processors)
        self.now = 0.0
        self._speed = SpeedModel(contention)
        # Per-busy-count speed memo: ``SpeedModel.speed`` is a pure
        # function of the busy count, and the hot loop asks for the
        # same handful of values millions of times.
        self._speed_memo: dict[int, float] = {}
        self._max_zero_time_steps = max_zero_time_steps
        # Heap entries are ``(when, seq, fn, args)`` — callable plus
        # argument tuple rather than a bound closure, so scheduling a
        # compute completion allocates no lambda on the hot path.
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = count()
        self._processors = [Processor(i) for i in range(self.n_processors)]
        self._idle: deque[Processor] = deque(self._processors)
        self._run_queue: deque[Task] = deque()
        self.tasks: list[Task] = []
        self.queues: list[SimQueue] = []
        self.completions: list[Task] = []
        self._alive = 0
        # Optional flight recorder (see repro.obs.trace). ``None`` is
        # the hot default: every emit site guards with one identity
        # check, so a detached tracer costs nothing and changes no
        # scheduling decision — traced and untraced runs are
        # timeline-identical.
        self.tracer = None
        # Optional wall-clock profiler (see repro.obs.perf). Same
        # contract as the tracer: ``None`` is the hot default, every
        # hook site is one pointer test, and the profiler observes the
        # *host* clock only — it never feeds back into scheduling.
        self.perf = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def queue(self, name: str, capacity: int = 4) -> SimQueue:
        """Create a bounded queue registered with this simulator."""
        q = SimQueue(name, capacity)
        self.queues.append(q)
        return q

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the current simulated time, after the event
        cascade currently executing finishes.

        Used by schedulers layered on the simulator (e.g. the sharing
        coordinator) to coalesce work triggered by several callbacks
        that fire at the same instant.
        """
        self._schedule(self.now, fn)

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str,
        group: str = "",
        on_done: Optional[Callable[[Task], None]] = None,
    ) -> Task:
        """Register a new task; it becomes runnable immediately."""
        task = Task(name=name, gen=gen, group=group, on_done=on_done)
        task.spawned_at = self.now
        self.tasks.append(task)
        self._alive += 1
        if self.tracer is not None:
            self.tracer.instant("spawn", "task", tid=TID_TASKS, task=name)
        self._make_ready(task, None)
        return task

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation.

        Runs until the event heap drains (all tasks done or blocked) or
        until simulated time exceeds ``until``, whichever comes first.
        Raises :class:`DeadlockError` if tasks remain blocked with no
        pending events.
        """
        perf = self.perf
        started = perf.clock() if perf is not None else 0.0
        heap = self._heap
        heappop = heapq.heappop
        run_queue = self._run_queue
        idle = self._idle
        advance = self._advance
        try:
            while True:
                # Inline dispatch: pair runnable tasks with idle
                # contexts (both FIFO) until one side runs dry.
                while run_queue and idle:
                    advance(idle.popleft(), run_queue.popleft())
                if not heap:
                    break
                entry = heappop(heap)
                t = entry[0]
                if until is not None and t > until:
                    heapq.heappush(heap, entry)
                    self.now = until
                    return
                self.now = t
                entry[2](*entry[3])
        finally:
            if perf is not None:
                perf.record_run(perf.clock() - started)
        if self._alive > 0 and not self._run_queue:
            blocked = [t.name for t in self.tasks if t.state == BLOCKED]
            raise DeadlockError(
                f"simulation stalled at t={self.now:.6g} with {self._alive} live "
                f"task(s); blocked: {blocked[:20]}"
            )

    # -- accounting -------------------------------------------------------

    @property
    def total_busy_time(self) -> float:
        return sum(p.busy_time for p in self._processors)

    def utilization(self) -> float:
        """Fraction of processor-time spent computing since t=0."""
        if self.now == 0:
            return 0.0
        return self.total_busy_time / (self.n_processors * self.now)

    def completed_in_window(self, start: float, end: Optional[float] = None) -> int:
        end = self.now if end is None else end
        return sum(
            1 for t in self.completions if start <= (t.finished_at or -1) <= end
        )

    # ------------------------------------------------------------------
    # Scheduler internals
    # ------------------------------------------------------------------

    def _schedule(
        self, when: float, fn: Callable[..., None], args: tuple = ()
    ) -> None:
        heapq.heappush(self._heap, (when, next(self._seq), fn, args))

    def _make_ready(self, task: Task, value: Any) -> None:
        if task.blocked_since is not None:
            task.queue_block_time += self.now - task.blocked_since
            task.blocked_since = None
            if self.tracer is not None:
                self.tracer.instant(
                    "unblock", "queue", tid=TID_QUEUES, task=task.name
                )
        task.resume_value = value
        task.state = READY
        self._run_queue.append(task)

    def _release(self, proc: Processor) -> None:
        proc.current = None
        self._idle.append(proc)

    def _finish(self, task: Task) -> None:
        task.state = DONE
        task.finished_at = self.now
        self._alive -= 1
        if self.tracer is not None:
            self.tracer.instant("finish", "task", tid=TID_TASKS, task=task.name)
        self.completions.append(task)
        if task.on_done is not None:
            task.on_done(task)

    def _fail(self, task: Task, exc: BaseException) -> None:
        task.state = FAILED
        task.error = exc
        task.finished_at = self.now
        self._alive -= 1

    def _check_livelock(self, task: Task) -> None:
        task.zero_time_steps += 1
        if task.zero_time_steps > self._max_zero_time_steps:
            raise SimulationError(
                f"task {task.name!r} performed {task.zero_time_steps} requests "
                "without consuming CPU; suspected zero-time livelock"
            )

    def _compute_done(self, proc: Processor, task: Task) -> None:
        # A compute completion: the task was RUNNING (never parked on a
        # queue), so the _make_ready blocked-time bookkeeping is moot.
        proc.current = None
        self._idle.append(proc)
        task.resume_value = None
        task.state = READY
        self._run_queue.append(task)

    def _advance(self, proc: Processor, task: Task) -> None:
        """Drive ``task`` on ``proc`` until it computes, blocks or ends.

        All non-Compute requests take zero simulated time and are
        processed inline; the loop exits when the task occupies the
        processor (Compute), parks on a queue, sleeps, or finishes.

        This is the simulator's innermost loop — every simulated event
        passes through it — so it trades a little shape for speed:
        request dispatch is on exact class identity (the isinstance
        fallback covers subclasses), the livelock counter is inlined,
        and per-busy-count speeds are memoized.
        """
        proc.current = task
        task.state = RUNNING
        value = task.resume_value
        task.resume_value = None
        tracer = self.tracer
        perf = self.perf
        send = task.gen.send
        now = self.now  # constant within this call: requests are zero-time
        idle = self._idle
        max_zero = self._max_zero_time_steps
        while True:
            try:
                if perf is not None:
                    # Time the generator slice (resume to next yield /
                    # return) with the host clock; the finally clause
                    # attributes the terminal StopIteration slice too.
                    slice_start = perf.clock()
                    try:
                        request = send(value)
                    finally:
                        perf.record_slice(
                            task.name, perf.clock() - slice_start
                        )
                else:
                    request = send(value)
            except StopIteration:
                self._release(proc)
                self._finish(task)
                return
            except Exception as exc:
                self._release(proc)
                self._fail(task, exc)
                raise SimulationError(
                    f"task {task.name!r} raised {exc!r} at t={now:.6g}"
                ) from exc
            value = None

            cls = request.__class__
            if cls is Compute:
                cost = request.cost
                if cost == 0:
                    task.zero_time_steps += 1
                    if task.zero_time_steps > max_zero:
                        raise SimulationError(
                            f"task {task.name!r} performed "
                            f"{task.zero_time_steps} requests without "
                            "consuming CPU; suspected zero-time livelock"
                        )
                    continue
                busy = self.n_processors - len(idle)
                memo = self._speed_memo
                speed = memo.get(busy)
                if speed is None:
                    speed = memo[busy] = self._speed.speed(busy)
                duration = cost / speed
                proc.busy_time += duration
                task.busy_time += duration
                task.io_time += request.io / speed
                task.zero_time_steps = 0
                if tracer is not None:
                    # Emitted at issue time with the exact duration the
                    # processor ledger accrued, in accrual order — the
                    # per-lane sums reproduce busy_time bit for bit.
                    tracer.complete(
                        task.name,
                        "compute",
                        start=now,
                        dur=duration,
                        tid=proc.index,
                        cost=cost,
                        io=request.io,
                    )
                heapq.heappush(
                    self._heap,
                    (now + duration, next(self._seq),
                     self._compute_done, (proc, task)),
                )
                return

            if cls is Get:
                q = request.queue
                items = q.items
                if items:
                    value = items.popleft()
                    q.total_dequeued += 1
                    if q.waiting_putters:
                        self._refill_from_putters(q)
                    task.zero_time_steps += 1
                    if task.zero_time_steps > max_zero:
                        raise SimulationError(
                            f"task {task.name!r} performed "
                            f"{task.zero_time_steps} requests without "
                            "consuming CPU; suspected zero-time livelock"
                        )
                    continue
                if q.closed:
                    value = CLOSED
                    task.zero_time_steps += 1
                    if task.zero_time_steps > max_zero:
                        raise SimulationError(
                            f"task {task.name!r} performed "
                            f"{task.zero_time_steps} requests without "
                            "consuming CPU; suspected zero-time livelock"
                        )
                    continue
                q.waiting_getters.append(task)
                task.state = BLOCKED
                task.blocked_since = now
                if tracer is not None:
                    tracer.instant(
                        "block", "queue", tid=TID_QUEUES,
                        task=task.name, queue=q.name, op="get",
                    )
                self._release(proc)
                return

            if cls is Put:
                q = request.queue
                if q.closed:
                    q.check_can_put()
                if len(q.items) < q.capacity:
                    self._enqueue(q, request.item)
                    task.zero_time_steps += 1
                    if task.zero_time_steps > max_zero:
                        raise SimulationError(
                            f"task {task.name!r} performed "
                            f"{task.zero_time_steps} requests without "
                            "consuming CPU; suspected zero-time livelock"
                        )
                    continue
                q.waiting_putters.append((task, request.item))
                task.state = BLOCKED
                task.blocked_since = now
                if tracer is not None:
                    tracer.instant(
                        "block", "queue", tid=TID_QUEUES,
                        task=task.name, queue=q.name, op="put",
                    )
                self._release(proc)
                return

            if cls is Close:
                q = request.queue
                q.closed = True
                if q.waiting_putters:
                    raise SimulationError(
                        f"queue {q.name!r} closed while producers blocked on it"
                    )
                while q.waiting_getters:
                    getter = q.waiting_getters.popleft()
                    self._make_ready(getter, CLOSED)
                task.zero_time_steps += 1
                if task.zero_time_steps > max_zero:
                    raise SimulationError(
                        f"task {task.name!r} performed "
                        f"{task.zero_time_steps} requests without "
                        "consuming CPU; suspected zero-time livelock"
                    )
                continue

            if cls is Sleep:
                if request.throttle:
                    task.throttle_time += request.duration
                if tracer is not None:
                    tracer.instant(
                        "sleep", "sched", tid=TID_TASKS,
                        task=task.name, duration=request.duration,
                        throttle=request.throttle,
                    )
                task.state = BLOCKED
                self._schedule(
                    now + request.duration,
                    self._make_ready, (task, None),
                )
                self._release(proc)
                return

            if isinstance(request, (Compute, Get, Put, Close, Sleep)):
                # A subclass of a request type: re-enter with the base
                # class's handling by rebuilding a canonical request.
                raise SimulationError(
                    f"task {task.name!r} yielded a request subclass "
                    f"{cls.__name__}; yield the base event types directly"
                )
            raise SimulationError(
                f"task {task.name!r} yielded unknown request {request!r}"
            )

    # -- queue plumbing ----------------------------------------------------

    def _enqueue(self, q: SimQueue, item: Any) -> None:
        """Append an item, then hand it straight to a waiting getter."""
        q.items.append(item)
        q.total_enqueued += 1
        self._serve_getters(q)

    def _serve_getters(self, q: SimQueue) -> None:
        while q.waiting_getters and q.items:
            getter = q.waiting_getters.popleft()
            value = q.items.popleft()
            q.total_dequeued += 1
            self._make_ready(getter, value)
        self._refill_from_putters(q)

    def _refill_from_putters(self, q: SimQueue) -> None:
        while q.waiting_putters and not q.full:
            putter, item = q.waiting_putters.popleft()
            q.items.append(item)
            q.total_enqueued += 1
            self._make_ready(putter, None)
        # Newly buffered items may serve still-waiting getters.
        while q.waiting_getters and q.items:
            getter = q.waiting_getters.popleft()
            value = q.items.popleft()
            q.total_dequeued += 1
            self._make_ready(getter, value)
