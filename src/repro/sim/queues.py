"""Bounded inter-stage queues for the simulator.

The model assumes finite buffering between pipeline operators so that
"slow consumers throttle producers" (Section 4); :class:`SimQueue` is
that buffer. Tasks never touch these methods directly — they yield
:class:`~repro.sim.events.Put`/:class:`~repro.sim.events.Get` requests
and the scheduler calls into the queue, parking tasks on the waiter
lists when an operation cannot complete.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.task import Task

__all__ = ["SimQueue"]


class SimQueue:
    """A bounded FIFO connecting simulated tasks.

    Parameters
    ----------
    name:
        Label used in diagnostics (e.g. ``"scan#3->agg#3"``).
    capacity:
        Maximum buffered items; must be >= 1. Small capacities couple
        producer and consumer rates tightly (the paper's pipelines);
        large capacities decouple them.
    """

    def __init__(self, name: str, capacity: int = 4) -> None:
        if capacity < 1:
            raise SimulationError(
                f"queue {name!r}: capacity must be >= 1, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self.closed = False
        # Tasks parked on this queue, with the scheduler's bookkeeping.
        self.waiting_getters: deque["Task"] = deque()
        self.waiting_putters: deque[tuple["Task", Any]] = deque()
        # Cumulative counters for tests and stats.
        self.total_enqueued = 0
        self.total_dequeued = 0

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"SimQueue({self.name!r}, {len(self.items)}/{self.capacity}, {state})"
        )

    @property
    def full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def drained(self) -> bool:
        """Closed with nothing left to deliver."""
        return self.closed and not self.items

    def check_can_put(self) -> None:
        if self.closed:
            raise SimulationError(f"put on closed queue {self.name!r}")
