"""Measurement helpers over a running simulation.

Closed-system throughput experiments follow the standard
warmup-then-measure protocol: run the system until it reaches steady
state, snapshot counters, run a measurement window, and report
completions per unit time. :class:`ThroughputMeter` packages that
protocol so every experiment measures the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.sim.simulator import Simulator

__all__ = ["ThroughputMeter", "WindowStats"]


@dataclass(frozen=True)
class WindowStats:
    """Measurements from one steady-state window.

    ``throughput`` is completions per simulated time unit;
    ``utilization`` the fraction of processor-time spent computing
    during the window; ``completions`` the raw count.
    """

    start: float
    end: float
    completions: int
    throughput: float
    utilization: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class ThroughputMeter:
    """Warmup/measure protocol on a :class:`Simulator`.

    Example::

        meter = ThroughputMeter(sim)
        meter.warmup(1_000.0)
        stats = meter.measure(10_000.0)
        print(stats.throughput)
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._window_start: float | None = None
        self._completions_at_start = 0
        self._busy_at_start = 0.0

    def warmup(self, duration: float) -> None:
        """Run the system for ``duration`` without recording."""
        if duration < 0:
            raise SimulationError(f"warmup duration must be >= 0, got {duration!r}")
        self.sim.run(until=self.sim.now + duration)

    def start_window(self) -> None:
        self._window_start = self.sim.now
        self._completions_at_start = len(self.sim.completions)
        self._busy_at_start = self.sim.total_busy_time

    def measure(self, duration: float) -> WindowStats:
        """Run a measurement window of ``duration`` and report stats."""
        if duration <= 0:
            raise SimulationError(f"window duration must be > 0, got {duration!r}")
        self.start_window()
        self.sim.run(until=self.sim.now + duration)
        return self.end_window()

    def end_window(self) -> WindowStats:
        if self._window_start is None:
            raise SimulationError("end_window() called without start_window()")
        start = self._window_start
        end = self.sim.now
        elapsed = end - start
        if elapsed <= 0:
            raise SimulationError(
                f"measurement window has zero duration (t={end:.6g})"
            )
        completions = len(self.sim.completions) - self._completions_at_start
        busy = self.sim.total_busy_time - self._busy_at_start
        self._window_start = None
        return WindowStats(
            start=start,
            end=end,
            completions=completions,
            throughput=completions / elapsed,
            utilization=busy / (self.sim.n_processors * elapsed),
        )
