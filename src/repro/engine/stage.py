"""Stage plumbing: page streams in, multiplexed page streams out.

Every engine operator runs as one simulator task: a generator yielding
:mod:`repro.sim.events` requests. Input is consumed with the idiom::

    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        ...

Output goes through :class:`OutputEmitter`, which buffers rows into
full pages and delivers each page to *every* consumer queue, charging
the cost model's per-consumer output costs. With one consumer this is
plain pipelining; with M consumers it is the pivot's multiplexing —
the serialization the paper identifies as the hidden cost of sharing.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Sequence

from repro.engine.costs import CostModel
from repro.errors import EngineError
from repro.sim.events import Close, Compute, Put
from repro.sim.queues import SimQueue
from repro.storage.page import Page

__all__ = ["OutputEmitter"]


class OutputEmitter:
    """Buffers rows and multiplexes full pages to all consumers.

    Driven from inside an operator generator::

        emitter = OutputEmitter(out_queues, page_rows, costs)
        ...
        yield from emitter.emit(rows)     # may flush full pages
        ...
        yield from emitter.close()        # flush remainder + Close

    Per page flushed, each consumer costs
    ``output_page + output_value * len(page) * width`` compute units
    before the Put — a pivot with M consumers spends M times the output
    work of an unshared operator, exactly the model's ``s * M`` term.
    ``width`` is the emitted tuple width in columns (copy cost scales
    with tuple bytes).

    ``op``/``perf`` are the wall-clock profiling hook (see
    :mod:`repro.obs.perf`): with a profiler attached, every page flush
    reports its row count against the operator id, giving the profiler
    a measured rows/s per operator. One pointer test per flush;
    ``perf=None`` (the default) costs nothing.
    """

    def __init__(
        self,
        out_queues: Sequence[SimQueue],
        page_rows: int,
        costs: CostModel,
        width: int = 1,
        op: str = "",
        perf=None,
    ) -> None:
        if not out_queues:
            raise EngineError("operator needs at least one output queue")
        if page_rows < 1:
            raise EngineError(f"page_rows must be >= 1, got {page_rows}")
        if width < 1:
            raise EngineError(f"width must be >= 1, got {width}")
        self.out_queues = list(out_queues)
        self.page_rows = page_rows
        self.costs = costs
        self.width = width
        self.op = op
        self.perf = perf
        self._buffer: list[tuple] = []
        self.pages_emitted = 0
        self.rows_emitted = 0

    @property
    def consumers(self) -> int:
        return len(self.out_queues)

    def emit(self, rows: Iterable[tuple]) -> Generator[Any, Any, None]:
        """Buffer rows, flushing every time a full page accumulates."""
        for row in rows:
            self._buffer.append(row)
            if len(self._buffer) >= self.page_rows:
                yield from self._flush()

    def close(self) -> Generator[Any, Any, None]:
        """Flush the partial page and close every consumer queue."""
        if self._buffer:
            yield from self._flush()
        for queue in self.out_queues:
            yield Close(queue)

    def _flush(self) -> Generator[Any, Any, None]:
        page = Page(self._buffer[: self.page_rows])
        del self._buffer[: len(page)]
        self.pages_emitted += 1
        self.rows_emitted += len(page)
        if self.perf is not None:
            self.perf.add_rows(self.op, len(page))
        for queue in self.out_queues:
            yield Compute(
                self.costs.page_output_cost(len(page), self.width, consumers=1)
            )
            yield Put(queue, page)
