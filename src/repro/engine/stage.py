"""Stage plumbing: batch streams in, multiplexed batch streams out.

Every engine operator runs as one simulator task: a generator yielding
:mod:`repro.sim.events` requests. Input is consumed with the idiom::

    while True:
        batch = yield Get(in_q)
        if batch is CLOSED:
            break
        ...

Output goes through :class:`BatchEmitter`, which accumulates rows into
full batches and delivers each batch to *every* consumer queue,
charging the cost model's per-consumer output costs. With one consumer
this is plain pipelining; with M consumers it is the pivot's
multiplexing — the serialization the paper identifies as the hidden
cost of sharing.

The emitter is representation-polymorphic: producers hand it column
lists (:meth:`~BatchEmitter.emit_columns` — the vectorized scan /
filter path), row tuples (:meth:`~BatchEmitter.emit_rows` — joins,
sorts, aggregates) or whole :class:`~repro.engine.packet.RowBatch`
objects, and it buffers in whichever representation arrives, so no
row<->column transpose happens unless a consumer actually asks for the
other view. A batch that is already exactly ``batch_rows`` long passes
straight through without copying — the common case for a saturated
scan.

"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.engine.costs import CostModel
from repro.engine.packet import RowBatch
from repro.errors import EngineError
from repro.sim.events import Close, Compute, Put
from repro.sim.queues import SimQueue

__all__ = ["BatchEmitter"]


class BatchEmitter:
    """Accumulates rows and multiplexes full batches to all consumers.

    Driven from inside an operator generator::

        emitter = BatchEmitter(out_queues, batch_rows, costs)
        ...
        yield from emitter.emit_columns(cols, n)   # may flush batches
        yield from emitter.emit_rows(rows)         # ditto, row tuples
        ...
        yield from emitter.close()                 # flush tail + Close

    Per batch flushed, each consumer costs
    ``output_page + output_value * len(batch) * width`` compute units
    before the Put — a pivot with M consumers spends M times the output
    work of an unshared operator, exactly the model's ``s * M`` term.
    ``width`` is the emitted tuple width in columns (copy cost scales
    with tuple bytes). Flush boundaries depend only on the cumulative
    row count, so any split of the same row stream into emit calls
    yields the identical event sequence — that equivalence is what lets
    the vectorized and row-at-a-time operator paths share one simulated
    timeline.

    ``op``/``perf`` are the wall-clock profiling hook (see
    :mod:`repro.obs.perf`): with a profiler attached, every batch flush
    reports its row count against the operator id, giving the profiler
    a measured rows/s per operator. One pointer test per flush;
    ``perf=None`` (the default) costs nothing.
    """

    def __init__(
        self,
        out_queues: Sequence[SimQueue],
        batch_rows: int,
        costs: CostModel,
        width: int = 1,
        op: str = "",
        perf=None,
    ) -> None:
        if not out_queues:
            raise EngineError("operator needs at least one output queue")
        if batch_rows < 1:
            raise EngineError(f"batch_rows must be >= 1, got {batch_rows}")
        if width < 1:
            raise EngineError(f"width must be >= 1, got {width}")
        self.out_queues = list(out_queues)
        self.batch_rows = batch_rows
        self.costs = costs
        self.width = width
        self.op = op
        self.perf = perf
        # Pending rows live in exactly one representation at a time;
        # mixed producers trigger a (rare) transpose on the boundary.
        self._rows: list[tuple] = []
        self._cols: list[list] | None = None
        self._count = 0
        self.pages_emitted = 0
        self.rows_emitted = 0
        # A full batch always costs the same, and Compute requests are
        # immutable — deliver one shared instance instead of allocating
        # per flush (the steady-state case for a saturated producer).
        self._full_compute = Compute(
            costs.page_output_cost(batch_rows, width, consumers=1)
        )

    @property
    def consumers(self) -> int:
        return len(self.out_queues)

    @property
    def page_rows(self) -> int:
        """Legacy alias for :attr:`batch_rows`."""
        return self.batch_rows

    # -- producing -------------------------------------------------------

    def emit_columns(self, columns: Sequence[Sequence[Any]], n: int) -> Generator:
        """Buffer one batch of column slices holding ``n`` rows."""
        if n == 0:
            return
        if self._count == 0 and n == self.batch_rows:
            yield from self._deliver(RowBatch.from_columns(columns, n))
            return
        cols = self._to_columns(len(columns))
        for buf, col in zip(cols, columns):
            buf.extend(col)
        self._count += n
        while self._count >= self.batch_rows:
            yield from self._flush_columns()

    def emit_rows(self, rows: Sequence[tuple]) -> Generator:
        """Buffer a sequence of row tuples."""
        n = len(rows)
        if n == 0:
            return
        if self._count == 0 and n == self.batch_rows:
            yield from self._deliver(RowBatch.from_rows(rows, self.width))
            return
        self._to_rows().extend(rows)
        self._count += n
        while self._count >= self.batch_rows:
            yield from self._flush_rows()

    def emit_batch(self, batch: RowBatch) -> Generator:
        """Buffer a whole batch, passing it through unsplit if aligned."""
        n = batch._n
        if n == 0:
            return
        if self._count == 0 and n == self.batch_rows:
            yield from self._deliver(batch)
            return
        yield from self.emit_rows(batch.rows)

    def close(self) -> Generator:
        """Flush the partial batch and close every consumer queue."""
        if self._count:
            if self._cols is not None:
                yield from self._flush_columns()
            else:
                yield from self._flush_rows()
        for queue in self.out_queues:
            yield Close(queue)

    # -- internals -------------------------------------------------------

    def _to_columns(self, width: int) -> list[list]:
        if self._cols is None:
            self._cols = [[] for _ in range(width)]
            if self._rows:
                for buf, col in zip(self._cols, zip(*self._rows)):
                    buf.extend(col)
                self._rows.clear()
        return self._cols

    def _to_rows(self) -> list[tuple]:
        if self._cols is not None:
            self._rows.extend(zip(*self._cols))
            self._cols = None
        return self._rows

    def _flush_columns(self) -> Generator:
        cols = self._cols
        take = min(self._count, self.batch_rows)
        batch = RowBatch.from_columns([col[:take] for col in cols], take)
        for col in cols:
            del col[:take]
        self._count -= take
        yield from self._deliver(batch)

    def _flush_rows(self) -> Generator:
        take = min(self._count, self.batch_rows)
        batch = RowBatch.from_rows(self._rows[:take], self.width)
        del self._rows[:take]
        self._count -= take
        yield from self._deliver(batch)

    def _deliver(self, batch: RowBatch) -> Generator:
        n = batch._n
        self.pages_emitted += 1
        self.rows_emitted += n
        if self.perf is not None:
            self.perf.add_rows(self.op, n)
        if n == self.batch_rows:
            compute = self._full_compute
        else:
            compute = Compute(
                self.costs.page_output_cost(n, self.width, consumers=1)
            )
        for queue in self.out_queues:
            yield compute
            yield Put(queue, batch)
