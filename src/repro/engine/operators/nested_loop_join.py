"""Block nested-loop join stage (Section 5.3.1).

The right (inner) input is buffered in full — the "block" — and the
left (outer) input streams against it (:attr:`port_order` makes the
driver drain the inner port first). The join predicate is an arbitrary
compiled expression over the concatenated row, so non-equi joins work.
Cost is charged per (outer, inner) pair examined, which is what makes
NLJ expensive and fully pipelined on its outer input.
"""

from __future__ import annotations

from repro.engine.operators.api import BatchOperator, drive
from repro.sim.events import Compute

__all__ = ["NestedLoopJoinOperator", "task", "nlj_rows"]


def nlj_rows(left_rows, right_rows, predicate_fn):
    """Pure function: all concatenated pairs passing the predicate."""
    output = []
    for left in left_rows:
        for right in right_rows:
            combined = left + right
            if predicate_fn(combined):
                output.append(combined)
    return output


class NestedLoopJoinOperator(BatchOperator):
    ports = 2
    port_order = (1, 0)  # buffer the inner (right) input first

    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        self.predicate_fn = node.params["predicate"].compile(node.schema)
        self.inner: list[tuple] = []
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port):
        costs = self.ctx.costs
        if port == 1:
            yield Compute(costs.scan_tuple * 0.1 * len(batch))
            self.inner.extend(batch.rows)
            return
        yield Compute(costs.nlj_pair * len(batch) * max(len(self.inner), 1))
        joined = nlj_rows(batch.rows, self.inner, self.predicate_fn)
        if joined:
            yield Compute(costs.join_emit * len(joined))
            yield from self.emitter.emit_rows(joined)


def task(node, in_queues, out_queues, ctx):
    return drive(NestedLoopJoinOperator(node, ctx, out_queues), in_queues)
