"""Block nested-loop join stage (Section 5.3.1).

The right (inner) input is buffered in full — the "block" — and the
left (outer) input streams against it. The join predicate is an
arbitrary compiled expression over the concatenated row, so non-equi
joins work. Cost is charged per (outer, inner) pair examined, which
is what makes NLJ expensive and fully pipelined on its outer input.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "nlj_rows"]


def nlj_rows(left_rows, right_rows, predicate_fn):
    """Pure function: all concatenated pairs passing the predicate."""
    output = []
    for left in left_rows:
        for right in right_rows:
            combined = left + right
            if predicate_fn(combined):
                output.append(combined)
    return output


def task(node, in_queues, out_queues, ctx):
    left_q, right_q = in_queues
    predicate = node.params["predicate"].compile(node.schema)

    # Buffer the inner input (stop-&-go on the right child).
    inner: list[tuple] = []
    while True:
        page = yield Get(right_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.scan_tuple * 0.1 * len(page))
        inner.extend(page.rows)

    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(left_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.nlj_pair * len(page) * max(len(inner), 1))
        joined = nlj_rows(page.rows, inner, predicate)
        if joined:
            yield Compute(ctx.costs.join_emit * len(joined))
            yield from emitter.emit(joined)
    yield from emitter.close()
