"""Table scan stage — plain, fused, or cooperative (elevator).

Reads a base table page by page (projection pushed into storage),
charging ``scan_tuple`` per tuple read. A *fused* scan additionally
evaluates a predicate (``filter_tuple`` per tuple) and computes output
expressions (``project_tuple`` per surviving tuple per expression)
inside the same stage, mirroring the paper's scan stages which apply
the query's predicates before handing pages to the consumer.

On the vectorized path the page never leaves columnar form: the
storage layer hands back raw column slices
(:meth:`~repro.storage.table.Table.column_slices`), the fused
predicate runs as one batch-compiled comprehension producing a
selection vector, and the fused outputs evaluate column-at-a-time over
the selected columns — rows are materialized only if a downstream
consumer actually asks for tuples.

When the engine carries a :class:`~repro.storage.buffer.BufferPool`,
every table page goes through it: a resident page is a hit (CPU-only,
as in the seed), a cold page charges ``io_page`` and is admitted. A
shared scan pivot therefore pays cold misses *once* for all M of its
consumers — a sharing benefit the CPU-only model cannot see — while M
independent scans may each miss (subject to what the pool retains).

When the engine additionally carries a
:class:`~repro.storage.shared_scan.ScanShareManager`, the scan rides
the table's **elevator cursor** instead of always starting at page 0:
it attaches at the cursor's current position, walks the table in
circular order, and completes after one full revolution — so
concurrent scans of the same table share one physical pass, and the
cursor's async prefetch overlaps the next pages' reads with this
page's CPU work (charged as the ``io`` component of the stage's
``Compute``). The emitted *row set* is identical to an independent
scan's; only the order rotates to the attach offset, which every
order-insensitive consumer (aggregation, hash join, sort) absorbs.

A manager with a drift bound adds *pacing*: before driving the
elevator head onto a new physical page, the stage asks
:meth:`~repro.storage.shared_scan.ScanShareManager.throttle_wait`.
A positive answer means some convoy member lags too far behind and
the head must pause — the stage sleeps that long off-processor
(``Sleep(throttle=True)``, the ``drift_throttle`` stall category in
stage reports) and retries, which is what lets stragglers close up
on resident pages instead of degrading to private cold reads.

The scan is the classic sharing pivot for scan-heavy queries: with M
consumers attached, its emitter multiplexes every page M ways.
"""

from __future__ import annotations

from repro.engine.expressions import try_compile_batch
from repro.engine.operators.api import BatchOperator, drive
from repro.engine.packet import RowBatch
from repro.sim.events import Compute, Sleep
from repro.storage.buffer import table_page_key

__all__ = ["ScanOperator", "task", "scan_rows"]


def scan_rows(table, columns, predicate_fn=None, output_fns=None):
    """Pure function: the (possibly fused) scan's output rows."""
    rows = []
    for page in table.scan_pages(columns=list(columns) if columns else None):
        batch = page.rows
        if predicate_fn is not None:
            batch = [row for row in batch if predicate_fn(row)]
        if output_fns is not None:
            batch = [tuple(fn(row) for fn in output_fns) for row in batch]
        rows.extend(batch)
    return rows


class ScanOperator(BatchOperator):
    """Source stage over one base table (0 input ports)."""

    ports = 0

    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        self.table = ctx.catalog.table(node.params["table"])
        self.columns = list(node.params["columns"])
        base_schema = self.table.projected_schema(self.columns)
        predicate = node.params.get("predicate")
        outputs = node.params.get("outputs")
        self.predicate_fn = (
            predicate.compile(base_schema) if predicate is not None else None
        )
        self.output_fns = (
            [expr.compile(base_schema) for _, expr, _ in outputs]
            if outputs is not None
            else None
        )
        self.cost_factor = node.params.get("cost_factor", 1.0)
        # Batch-compile the fused expressions; any node the batch
        # compiler does not know drops this scan to the row path.
        self.batch_pred = (
            try_compile_batch(predicate, base_schema)
            if predicate is not None
            else None
        )
        batch_outs = (
            [try_compile_batch(expr, base_schema) for _, expr, _ in outputs]
            if outputs is not None
            else None
        )
        if batch_outs is not None and any(fn is None for fn in batch_outs):
            batch_outs = None
        self.batch_outs = batch_outs
        self.vector = (
            ctx.vectorize
            and (predicate is None or self.batch_pred is not None)
            and (outputs is None or self.batch_outs is not None)
        )
        # Fused-page memo: scans with the same signature (same table,
        # projection, fused expressions, cost factor — the identity the
        # sharing layer itself keys on) reuse each decoded + filtered
        # page and its cost across queries. The vector flag is part of
        # the key so the row-at-a-time reference path never sees
        # vector-built batches (and vice versa).
        self._memo = self.table.fused_cache(
            ("fused", node.signature, ctx.page_rows, self.vector),
            self.table.page_count(ctx.page_rows),
        )
        self.make_emitter(len(node.schema))

    # -- page transforms -------------------------------------------------

    def _page_cost_batch(self, batch):
        """CPU cost of one columnar page and its transformed batch."""
        costs = self.ctx.costs
        n = batch._n
        cost = costs.scan_tuple * n
        if self.batch_pred is not None:
            cost += costs.filter_tuple * self.cost_factor * n
            flags = self.batch_pred(batch.columns, n)
            kept = sum(map(bool, flags))
            batch = batch.select(flags, kept)
        if self.batch_outs is not None and len(batch):
            kept = len(batch)
            cost += costs.project_tuple * self.cost_factor * kept * len(self.batch_outs)
            cols = batch.columns
            batch = RowBatch.from_columns(
                [fn(cols, kept) for fn in self.batch_outs], kept
            )
        return cost, batch

    def _page_cost_rows(self, page):
        """Row-at-a-time reference: cost and transformed row list."""
        costs = self.ctx.costs
        cost = costs.scan_tuple * len(page)
        batch = page.rows
        if self.predicate_fn is not None:
            cost += costs.filter_tuple * self.cost_factor * len(batch)
            batch = [row for row in batch if self.predicate_fn(row)]
        if self.output_fns is not None and batch:
            cost += (
                costs.project_tuple * self.cost_factor * len(batch) * len(self.output_fns)
            )
            batch = [tuple(fn(row) for fn in self.output_fns) for row in batch]
        return cost, batch

    def _load_page(self, index):
        """One physical page as a transformed batch plus its CPU cost."""
        memo = self._memo
        hit = memo[index]
        if hit is not None:
            return hit
        if self.vector:
            slices = self.table.column_slices(
                index, self.columns, self.ctx.page_rows
            )
            batch = RowBatch.from_columns(slices, len(slices[0]))
            result = self._page_cost_batch(batch)
        else:
            page = self.table.page_at(index, self.columns, self.ctx.page_rows)
            cost, rows = self._page_cost_rows(page)
            result = cost, RowBatch.from_rows(rows, len(self.node.schema))
        memo[index] = result
        return result

    # -- protocol --------------------------------------------------------

    def open(self):
        ctx = self.ctx
        if ctx.scans is not None and ctx.pool is not None and len(self.table):
            yield from self._elevator_scan()
        else:
            yield from self._sequential_scan()

    def _sequential_scan(self):
        """The seed's scan: page 0 to the end, synchronous misses."""
        ctx = self.ctx
        pool = ctx.pool
        emitter = self.emitter
        name = self.table.name
        for index in range(self.table.page_count(ctx.page_rows)):
            cost, batch = self._load_page(index)
            io = 0.0
            if pool is not None and not pool.access(table_page_key(name, index)):
                io = ctx.costs.io_page
            yield Compute(cost + io, io=io)
            if batch._n:
                yield from emitter.emit_batch(batch)

    def _elevator_scan(self):
        """Ride the table's shared elevator cursor (see shared_scan)."""
        ticket = self.ctx.scans.attach(
            self.table.name, self.table.page_count(self.ctx.page_rows)
        )
        yield from self._ride_elevator(ticket)

    def _ride_elevator(self, ticket):
        """The per-page elevator protocol over an attached ticket.

        Shared with the parallel scan fragments, which attach *ranged*
        tickets (fixed start offset, page-range span) to the same
        cursor and therefore convoy with full scans of the table.
        """
        ctx = self.ctx
        manager = ctx.scans
        emitter = self.emitter
        io_page = ctx.costs.io_page
        previous_cpu = 0.0
        try:
            while not ticket.exhausted:
                # Pacing hook: a drift-bounded head pauses (off-
                # processor) until the convoy closes up, then re-checks.
                wait = manager.throttle_wait(ticket, io_page)
                if wait > 0.0:
                    yield Sleep(wait, throttle=True)
                    continue
                cost, batch = self._load_page(ticket.page_index)
                stall = manager.acquire(ticket, io_page, cpu_credit=previous_cpu)
                yield Compute(cost + stall, io=stall)
                previous_cpu = cost
                ticket.advance()
                if batch._n:
                    yield from emitter.emit_batch(batch)
        finally:
            manager.detach(ticket)


def task(node, in_queues, out_queues, ctx):
    return drive(ScanOperator(node, ctx, out_queues), in_queues)
