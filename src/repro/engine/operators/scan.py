"""Table scan stage — plain, fused, or cooperative (elevator).

Reads a base table page by page (projection pushed into storage),
charging ``scan_tuple`` per tuple read. A *fused* scan additionally
evaluates a predicate (``filter_tuple`` per tuple) and computes output
expressions (``project_tuple`` per surviving tuple per expression)
inside the same stage, mirroring the paper's scan stages which apply
the query's predicates before handing pages to the consumer.

When the engine carries a :class:`~repro.storage.buffer.BufferPool`,
every table page goes through it: a resident page is a hit (CPU-only,
as in the seed), a cold page charges ``io_page`` and is admitted. A
shared scan pivot therefore pays cold misses *once* for all M of its
consumers — a sharing benefit the CPU-only model cannot see — while M
independent scans may each miss (subject to what the pool retains).

When the engine additionally carries a
:class:`~repro.storage.shared_scan.ScanShareManager`, the scan rides
the table's **elevator cursor** instead of always starting at page 0:
it attaches at the cursor's current position, walks the table in
circular order, and completes after one full revolution — so
concurrent scans of the same table share one physical pass, and the
cursor's async prefetch overlaps the next pages' reads with this
page's CPU work (charged as the ``io`` component of the stage's
``Compute``). The emitted *row set* is identical to an independent
scan's; only the order rotates to the attach offset, which every
order-insensitive consumer (aggregation, hash join, sort) absorbs.

A manager with a drift bound adds *pacing*: before driving the
elevator head onto a new physical page, the stage asks
:meth:`~repro.storage.shared_scan.ScanShareManager.throttle_wait`.
A positive answer means some convoy member lags too far behind and
the head must pause — the stage sleeps that long off-processor
(``Sleep(throttle=True)``, the ``drift_throttle`` stall category in
stage reports) and retries, which is what lets stragglers close up
on resident pages instead of degrading to private cold reads.

The scan is the classic sharing pivot for scan-heavy queries: with M
consumers attached, its emitter multiplexes every page M ways.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import Compute, Sleep
from repro.storage.buffer import table_page_key

__all__ = ["task", "scan_rows"]


def scan_rows(table, columns, predicate_fn=None, output_fns=None):
    """Pure function: the (possibly fused) scan's output rows."""
    rows = []
    for page in table.scan_pages(columns=list(columns) if columns else None):
        batch = page.rows
        if predicate_fn is not None:
            batch = [row for row in batch if predicate_fn(row)]
        if output_fns is not None:
            batch = [tuple(fn(row) for fn in output_fns) for row in batch]
        rows.extend(batch)
    return rows


def _page_cost(page, costs, cost_factor, predicate_fn, output_fns):
    """CPU cost of one page and its transformed batch."""
    cost = costs.scan_tuple * len(page)
    batch = page.rows
    if predicate_fn is not None:
        cost += costs.filter_tuple * cost_factor * len(batch)
        batch = [row for row in batch if predicate_fn(row)]
    if output_fns is not None and batch:
        cost += costs.project_tuple * cost_factor * len(batch) * len(output_fns)
        batch = [tuple(fn(row) for fn in output_fns) for row in batch]
    return cost, batch


def task(node, in_queues, out_queues, ctx):
    table = ctx.catalog.table(node.params["table"])
    columns = node.params["columns"]
    base_schema = table.projected_schema(list(columns))
    predicate = node.params.get("predicate")
    outputs = node.params.get("outputs")
    predicate_fn = predicate.compile(base_schema) if predicate is not None else None
    output_fns = (
        [expr.compile(base_schema) for _, expr, _ in outputs]
        if outputs is not None
        else None
    )

    cost_factor = node.params.get("cost_factor", 1.0)
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    if ctx.scans is not None and ctx.pool is not None and len(table):
        yield from _elevator_scan(
            table, columns, ctx, emitter, cost_factor, predicate_fn, output_fns,
        )
    else:
        yield from _sequential_scan(
            table, columns, ctx, emitter, cost_factor, predicate_fn, output_fns,
        )
    yield from emitter.close()


def _sequential_scan(table, columns, ctx, emitter, cost_factor,
                     predicate_fn, output_fns):
    """The seed's scan: page 0 to the end, synchronous misses."""
    pool = ctx.pool
    for index, page in enumerate(
        table.scan_pages(columns=list(columns), page_rows=ctx.page_rows)
    ):
        cost, batch = _page_cost(page, ctx.costs, cost_factor,
                                 predicate_fn, output_fns)
        io = 0.0
        if pool is not None and not pool.access(table_page_key(table.name, index)):
            io = ctx.costs.io_page
        yield Compute(cost + io, io=io)
        if batch:
            yield from emitter.emit(batch)


def _elevator_scan(table, columns, ctx, emitter, cost_factor,
                   predicate_fn, output_fns):
    """Ride the table's shared elevator cursor (see shared_scan)."""
    manager = ctx.scans
    columns = list(columns)
    io_page = ctx.costs.io_page
    ticket = manager.attach(table.name, table.page_count(ctx.page_rows))
    previous_cpu = 0.0
    try:
        while not ticket.exhausted:
            # Pacing hook: a drift-bounded head pauses (off-processor)
            # until the convoy closes up, then re-checks.
            wait = manager.throttle_wait(ticket, io_page)
            if wait > 0.0:
                yield Sleep(wait, throttle=True)
                continue
            index = ticket.page_index
            page = table.page_at(index, columns, ctx.page_rows)
            cost, batch = _page_cost(page, ctx.costs, cost_factor,
                                     predicate_fn, output_fns)
            stall = manager.acquire(ticket, io_page,
                                    cpu_credit=previous_cpu)
            yield Compute(cost + stall, io=stall)
            previous_cpu = cost
            ticket.advance()
            if batch:
                yield from emitter.emit(batch)
    finally:
        manager.detach(ticket)
