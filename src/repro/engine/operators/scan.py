"""Table scan stage — plain or fused.

Reads a base table page by page (projection pushed into storage),
charging ``scan_tuple`` per tuple read. A *fused* scan additionally
evaluates a predicate (``filter_tuple`` per tuple) and computes output
expressions (``project_tuple`` per surviving tuple per expression)
inside the same stage, mirroring the paper's scan stages which apply
the query's predicates before handing pages to the consumer.

When the engine carries a :class:`~repro.storage.buffer.BufferPool`,
every table page goes through it: a resident page is a hit (CPU-only,
as in the seed), a cold page charges ``io_page`` and is admitted. A
shared scan pivot therefore pays cold misses *once* for all M of its
consumers — a sharing benefit the CPU-only model cannot see — while M
independent scans may each miss (subject to what the pool retains).

The scan is the classic sharing pivot for scan-heavy queries: with M
consumers attached, its emitter multiplexes every page M ways.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import Compute
from repro.storage.buffer import table_page_key

__all__ = ["task", "scan_rows"]


def scan_rows(table, columns, predicate_fn=None, output_fns=None):
    """Pure function: the (possibly fused) scan's output rows."""
    rows = []
    for page in table.scan_pages(columns=list(columns) if columns else None):
        batch = page.rows
        if predicate_fn is not None:
            batch = [row for row in batch if predicate_fn(row)]
        if output_fns is not None:
            batch = [tuple(fn(row) for fn in output_fns) for row in batch]
        rows.extend(batch)
    return rows


def task(node, in_queues, out_queues, ctx):
    table = ctx.catalog.table(node.params["table"])
    columns = node.params["columns"]
    base_schema = table.projected_schema(list(columns))
    predicate = node.params.get("predicate")
    outputs = node.params.get("outputs")
    predicate_fn = predicate.compile(base_schema) if predicate is not None else None
    output_fns = (
        [expr.compile(base_schema) for _, expr, _ in outputs]
        if outputs is not None
        else None
    )

    cost_factor = node.params.get("cost_factor", 1.0)
    pool = ctx.pool
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema))
    for index, page in enumerate(
        table.scan_pages(columns=list(columns), page_rows=ctx.page_rows)
    ):
        cost = ctx.costs.scan_tuple * len(page)
        if pool is not None and not pool.access(table_page_key(table.name, index)):
            cost += ctx.costs.io_page
        batch = page.rows
        if predicate_fn is not None:
            cost += ctx.costs.filter_tuple * cost_factor * len(batch)
            batch = [row for row in batch if predicate_fn(row)]
        if output_fns is not None and batch:
            cost += (
                ctx.costs.project_tuple * cost_factor
                * len(batch) * len(output_fns)
            )
            batch = [tuple(fn(row) for fn in output_fns) for row in batch]
        yield Compute(cost)
        if batch:
            yield from emitter.emit(batch)
    yield from emitter.close()
