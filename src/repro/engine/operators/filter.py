"""Row filter stage: evaluates a predicate, drops non-matching rows."""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "filter_rows"]


def filter_rows(rows, predicate_fn):
    """Pure function: rows passing the compiled predicate."""
    return [row for row in rows if predicate_fn(row)]


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    predicate = node.params["predicate"].compile(node.children[0].schema)
    cost_factor = node.params.get("cost_factor", 1.0)
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.filter_tuple * cost_factor * len(page))
        kept = filter_rows(page.rows, predicate)
        if kept:
            yield from emitter.emit(kept)
    yield from emitter.close()
