"""Row filter stage: evaluates a predicate, drops non-matching rows.

Vectorized, the predicate runs once per batch as a compiled
comprehension producing a selection vector; the surviving rows flow on
as a zero-copy selection view of the input batch.
"""

from __future__ import annotations

from repro.engine.expressions import try_compile_batch
from repro.engine.operators.api import BatchOperator, drive
from repro.sim.events import Compute

__all__ = ["FilterOperator", "task", "filter_rows"]


def filter_rows(rows, predicate_fn):
    """Pure function: rows passing the compiled predicate."""
    return [row for row in rows if predicate_fn(row)]


class FilterOperator(BatchOperator):
    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        schema = node.children[0].schema
        predicate = node.params["predicate"]
        self.predicate_fn = predicate.compile(schema)
        self.batch_pred = (
            try_compile_batch(predicate, schema) if ctx.vectorize else None
        )
        self.cost_factor = node.params.get("cost_factor", 1.0)
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port):
        n = len(batch)
        yield Compute(self.ctx.costs.filter_tuple * self.cost_factor * n)
        if self.batch_pred is not None:
            flags = self.batch_pred(batch.columns, n)
            kept = sum(map(bool, flags))
            if kept:
                yield from self.emitter.emit_batch(batch.select(flags, kept))
        else:
            kept_rows = filter_rows(batch.rows, self.predicate_fn)
            if kept_rows:
                yield from self.emitter.emit_rows(kept_rows)


def task(node, in_queues, out_queues, ctx):
    return drive(FilterOperator(node, ctx, out_queues), in_queues)
