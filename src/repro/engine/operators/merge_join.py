"""Merge join stage (Section 5.3.2).

Inner equality join of two inputs sorted ascending on their keys.
Both inputs are buffered before merging — a simplification that keeps
the cost accounting right (per-tuple merge cost) while reusing one
merge implementation for the staged and reference paths. Input
sortedness is verified; violations indicate a malformed plan (a
missing :func:`repro.engine.plan.sort`).
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.errors import PlanError
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "merge_join_rows"]


def _check_sorted(rows, index, side):
    for a, b in zip(rows, rows[1:]):
        if a[index] > b[index]:
            raise PlanError(
                f"merge join {side} input is not sorted on its key; "
                "insert a sort below the join"
            )


def merge_join_rows(left_rows, right_rows, left_index, right_index):
    """Pure function: sort-merge inner join of two sorted inputs."""
    _check_sorted(left_rows, left_index, "left")
    _check_sorted(right_rows, right_index, "right")
    output = []
    i = j = 0
    n_left, n_right = len(left_rows), len(right_rows)
    while i < n_left and j < n_right:
        lkey = left_rows[i][left_index]
        rkey = right_rows[j][right_index]
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Emit the cross product of the equal-key runs.
            j_end = j
            while j_end < n_right and right_rows[j_end][right_index] == lkey:
                j_end += 1
            while i < n_left and left_rows[i][left_index] == lkey:
                for jj in range(j, j_end):
                    output.append(left_rows[i] + right_rows[jj])
                i += 1
            j = j_end
    return output


def task(node, in_queues, out_queues, ctx):
    left_q, right_q = in_queues
    left_schema, right_schema = (child.schema for child in node.children)
    left_index = left_schema.index_of(node.params["left_key"])
    right_index = right_schema.index_of(node.params["right_key"])

    left_rows: list[tuple] = []
    while True:
        page = yield Get(left_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.sort_tuple * 0.2 * len(page))
        left_rows.extend(page.rows)
    right_rows: list[tuple] = []
    while True:
        page = yield Get(right_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.sort_tuple * 0.2 * len(page))
        right_rows.extend(page.rows)

    yield Compute(ctx.costs.hash_probe * (len(left_rows) + len(right_rows)))
    joined = merge_join_rows(left_rows, right_rows, left_index, right_index)

    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    if joined:
        yield Compute(ctx.costs.join_emit * len(joined))
        yield from emitter.emit(joined)
    yield from emitter.close()
