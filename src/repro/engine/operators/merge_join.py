"""Merge join stage (Section 5.3.2).

Inner equality join of two inputs sorted ascending on their keys.
Both inputs are buffered before merging — a simplification that keeps
the cost accounting right (per-tuple merge cost) while reusing one
merge implementation for the staged and reference paths. Input
sortedness is verified (one batched ``itemgetter`` key-column pass per
side); violations indicate a malformed plan (a missing
:func:`repro.engine.plan.sort`).
"""

from __future__ import annotations

from operator import itemgetter

from repro.engine.operators.api import BatchOperator, drive
from repro.errors import PlanError
from repro.sim.events import Compute

__all__ = ["MergeJoinOperator", "task", "merge_join_rows"]


def _check_sorted(rows, index, side):
    keys = list(map(itemgetter(index), rows))
    for a, b in zip(keys, keys[1:]):
        if a > b:
            raise PlanError(
                f"merge join {side} input is not sorted on its key; "
                "insert a sort below the join"
            )


def merge_join_rows(left_rows, right_rows, left_index, right_index):
    """Pure function: sort-merge inner join of two sorted inputs."""
    _check_sorted(left_rows, left_index, "left")
    _check_sorted(right_rows, right_index, "right")
    output = []
    i = j = 0
    n_left, n_right = len(left_rows), len(right_rows)
    while i < n_left and j < n_right:
        lkey = left_rows[i][left_index]
        rkey = right_rows[j][right_index]
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Emit the cross product of the equal-key runs.
            j_end = j
            while j_end < n_right and right_rows[j_end][right_index] == lkey:
                j_end += 1
            while i < n_left and left_rows[i][left_index] == lkey:
                for jj in range(j, j_end):
                    output.append(left_rows[i] + right_rows[jj])
                i += 1
            j = j_end
    return output


class MergeJoinOperator(BatchOperator):
    ports = 2

    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        left_schema, right_schema = (child.schema for child in node.children)
        self.left_index = left_schema.index_of(node.params["left_key"])
        self.right_index = right_schema.index_of(node.params["right_key"])
        self.left_rows: list[tuple] = []
        self.right_rows: list[tuple] = []
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port):
        yield Compute(self.ctx.costs.sort_tuple * 0.2 * len(batch))
        (self.left_rows if port == 0 else self.right_rows).extend(batch.rows)

    def finish(self):
        costs = self.ctx.costs
        left_rows, right_rows = self.left_rows, self.right_rows
        yield Compute(costs.hash_probe * (len(left_rows) + len(right_rows)))
        joined = merge_join_rows(
            left_rows, right_rows, self.left_index, self.right_index
        )
        if joined:
            yield Compute(costs.join_emit * len(joined))
            yield from self.emitter.emit_rows(joined)
        yield from self.emitter.close()


def task(node, in_queues, out_queues, ctx):
    return drive(MergeJoinOperator(node, ctx, out_queues), in_queues)
