"""Operator stages of the staged engine.

Each operator module exposes:

* ``task(node, in_queues, out_queues, ctx)`` — the simulator generator
  implementing the stage (charges costs, moves pages), and
* a pure row-transformation function reused by the reference executor
  (:mod:`repro.engine.reference`), so the staged and naive paths share
  one implementation of the relational semantics and can only diverge
  in scheduling, never in answers.

:func:`build_operator_task` dispatches a plan node to its stage
factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine.costs import CostModel
from repro.engine.memory import MemoryBroker
from repro.errors import PlanError
from repro.sim.queues import SimQueue
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.shared_scan import ScanShareManager

__all__ = ["StageContext", "build_operator_task"]


@dataclass(frozen=True)
class StageContext:
    """Everything a stage needs besides its queues.

    ``pool``, ``memory`` and ``scans`` are the optional
    resource-governance layer: with a
    :class:`~repro.storage.buffer.BufferPool` attached, scans charge
    ``io_page`` per cold page; with a
    :class:`~repro.engine.memory.MemoryBroker` attached, the hash
    join, hash aggregate and sort take working-memory grants and spill
    when over budget; with a
    :class:`~repro.storage.shared_scan.ScanShareManager` attached,
    scans ride per-table elevator cursors (cooperative scan sharing
    with async prefetch). All default to ``None`` — the seed's
    unbounded-memory behavior.

    ``spill_prefetch`` is the read-ahead depth governed operators use
    when re-reading their spill runs through a
    :class:`~repro.storage.spill_cursor.SpillCursor` (0 = synchronous
    read-back, the pre-cursor behavior).

    ``perf`` is the opt-in wall-clock profiler
    (:class:`~repro.obs.perf.WallProfiler`): stages hand it to their
    :class:`~repro.engine.stage.OutputEmitter` so flushed pages report
    per-operator row counts. ``None`` (the default) disables the hook
    entirely; :func:`~repro.obs.perf.attach_profiler` swaps a live
    engine's context for one carrying a profiler.
    """

    catalog: Catalog
    costs: CostModel
    page_rows: int
    pool: Optional[BufferPool] = None
    memory: Optional[MemoryBroker] = None
    scans: Optional[ScanShareManager] = None
    spill_prefetch: int = 0
    perf: Optional[object] = None


def build_operator_task(node, in_queues: Sequence[SimQueue],
                        out_queues: Sequence[SimQueue], ctx: StageContext):
    """Instantiate the stage generator for one plan node."""
    from repro.engine.operators import (
        aggregate,
        filter as filter_op,
        hash_join,
        limit,
        merge_join,
        nested_loop_join,
        project,
        scan,
        sort,
    )

    factories = {
        "scan": scan.task,
        "filter": filter_op.task,
        "project": project.task,
        "aggregate": aggregate.task,
        "sort": sort.task,
        "limit": limit.task,
        "hash_join": hash_join.task,
        "merge_join": merge_join.task,
        "nested_loop_join": nested_loop_join.task,
    }
    try:
        factory = factories[node.kind]
    except KeyError:
        raise PlanError(f"no stage implementation for operator kind {node.kind!r}")
    expected_inputs = {"scan": 0, "filter": 1, "project": 1, "aggregate": 1,
                       "sort": 1, "limit": 1, "hash_join": 2, "merge_join": 2,
                       "nested_loop_join": 2}[node.kind]
    if len(in_queues) != expected_inputs:
        raise PlanError(
            f"{node.kind} expects {expected_inputs} input queue(s), "
            f"got {len(in_queues)}"
        )
    return factory(node, in_queues, out_queues, ctx)
