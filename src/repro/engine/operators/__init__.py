"""Operator stages of the staged engine.

The execution protocol — :class:`~repro.engine.operators.api.StageContext`,
:class:`~repro.engine.operators.api.BatchOperator` and the
:func:`~repro.engine.operators.api.drive` loop — lives in
:mod:`repro.engine.operators.api`. Each operator module exposes:

* a :class:`~repro.engine.operators.api.BatchOperator` subclass
  implementing the stage (charges costs, moves batches),
* ``task(node, in_queues, out_queues, ctx)`` — the classic factory
  returning the stage's simulator generator (kept so existing callers
  and custom pipelines keep working), and
* a pure row-transformation function reused by the reference executor
  (:mod:`repro.engine.reference`), so the staged and naive paths share
  one implementation of the relational semantics and can only diverge
  in scheduling, never in answers.

:func:`build_operator_task` dispatches a plan node to its stage
factory.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.operators.api import BatchOperator, StageContext, drive
from repro.errors import PlanError
from repro.sim.queues import SimQueue

__all__ = ["StageContext", "BatchOperator", "drive", "build_operator_task"]


def build_operator_task(node, in_queues: Sequence[SimQueue],
                        out_queues: Sequence[SimQueue], ctx: StageContext):
    """Instantiate the stage generator for one plan node."""
    from repro.engine.operators import (
        aggregate,
        filter as filter_op,
        hash_join,
        limit,
        merge_join,
        nested_loop_join,
        project,
        scan,
        sort,
    )

    operators = {
        "scan": scan.ScanOperator,
        "filter": filter_op.FilterOperator,
        "project": project.ProjectOperator,
        "aggregate": aggregate.AggregateOperator,
        "sort": sort.SortOperator,
        "limit": limit.LimitOperator,
        "hash_join": hash_join.HashJoinOperator,
        "merge_join": merge_join.MergeJoinOperator,
        "nested_loop_join": nested_loop_join.NestedLoopJoinOperator,
    }
    try:
        operator_cls = operators[node.kind]
    except KeyError:
        raise PlanError(f"no stage implementation for operator kind {node.kind!r}")
    if len(in_queues) != operator_cls.ports:
        raise PlanError(
            f"{node.kind} expects {operator_cls.ports} input queue(s), "
            f"got {len(in_queues)}"
        )
    return drive(operator_cls(node, ctx, out_queues), in_queues)
