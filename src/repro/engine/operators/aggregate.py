"""Hash aggregation stage (stop-&-go), with graceful spilling.

Consumes its entire input, folding rows into per-group accumulators,
then emits one output row per group. Output groups are ordered by
group key so results are deterministic regardless of scheduling.

NULL semantics: aggregate inputs that evaluate to ``None`` are skipped
(``count(expr)`` counts non-NULL values; ``count(*)`` counts rows) —
TPC-H Q13's ``count(o_orderkey)`` over a left join depends on this.

Vectorized, the group keys and aggregate inputs of a whole batch are
extracted column-at-a-time (one ``zip`` over the key columns, one
batch-compiled evaluation per aggregate expression) before the fold
loop runs; a global aggregate (no group-by) folds each input column in
one tight loop per accumulator. Float accumulation order is preserved
exactly — sums still add value by value in row order — so results stay
bit-identical to the row-at-a-time path.

Without memory governance (``ctx.memory is None``) the stage buffers
every group unconditionally, exactly as the seed did. With a
:class:`~repro.engine.memory.MemoryBroker` attached it takes a
working-memory grant and becomes a **partitioned spilling aggregate**:
groups are hashed into partitions, and when the resident group state
exceeds the grant the largest partition is spilled — its accumulator
*states* (which merge: sums add, counts add, min/max combine) are
written through a :class:`~repro.storage.buffer.SpillFile`, and later
input rows for a spilled partition are folded into singleton states
and appended. A finalize phase re-reads each spilled partition,
merges its states (the broker records an overcommit if a single
partition still exceeds the grant — the recursion floor), and emits
all groups in global key order, so the answer is identical to the
unbounded aggregate's at every budget.
"""

from __future__ import annotations

from repro.engine.expressions import try_compile_batch
from repro.engine.operators.api import BatchOperator, drive
from repro.errors import PlanError
from repro.sim.events import Compute
from repro.storage.spill_cursor import SpillCursor

__all__ = ["AggregateOperator", "task", "aggregate_rows", "Accumulator"]

# Group-state partitions of the governed aggregate; clamped to the
# memory grant like the hybrid hash join's fanout.
DEFAULT_FANOUT = 8


class Accumulator:
    """Streaming accumulator for one (group, aggregate) pair."""

    __slots__ = ("func", "total", "count", "best")

    def __init__(self, func: str) -> None:
        self.func = func
        self.total = 0.0
        self.count = 0
        self.best = None

    def update(self, value) -> None:
        if self.func == "count":
            # value is a sentinel for count(*) rows; None means a NULL
            # expression input, which count(expr) skips.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        if self.func in ("sum", "avg"):
            self.total += value
            self.count += 1
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)
        else:  # pragma: no cover - constructor validates
            raise PlanError(f"unknown aggregate {self.func!r}")

    def update_column(self, values) -> None:
        """Fold a whole value column, preserving row-order arithmetic."""
        func = self.func
        if func == "count":
            self.count += sum(1 for v in values if v is not None)
            return
        if func in ("sum", "avg"):
            total = self.total
            count = self.count
            for v in values:
                if v is not None:
                    total += v
                    count += 1
            self.total = total
            self.count = count
            return
        if func == "min":
            kept = [v for v in values if v is not None]
            if kept:
                low = min(kept)
                self.best = low if self.best is None else min(self.best, low)
        elif func == "max":
            kept = [v for v in values if v is not None]
            if kept:
                high = max(kept)
                self.best = high if self.best is None else max(self.best, high)
        else:  # pragma: no cover - constructor validates
            raise PlanError(f"unknown aggregate {func!r}")

    def state(self) -> tuple:
        """Serializable partial state, mergeable via :meth:`absorb`."""
        return (self.total, self.count, self.best)

    def absorb(self, state: tuple) -> None:
        """Merge another accumulator's partial state into this one.

        Every supported aggregate is decomposable: sums and counts
        add, min/max combine — which is what makes spilling partial
        group state (rather than raw input rows) correct.
        """
        total, count, best = state
        self.total += total
        self.count += count
        if best is not None:
            if self.best is None:
                self.best = best
            elif self.func == "min":
                self.best = min(self.best, best)
            elif self.func == "max":
                self.best = max(self.best, best)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


def _sort_key(key: tuple) -> tuple:
    """Order group keys deterministically, tolerating None values."""
    return tuple((value is None, value) for value in key)


def aggregate_rows(rows, schema, group_by, aggs):
    """Pure function: grouped aggregation over materialized rows."""
    group_idx = [schema.index_of(name) for name in group_by]
    value_fns = [
        (spec.expr.compile(schema) if spec.expr is not None else (lambda row: True))
        for spec in aggs
    ]
    groups: dict[tuple, list[Accumulator]] = {}
    for row in rows:
        key = tuple(row[i] for i in group_idx)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [Accumulator(spec.func) for spec in aggs]
            groups[key] = accumulators
        for accumulator, fn in zip(accumulators, value_fns):
            accumulator.update(fn(row))
    output = []
    for key in sorted(groups, key=_sort_key):
        output.append(key + tuple(a.result() for a in groups[key]))
    return output


class AggregateOperator(BatchOperator):
    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        schema = node.children[0].schema
        self.aggs = node.params["aggs"]
        self.group_idx = [schema.index_of(n) for n in node.params["group_by"]]
        self.value_fns = [
            (spec.expr.compile(schema) if spec.expr is not None
             else (lambda row: True))
            for spec in self.aggs
        ]
        # Batch value extractors; None stands for count(*)'s constant.
        batch_fns = [
            (try_compile_batch(spec.expr, schema)
             if spec.expr is not None else None)
            for spec in self.aggs
        ]
        self.vector = ctx.vectorize and all(
            bf is not None or spec.expr is None
            for bf, spec in zip(batch_fns, self.aggs)
        )
        self.batch_fns = batch_fns if self.vector else None
        self.make_emitter(len(node.schema))
        self.groups: dict[tuple, list[Accumulator]] = {}
        self.grant = None

    # -- batch-wise extraction -------------------------------------------

    def _batch_keys_values(self, batch):
        """Key tuples and per-aggregate value columns for one batch."""
        n = len(batch)
        cols = batch.columns
        if self.group_idx:
            keys = list(zip(*[cols[i] for i in self.group_idx]))
        else:
            keys = None
        values = [
            ([True] * n if bf is None else bf(cols, n))
            for bf in self.batch_fns
        ]
        return keys, values

    def _fresh_accumulators(self):
        return [Accumulator(spec.func) for spec in self.aggs]

    def _fold_ungoverned(self, batch):
        if self.vector:
            keys, values = self._batch_keys_values(batch)
            groups = self.groups
            if keys is None:
                accumulators = groups.get(())
                if accumulators is None:
                    accumulators = self._fresh_accumulators()
                    groups[()] = accumulators
                for accumulator, column in zip(accumulators, values):
                    accumulator.update_column(column)
                return
            make = self._fresh_accumulators
            if len(values) == 1:
                column = values[0]
                for i, key in enumerate(keys):
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = make()
                        groups[key] = accumulators
                    accumulators[0].update(column[i])
                return
            for i, key in enumerate(keys):
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = make()
                    groups[key] = accumulators
                for accumulator, column in zip(accumulators, values):
                    accumulator.update(column[i])
            return
        group_idx = self.group_idx
        groups = self.groups
        for row in batch.rows:
            key = tuple(row[i] for i in group_idx)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = self._fresh_accumulators()
                groups[key] = accumulators
            for accumulator, fn in zip(accumulators, self.value_fns):
                accumulator.update(fn(row))

    # -- protocol --------------------------------------------------------

    def open(self):
        ctx = self.ctx
        if ctx.memory is not None:
            # Grant acquisition stays at task start (not construction)
            # so broker bookkeeping keeps its spawn-order timeline.
            self.grant = ctx.memory.grant(
                self.node.op_id, self.node.params.get("mem_pages")
            )
            self.fanout = max(
                2,
                min(self.node.params.get("fanout", DEFAULT_FANOUT),
                    self.grant.pages),
            )
            self.parts = [_AggPartition() for _ in range(self.fanout)]
        return
        yield  # pragma: no cover

    def next_batch(self, batch, port):
        if self.grant is not None:
            yield from self._governed_fold(batch)
            return
        yield Compute(self.ctx.costs.agg_update * len(batch))
        self._fold_ungoverned(batch)

    def finish(self):
        if self.grant is not None:
            yield from self._governed_finish()
            return
        emitter = self.emitter
        groups = self.groups
        ordered_keys = sorted(groups, key=_sort_key)
        if ordered_keys:
            yield Compute(self.ctx.costs.agg_emit * len(ordered_keys))
        output = [
            key + tuple(a.result() for a in groups[key])
            for key in ordered_keys
        ]
        yield from emitter.emit_rows(output)
        yield from emitter.close()

    # -- memory-governed partitioned aggregate ---------------------------

    def _spill_largest(self) -> int:
        """Spill the largest resident partition's state; pages written."""
        victim = max(
            (p for p in self.parts if not p.spilled and p.groups),
            key=lambda p: len(p.groups),
        )
        if victim.file is None:
            victim.file = self.ctx.pool.spill_file(self.ctx.page_rows)
        written = victim.file.append_rows(
            _state_row(key, accumulators)
            for key, accumulators in victim.groups.items()
        )
        victim.groups = None
        return written

    def _governed_fold(self, batch):
        """Fold one batch into partitioned group state, spilling the
        largest partition whenever the grant is exceeded."""
        from repro.engine.operators.hash_join import _partition_of

        costs = self.ctx.costs
        page_rows = self.ctx.page_rows
        parts = self.parts
        fanout = self.fanout
        grant = self.grant
        cost = costs.agg_update * len(batch)
        if self.vector:
            keys, values = self._batch_keys_values(batch)
            if keys is None:
                keys = [()] * len(batch)
            rows_values = zip(keys, *values)
        else:
            group_idx = self.group_idx
            value_fns = self.value_fns
            rows_values = (
                (tuple(row[i] for i in group_idx),
                 *(fn(row) for fn in value_fns))
                for row in batch.rows
            )
        for key, *row_values in rows_values:
            p = parts[_partition_of(key, 0, fanout)]
            if p.spilled:
                fresh = self._fresh_accumulators()
                for accumulator, value in zip(fresh, row_values):
                    accumulator.update(value)
                cost += costs.spill_page * p.file.append_rows(
                    (_state_row(key, fresh),)
                )
            else:
                accumulators = p.groups.get(key)
                if accumulators is None:
                    accumulators = self._fresh_accumulators()
                    p.groups[key] = accumulators
                for accumulator, value in zip(accumulators, row_values):
                    accumulator.update(value)
        while _group_pages(parts, page_rows) > grant.pages:
            cost += costs.spill_page * self._spill_largest()
        grant.resize_used(_group_pages(parts, page_rows))
        yield Compute(cost)

    def _governed_finish(self):
        """Resident partitions emit directly; spilled partitions re-read
        and merge their state runs (overcommitting at the floor if a
        single partition still exceeds the grant)."""
        ctx = self.ctx
        costs = ctx.costs
        grant = self.grant
        key_width = len(self.group_idx)
        output = []
        for p in self.parts:
            if not p.spilled:
                output.extend(
                    key + tuple(a.result() for a in p.groups[key])
                    for key in p.groups
                )
                p.groups = None
                continue
            seal = costs.spill_page * p.file.flush()
            if seal:
                yield Compute(seal)
            grant.resize_used(p.file.page_count)
            merged: dict = {}
            # Stream the state run back through a prefetched cursor: the
            # absorb CPU of this page drains the next pages' reads.
            reader = SpillCursor(p.file, costs.io_page, ctx.spill_prefetch)
            credit = 0.0
            while not reader.exhausted:
                spill_page, stall = reader.next_page(credit)
                for row in spill_page.rows:
                    _absorb_state_row(merged, row, key_width, self.aggs)
                credit = costs.agg_update * len(spill_page)
                yield Compute(credit + stall, io=stall)
            output.extend(
                key + tuple(a.result() for a in merged[key])
                for key in merged
            )
            p.file.drop()
        grant.resize_used(0)

        emitter = self.emitter
        output.sort(key=lambda row: _sort_key(row[:key_width]))
        if output:
            yield Compute(costs.agg_emit * len(output))
        yield from emitter.emit_rows(output)
        yield from emitter.close()
        grant.close()


class _AggPartition:
    """One partition: resident group map or a spill file of states."""

    __slots__ = ("groups", "file")

    def __init__(self) -> None:
        self.groups: dict | None = {}
        self.file = None

    @property
    def spilled(self) -> bool:
        return self.groups is None


def _group_pages(parts, page_rows: int) -> int:
    """Pages of resident group state (one group ~ one state row)."""
    return sum(
        -(-len(p.groups) // page_rows)
        for p in parts if not p.spilled and p.groups
    )


def _state_row(key: tuple, accumulators) -> tuple:
    """Flatten one group's accumulators into a spillable row."""
    row = list(key)
    for accumulator in accumulators:
        row.extend(accumulator.state())
    return tuple(row)


def _absorb_state_row(groups, row, key_width, aggs) -> None:
    """Merge one spilled state row into a partition's group map."""
    key = row[:key_width]
    accumulators = groups.get(key)
    if accumulators is None:
        accumulators = [Accumulator(spec.func) for spec in aggs]
        groups[key] = accumulators
    offset = key_width
    for accumulator in accumulators:
        accumulator.absorb(tuple(row[offset:offset + 3]))
        offset += 3


def task(node, in_queues, out_queues, ctx):
    return drive(AggregateOperator(node, ctx, out_queues), in_queues)
