"""Hash aggregation stage (stop-&-go).

Consumes its entire input, folding rows into per-group accumulators,
then emits one output row per group. Output groups are ordered by
group key so results are deterministic regardless of scheduling.

NULL semantics: aggregate inputs that evaluate to ``None`` are skipped
(``count(expr)`` counts non-NULL values; ``count(*)`` counts rows) —
TPC-H Q13's ``count(o_orderkey)`` over a left join depends on this.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.errors import PlanError
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "aggregate_rows", "Accumulator"]


class Accumulator:
    """Streaming accumulator for one (group, aggregate) pair."""

    __slots__ = ("func", "total", "count", "best")

    def __init__(self, func: str) -> None:
        self.func = func
        self.total = 0.0
        self.count = 0
        self.best = None

    def update(self, value) -> None:
        if self.func == "count":
            # value is a sentinel for count(*) rows; None means a NULL
            # expression input, which count(expr) skips.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        if self.func in ("sum", "avg"):
            self.total += value
            self.count += 1
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)
        else:  # pragma: no cover - constructor validates
            raise PlanError(f"unknown aggregate {self.func!r}")

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


def _sort_key(key: tuple) -> tuple:
    """Order group keys deterministically, tolerating None values."""
    return tuple((value is None, value) for value in key)


def aggregate_rows(rows, schema, group_by, aggs):
    """Pure function: grouped aggregation over materialized rows."""
    group_idx = [schema.index_of(name) for name in group_by]
    value_fns = [
        (spec.expr.compile(schema) if spec.expr is not None else (lambda row: True))
        for spec in aggs
    ]
    groups: dict[tuple, list[Accumulator]] = {}
    for row in rows:
        key = tuple(row[i] for i in group_idx)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [Accumulator(spec.func) for spec in aggs]
            groups[key] = accumulators
        for accumulator, fn in zip(accumulators, value_fns):
            accumulator.update(fn(row))
    output = []
    for key in sorted(groups, key=_sort_key):
        output.append(key + tuple(a.result() for a in groups[key]))
    return output


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    schema = node.children[0].schema
    group_by = node.params["group_by"]
    aggs = node.params["aggs"]
    group_idx = [schema.index_of(name) for name in group_by]
    value_fns = [
        (spec.expr.compile(schema) if spec.expr is not None else (lambda row: True))
        for spec in aggs
    ]
    groups: dict[tuple, list[Accumulator]] = {}
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.agg_update * len(page))
        for row in page.rows:
            key = tuple(row[i] for i in group_idx)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Accumulator(spec.func) for spec in aggs]
                groups[key] = accumulators
            for accumulator, fn in zip(accumulators, value_fns):
                accumulator.update(fn(row))

    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema))
    ordered_keys = sorted(groups, key=_sort_key)
    if ordered_keys:
        yield Compute(ctx.costs.agg_emit * len(ordered_keys))
    for key in ordered_keys:
        row = key + tuple(a.result() for a in groups[key])
        yield from emitter.emit([row])
    yield from emitter.close()
