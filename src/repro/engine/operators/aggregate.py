"""Hash aggregation stage (stop-&-go), with graceful spilling.

Consumes its entire input, folding rows into per-group accumulators,
then emits one output row per group. Output groups are ordered by
group key so results are deterministic regardless of scheduling.

NULL semantics: aggregate inputs that evaluate to ``None`` are skipped
(``count(expr)`` counts non-NULL values; ``count(*)`` counts rows) —
TPC-H Q13's ``count(o_orderkey)`` over a left join depends on this.

Without memory governance (``ctx.memory is None``) the stage buffers
every group unconditionally, exactly as the seed did. With a
:class:`~repro.engine.memory.MemoryBroker` attached it takes a
working-memory grant and becomes a **partitioned spilling aggregate**:
groups are hashed into partitions, and when the resident group state
exceeds the grant the largest partition is spilled — its accumulator
*states* (which merge: sums add, counts add, min/max combine) are
written through a :class:`~repro.storage.buffer.SpillFile`, and later
input rows for a spilled partition are folded into singleton states
and appended. A finalize phase re-reads each spilled partition,
merges its states (the broker records an overcommit if a single
partition still exceeds the grant — the recursion floor), and emits
all groups in global key order, so the answer is identical to the
unbounded aggregate's at every budget.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.errors import PlanError
from repro.sim.events import CLOSED, Compute, Get
from repro.storage.spill_cursor import SpillCursor

__all__ = ["task", "aggregate_rows", "Accumulator"]

# Group-state partitions of the governed aggregate; clamped to the
# memory grant like the hybrid hash join's fanout.
DEFAULT_FANOUT = 8


class Accumulator:
    """Streaming accumulator for one (group, aggregate) pair."""

    __slots__ = ("func", "total", "count", "best")

    def __init__(self, func: str) -> None:
        self.func = func
        self.total = 0.0
        self.count = 0
        self.best = None

    def update(self, value) -> None:
        if self.func == "count":
            # value is a sentinel for count(*) rows; None means a NULL
            # expression input, which count(expr) skips.
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        if self.func in ("sum", "avg"):
            self.total += value
            self.count += 1
        elif self.func == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.func == "max":
            self.best = value if self.best is None else max(self.best, value)
        else:  # pragma: no cover - constructor validates
            raise PlanError(f"unknown aggregate {self.func!r}")

    def state(self) -> tuple:
        """Serializable partial state, mergeable via :meth:`absorb`."""
        return (self.total, self.count, self.best)

    def absorb(self, state: tuple) -> None:
        """Merge another accumulator's partial state into this one.

        Every supported aggregate is decomposable: sums and counts
        add, min/max combine — which is what makes spilling partial
        group state (rather than raw input rows) correct.
        """
        total, count, best = state
        self.total += total
        self.count += count
        if best is not None:
            if self.best is None:
                self.best = best
            elif self.func == "min":
                self.best = min(self.best, best)
            elif self.func == "max":
                self.best = max(self.best, best)

    def result(self):
        if self.func == "count":
            return self.count
        if self.func == "sum":
            return self.total if self.count else None
        if self.func == "avg":
            return self.total / self.count if self.count else None
        return self.best


def _sort_key(key: tuple) -> tuple:
    """Order group keys deterministically, tolerating None values."""
    return tuple((value is None, value) for value in key)


def aggregate_rows(rows, schema, group_by, aggs):
    """Pure function: grouped aggregation over materialized rows."""
    group_idx = [schema.index_of(name) for name in group_by]
    value_fns = [
        (spec.expr.compile(schema) if spec.expr is not None else (lambda row: True))
        for spec in aggs
    ]
    groups: dict[tuple, list[Accumulator]] = {}
    for row in rows:
        key = tuple(row[i] for i in group_idx)
        accumulators = groups.get(key)
        if accumulators is None:
            accumulators = [Accumulator(spec.func) for spec in aggs]
            groups[key] = accumulators
        for accumulator, fn in zip(accumulators, value_fns):
            accumulator.update(fn(row))
    output = []
    for key in sorted(groups, key=_sort_key):
        output.append(key + tuple(a.result() for a in groups[key]))
    return output


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    schema = node.children[0].schema
    group_by = node.params["group_by"]
    aggs = node.params["aggs"]
    group_idx = [schema.index_of(name) for name in group_by]
    value_fns = [
        (spec.expr.compile(schema) if spec.expr is not None else (lambda row: True))
        for spec in aggs
    ]

    if ctx.memory is not None:
        yield from _governed_task(
            node, in_q, out_queues, ctx, group_idx, value_fns, aggs,
        )
        return

    groups: dict[tuple, list[Accumulator]] = {}
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.agg_update * len(page))
        for row in page.rows:
            key = tuple(row[i] for i in group_idx)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [Accumulator(spec.func) for spec in aggs]
                groups[key] = accumulators
            for accumulator, fn in zip(accumulators, value_fns):
                accumulator.update(fn(row))

    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    ordered_keys = sorted(groups, key=_sort_key)
    if ordered_keys:
        yield Compute(ctx.costs.agg_emit * len(ordered_keys))
    for key in ordered_keys:
        row = key + tuple(a.result() for a in groups[key])
        yield from emitter.emit([row])
    yield from emitter.close()


# ----------------------------------------------------------------------
# Memory-governed partitioned aggregate
# ----------------------------------------------------------------------


class _AggPartition:
    """One partition: resident group map or a spill file of states."""

    __slots__ = ("groups", "file")

    def __init__(self) -> None:
        self.groups: dict | None = {}
        self.file = None

    @property
    def spilled(self) -> bool:
        return self.groups is None


def _group_pages(parts, page_rows: int) -> int:
    """Pages of resident group state (one group ~ one state row)."""
    return sum(
        -(-len(p.groups) // page_rows)
        for p in parts if not p.spilled and p.groups
    )


def _state_row(key: tuple, accumulators) -> tuple:
    """Flatten one group's accumulators into a spillable row."""
    row = list(key)
    for accumulator in accumulators:
        row.extend(accumulator.state())
    return tuple(row)


def _absorb_state_row(groups, row, key_width, aggs) -> None:
    """Merge one spilled state row into a partition's group map."""
    key = row[:key_width]
    accumulators = groups.get(key)
    if accumulators is None:
        accumulators = [Accumulator(spec.func) for spec in aggs]
        groups[key] = accumulators
    offset = key_width
    for accumulator in accumulators:
        accumulator.absorb(tuple(row[offset:offset + 3]))
        offset += 3


def _governed_task(node, in_q, out_queues, ctx, group_idx, value_fns, aggs):
    costs = ctx.costs
    pool = ctx.pool
    page_rows = ctx.page_rows
    key_width = len(group_idx)
    grant = ctx.memory.grant(node.op_id, node.params.get("mem_pages"))
    fanout = max(2, min(node.params.get("fanout", DEFAULT_FANOUT),
                        grant.pages))
    parts = [_AggPartition() for _ in range(fanout)]

    # Reuse the join's deterministic partition hash so both governed
    # operators split state the same way.
    from repro.engine.operators.hash_join import _partition_of

    def spill_largest() -> int:
        """Spill the largest resident partition's state; pages written."""
        victim = max(
            (p for p in parts if not p.spilled and p.groups),
            key=lambda p: len(p.groups),
        )
        if victim.file is None:
            victim.file = pool.spill_file(page_rows)
        written = victim.file.append_rows(
            _state_row(key, accumulators)
            for key, accumulators in victim.groups.items()
        )
        victim.groups = None
        return written

    # Input phase: fold rows into partitioned group state, spilling
    # the largest partition whenever the grant is exceeded.
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        cost = costs.agg_update * len(page)
        for row in page.rows:
            key = tuple(row[i] for i in group_idx)
            p = parts[_partition_of(key, 0, fanout)]
            if p.spilled:
                fresh = [Accumulator(spec.func) for spec in aggs]
                for accumulator, fn in zip(fresh, value_fns):
                    accumulator.update(fn(row))
                cost += costs.spill_page * p.file.append_rows(
                    (_state_row(key, fresh),)
                )
            else:
                accumulators = p.groups.get(key)
                if accumulators is None:
                    accumulators = [Accumulator(spec.func) for spec in aggs]
                    p.groups[key] = accumulators
                for accumulator, fn in zip(accumulators, value_fns):
                    accumulator.update(fn(row))
        while _group_pages(parts, page_rows) > grant.pages:
            cost += costs.spill_page * spill_largest()
        grant.resize_used(_group_pages(parts, page_rows))
        yield Compute(cost)

    # Finalize: resident partitions emit directly; spilled partitions
    # re-read and merge their state runs (overcommitting at the floor
    # if a single partition still exceeds the grant).
    output = []
    for p in parts:
        if not p.spilled:
            output.extend(
                key + tuple(a.result() for a in p.groups[key])
                for key in p.groups
            )
            p.groups = None
            continue
        seal = costs.spill_page * p.file.flush()
        if seal:
            yield Compute(seal)
        grant.resize_used(p.file.page_count)
        merged: dict = {}
        # Stream the state run back through a prefetched cursor: the
        # absorb CPU of this page drains the next pages' reads.
        reader = SpillCursor(p.file, costs.io_page, ctx.spill_prefetch)
        credit = 0.0
        while not reader.exhausted:
            spill_page, stall = reader.next_page(credit)
            for row in spill_page.rows:
                _absorb_state_row(merged, row, key_width, aggs)
            credit = costs.agg_update * len(spill_page)
            yield Compute(credit + stall, io=stall)
        output.extend(
            key + tuple(a.result() for a in merged[key])
            for key in merged
        )
        p.file.drop()
    grant.resize_used(0)

    emitter = OutputEmitter(out_queues, ctx.page_rows, costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    output.sort(key=lambda row: _sort_key(row[:key_width]))
    if output:
        yield Compute(costs.agg_emit * len(output))
    yield from emitter.emit(output)
    yield from emitter.close()
    grant.close()
