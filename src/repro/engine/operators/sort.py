"""Sort stage (stop-&-go), with grant-governed external merge.

Without memory governance (``ctx.memory is None``) the stage buffers
its entire input, sorts by the key list, then streams the sorted rows
out — exactly as the seed did. Multi-key ordering with mixed
ascending/descending directions is implemented as stable sorts applied
from the least to the most significant key group, each group compared
through one composite ``itemgetter`` key.

With a :class:`~repro.engine.memory.MemoryBroker` attached it becomes
an **external-merge sort** with **replacement-selection** run
generation: a selection heap of ``grant.pages`` pages of rows emits
its minimum to the current run through a
:class:`~repro.storage.buffer.SpillFile` (``spill_page`` per page)
each time a new row must be admitted. An incoming row whose key is
not below the last row written joins the current run's heap; one that
is goes to a side buffer for the *next* run. The current run ends
only when every held row belongs to the next run, so runs average
twice the memory budget on random input and a single run covers
arbitrarily long sorted stretches — the tournament-tree property that
makes partially ordered inputs cheap (fewer runs, fewer merge
passes). Reverse-ordered input degenerates to one-memory-load runs,
the old cut-a-run-per-budget behavior, so ``ceil(n / budget_rows)``
is the run-count ceiling.

After input closes, the runs are merged with a budget-bounded k-way
merge: the fan-in is ``grant.pages - 1`` (one page reserved for
output) but never below 2 — at 1- and 2-page grants a two-way merge
needs three working pages, so the merge floor overcommits and the
broker records it, the same degrade-don't-fail contract as the hash
join's recursion floor. When the run count exceeds the fan-in the
runs are merged in batches into longer runs — recursive merge
passes, classic external-sort arithmetic
(:func:`plan_merge_passes`). Run read-back streams through
:class:`~repro.storage.spill_cursor.SpillCursor`, so the merge's
per-page CPU drains the next spill pages' ``io_page`` cost instead
of stalling on it.

The output is *identical* to the in-memory path at every budget —
including tie order. Every spilled row carries its arrival sequence
number; the heap orders by ``(key, seq)`` and the merge breaks key
ties by that sequence number, which reproduces the global stable sort
even though replacement selection can place a later-arriving row in
an earlier run than an equal-keyed predecessor. Order-sensitive
consumers (limit, merge join) therefore see exactly the rows they
would have seen unbounded.
"""

from __future__ import annotations

import heapq
from operator import itemgetter

from repro.engine.operators.api import BatchOperator, drive
from repro.errors import EngineError
from repro.sim.events import Compute
from repro.storage.spill_cursor import SpillCursor

__all__ = ["SortOperator", "task", "sort_rows", "merge_key", "plan_merge_passes"]


def _key_groups(schema, keys):
    """Column-index groups of consecutive keys sharing a direction.

    ``[("a", True), ("b", True), ("c", False)]`` becomes
    ``[([ia, ib], True), ([ic], False)]``: one stable multi-column sort
    per direction group instead of one full pass per key.
    """
    groups: list[tuple[list[int], bool]] = []
    for name, ascending in keys:
        index = schema.index_of(name)
        ascending = bool(ascending)
        if groups and groups[-1][1] == ascending:
            groups[-1][0].append(index)
        else:
            groups.append(([index], ascending))
    return groups


def sort_rows(rows, schema, keys):
    """Pure function: rows ordered by ``(column, ascending)`` keys.

    Stable sorts applied from the least to the most significant key
    group; within a group a single ``itemgetter`` composite key avoids
    re-scanning all rows once per column.
    """
    ordered = list(rows)
    for indices, ascending in reversed(_key_groups(schema, keys)):
        ordered.sort(key=itemgetter(*indices), reverse=not ascending)
    return ordered


class _Descending:
    """Order-inverting wrapper for descending keys in the merge heap.

    Descending string (or other non-negatable) columns cannot be
    expressed by numeric negation, so the k-way merge wraps them in a
    comparator that flips ``<`` while keeping ``==``.
    """

    __slots__ = ("value",)

    def __init__(self, value) -> None:
        self.value = value

    def __lt__(self, other) -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return self.value == other.value


def merge_key(schema, keys):
    """A total-order key function equivalent to :func:`sort_rows`.

    ``sorted(rows, key=merge_key(schema, keys))`` produces exactly
    ``sort_rows(rows, schema, keys)`` (both are stable); the external
    merge uses it to compare run heads.
    """
    parts = tuple((schema.index_of(name), bool(asc)) for name, asc in keys)

    def key(row):
        return tuple(row[i] if asc else _Descending(row[i]) for i, asc in parts)

    return key


def plan_merge_passes(run_count: int, fan_in: int) -> int:
    """Merge passes (including the final one) the grant implies.

    With ``r`` initial runs and fan-in ``f``, every intermediate pass
    shrinks the run count to ``ceil(r / f)`` until at most ``f`` runs
    remain for the final, emitting pass.
    """
    if fan_in < 2:
        raise EngineError(f"merge fan-in must be >= 2, got {fan_in}")
    if run_count <= 0:
        return 0
    passes = 1
    while run_count > fan_in:
        run_count = -(-run_count // fan_in)
        passes += 1
    return passes


class SortOperator(BatchOperator):
    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        self.schema = node.children[0].schema
        self.keys = node.params["keys"]
        self.buffered: list[tuple] = []
        self.grant = None
        self.runs: list = []
        self.spilled_pages = 0
        self.make_emitter(len(node.schema))

    def open(self):
        ctx = self.ctx
        if ctx.memory is not None:
            self.grant = ctx.memory.grant(
                self.node.op_id, self.node.params.get("mem_pages")
            )
            self.budget_rows = self.grant.pages * ctx.page_rows
            self.key_fn = merge_key(self.schema, self.keys)
            # Replacement-selection state: the current run's selection
            # heap of (key, seq, row), rows deferred to the next run,
            # the page-sized output buffer, and the (key, seq) floor of
            # the last row written to the current run.
            self.select_heap: list = []
            self.deferred: list = []
            self.run_buffer: list = []
            self.run_file = None
            self.run_floor = None
            self._seq = 0
        return
        yield  # pragma: no cover

    def next_batch(self, batch, port):
        yield Compute(self.ctx.costs.sort_tuple * len(batch))
        if self.grant is None:
            self.buffered.extend(batch.rows)
            return
        heap = self.select_heap
        deferred = self.deferred
        key_fn = self.key_fn
        budget = self.budget_rows
        seq = self._seq
        for row in batch.rows:
            entry = (key_fn(row), seq, row)
            seq += 1
            if len(heap) + len(deferred) < budget:
                heapq.heappush(heap, entry)
                continue
            # Memory full: release one selection, then admit the row
            # into whichever run its key still fits.
            yield from self._select_one()
            if (entry[0], entry[1]) < self.run_floor:
                deferred.append(entry)
            else:
                heapq.heappush(heap, entry)
        self._seq = seq
        self.grant.resize_used(
            -(-(len(heap) + len(deferred)) // self.ctx.page_rows)
        )

    def finish(self):
        if self.grant is not None:
            yield from self._governed_finish()
            return
        emitter = self.emitter
        if self.buffered:
            # The in-memory sort itself; the per-tuple constant subsumes
            # the log factor at the engine's buffer sizes.
            yield Compute(self.ctx.costs.sort_tuple * len(self.buffered))
            yield from emitter.emit_rows(
                sort_rows(self.buffered, self.schema, self.keys)
            )
        yield from emitter.close()

    # -- memory-governed external-merge sort -----------------------------

    def _select_one(self):
        """Release one replacement selection into the current run.

        When the current run's heap has drained, the run is sealed and
        the deferred rows become the next run's heap. Spilled rows are
        tagged with their arrival sequence number so the merge can
        reproduce the stable tie order across runs.
        """
        ctx = self.ctx
        heap = self.select_heap
        if not heap:
            yield from self._close_run()
            heap.extend(self.deferred)
            heapq.heapify(heap)
            self.deferred.clear()
        key, seq, row = heapq.heappop(heap)
        self.run_floor = (key, seq)
        if self.run_file is None:
            self.run_file = ctx.pool.spill_file(ctx.page_rows)
            self.runs.append(self.run_file)
        self.run_buffer.append(row + (seq,))
        if len(self.run_buffer) >= ctx.page_rows:
            yield from self._flush_run_page()

    def _flush_run_page(self):
        """Write the buffered output page; cost charged per page — the
        engine's cost granularity everywhere else — so a long run never
        stalls the producer behind one giant compute burst."""
        costs = self.ctx.costs
        chunk = self.run_buffer
        self.run_buffer = []
        written = self.run_file.append_rows(chunk)
        yield Compute(costs.sort_tuple * len(chunk) + costs.spill_page * written)

    def _close_run(self):
        if self.run_file is None:
            return
        if self.run_buffer:
            yield from self._flush_run_page()
        written = self.run_file.flush()
        if written:
            yield Compute(self.ctx.costs.spill_page * written)
        self.spilled_pages += self.run_file.page_count
        self.run_file = None
        self.run_floor = None

    def _governed_finish(self):
        ctx = self.ctx
        costs = ctx.costs
        grant = self.grant
        emitter = self.emitter

        if not self.runs:
            # Everything fit in the grant: the in-memory path, bit-for-bit.
            # Heap entries sort by (key, seq) — the stable key order.
            if self.select_heap:
                yield Compute(costs.sort_tuple * len(self.select_heap))
                yield from emitter.emit_rows(
                    [row for _, _, row in sorted(self.select_heap)]
                )
            grant.note(sort_runs=0, merge_passes=0, spilled_pages=0)
            yield from emitter.close()
            grant.close()
            return

        while self.select_heap or self.deferred:
            yield from self._select_one()
        yield from self._close_run()
        grant.resize_used(0)

        # Merge: fan-in bounded by the grant (one page reserved for the
        # output buffer); recursive passes while runs outnumber it. The
        # floor of 2 overcommits 1- and 2-page grants (the broker
        # records it) — merging any narrower is impossible.
        fan_in = max(2, grant.pages - 1)
        runs = self.runs
        initial_runs = len(runs)
        merge_passes = 0
        while len(runs) > fan_in:
            merge_passes += 1
            next_runs: list = []
            for start in range(0, len(runs), fan_in):
                batch = runs[start : start + fan_in]
                if len(batch) == 1:
                    # A trailing singleton batch is already a sorted run;
                    # copying it through the merge would be pure waste.
                    next_runs.append(batch[0])
                    continue
                out_file = ctx.pool.spill_file(ctx.page_rows)
                written = yield from _merge_runs(
                    batch, ctx, self.key_fn, grant, out_file=out_file
                )
                self.spilled_pages += written
                next_runs.append(out_file)
            runs = next_runs
        merge_passes += 1
        yield from _merge_runs(runs, ctx, self.key_fn, grant, emitter=emitter)
        grant.resize_used(0)
        grant.note(
            sort_runs=initial_runs,
            merge_passes=merge_passes,
            spilled_pages=self.spilled_pages,
        )
        yield from emitter.close()
        grant.close()


def _merge_runs(files, ctx, key_fn, grant, out_file=None, emitter=None):
    """K-way merge of sorted runs; returns spill pages written.

    Exactly one of ``out_file`` (intermediate pass) and ``emitter``
    (final pass) is used. Input runs stream through
    :class:`SpillCursor`s — one sequential prefetch pipeline per run —
    with the merge's per-page CPU as the drain credit, and are dropped
    once consumed. Run rows carry a trailing arrival sequence number
    (unique across the whole input); key ties break by it, preserving
    the global stable order even when replacement selection has placed
    a later arrival in an earlier run. Intermediate passes keep the
    tag; the final pass strips it before emitting.
    """
    costs = ctx.costs
    cursors = [SpillCursor(f, costs.io_page, ctx.spill_prefetch) for f in files]
    buffers: list[list] = [[] for _ in files]
    last_clock = [0.0] * len(files)
    clock = 0.0
    written = 0
    # One page of working memory per input run, plus the output buffer.
    grant.resize_used(len(files) + 1)

    def fetch(index: int):
        nonlocal clock
        cursor = cursors[index]
        if cursor.exhausted:
            return
        credit = clock - last_clock[index]
        last_clock[index] = clock
        page, stall = cursor.next_page(credit)
        cpu = costs.sort_tuple * len(page)
        clock += cpu
        yield Compute(cpu + stall, io=stall)
        rows = list(page.rows)
        rows.reverse()
        buffers[index] = rows

    heap: list = []
    for index in range(len(files)):
        yield from fetch(index)
        if buffers[index]:
            row = buffers[index].pop()
            heapq.heappush(heap, (key_fn(row), row[-1], index, row))

    while heap:
        _, _, index, row = heapq.heappop(heap)
        if out_file is not None:
            pages_out = out_file.append_rows((row,))
            if pages_out:
                written += pages_out
                yield Compute(costs.spill_page * pages_out)
        else:
            yield from emitter.emit_rows((row[:-1],))
        if not buffers[index]:
            yield from fetch(index)
        if buffers[index]:
            nxt = buffers[index].pop()
            heapq.heappush(heap, (key_fn(nxt), nxt[-1], index, nxt))

    if out_file is not None:
        pages_out = out_file.flush()
        if pages_out:
            written += pages_out
            yield Compute(costs.spill_page * pages_out)
    for spent in files:
        spent.drop()
    return written


def task(node, in_queues, out_queues, ctx):
    return drive(SortOperator(node, ctx, out_queues), in_queues)
