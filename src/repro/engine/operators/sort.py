"""Sort stage (stop-&-go).

Buffers its entire input, sorts by the key list, then streams the
sorted rows out. Multi-key ordering with mixed ascending/descending
directions is implemented as stable sorts applied from the least to
the most significant key.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "sort_rows"]


def sort_rows(rows, schema, keys):
    """Pure function: rows ordered by ``(column, ascending)`` keys."""
    ordered = list(rows)
    for name, ascending in reversed(list(keys)):
        index = schema.index_of(name)
        ordered.sort(key=lambda row: row[index], reverse=not ascending)
    return ordered


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    schema = node.children[0].schema
    keys = node.params["keys"]
    buffered: list[tuple] = []
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.sort_tuple * len(page))
        buffered.extend(page.rows)

    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema))
    if buffered:
        # The in-memory sort itself; the per-tuple constant subsumes the
        # log factor at the engine's buffer sizes.
        yield Compute(ctx.costs.sort_tuple * len(buffered))
        yield from emitter.emit(sort_rows(buffered, schema, keys))
    yield from emitter.close()
