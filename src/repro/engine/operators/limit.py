"""Limit stage: pass through the first N rows, then stop.

Early termination matters for the staged engine: once the quota is
reached the stage closes its consumers *and drains* its input (the
producer may already be blocked on a full queue; abandoning the queue
would deadlock the pipeline). Draining charges no compute — the
upstream work is wasted, as it is in any engine without limit
pushdown.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "limit_rows"]


def limit_rows(rows, n):
    """Pure function: the first ``n`` rows."""
    return list(rows[:n])


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    remaining = node.params["count"]
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        if remaining > 0:
            take = page.rows[:remaining]
            remaining -= len(take)
            yield Compute(ctx.costs.project_tuple * len(take))
            yield from emitter.emit(take)
        # Keep draining after the quota so producers never deadlock on
        # full queues.
    yield from emitter.close()
