"""Limit stage: pass through the first N rows, then stop.

Early termination matters for the staged engine: once the quota is
reached the stage closes its consumers *and drains* its input (the
producer may already be blocked on a full queue; abandoning the queue
would deadlock the pipeline). Draining charges no compute — the
upstream work is wasted, as it is in any engine without limit
pushdown.
"""

from __future__ import annotations

from repro.engine.operators.api import BatchOperator, drive
from repro.sim.events import Compute

__all__ = ["LimitOperator", "task", "limit_rows"]


def limit_rows(rows, n):
    """Pure function: the first ``n`` rows."""
    return list(rows[:n])


class LimitOperator(BatchOperator):
    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        self.remaining = node.params["count"]
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port):
        if self.remaining > 0:
            n = len(batch)
            take = min(n, self.remaining)
            self.remaining -= take
            yield Compute(self.ctx.costs.project_tuple * take)
            if take == n:
                # Whole batch survives: forward it without re-rowing.
                yield from self.emitter.emit_batch(batch)
            else:
                yield from self.emitter.emit_rows(batch.rows[:take])
        # Keep draining after the quota so producers never deadlock on
        # full queues.


def task(node, in_queues, out_queues, ctx):
    return drive(LimitOperator(node, ctx, out_queues), in_queues)
