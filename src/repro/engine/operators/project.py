"""Projection stage: computes output columns from input rows."""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "project_rows"]


def project_rows(rows, output_fns):
    """Pure function: apply each compiled output expression per row."""
    return [tuple(fn(row) for fn in output_fns) for row in rows]


def task(node, in_queues, out_queues, ctx):
    (in_q,) = in_queues
    child_schema = node.children[0].schema
    fns = [expr.compile(child_schema) for _, expr, _ in node.params["outputs"]]
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(in_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.project_tuple * len(page) * len(fns))
        yield from emitter.emit(project_rows(page.rows, fns))
    yield from emitter.close()
