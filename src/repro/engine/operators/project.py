"""Projection stage: computes output columns from input rows.

Vectorized, each output expression is batch-compiled and evaluated
column-at-a-time over the input batch's columns; the stage builds the
output batch directly in columnar form.
"""

from __future__ import annotations

from repro.engine.expressions import try_compile_batch
from repro.engine.operators.api import BatchOperator, drive
from repro.engine.packet import RowBatch
from repro.sim.events import Compute

__all__ = ["ProjectOperator", "task", "project_rows"]


def project_rows(rows, output_fns):
    """Pure function: apply each compiled output expression per row."""
    return [tuple(fn(row) for fn in output_fns) for row in rows]


class ProjectOperator(BatchOperator):
    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        schema = node.children[0].schema
        outputs = node.params["outputs"]
        self.fns = [expr.compile(schema) for _, expr, _ in outputs]
        batch_fns = (
            [try_compile_batch(expr, schema) for _, expr, _ in outputs]
            if ctx.vectorize
            else None
        )
        if batch_fns is not None and any(fn is None for fn in batch_fns):
            batch_fns = None
        self.batch_fns = batch_fns
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port):
        n = len(batch)
        yield Compute(self.ctx.costs.project_tuple * n * len(self.fns))
        if self.batch_fns is not None:
            cols = batch.columns
            out = RowBatch.from_columns([fn(cols, n) for fn in self.batch_fns], n)
            yield from self.emitter.emit_batch(out)
        else:
            yield from self.emitter.emit_rows(project_rows(batch.rows, self.fns))


def task(node, in_queues, out_queues, ctx):
    return drive(ProjectOperator(node, ctx, out_queues), in_queues)
