"""Hash join stage: stop-&-go build, pipelined probe (Section 5.3.3).

Child 0 is the build side, child 1 the probe side. The build phase
drains its input into a hash table keyed on ``build_key``; the probe
phase then streams, emitting per ``join_type``:

* ``inner`` — one output row per (probe, build) match:
  probe columns ++ build columns;
* ``left``  — like inner, plus unmatched probe rows padded with NULL
  build columns (TPC-H Q13's customer-orders join);
* ``semi``  — probe rows with at least one match, probe columns only
  (TPC-H Q4's EXISTS);
* ``anti``  — probe rows with no match, probe columns only.

Vectorized, the join key column is pulled out of each batch once (the
batch is columnar, so this is a single list reference) and the
build/probe loops walk ``zip(keys, rows)`` instead of indexing into
every row tuple.

Without memory governance (``ctx.memory is None``) the stage holds its
entire build side, exactly as the seed did. With a
:class:`~repro.engine.memory.MemoryBroker` attached it becomes a
**spilling hybrid hash join** in the style of Jahangiri, Carey &
Freytag (2021): the build side is split into ``fanout`` partitions;
while the resident partitions fit the operator's memory grant they
stay in memory as ready-to-probe hash tables, and when the grant is
exceeded the largest resident partition is spilled — written page by
page through the buffer pool (``spill_page`` per page), with later
build rows for it appended to its spill file. Probe rows for resident
partitions stream through pipelined as usual; probe rows for spilled
partitions are spilled alongside. A cleanup phase then joins each
spilled partition pair, recursing with a fresh hash salt when a
partition alone still exceeds the grant; at the recursion floor the
partition is processed in memory regardless (the broker records an
overcommit), so shrinking ``work_mem`` degrades cost smoothly and can
never fail the query.
"""

from __future__ import annotations

import zlib

from repro.engine.operators.api import BatchOperator, drive
from repro.sim.events import Compute
from repro.storage.spill_cursor import SpillCursor

__all__ = ["HashJoinOperator", "task", "build_table", "probe_rows"]

# Build-side partitions at every level of the hybrid join. The actual
# fanout is clamped to the memory grant (more partitions than budget
# pages just forces spills of near-empty partitions).
DEFAULT_FANOUT = 8
# Beyond this partitioning depth a partition is joined in memory even
# if over budget: repeated splitting has failed (heavy key skew), and
# overcommitting is better than recursing forever.
MAX_RECURSION_DEPTH = 3


def build_table(build_rows, key_index):
    """Pure function: the join hash table key -> list of build rows."""
    table: dict = {}
    for row in build_rows:
        table.setdefault(row[key_index], []).append(row)
    return table


def probe_rows(rows, table, key_index, join_type, build_width):
    """Pure function: join output for a batch of probe rows."""
    return _probe_keyed(
        rows, [row[key_index] for row in rows], table, join_type, build_width
    )


def _probe_keyed(rows, keys, table, join_type, build_width):
    """Join output for probe rows whose keys are already extracted."""
    output = []
    if join_type == "inner":
        get = table.get
        for key, row in zip(keys, rows):
            for match in get(key, ()):
                output.append(row + match)
    elif join_type == "left":
        nulls = (None,) * build_width
        get = table.get
        for key, row in zip(keys, rows):
            matches = get(key)
            if matches:
                for match in matches:
                    output.append(row + match)
            else:
                output.append(row + nulls)
    elif join_type == "semi":
        for key, row in zip(keys, rows):
            if key in table:
                output.append(row)
    elif join_type == "anti":
        for key, row in zip(keys, rows):
            if key not in table:
                output.append(row)
    else:  # pragma: no cover - plan constructor validates
        raise AssertionError(f"unknown join type {join_type!r}")
    return output


def _partition_of(key, salt: int, fanout: int) -> int:
    """Deterministic partition number, independent of PYTHONHASHSEED.

    ``salt`` varies per recursion level so that a partition which does
    not fit is re-split along a different boundary.
    """
    return zlib.crc32(f"{salt}|{key!r}".encode()) % fanout


class _Partition:
    """One build-side partition: resident hash table or spill files."""

    __slots__ = ("table", "rows", "build_file", "probe_file")

    def __init__(self) -> None:
        self.table: dict | None = {}
        self.rows = 0
        self.build_file = None
        self.probe_file = None

    @property
    def spilled(self) -> bool:
        return self.table is None


def _resident_pages(parts, page_rows: int) -> int:
    """Pages held by resident partitions (each holds its own pages)."""
    return sum(
        -(-p.rows // page_rows) for p in parts if not p.spilled and p.rows
    )


class HashJoinOperator(BatchOperator):
    ports = 2

    def __init__(self, node, ctx, out_queues):
        super().__init__(node, ctx, out_queues)
        build_schema, probe_schema = (child.schema for child in node.children)
        self.build_index = build_schema.index_of(node.params["build_key"])
        self.probe_index = probe_schema.index_of(node.params["probe_key"])
        self.join_type = node.params["join_type"]
        self.build_width = len(build_schema)
        self.table: dict = {}
        self.grant = None
        self.make_emitter(len(node.schema))

    def _keys(self, batch, index):
        """The join-key column of one batch."""
        if self.ctx.vectorize:
            return batch.column(index)
        return [row[index] for row in batch.rows]

    # -- protocol --------------------------------------------------------

    def open(self):
        ctx = self.ctx
        if ctx.memory is not None:
            self.grant = ctx.memory.grant(
                self.node.op_id, self.node.params.get("mem_pages")
            )
            self.fanout = max(
                2,
                min(self.node.params.get("fanout", DEFAULT_FANOUT),
                    self.grant.pages),
            )
            self.parts = [_Partition() for _ in range(self.fanout)]
        return
        yield  # pragma: no cover

    def next_batch(self, batch, port):
        if port == 0:
            if self.grant is not None:
                yield from self._governed_build(batch)
            else:
                yield Compute(self.ctx.costs.hash_build * len(batch))
                table = self.table
                keys = self._keys(batch, self.build_index)
                for key, row in zip(keys, batch.rows):
                    table.setdefault(key, []).append(row)
            return
        if self.grant is not None:
            yield from self._governed_probe(batch)
            return
        yield Compute(self.ctx.costs.hash_probe * len(batch))
        joined = _probe_keyed(
            batch.rows, self._keys(batch, self.probe_index),
            self.table, self.join_type, self.build_width,
        )
        if joined:
            yield Compute(self.ctx.costs.join_emit * len(joined))
            yield from self.emitter.emit_rows(joined)

    def close_port(self, port):
        if port == 0 and self.grant is not None:
            # Seal spilled build files (a partial trailing page still
            # costs a write when it goes out).
            seal_cost = sum(
                self.ctx.costs.spill_page * p.build_file.flush()
                for p in self.parts if p.spilled
            )
            if seal_cost:
                yield Compute(seal_cost)

    def finish(self):
        if self.grant is None:
            yield from self.emitter.close()
            return
        # Resident partitions are fully probed; release their memory
        # before the cleanup phase claims pages for re-reading runs.
        for p in self.parts:
            if not p.spilled:
                p.table = None
                p.rows = 0
        self.grant.resize_used(0)
        # Cleanup phase: join every spilled partition pair, recursively.
        costs = self.ctx.costs
        for p in self.parts:
            if p.build_file is None:
                continue
            if p.probe_file is not None:
                seal = costs.spill_page * p.probe_file.flush()
                if seal:
                    yield Compute(seal)
            yield from _join_spilled(
                p.build_file, p.probe_file, 1, self.ctx, self.grant,
                self.emitter, self.build_index, self.probe_index,
                self.join_type, self.build_width, self.fanout,
            )
        yield from self.emitter.close()
        self.grant.close()

    # -- memory-governed hybrid phases -----------------------------------

    def _spill_largest(self) -> int:
        """Evict the largest resident partition; returns pages written."""
        victim = max(
            (p for p in self.parts if not p.spilled and p.rows),
            key=lambda p: p.rows,
        )
        rows = [row for bucket in victim.table.values() for row in bucket]
        victim.build_file = self.ctx.pool.spill_file(self.ctx.page_rows)
        written = victim.build_file.append_rows(rows)
        victim.table = None
        victim.rows = 0
        return written

    def _governed_build(self, batch):
        """Partition one build batch into resident hash tables, spilling
        the largest partition whenever the grant is exceeded."""
        costs = self.ctx.costs
        page_rows = self.ctx.page_rows
        parts = self.parts
        fanout = self.fanout
        grant = self.grant
        cost = costs.hash_build * len(batch)
        keys = self._keys(batch, self.build_index)
        for key, row in zip(keys, batch.rows):
            p = parts[_partition_of(key, 0, fanout)]
            if p.spilled:
                cost += costs.spill_page * p.build_file.append_rows((row,))
            else:
                p.table.setdefault(key, []).append(row)
                p.rows += 1
        while _resident_pages(parts, page_rows) > grant.pages:
            cost += costs.spill_page * self._spill_largest()
        grant.resize_used(_resident_pages(parts, page_rows))
        yield Compute(cost)

    def _governed_probe(self, batch):
        """Probe resident partitions pipelined; buffer probe rows of
        spilled partitions in spill files."""
        ctx = self.ctx
        costs = ctx.costs
        parts = self.parts
        fanout = self.fanout
        cost = costs.hash_probe * len(batch)
        joined = []
        keys = self._keys(batch, self.probe_index)
        for key, row in zip(keys, batch.rows):
            p = parts[_partition_of(key, 0, fanout)]
            if p.spilled:
                if p.probe_file is None:
                    p.probe_file = ctx.pool.spill_file(ctx.page_rows)
                cost += costs.spill_page * p.probe_file.append_rows((row,))
            else:
                joined.extend(
                    _probe_keyed((row,), (key,), p.table, self.join_type,
                                 self.build_width)
                )
        yield Compute(cost)
        if joined:
            yield Compute(costs.join_emit * len(joined))
            yield from self.emitter.emit_rows(joined)


def _join_spilled(build_file, probe_file, depth, ctx, grant, emitter,
                  build_index, probe_index, join_type, build_width, fanout):
    """Join one spilled (build, probe) partition pair."""
    costs = ctx.costs
    pool = ctx.pool
    page_rows = ctx.page_rows

    if probe_file is None or probe_file.row_count == 0:
        # No probe rows landed here: every join type emits per probe
        # row, so there is nothing to produce.
        build_file.drop()
        if probe_file is not None:
            probe_file.drop()
        return

    fits = build_file.page_count <= grant.pages
    if fits or depth >= MAX_RECURSION_DEPTH or build_file.page_count <= 1:
        # Re-read the build run page by page through a prefetched
        # cursor — hashing this page drains the next pages' reads —
        # rebuild the hash table, then stream the probe run the same
        # way. At the recursion floor this may exceed the grant; the
        # broker records the overcommit.
        grant.resize_used(build_file.page_count)
        table: dict = {}
        reader = SpillCursor(build_file, costs.io_page, ctx.spill_prefetch)
        credit = 0.0
        while not reader.exhausted:
            page, stall = reader.next_page(credit)
            credit = costs.hash_build * len(page)
            yield Compute(credit + stall, io=stall)
            for row in page.rows:
                table.setdefault(row[build_index], []).append(row)
        reader = SpillCursor(probe_file, costs.io_page, ctx.spill_prefetch)
        credit = 0.0
        while not reader.exhausted:
            page, stall = reader.next_page(credit)
            credit = costs.hash_probe * len(page)
            yield Compute(credit + stall, io=stall)
            joined = probe_rows(page.rows, table, probe_index, join_type,
                                build_width)
            if joined:
                emit_cost = costs.join_emit * len(joined)
                credit += emit_cost
                yield Compute(emit_cost)
                yield from emitter.emit_rows(joined)
        grant.resize_used(0)
        build_file.drop()
        probe_file.drop()
        return

    # The partition alone exceeds the grant: re-partition both runs
    # with this level's hash salt and recurse (Grace-style).
    sub_build = [pool.spill_file(page_rows) for _ in range(fanout)]
    sub_probe = [pool.spill_file(page_rows) for _ in range(fanout)]
    for files, source, key_index in (
        (sub_build, build_file, build_index),
        (sub_probe, probe_file, probe_index),
    ):
        reader = SpillCursor(source, costs.io_page, ctx.spill_prefetch)
        while not reader.exhausted:
            # No drain credit: the per-page work here is spill-write
            # disk cost, not CPU — the sequential disk cannot read
            # ahead while it is busy writing the partitions.
            page, stall = reader.next_page(0.0)
            cost = 0.0
            for row in page.rows:
                target = files[_partition_of(row[key_index], depth, fanout)]
                cost += costs.spill_page * target.append_rows((row,))
            yield Compute(cost + stall, io=stall)
        seal = sum(costs.spill_page * f.flush() for f in files)
        if seal:
            yield Compute(seal)
        source.drop()
    for sub_b, sub_p in zip(sub_build, sub_probe):
        yield from _join_spilled(
            sub_b, sub_p, depth + 1, ctx, grant, emitter,
            build_index, probe_index, join_type, build_width, fanout,
        )


def task(node, in_queues, out_queues, ctx):
    return drive(HashJoinOperator(node, ctx, out_queues), in_queues)
