"""Hash join stage: stop-&-go build, pipelined probe (Section 5.3.3).

Child 0 is the build side, child 1 the probe side. The build phase
drains its input into a hash table keyed on ``build_key``; the probe
phase then streams, emitting per ``join_type``:

* ``inner`` — one output row per (probe, build) match:
  probe columns ++ build columns;
* ``left``  — like inner, plus unmatched probe rows padded with NULL
  build columns (TPC-H Q13's customer-orders join);
* ``semi``  — probe rows with at least one match, probe columns only
  (TPC-H Q4's EXISTS);
* ``anti``  — probe rows with no match, probe columns only.
"""

from __future__ import annotations

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get

__all__ = ["task", "build_table", "probe_rows"]


def build_table(build_rows, key_index):
    """Pure function: the join hash table key -> list of build rows."""
    table: dict = {}
    for row in build_rows:
        table.setdefault(row[key_index], []).append(row)
    return table


def probe_rows(rows, table, key_index, join_type, build_width):
    """Pure function: join output for a batch of probe rows."""
    output = []
    if join_type == "inner":
        for row in rows:
            for match in table.get(row[key_index], ()):
                output.append(row + match)
    elif join_type == "left":
        nulls = (None,) * build_width
        for row in rows:
            matches = table.get(row[key_index])
            if matches:
                for match in matches:
                    output.append(row + match)
            else:
                output.append(row + nulls)
    elif join_type == "semi":
        for row in rows:
            if row[key_index] in table:
                output.append(row)
    elif join_type == "anti":
        for row in rows:
            if row[key_index] not in table:
                output.append(row)
    else:  # pragma: no cover - plan constructor validates
        raise AssertionError(f"unknown join type {join_type!r}")
    return output


def task(node, in_queues, out_queues, ctx):
    build_q, probe_q = in_queues
    build_schema, probe_schema = (child.schema for child in node.children)
    build_index = build_schema.index_of(node.params["build_key"])
    probe_index = probe_schema.index_of(node.params["probe_key"])
    join_type = node.params["join_type"]
    build_width = len(build_schema)

    # Build phase (stop-&-go): drain the build input completely.
    table: dict = {}
    while True:
        page = yield Get(build_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.hash_build * len(page))
        for row in page.rows:
            table.setdefault(row[build_index], []).append(row)

    # Probe phase: fully pipelined.
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema))
    while True:
        page = yield Get(probe_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.hash_probe * len(page))
        joined = probe_rows(page.rows, table, probe_index, join_type, build_width)
        if joined:
            yield Compute(ctx.costs.join_emit * len(joined))
            yield from emitter.emit(joined)
    yield from emitter.close()
