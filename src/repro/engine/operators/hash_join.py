"""Hash join stage: stop-&-go build, pipelined probe (Section 5.3.3).

Child 0 is the build side, child 1 the probe side. The build phase
drains its input into a hash table keyed on ``build_key``; the probe
phase then streams, emitting per ``join_type``:

* ``inner`` — one output row per (probe, build) match:
  probe columns ++ build columns;
* ``left``  — like inner, plus unmatched probe rows padded with NULL
  build columns (TPC-H Q13's customer-orders join);
* ``semi``  — probe rows with at least one match, probe columns only
  (TPC-H Q4's EXISTS);
* ``anti``  — probe rows with no match, probe columns only.

Without memory governance (``ctx.memory is None``) the stage holds its
entire build side, exactly as the seed did. With a
:class:`~repro.engine.memory.MemoryBroker` attached it becomes a
**spilling hybrid hash join** in the style of Jahangiri, Carey &
Freytag (2021): the build side is split into ``fanout`` partitions;
while the resident partitions fit the operator's memory grant they
stay in memory as ready-to-probe hash tables, and when the grant is
exceeded the largest resident partition is spilled — written page by
page through the buffer pool (``spill_page`` per page), with later
build rows for it appended to its spill file. Probe rows for resident
partitions stream through pipelined as usual; probe rows for spilled
partitions are spilled alongside. A cleanup phase then joins each
spilled partition pair, recursing with a fresh hash salt when a
partition alone still exceeds the grant; at the recursion floor the
partition is processed in memory regardless (the broker records an
overcommit), so shrinking ``work_mem`` degrades cost smoothly and can
never fail the query.
"""

from __future__ import annotations

import zlib

from repro.engine.stage import OutputEmitter
from repro.sim.events import CLOSED, Compute, Get
from repro.storage.spill_cursor import SpillCursor

__all__ = ["task", "build_table", "probe_rows"]

# Build-side partitions at every level of the hybrid join. The actual
# fanout is clamped to the memory grant (more partitions than budget
# pages just forces spills of near-empty partitions).
DEFAULT_FANOUT = 8
# Beyond this partitioning depth a partition is joined in memory even
# if over budget: repeated splitting has failed (heavy key skew), and
# overcommitting is better than recursing forever.
MAX_RECURSION_DEPTH = 3


def build_table(build_rows, key_index):
    """Pure function: the join hash table key -> list of build rows."""
    table: dict = {}
    for row in build_rows:
        table.setdefault(row[key_index], []).append(row)
    return table


def probe_rows(rows, table, key_index, join_type, build_width):
    """Pure function: join output for a batch of probe rows."""
    output = []
    if join_type == "inner":
        for row in rows:
            for match in table.get(row[key_index], ()):
                output.append(row + match)
    elif join_type == "left":
        nulls = (None,) * build_width
        for row in rows:
            matches = table.get(row[key_index])
            if matches:
                for match in matches:
                    output.append(row + match)
            else:
                output.append(row + nulls)
    elif join_type == "semi":
        for row in rows:
            if row[key_index] in table:
                output.append(row)
    elif join_type == "anti":
        for row in rows:
            if row[key_index] not in table:
                output.append(row)
    else:  # pragma: no cover - plan constructor validates
        raise AssertionError(f"unknown join type {join_type!r}")
    return output


def _partition_of(key, salt: int, fanout: int) -> int:
    """Deterministic partition number, independent of PYTHONHASHSEED.

    ``salt`` varies per recursion level so that a partition which does
    not fit is re-split along a different boundary.
    """
    return zlib.crc32(f"{salt}|{key!r}".encode()) % fanout


class _Partition:
    """One build-side partition: resident hash table or spill files."""

    __slots__ = ("table", "rows", "build_file", "probe_file")

    def __init__(self) -> None:
        self.table: dict | None = {}
        self.rows = 0
        self.build_file = None
        self.probe_file = None

    @property
    def spilled(self) -> bool:
        return self.table is None


def task(node, in_queues, out_queues, ctx):
    build_q, probe_q = in_queues
    build_schema, probe_schema = (child.schema for child in node.children)
    build_index = build_schema.index_of(node.params["build_key"])
    probe_index = probe_schema.index_of(node.params["probe_key"])
    join_type = node.params["join_type"]
    build_width = len(build_schema)

    if ctx.memory is not None:
        yield from _hybrid_task(
            node, build_q, probe_q, out_queues, ctx,
            build_index, probe_index, join_type, build_width,
        )
        return

    # Ungoverned path (the seed behavior): hold the whole build side.
    # Build phase (stop-&-go): drain the build input completely.
    table: dict = {}
    while True:
        page = yield Get(build_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.hash_build * len(page))
        for row in page.rows:
            table.setdefault(row[build_index], []).append(row)

    # Probe phase: fully pipelined.
    emitter = OutputEmitter(out_queues, ctx.page_rows, ctx.costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(probe_q)
        if page is CLOSED:
            break
        yield Compute(ctx.costs.hash_probe * len(page))
        joined = probe_rows(page.rows, table, probe_index, join_type, build_width)
        if joined:
            yield Compute(ctx.costs.join_emit * len(joined))
            yield from emitter.emit(joined)
    yield from emitter.close()


# ----------------------------------------------------------------------
# Memory-governed hybrid hash join
# ----------------------------------------------------------------------


def _resident_pages(parts, page_rows: int) -> int:
    """Pages held by resident partitions (each holds its own pages)."""
    return sum(
        -(-p.rows // page_rows) for p in parts if not p.spilled and p.rows
    )


def _hybrid_task(node, build_q, probe_q, out_queues, ctx,
                 build_index, probe_index, join_type, build_width):
    costs = ctx.costs
    pool = ctx.pool
    page_rows = ctx.page_rows
    grant = ctx.memory.grant(node.op_id, node.params.get("mem_pages"))
    fanout = max(2, min(node.params.get("fanout", DEFAULT_FANOUT), grant.pages))
    parts = [_Partition() for _ in range(fanout)]

    def spill_largest() -> int:
        """Evict the largest resident partition; returns pages written."""
        victim = max(
            (p for p in parts if not p.spilled and p.rows),
            key=lambda p: p.rows,
        )
        rows = [row for bucket in victim.table.values() for row in bucket]
        victim.build_file = pool.spill_file(page_rows)
        written = victim.build_file.append_rows(rows)
        victim.table = None
        victim.rows = 0
        return written

    # Build phase: partition into resident hash tables, spilling the
    # largest partition whenever the grant is exceeded.
    while True:
        page = yield Get(build_q)
        if page is CLOSED:
            break
        cost = costs.hash_build * len(page)
        for row in page.rows:
            p = parts[_partition_of(row[build_index], 0, fanout)]
            if p.spilled:
                cost += costs.spill_page * p.build_file.append_rows((row,))
            else:
                p.table.setdefault(row[build_index], []).append(row)
                p.rows += 1
        while _resident_pages(parts, page_rows) > grant.pages:
            cost += costs.spill_page * spill_largest()
        grant.resize_used(_resident_pages(parts, page_rows))
        yield Compute(cost)

    # Seal spilled build files (a partial trailing page still costs a
    # write when it goes out).
    seal_cost = sum(
        costs.spill_page * p.build_file.flush()
        for p in parts if p.spilled
    )
    if seal_cost:
        yield Compute(seal_cost)

    # Probe phase: resident partitions stream through pipelined;
    # spilled partitions buffer their probe rows in spill files.
    emitter = OutputEmitter(out_queues, ctx.page_rows, costs,
                            width=len(node.schema),
                            op=node.op_id, perf=ctx.perf)
    while True:
        page = yield Get(probe_q)
        if page is CLOSED:
            break
        cost = costs.hash_probe * len(page)
        joined = []
        for row in page.rows:
            p = parts[_partition_of(row[probe_index], 0, fanout)]
            if p.spilled:
                if p.probe_file is None:
                    p.probe_file = pool.spill_file(page_rows)
                cost += costs.spill_page * p.probe_file.append_rows((row,))
            else:
                joined.extend(
                    probe_rows((row,), p.table, probe_index, join_type,
                               build_width)
                )
        yield Compute(cost)
        if joined:
            yield Compute(costs.join_emit * len(joined))
            yield from emitter.emit(joined)

    # Resident partitions are fully probed; release their memory before
    # the cleanup phase claims pages for re-reading spilled runs.
    for p in parts:
        if not p.spilled:
            p.table = None
            p.rows = 0
    grant.resize_used(0)

    # Cleanup phase: join every spilled partition pair, recursively.
    for p in parts:
        if p.build_file is None:
            continue
        if p.probe_file is not None:
            seal = costs.spill_page * p.probe_file.flush()
            if seal:
                yield Compute(seal)
        yield from _join_spilled(
            p.build_file, p.probe_file, 1, ctx, grant, emitter,
            build_index, probe_index, join_type, build_width, fanout,
        )
    yield from emitter.close()
    grant.close()


def _join_spilled(build_file, probe_file, depth, ctx, grant, emitter,
                  build_index, probe_index, join_type, build_width, fanout):
    """Join one spilled (build, probe) partition pair."""
    costs = ctx.costs
    pool = ctx.pool
    page_rows = ctx.page_rows

    if probe_file is None or probe_file.row_count == 0:
        # No probe rows landed here: every join type emits per probe
        # row, so there is nothing to produce.
        build_file.drop()
        if probe_file is not None:
            probe_file.drop()
        return

    fits = build_file.page_count <= grant.pages
    if fits or depth >= MAX_RECURSION_DEPTH or build_file.page_count <= 1:
        # Re-read the build run page by page through a prefetched
        # cursor — hashing this page drains the next pages' reads —
        # rebuild the hash table, then stream the probe run the same
        # way. At the recursion floor this may exceed the grant; the
        # broker records the overcommit.
        grant.resize_used(build_file.page_count)
        table: dict = {}
        reader = SpillCursor(build_file, costs.io_page, ctx.spill_prefetch)
        credit = 0.0
        while not reader.exhausted:
            page, stall = reader.next_page(credit)
            credit = costs.hash_build * len(page)
            yield Compute(credit + stall, io=stall)
            for row in page.rows:
                table.setdefault(row[build_index], []).append(row)
        reader = SpillCursor(probe_file, costs.io_page, ctx.spill_prefetch)
        credit = 0.0
        while not reader.exhausted:
            page, stall = reader.next_page(credit)
            credit = costs.hash_probe * len(page)
            yield Compute(credit + stall, io=stall)
            joined = probe_rows(page.rows, table, probe_index, join_type,
                                build_width)
            if joined:
                emit_cost = costs.join_emit * len(joined)
                credit += emit_cost
                yield Compute(emit_cost)
                yield from emitter.emit(joined)
        grant.resize_used(0)
        build_file.drop()
        probe_file.drop()
        return

    # The partition alone exceeds the grant: re-partition both runs
    # with this level's hash salt and recurse (Grace-style).
    sub_build = [pool.spill_file(page_rows) for _ in range(fanout)]
    sub_probe = [pool.spill_file(page_rows) for _ in range(fanout)]
    for files, source, key_index in (
        (sub_build, build_file, build_index),
        (sub_probe, probe_file, probe_index),
    ):
        reader = SpillCursor(source, costs.io_page, ctx.spill_prefetch)
        while not reader.exhausted:
            # No drain credit: the per-page work here is spill-write
            # disk cost, not CPU — the sequential disk cannot read
            # ahead while it is busy writing the partitions.
            page, stall = reader.next_page(0.0)
            cost = 0.0
            for row in page.rows:
                target = files[_partition_of(row[key_index], depth, fanout)]
                cost += costs.spill_page * target.append_rows((row,))
            yield Compute(cost + stall, io=stall)
        seal = sum(costs.spill_page * f.flush() for f in files)
        if seal:
            yield Compute(seal)
        source.drop()
    for sub_b, sub_p in zip(sub_build, sub_probe):
        yield from _join_spilled(
            sub_b, sub_p, depth + 1, ctx, grant, emitter,
            build_index, probe_index, join_type, build_width, fanout,
        )
