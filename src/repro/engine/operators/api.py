"""The batched operator protocol.

This module is the one place the operator execution API is defined.
An operator is a :class:`BatchOperator`: a small object the engine
constructs per stage with the plan node, the :class:`StageContext` and
its output queues, exposing four generator hooks —

* :meth:`~BatchOperator.open` — runs before any input is read. Source
  operators (scan) do *all* their work here.
* :meth:`~BatchOperator.next_batch` — one input batch on one port.
* :meth:`~BatchOperator.close_port` — the port's producer closed.
* :meth:`~BatchOperator.finish` — all ports drained; the base
  implementation closes the emitter (operators holding a memory grant
  override it to release the grant *after* the emitter closes, which
  keeps the grant-accounting event order stable).

:func:`drive` turns an operator instance into the simulator task the
engine spawns: it opens the operator, drains each input port to
``CLOSED`` (in :attr:`~BatchOperator.port_order`, so e.g. the nested-
loop join reads its inner input first), and finishes. Every hook is a
generator so operators yield :mod:`repro.sim.events` requests exactly
where the cost model says the work happens.

Operators receive :class:`~repro.engine.packet.RowBatch` payloads and
emit through :class:`~repro.engine.stage.BatchEmitter` — whole batches
or column lists, never a Python-level loop per row on the hot path.
``StageContext.vectorize`` selects between the batched implementations
and each operator's row-at-a-time reference path; both produce
bit-identical rows and the identical simulated-event sequence (the
parity suite in ``tests/test_batch_parity.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Sequence

from repro.engine.costs import CostModel
from repro.engine.memory import MemoryBroker
from repro.engine.stage import BatchEmitter
from repro.sim.events import CLOSED, Get
from repro.sim.queues import SimQueue
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.shared_scan import ScanShareManager

__all__ = ["StageContext", "BatchOperator", "drive"]


@dataclass(frozen=True)
class StageContext:
    """Everything a stage needs besides its queues.

    ``pool``, ``memory`` and ``scans`` are the optional
    resource-governance layer: with a
    :class:`~repro.storage.buffer.BufferPool` attached, scans charge
    ``io_page`` per cold page; with a
    :class:`~repro.engine.memory.MemoryBroker` attached, the hash
    join, hash aggregate and sort take working-memory grants and spill
    when over budget; with a
    :class:`~repro.storage.shared_scan.ScanShareManager` attached,
    scans ride per-table elevator cursors (cooperative scan sharing
    with async prefetch). All default to ``None`` — the seed's
    unbounded-memory behavior.

    ``spill_prefetch`` is the read-ahead depth governed operators use
    when re-reading their spill runs through a
    :class:`~repro.storage.spill_cursor.SpillCursor` (0 = synchronous
    read-back, the pre-cursor behavior).

    ``perf`` is the opt-in wall-clock profiler
    (:class:`~repro.obs.perf.WallProfiler`): stages hand it to their
    :class:`~repro.engine.stage.BatchEmitter` so flushed batches report
    per-operator row counts. ``None`` (the default) disables the hook
    entirely; :func:`~repro.obs.perf.attach_profiler` swaps a live
    engine's context for one carrying a profiler.

    ``vectorize`` selects the columnar batch implementations of the
    operators (the default). ``False`` pins the row-at-a-time
    reference path — same answers, same simulated time, only host
    speed differs; it exists for the parity suite and as an escape
    hatch for plans carrying expression nodes the batch compiler does
    not know.
    """

    catalog: Catalog
    costs: CostModel
    page_rows: int
    pool: Optional[BufferPool] = None
    memory: Optional[MemoryBroker] = None
    scans: Optional[ScanShareManager] = None
    spill_prefetch: int = 0
    perf: Optional[object] = None
    vectorize: bool = True


class BatchOperator:
    """Base class of the staged operators.

    Subclasses set :attr:`ports` (input arity) and may set
    :attr:`port_order` when input queues must drain in non-natural
    order. The constructor is the single emitter-construction site:
    subclasses compute their output ``width`` and call
    :meth:`make_emitter` once.
    """

    ports: int = 1
    port_order: Optional[Sequence[int]] = None

    def __init__(self, node, ctx: StageContext, out_queues: Sequence[SimQueue]) -> None:
        self.node = node
        self.ctx = ctx
        self.out_queues = out_queues
        self.emitter: Optional[BatchEmitter] = None

    def make_emitter(self, width: int) -> BatchEmitter:
        ctx = self.ctx
        self.emitter = BatchEmitter(
            self.out_queues,
            ctx.page_rows,
            ctx.costs,
            width=width,
            op=self.node.op_id,
            perf=ctx.perf,
        )
        return self.emitter

    # -- protocol hooks (all simulator generators) -----------------------

    def open(self) -> Generator:
        """Work before any input batch; sources run entirely here."""
        return
        yield  # pragma: no cover

    def next_batch(self, batch, port: int) -> Generator:
        """Consume one input batch from ``port``."""
        return
        yield  # pragma: no cover

    def close_port(self, port: int) -> Generator:
        """The producer feeding ``port`` closed its stream."""
        return
        yield  # pragma: no cover

    def finish(self) -> Generator:
        """All inputs drained; default closes the output emitter."""
        yield from self.emitter.close()


def drive(op: BatchOperator, in_queues: Sequence[SimQueue]) -> Generator:
    """The simulator task driving one operator instance."""
    yield from op.open()
    order = op.port_order if op.port_order is not None else range(len(in_queues))
    for port in order:
        queue = in_queues[port]
        while True:
            batch = yield Get(queue)
            if batch is CLOSED:
                break
            yield from op.next_batch(batch, port)
        yield from op.close_port(port)
    yield from op.finish()
