"""Naive reference executor.

Evaluates a physical plan directly — bottom-up, single-threaded, no
simulator, no pages — using the *same* pure row-transformation
functions as the staged operators. Every staged query result in the
test suite is checked against this executor, so scheduling bugs in the
engine cannot hide behind wrong-but-stable answers.
"""

from __future__ import annotations

from repro.engine.operators.aggregate import aggregate_rows
from repro.engine.operators.filter import filter_rows
from repro.engine.operators.hash_join import build_table, probe_rows
from repro.engine.operators.limit import limit_rows
from repro.engine.operators.merge_join import merge_join_rows
from repro.engine.operators.nested_loop_join import nlj_rows
from repro.engine.operators.project import project_rows
from repro.engine.operators.scan import scan_rows
from repro.engine.operators.sort import sort_rows
from repro.engine.plan import PlanNode
from repro.errors import PlanError
from repro.storage.catalog import Catalog

__all__ = ["execute_reference"]


def execute_reference(plan: PlanNode, catalog: Catalog) -> list[tuple]:
    """Evaluate a plan tree and return its result rows."""
    kind = plan.kind
    params = plan.params

    if kind == "scan":
        table = catalog.table(params["table"])
        base_schema = table.projected_schema(list(params["columns"]))
        predicate = params.get("predicate")
        outputs = params.get("outputs")
        predicate_fn = (
            predicate.compile(base_schema) if predicate is not None else None
        )
        output_fns = (
            [expr.compile(base_schema) for _, expr, _ in outputs]
            if outputs is not None
            else None
        )
        return scan_rows(table, params["columns"], predicate_fn, output_fns)

    if kind == "filter":
        rows = execute_reference(plan.children[0], catalog)
        predicate = params["predicate"].compile(plan.children[0].schema)
        return filter_rows(rows, predicate)

    if kind == "project":
        rows = execute_reference(plan.children[0], catalog)
        child_schema = plan.children[0].schema
        fns = [expr.compile(child_schema) for _, expr, _ in params["outputs"]]
        return project_rows(rows, fns)

    if kind == "aggregate":
        rows = execute_reference(plan.children[0], catalog)
        return aggregate_rows(
            rows, plan.children[0].schema, params["group_by"], params["aggs"]
        )

    if kind == "sort":
        rows = execute_reference(plan.children[0], catalog)
        return sort_rows(rows, plan.children[0].schema, params["keys"])

    if kind == "limit":
        rows = execute_reference(plan.children[0], catalog)
        return limit_rows(rows, params["count"])

    if kind == "hash_join":
        build_rows = execute_reference(plan.children[0], catalog)
        probe_input = execute_reference(plan.children[1], catalog)
        build_schema, probe_schema = (c.schema for c in plan.children)
        table = build_table(build_rows, build_schema.index_of(params["build_key"]))
        return probe_rows(
            probe_input,
            table,
            probe_schema.index_of(params["probe_key"]),
            params["join_type"],
            len(build_schema),
        )

    if kind == "merge_join":
        left = execute_reference(plan.children[0], catalog)
        right = execute_reference(plan.children[1], catalog)
        left_schema, right_schema = (c.schema for c in plan.children)
        return merge_join_rows(
            left,
            right,
            left_schema.index_of(params["left_key"]),
            right_schema.index_of(params["right_key"]),
        )

    if kind == "nested_loop_join":
        left = execute_reference(plan.children[0], catalog)
        right = execute_reference(plan.children[1], catalog)
        predicate = params["predicate"].compile(plan.schema)
        return nlj_rows(left, right, predicate)

    raise PlanError(f"reference executor: unknown operator kind {kind!r}")
