"""The Cordoba-style staged execution engine.

Queries are physical :class:`~repro.engine.plan.PlanNode` trees built
with the constructors in :mod:`repro.engine.plan`; the
:class:`~repro.engine.engine.Engine` executes them — independently or
as sharing groups merged at a pivot operator — on the discrete-event
CMP simulator, charging the :class:`~repro.engine.costs.CostModel`'s
per-tuple costs. :mod:`repro.engine.reference` provides a naive
executor for answer validation.
"""

from repro.engine.costs import (
    DEFAULT_COST_MODEL,
    IO_AWARE_COST_MODEL,
    CostModel,
)
from repro.engine.engine import Engine
from repro.engine.memory import MemoryBroker, MemoryGrant, MemorySnapshot
from repro.engine.packet import GroupHandle, QueryHandle
from repro.engine.plan import (
    AggSpec,
    PlanNode,
    aggregate,
    filter_,
    hash_join,
    limit,
    merge_join,
    nested_loop_join,
    project,
    scan,
    sort,
)
from repro.engine.reference import execute_reference
from repro.storage.shared_scan import ScanShareManager
from repro.engine.stats import (
    ResourceReport,
    StageReport,
    StageStats,
    resource_report,
    stage_report,
)

__all__ = [
    "DEFAULT_COST_MODEL",
    "IO_AWARE_COST_MODEL",
    "CostModel",
    "Engine",
    "MemoryBroker",
    "MemoryGrant",
    "MemorySnapshot",
    "GroupHandle",
    "QueryHandle",
    "AggSpec",
    "PlanNode",
    "aggregate",
    "filter_",
    "hash_join",
    "limit",
    "merge_join",
    "nested_loop_join",
    "project",
    "scan",
    "sort",
    "execute_reference",
    "ScanShareManager",
    "ResourceReport",
    "StageReport",
    "StageStats",
    "resource_report",
    "stage_report",
]
