"""Working-memory governance for engine operators.

Real engines bound the memory a query operator may hold (PostgreSQL's
``work_mem``, SQL Server's memory grants); operators that exceed their
grant spill to disk instead of failing. The seed engine had no such
bound — a hash join buffered its whole build side unconditionally —
so memory pressure, the force that makes work sharing attractive when
it shrinks the aggregate working set, was invisible.

:class:`MemoryBroker` is the engine-wide arbiter: it owns a global
``work_mem`` budget (in pages) and hands out :class:`MemoryGrant`
budgets to operators. Grants are *budgets*, not reservations of real
memory: an operator reports its actual page usage through
:meth:`MemoryGrant.resize_used`, the broker tracks the aggregate
high-water mark, and usage beyond the granted budget is recorded as an
overcommit (the spilling hash join only overcommits at its recursion
floor, where splitting further cannot help). The broker never raises
on pressure — degradation is the operators' job (spill), accounting is
the broker's.

Units are *pages* (the engine's ``page_rows``-tuple exchange unit), so
budgets compose directly with :class:`~repro.storage.buffer.BufferPool`
capacities and spill-file page counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import EngineError
from repro.obs.trace import TID_MEMORY

__all__ = ["MemoryBroker", "MemoryGrant", "GrantSnapshot", "MemorySnapshot"]


@dataclass(frozen=True)
class GrantSnapshot:
    """Immutable view of one grant, for reports.

    ``notes`` carries operator-reported facts about how the grant was
    spent — the external sort reports ``sort_runs`` / ``merge_passes``
    / ``spilled_pages``, so resource reports can show not just *that*
    an operator stayed in budget but *how*.
    """

    owner: str
    pages: int
    used: int
    high_water: int
    closed: bool
    notes: tuple = ()


@dataclass(frozen=True)
class MemorySnapshot:
    """Immutable view of the broker's state, for reports."""

    work_mem: int
    reserved: int
    in_use: int
    high_water: int
    overcommits: int
    grants: tuple[GrantSnapshot, ...]

    def render(self) -> str:
        lines = [
            f"work_mem {self.work_mem} pages: reserved {self.reserved}, "
            f"in use {self.in_use}, high-water {self.high_water}, "
            f"overcommits {self.overcommits}"
        ]
        for grant in self.grants:
            state = "closed" if grant.closed else "open"
            line = (
                f"  {grant.owner}: budget {grant.pages}, "
                f"high-water {grant.high_water} ({state})"
            )
            if grant.notes:
                detail = ", ".join(f"{k}={v}" for k, v in grant.notes)
                line += f" [{detail}]"
            lines.append(line)
        return "\n".join(lines)


class MemoryGrant:
    """One operator's working-memory budget.

    ``pages`` is the granted budget; ``used`` is what the operator
    currently reports holding. Usage above the budget is allowed (the
    recursion floor of a spilling operator) but counted as an
    overcommit on the broker.
    """

    __slots__ = ("broker", "owner", "pages", "used", "high_water",
                 "closed", "notes", "_overcommitted")

    def __init__(self, broker: "MemoryBroker", owner: str, pages: int) -> None:
        self.broker = broker
        self.owner = owner
        self.pages = pages
        self.used = 0
        self.high_water = 0
        self.closed = False
        self.notes: dict = {}
        self._overcommitted = False

    def resize_used(self, used_pages: int) -> None:
        """Report the operator's current resident page count."""
        if self.closed:
            raise EngineError(f"grant for {self.owner!r} already closed")
        if used_pages < 0:
            raise EngineError(f"used pages must be >= 0, got {used_pages}")
        delta = used_pages - self.used
        self.used = used_pages
        self.high_water = max(self.high_water, used_pages)
        self.broker._adjust(delta)
        if used_pages > self.pages and not self._overcommitted:
            self._overcommitted = True
            self.broker.overcommits += 1
            if self.broker.tracer is not None:
                self.broker.tracer.instant(
                    "overcommit", "mem", tid=TID_MEMORY,
                    owner=self.owner, used=used_pages, budget=self.pages,
                )

    def note(self, **facts) -> None:
        """Attach operator-reported facts (e.g. ``sort_runs=5``) to
        this grant; they surface in snapshots and resource reports."""
        self.notes.update(facts)

    def close(self) -> None:
        """Release the budget back to the broker."""
        if self.closed:
            return
        self.resize_used(0)
        self.closed = True
        self.broker._release(self)

    def snapshot(self) -> GrantSnapshot:
        return GrantSnapshot(
            owner=self.owner,
            pages=self.pages,
            used=self.used,
            high_water=self.high_water,
            closed=self.closed,
            notes=tuple(sorted(self.notes.items())),
        )

    def __repr__(self) -> str:
        return (
            f"MemoryGrant({self.owner!r}, {self.used}/{self.pages} pages, "
            f"hw={self.high_water})"
        )


class MemoryBroker:
    """Grants per-operator budgets out of a global ``work_mem``.

    Parameters
    ----------
    work_mem:
        Total working memory available to operators, in pages (>= 1).
    """

    def __init__(self, work_mem: int) -> None:
        if work_mem < 1:
            raise EngineError(f"work_mem must be >= 1 page, got {work_mem}")
        self.work_mem = int(work_mem)
        self.reserved = 0
        self.in_use = 0
        self.high_water = 0
        self.overcommits = 0
        # The pool auto-created for (or explicitly bound to) this
        # broker; spill files written under its grants live there.
        # ``None`` until bound by the engine wiring.
        self.pool = None
        # Optional flight recorder (repro.obs.trace); grant/return/
        # overcommit edges emit through it when attached.
        self.tracer = None
        self._grants: list[MemoryGrant] = []

    def bind_pool(self, pool) -> None:
        """Bind the pool this broker's spill traffic flows through.

        Binding is sticky: rebinding to a *different* pool is an
        error, because the broker's spill accounting and any spill
        files already created would silently refer to the old pool
        (see :func:`~repro.engine.wiring.resolve_storage`).
        """
        if self.pool is not None and self.pool is not pool:
            raise EngineError(
                "MemoryBroker is already bound to a different BufferPool; "
                "create a fresh broker per pool"
            )
        self.pool = pool

    def available(self) -> int:
        return max(self.work_mem - self.reserved, 0)

    def projected_spill(self, pages_each: int, operators: int = 1) -> int:
        """Pages ``operators`` concurrent operators of ``pages_each``
        working pages would together spill, given what is free now.

        The projection a memory-aware sharing policy feeds the model:
        m unshared queries need ``m * pages_each`` pages while a
        shared group needs them once, so consolidation can turn a
        projected spill into none (the fig_mem Part B effect).
        """
        if pages_each < 0:
            raise EngineError(
                f"pages_each must be >= 0, got {pages_each}"
            )
        if operators < 1:
            raise EngineError(f"operators must be >= 1, got {operators}")
        return max(0, operators * pages_each - self.available())

    def grant(self, owner: str, requested: Optional[int] = None) -> MemoryGrant:
        """Grant up to ``requested`` pages (default: everything left).

        Every operator is guaranteed a budget of at least one page even
        when ``work_mem`` is exhausted — a starved operator spills
        rather than deadlocking, so admission control stays a policy
        question above the engine.
        """
        if requested is None:
            requested = self.work_mem
        if requested < 1:
            raise EngineError(f"requested pages must be >= 1, got {requested}")
        granted = max(min(requested, self.available()), 1)
        self.reserved += granted
        grant = MemoryGrant(self, owner, granted)
        self._grants.append(grant)
        if self.tracer is not None:
            self.tracer.instant(
                "grant", "mem", tid=TID_MEMORY,
                owner=owner, pages=granted, requested=requested,
            )
        return grant

    def snapshot(self) -> MemorySnapshot:
        return MemorySnapshot(
            work_mem=self.work_mem,
            reserved=self.reserved,
            in_use=self.in_use,
            high_water=self.high_water,
            overcommits=self.overcommits,
            grants=tuple(g.snapshot() for g in self._grants),
        )

    # -- internal, driven by grants --------------------------------------

    def _adjust(self, delta: int) -> None:
        self.in_use += delta
        self.high_water = max(self.high_water, self.in_use)

    def _release(self, grant: MemoryGrant) -> None:
        self.reserved -= grant.pages
        if self.tracer is not None:
            self.tracer.instant(
                "return", "mem", tid=TID_MEMORY,
                owner=grant.owner, pages=grant.pages,
                high_water=grant.high_water,
            )

    def __repr__(self) -> str:
        return (
            f"MemoryBroker(work_mem={self.work_mem}, "
            f"reserved={self.reserved}, in_use={self.in_use}, "
            f"hw={self.high_water})"
        )
