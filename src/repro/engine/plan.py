"""Physical query plans for the staged engine.

A :class:`PlanNode` tree describes the operators of one query. Every
node carries:

* its output :class:`~repro.storage.schema.Schema` (computed by the
  constructors below, so schema errors surface at plan-build time),
* a structural ``signature`` — two nodes with equal signatures request
  identical work, which is the engine's merge test (the pivot and
  everything below it must match for two packets to share),
* a stable ``op_id`` used to address pivots and name simulator tasks.

Constructors: :func:`scan`, :func:`filter_`, :func:`project`,
:func:`aggregate`, :func:`sort`, :func:`hash_join`,
:func:`nested_loop_join`, :func:`merge_join`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.errors import PlanError
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, DataType, Schema
from repro.engine.expressions import Expr

__all__ = [
    "PlanNode",
    "AggSpec",
    "scan",
    "filter_",
    "project",
    "aggregate",
    "sort",
    "limit",
    "hash_join",
    "nested_loop_join",
    "merge_join",
    "find_node",
]

JOIN_TYPES = ("inner", "semi", "anti", "left")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func(expr) AS name``.

    ``func`` is one of ``sum``, ``count``, ``min``, ``max``, ``avg``.
    ``expr = None`` means ``count(*)``; for every other function an
    expression is required. NULL inputs are skipped, so
    ``count(expr)`` counts non-NULL values (TPC-H Q13 relies on this).
    """

    func: str
    name: str
    expr: Optional[Expr] = None

    def __post_init__(self) -> None:
        if self.func not in ("sum", "count", "min", "max", "avg"):
            raise PlanError(f"unknown aggregate function {self.func!r}")
        if self.func != "count" and self.expr is None:
            raise PlanError(f"aggregate {self.func!r} requires an expression")

    def signature(self) -> str:
        inner = "*" if self.expr is None else self.expr.signature()
        return f"{self.func}({inner})as{self.name}"

    def output_dtype(self) -> DataType:
        if self.func == "count":
            return DataType.INT
        return DataType.FLOAT


@dataclass(frozen=True)
class PlanNode:
    """One physical operator in a query plan."""

    kind: str
    params: Mapping[str, Any]
    children: tuple["PlanNode", ...]
    schema: Schema
    signature: str
    op_id: str

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, op_id: str) -> "PlanNode":
        for node in self.walk():
            if node.op_id == op_id:
                return node
        raise PlanError(f"no operator with op_id {op_id!r} in plan")

    def __repr__(self) -> str:
        return f"PlanNode({self.kind}:{self.op_id})"


def find_node(plan: PlanNode, op_id: str) -> PlanNode:
    """Locate the (first) node with the given op_id."""
    return plan.find(op_id)


def _auto_id(kind: str, signature: str) -> str:
    digest = hashlib.sha1(signature.encode("utf-8")).hexdigest()[:8]
    return f"{kind}@{digest}"


def _node(
    kind: str,
    params: dict,
    children: Sequence[PlanNode],
    schema: Schema,
    signature: str,
    op_id: Optional[str],
) -> PlanNode:
    return PlanNode(
        kind=kind,
        params=dict(params),
        children=tuple(children),
        schema=schema,
        signature=signature,
        op_id=op_id or _auto_id(kind, signature),
    )


def scan(
    catalog: Catalog,
    table: str,
    columns: Optional[Sequence[str]] = None,
    predicate: Optional[Expr] = None,
    outputs: Optional[Sequence[tuple[str, Expr, DataType]]] = None,
    op_id: Optional[str] = None,
    cost_factor: float = 1.0,
) -> PlanNode:
    """Sequential scan of a base table — optionally a *fused* scan.

    ``columns`` projects storage columns; ``predicate`` and ``outputs``
    fuse a filter and a projection into the scan stage, matching the
    paper's query structure (its TPC-H Q6 "consists of two pipeline
    stages — table scan and aggregation": the scan stage evaluates the
    predicates and produces result tuples). A fused scan is the
    natural sharing pivot for scan-heavy queries: its per-consumer
    output of qualifying tuples is the model's *s*.

    ``cost_factor`` scales the fused predicate/projection work per
    tuple — a cost hint for expression-heavy scan stages (e.g. Q1's
    decimal arithmetic), matching how optimizers charge expression
    complexity.
    """
    if cost_factor <= 0:
        raise PlanError(f"cost_factor must be > 0, got {cost_factor!r}")
    tbl = catalog.table(table)
    base_schema = tbl.projected_schema(
        list(columns) if columns is not None else None
    )
    cols = tuple(base_schema.names())
    sig_parts = [f"scan({table};{','.join(cols)}"]
    if predicate is not None:
        predicate.compile(base_schema)
        sig_parts.append(f";where={predicate.signature()}")
    if outputs is not None:
        if not outputs:
            raise PlanError("fused scan outputs must be non-empty if given")
        for _, expr, _ in outputs:
            expr.compile(base_schema)
        schema = Schema([Column(n, d) for n, _, d in outputs])
        sig_parts.append(
            ";emit=" + ",".join(f"{n}={e.signature()}" for n, e, _ in outputs)
        )
    else:
        schema = base_schema
    if cost_factor != 1.0:
        sig_parts.append(f";x{cost_factor}")
    signature = "".join(sig_parts) + ")"
    params = {
        "table": table,
        "columns": cols,
        "predicate": predicate,
        "outputs": tuple(outputs) if outputs is not None else None,
        "cost_factor": cost_factor,
    }
    return _node("scan", params, (), schema, signature, op_id)


def filter_(
    child: PlanNode,
    predicate: Expr,
    op_id: Optional[str] = None,
    cost_factor: float = 1.0,
) -> PlanNode:
    """Row filter; output schema equals the input schema.

    ``cost_factor`` scales the per-tuple predicate cost — a cost hint
    for expensive predicates (string matching, UDFs) that real
    optimizers model the same way.
    """
    if cost_factor <= 0:
        raise PlanError(f"cost_factor must be > 0, got {cost_factor!r}")
    predicate.compile(child.schema)  # validate column references early
    signature = (
        f"filter({predicate.signature()};x{cost_factor};{child.signature})"
    )
    return _node(
        "filter",
        {"predicate": predicate, "cost_factor": cost_factor},
        (child,),
        child.schema,
        signature,
        op_id,
    )


def project(
    child: PlanNode,
    outputs: Sequence[tuple[str, Expr, DataType]],
    op_id: Optional[str] = None,
) -> PlanNode:
    """Compute output columns ``(name, expr, dtype)`` from the input."""
    if not outputs:
        raise PlanError("project requires at least one output column")
    for _, expr, _ in outputs:
        expr.compile(child.schema)
    schema = Schema([Column(name, dtype) for name, expr, dtype in outputs])
    sig_cols = ",".join(
        f"{name}={expr.signature()}" for name, expr, _ in outputs
    )
    signature = f"project({sig_cols};{child.signature})"
    return _node("project", {"outputs": tuple(outputs)}, (child,), schema,
                 signature, op_id)


def aggregate(
    child: PlanNode,
    group_by: Sequence[str],
    aggs: Sequence[AggSpec],
    op_id: Optional[str] = None,
) -> PlanNode:
    """Hash aggregation (stop-&-go: consumes all input, then emits)."""
    if not aggs and not group_by:
        raise PlanError("aggregate requires group keys or aggregates")
    for key in group_by:
        child.schema.index_of(key)
    for spec in aggs:
        if spec.expr is not None:
            spec.expr.compile(child.schema)
    columns = [Column(k, child.schema.dtype_of(k)) for k in group_by]
    columns += [Column(spec.name, spec.output_dtype()) for spec in aggs]
    schema = Schema(columns)
    signature = (
        f"aggregate(by={','.join(group_by)};"
        f"{';'.join(s.signature() for s in aggs)};{child.signature})"
    )
    return _node(
        "aggregate",
        {"group_by": tuple(group_by), "aggs": tuple(aggs)},
        (child,),
        schema,
        signature,
        op_id,
    )


def sort(
    child: PlanNode,
    keys: Sequence[tuple[str, bool]],
    op_id: Optional[str] = None,
) -> PlanNode:
    """Full sort by ``(column, ascending)`` keys (stop-&-go)."""
    if not keys:
        raise PlanError("sort requires at least one key")
    for name, _ in keys:
        child.schema.index_of(name)
    signature = (
        "sort("
        + ",".join(f"{name}:{'asc' if asc else 'desc'}" for name, asc in keys)
        + f";{child.signature})"
    )
    return _node("sort", {"keys": tuple(keys)}, (child,), child.schema,
                 signature, op_id)


def limit(child: PlanNode, count: int, op_id: Optional[str] = None) -> PlanNode:
    """Pass through the first ``count`` rows of the input.

    Combined with :func:`sort` this gives top-N queries (TPC-H Q3's
    ``LIMIT 10``); the stage stops emitting once satisfied but still
    drains its producer.
    """
    if count < 0:
        raise PlanError(f"limit count must be >= 0, got {count}")
    signature = f"limit({count};{child.signature})"
    return _node("limit", {"count": count}, (child,), child.schema,
                 signature, op_id)


def hash_join(
    build: PlanNode,
    probe: PlanNode,
    build_key: str,
    probe_key: str,
    join_type: str = "inner",
    op_id: Optional[str] = None,
) -> PlanNode:
    """Hash join: stop-&-go build on child 0, pipelined probe of child 1.

    Output schemas by join type:

    * ``inner`` / ``left``: probe columns followed by build columns
      (``left`` emits NULL build columns for unmatched probe rows);
    * ``semi`` / ``anti``: probe columns only (existence tests).

    Columns of the two inputs must not collide for inner/left joins.
    """
    if join_type not in JOIN_TYPES:
        raise PlanError(f"unknown join type {join_type!r}; use {JOIN_TYPES}")
    build.schema.index_of(build_key)
    probe.schema.index_of(probe_key)
    if join_type in ("inner", "left"):
        overlap = set(build.schema.names()) & set(probe.schema.names())
        if overlap:
            raise PlanError(
                f"join would produce duplicate columns {sorted(overlap)}; "
                "project the inputs apart first"
            )
        schema = Schema(list(probe.schema.columns) + list(build.schema.columns))
    else:
        schema = probe.schema
    signature = (
        f"hash_join({join_type};{build_key}={probe_key};"
        f"{build.signature};{probe.signature})"
    )
    return _node(
        "hash_join",
        {"build_key": build_key, "probe_key": probe_key, "join_type": join_type},
        (build, probe),
        schema,
        signature,
        op_id,
    )


def nested_loop_join(
    left: PlanNode,
    right: PlanNode,
    predicate: Expr,
    op_id: Optional[str] = None,
) -> PlanNode:
    """Block nested-loop join with an arbitrary predicate.

    The right (inner) input is buffered (stop-&-go); the left input
    streams. Output is left columns followed by right columns, and the
    predicate is compiled against that combined schema.
    """
    overlap = set(left.schema.names()) & set(right.schema.names())
    if overlap:
        raise PlanError(
            f"join would produce duplicate columns {sorted(overlap)}; "
            "project the inputs apart first"
        )
    schema = Schema(list(left.schema.columns) + list(right.schema.columns))
    predicate.compile(schema)
    signature = (
        f"nlj({predicate.signature()};{left.signature};{right.signature})"
    )
    return _node("nested_loop_join", {"predicate": predicate}, (left, right),
                 schema, signature, op_id)


def merge_join(
    left: PlanNode,
    right: PlanNode,
    left_key: str,
    right_key: str,
    op_id: Optional[str] = None,
) -> PlanNode:
    """Merge join of two inputs already sorted on their keys.

    Inner equality join; inputs must arrive sorted ascending on
    ``left_key`` / ``right_key`` (use :func:`sort` below otherwise —
    the engine does not verify sortedness, mirroring real executors
    that trust optimizer-provided orderings, but the reference
    executor checks and raises on unsorted input).
    """
    left.schema.index_of(left_key)
    right.schema.index_of(right_key)
    overlap = set(left.schema.names()) & set(right.schema.names())
    if overlap:
        raise PlanError(
            f"join would produce duplicate columns {sorted(overlap)}; "
            "project the inputs apart first"
        )
    schema = Schema(list(left.schema.columns) + list(right.schema.columns))
    signature = (
        f"merge_join({left_key}={right_key};{left.signature};{right.signature})"
    )
    return _node(
        "merge_join",
        {"left_key": left_key, "right_key": right_key},
        (left, right),
        schema,
        signature,
        op_id,
    )
