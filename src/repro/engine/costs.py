"""Per-tuple CPU cost model for engine operators.

The simulator charges work in abstract cost units; this table defines
how many units each operator kind spends per tuple (or per page). The
defaults are calibrated so that the *profiled* model parameters of the
reproduction's TPC-H queries land in the regimes the paper reports:

* the scan stage of Q1/Q6 spends a large fraction of its time
  delivering result pages to its consumer (the paper measured
  ``w = 9.66`` vs ``s = 10.34`` for Q6 — output work comparable to
  scan work), which is what makes scan sharing serialize badly;
* join pivots emit few tuples relative to the work below them, so
  join sharing's per-consumer cost is negligible (Q4/Q13 always win).

``output_tuple``/``output_page`` are charged per *consumer*: a shared
pivot multiplexing to M sharers pays them M times — this is the
model's *s* made concrete.

Beyond CPU, the model carries two I/O terms for the memory-governed
storage layer: ``io_page`` (a buffer-pool miss) and ``spill_page`` (a
spill write by an operator over its memory grant). Both default to 0,
preserving the seed's memory-resident calibration; pass a model like
:data:`IO_AWARE_COST_MODEL` together with an engine-level
:class:`~repro.storage.buffer.BufferPool` /
:class:`~repro.engine.memory.MemoryBroker` to make cold reads and
memory pressure visible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EngineError

__all__ = ["CostModel", "DEFAULT_COST_MODEL", "IO_AWARE_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Cost units per operation; all values must be >= 0.

    Attributes
    ----------
    scan_tuple:
        Reading one tuple out of columnar storage into a page.
    filter_tuple:
        Evaluating a predicate on one tuple.
    project_tuple:
        Computing one output tuple of a projection.
    agg_update:
        Folding one tuple into an aggregation hash table.
    agg_emit:
        Producing one group's output row.
    sort_tuple:
        Per-tuple share of sorting a buffered input (comparisons +
        moves; the log-factor is folded into the constant at the page
        sizes the engine uses).
    hash_build:
        Inserting one tuple into a join hash table.
    hash_probe:
        Probing one tuple against a join hash table.
    join_emit:
        Constructing one join output tuple.
    nlj_pair:
        Evaluating one (outer, inner) pair in a nested-loop join.
    output_value:
        Copying one value (one column of one tuple) into a consumer's
        page — charged per consumer. Output cost is width-aware
        because copying is proportional to tuple bytes; wide result
        streams (Q1's seven columns) are expensive to multiplex, narrow
        count streams (Q13's two integers) are cheap. This is the
        dominant component of the model's *s*.
    output_page:
        Page construction + handoff synchronization — charged per page
        per consumer.
    sink_tuple:
        Delivering one final result tuple to the client.
    io_page:
        Reading one page that misses in the buffer pool (a cold read
        from storage). Charged by the scan stage per missed table page
        and by spilling operators per spill page re-read that is no
        longer resident. Defaults to 0 — the seed's memory-resident
        calibration — so I/O awareness is strictly opt-in; experiments
        that model a cold cache use :data:`IO_AWARE_COST_MODEL`.
    spill_page:
        Writing one page of operator state to a spill file when a
        memory grant is exceeded (the spilling hybrid hash join's
        partition writes). Charged write-through at spill time, so
        total spill cost is proportional to pages spilled and shrinks
        monotonically as ``work_mem`` grows. Defaults to 0.
    exchange_tuple:
        Hashing and routing one tuple through an exchange operator
        (intra-query repartitioning across parallel fragments). Only
        parallel plans (``dop > 1``) ever charge it; serial timelines
        are unaffected by its value.
    """

    scan_tuple: float = 1.0
    filter_tuple: float = 0.25
    project_tuple: float = 0.15
    agg_update: float = 0.5
    agg_emit: float = 0.5
    sort_tuple: float = 1.5
    hash_build: float = 0.9
    hash_probe: float = 0.7
    join_emit: float = 0.4
    nlj_pair: float = 0.05
    output_value: float = 0.6
    output_page: float = 8.0
    sink_tuple: float = 0.1
    io_page: float = 0.0
    spill_page: float = 0.0
    exchange_tuple: float = 0.3

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if not (value >= 0):  # also rejects NaN
                raise EngineError(f"cost {name!r} must be >= 0, got {value!r}")

    def page_output_cost(self, rows: int, width: int, consumers: int = 1) -> float:
        """Cost for one producer to hand a page of ``rows`` tuples of
        ``width`` columns to ``consumers`` consumers."""
        return consumers * (self.output_page + self.output_value * rows * width)


DEFAULT_COST_MODEL = CostModel()

# A cold-storage calibration: one page fetch costs on the order of the
# CPU work of processing the page (~64 tuples x ~2-3 units/tuple), and
# a spill write costs slightly more than a read (write amplification).
# Used by the memory-governed experiments (fig_mem, bench_buffer).
IO_AWARE_COST_MODEL = CostModel(io_page=160.0, spill_page=200.0)
