"""Exchange, gather, and ordered-merge stages (Gamma-style).

The exchange subsystem turns one logical operator into ``dop``
cooperating *fragments* connected by repartitioning queues:

* :class:`ExchangeOperator` — the producer half of a repartitioning.
  It hashes each row's partition key and routes the row to one of
  ``dop`` partition queues through a *dedicated* per-partition
  :class:`~repro.engine.stage.BatchEmitter` (unlike an ordinary
  stage's emitter, which multiplexes every batch to every consumer).
  Rows leave each partition stream in input order, which is what the
  bit-identity argument below rests on.
* :class:`GatherOperator` — deterministic fan-in: drains its input
  ports strictly in port order and concatenates. For contiguous
  page-range fragments this reproduces the serial scan's row order
  exactly; for partition-wise joins it fixes a deterministic (if
  different from serial) order, keeping the row *set* identical.
* :func:`ordered_merge` — the k-way merge gather used above
  partition-wise aggregates: each partition emits its groups in
  ``_sort_key`` order over *disjoint* key sets, so merging by key
  reproduces the serial aggregate's output stream bit for bit.
* :func:`drive_fanin` — a :func:`~repro.engine.operators.api.drive`
  variant that maps several physical input queues onto one logical
  operator port (the partition-wise consumer reads ``dop`` partition
  queues as its single logical input; the partition-wise join reads
  ``dop`` build queues then ``dop`` probe queues). Queues of a
  logical port drain sequentially in fragment order — with producer
  fragments running concurrently into generously sized partition
  queues, the drain order fixes determinism without serializing the
  producers.

Why partition-wise aggregation is bit-identical to serial: the
exchange assigns every group key to exactly one consumer fragment, a
consumer drains its producer ports in fragment order, and each
fragment covers a contiguous page range — so within any one group the
value stream arrives in global page order, exactly as the serial
aggregate folds it. Floating-point accumulation order, and hence every
last ulp, is preserved; the final merge by group key over disjoint
sorted partitions is exactly the serial output order.
"""

from __future__ import annotations

import heapq
from typing import Generator, Sequence

from repro.engine.operators.api import BatchOperator
from repro.engine.operators.hash_join import _partition_of
from repro.engine.stage import BatchEmitter
from repro.sim.events import CLOSED, Compute, Get
from repro.sim.queues import SimQueue

__all__ = [
    "EXCHANGE_SALT",
    "ExchangeOperator",
    "GatherOperator",
    "drive_fanin",
    "ordered_merge",
]

# Distinct from the governed operators' internal partitioning salts
# (0, then recursion depth), so an exchange's partition assignment does
# not correlate with a downstream spilling operator's fanout buckets.
EXCHANGE_SALT = 97


class ExchangeOperator(BatchOperator):
    """Hash-repartition one fragment's output across ``dop`` queues.

    ``node`` is the plan node whose output is being repartitioned
    (schema and op_id provide the width and the stage name);
    ``key_indices`` are the partition-key columns. One emitter per
    output queue keeps partition streams independent: a batch is
    bucketed row-by-row and each bucket rides its own emitter, so a
    consumer sees only its partition, in producer order.
    """

    ports = 1

    def __init__(self, node, ctx, out_queues, key_indices) -> None:
        super().__init__(node, ctx, out_queues)
        self.key_indices = list(key_indices)
        width = len(node.schema)
        self._emitters = [
            BatchEmitter(
                [queue],
                ctx.page_rows,
                ctx.costs,
                width=width,
                op=f"{node.op_id}.part{p}",
                perf=ctx.perf,
            )
            for p, queue in enumerate(out_queues)
        ]

    def next_batch(self, batch, port: int) -> Generator:
        fanout = len(self._emitters)
        yield Compute(self.ctx.costs.exchange_tuple * len(batch))
        buckets: list[list] = [[] for _ in range(fanout)]
        indices = self.key_indices
        if len(indices) == 1:
            index = indices[0]
            for row in batch.rows:
                buckets[_partition_of(row[index], EXCHANGE_SALT, fanout)].append(row)
        else:
            for row in batch.rows:
                key = tuple(row[i] for i in indices)
                buckets[_partition_of(key, EXCHANGE_SALT, fanout)].append(row)
        for rows, emitter in zip(buckets, self._emitters):
            if rows:
                yield from emitter.emit_rows(rows)

    def finish(self) -> Generator:
        for emitter in self._emitters:
            yield from emitter.close()


class GatherOperator(BatchOperator):
    """Deterministic fan-in: concatenate fragments in port order.

    Driven over ``dop`` input queues, it forwards every batch through
    one ordinary emitter. :func:`~repro.engine.operators.api.drive`
    drains the ports sequentially, so the output is the fragments'
    streams concatenated in fragment index order — deterministic, and
    order-preserving when the fragments cover contiguous page ranges.
    """

    def __init__(self, node, ctx, out_queues, ports: int) -> None:
        super().__init__(node, ctx, out_queues)
        self.ports = ports
        self.make_emitter(len(node.schema))

    def next_batch(self, batch, port: int) -> Generator:
        yield from self.emitter.emit_batch(batch)


def drive_fanin(
    op: BatchOperator,
    queue_groups: Sequence[tuple[int, Sequence[SimQueue]]],
) -> Generator:
    """Drive ``op`` with several physical queues per logical port.

    ``queue_groups`` lists ``(logical_port, queues)`` in drain order.
    Each logical port's queues drain sequentially (fragment order —
    the determinism anchor); ``close_port`` fires once per logical
    port, after its last queue closes, so stop-&-go operators (build
    seal, aggregate finalize) see the same lifecycle as under
    :func:`~repro.engine.operators.api.drive`.
    """
    yield from op.open()
    for logical_port, queues in queue_groups:
        for queue in queues:
            while True:
                batch = yield Get(queue)
                if batch is CLOSED:
                    break
                yield from op.next_batch(batch, logical_port)
        yield from op.close_port(logical_port)
    yield from op.finish()


def ordered_merge(
    in_queues: Sequence[SimQueue],
    emitter: BatchEmitter,
    key_of,
    sort_tuple: float,
) -> Generator:
    """K-way merge gather: interleave sorted partition streams by key.

    Each input port carries a stream already ordered by ``key_of``
    with key sets disjoint across ports (hash partitions), so merging
    by ``(key, port)`` reproduces the single global order a serial
    operator would emit. Refills block on exactly the port whose next
    row is needed; every refilled batch charges ``sort_tuple`` per row
    for the heap work.
    """
    buffers: list[list] = [[] for _ in in_queues]
    positions = [0] * len(in_queues)
    done = [False] * len(in_queues)
    heap: list = []

    def advance(port: int) -> Generator:
        """Push ``port``'s next row into the heap, refilling as needed."""
        while True:
            rows = buffers[port]
            if positions[port] < len(rows):
                row = rows[positions[port]]
                positions[port] += 1
                heapq.heappush(heap, (key_of(row), port, row))
                return
            if done[port]:
                return
            batch = yield Get(in_queues[port])
            if batch is CLOSED:
                done[port] = True
                return
            yield Compute(sort_tuple * len(batch))
            buffers[port] = batch.rows
            positions[port] = 0

    for port in range(len(in_queues)):
        yield from advance(port)
    while heap:
        _, port, row = heapq.heappop(heap)
        yield from emitter.emit_rows((row,))
        yield from advance(port)
    yield from emitter.close()
