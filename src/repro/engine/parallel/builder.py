"""Lowering a serial plan to a ``dop``-way parallel task graph.

:func:`find_region` locates the *parallel region* — the largest
subtree the builder knows how to fragment — by walking down from the
root through unary operators:

* a base ``scan`` parallelizes as range fragments + order-preserving
  gather (safe under any ancestor: the output order is exactly the
  serial scan's);
* a grouped ``aggregate`` over a scan chain parallelizes partition-
  wise: fragments → hash exchange on the group keys → ``dop``
  aggregates → ordered merge (output bit-identical to serial, see
  :mod:`repro.engine.parallel.exchange`);
* a ``hash_join`` whose both inputs are scan chains parallelizes
  partition-wise on the join keys, with a deterministic gather. The
  joined row *set* equals serial but its order differs, so this
  strategy is fenced off under order-sensitive ancestors (``limit``,
  ``sort`` — stable-sort tie order — and anything non-unary) and
  under ``aggregate`` ancestors (float accumulation order would
  shift the last ulp).

Everything above the region is built serially by the engine's own
``_build_subplan``, grafted onto the region's output queue exactly
like a sharing group grafts members onto the pivot.

Queue sizing is what buys actual overlap: queues entering a
sequential multi-port drain (gather inputs, exchange partition
outputs) are generously sized so producer fragments never block on a
consumer that is draining a sibling port first. Intra-fragment queues
keep the engine's bounded depth.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.operators import build_operator_task
from repro.engine.operators.aggregate import AggregateOperator, _sort_key
from repro.engine.operators.api import drive
from repro.engine.operators.hash_join import HashJoinOperator
from repro.engine.parallel.exchange import (
    ExchangeOperator,
    GatherOperator,
    drive_fanin,
    ordered_merge,
)
from repro.engine.parallel.fragment import FragmentScanOperator, partition_ranges
from repro.engine.plan import PlanNode
from repro.engine.stage import BatchEmitter
from repro.sim.queues import SimQueue

__all__ = ["FRAGMENT_QUEUE_CAPACITY", "find_region", "build_parallel_query"]

# Queues crossing the fragment/consumer boundary are drained port by
# port; a generous bound lets every producer fragment run to
# completion without blocking on the drain order. (The simulator
# exchanges batches, so this is a host-memory allowance, not a model
# cost — the per-page output costs are charged by the emitters as
# usual.)
FRAGMENT_QUEUE_CAPACITY = 1 << 20

_STREAMING = frozenset({"filter", "project"})
_UNARY = frozenset({"filter", "project", "sort", "aggregate", "limit"})


def _scan_leaf(node: PlanNode) -> Optional[PlanNode]:
    """The scan under a pure streaming chain, else ``None``."""
    while node.kind in _STREAMING:
        node = node.children[0]
    return node if node.kind == "scan" else None


def find_region(plan: PlanNode) -> Optional[tuple[PlanNode, str]]:
    """Locate the parallel region: ``(node, strategy)`` or ``None``.

    ``order_ok`` clears under a ``limit`` ancestor (a reordered row
    set would change *which* rows survive) and under a ``sort``
    ancestor (a stable sort's tie order exposes its input order);
    ``fold_ok`` clears under an ``aggregate`` ancestor (a reordered
    row set would change floating-point accumulation order). The scan
    and partition-wise aggregate strategies ignore both flags — their
    output is exactly the serial stream.
    """
    node = plan
    order_ok = True
    fold_ok = True
    while True:
        kind = node.kind
        if kind == "scan":
            return node, "scan"
        if (
            kind == "aggregate"
            and node.params["group_by"]
            and _scan_leaf(node.children[0]) is not None
        ):
            return node, "aggregate"
        if (
            kind == "hash_join"
            and order_ok
            and fold_ok
            and all(_scan_leaf(child) is not None for child in node.children)
        ):
            return node, "hash_join"
        if kind not in _UNARY:
            return None
        if kind in ("limit", "sort"):
            order_ok = False
        elif kind == "aggregate":
            fold_ok = False
        node = node.children[0]


def _spawn(engine, task_gen, name: str, group: str):
    task = engine.sim.spawn(task_gen, name=name, group=group)
    engine._task_counter += 1
    if engine._collect_tasks is not None:
        engine._collect_tasks.append(task)
    return task


def _build_fragment_chains(engine, chain_root, scan_node, dop, prefix, ctx):
    """Per-fragment pipelines (range scan + streaming chain clones).

    Returns one output queue per fragment, sized for deferred draining
    (the caller's gather or exchange consumer reads them in fragment
    order).
    """
    table = ctx.catalog.table(scan_node.params["table"])
    ranges = partition_ranges(table.page_count(ctx.page_rows), dop)
    chain = []
    node = chain_root
    while node.op_id != scan_node.op_id:
        chain.append(node)
        node = node.children[0]
    chain.reverse()
    outs = []
    for index, (lo, hi) in enumerate(ranges):
        fprefix = f"{prefix}.f{index}"
        capacity = engine.queue_capacity if chain else FRAGMENT_QUEUE_CAPACITY
        queue = engine.sim.queue(f"{fprefix}:{scan_node.op_id}->out0", capacity)
        _spawn(
            engine,
            drive(FragmentScanOperator(scan_node, ctx, [queue], lo, hi), []),
            f"{fprefix}/{scan_node.op_id}",
            fprefix,
        )
        for depth, stage_node in enumerate(chain):
            capacity = (
                engine.queue_capacity
                if depth < len(chain) - 1
                else FRAGMENT_QUEUE_CAPACITY
            )
            out_q = engine.sim.queue(
                f"{fprefix}:{stage_node.op_id}->out0", capacity
            )
            _spawn(
                engine,
                build_operator_task(stage_node, [queue], [out_q], ctx),
                f"{fprefix}/{stage_node.op_id}",
                fprefix,
            )
            queue = out_q
        outs.append(queue)
    return outs


def _build_exchanges(engine, child, frag_qs, key_idx, dop, prefix, region_op_id, ctx):
    """One exchange per fragment; returns queues[consumer][producer]."""
    partition_qs: list[list[SimQueue]] = [[] for _ in range(dop)]
    for index, frag_q in enumerate(frag_qs):
        outs = [
            engine.sim.queue(
                f"{prefix}.f{index}:{region_op_id}.x->p{j}",
                FRAGMENT_QUEUE_CAPACITY,
            )
            for j in range(dop)
        ]
        exchange = ExchangeOperator(child, ctx, outs, key_idx)
        _spawn(
            engine,
            drive(exchange, [frag_q]),
            f"{prefix}.f{index}/{region_op_id}.exchange",
            f"{prefix}.f{index}",
        )
        for j in range(dop):
            partition_qs[j].append(outs[j])
    return partition_qs


def _build_scan_gather(engine, scan_node, dop, prefix, ctx):
    frag_qs = _build_fragment_chains(engine, scan_node, scan_node, dop, prefix, ctx)
    out_q = engine.sim.queue(
        f"{prefix}:{scan_node.op_id}.gather->out0", engine.queue_capacity
    )
    gather = GatherOperator(scan_node, ctx, [out_q], len(frag_qs))
    _spawn(engine, drive(gather, frag_qs), f"{prefix}/{scan_node.op_id}.gather", prefix)
    return out_q


def _build_partition_aggregate(engine, region, dop, prefix, ctx):
    child = region.children[0]
    scan_node = _scan_leaf(child)
    frag_qs = _build_fragment_chains(engine, child, scan_node, dop, prefix, ctx)
    key_idx = [child.schema.index_of(name) for name in region.params["group_by"]]
    partition_qs = _build_exchanges(
        engine, child, frag_qs, key_idx, dop, prefix, region.op_id, ctx
    )
    agg_qs = []
    for j in range(dop):
        out_q = engine.sim.queue(
            f"{prefix}.p{j}:{region.op_id}->out0", engine.queue_capacity
        )
        aggregate = AggregateOperator(region, ctx, [out_q])
        _spawn(
            engine,
            drive_fanin(aggregate, [(0, partition_qs[j])]),
            f"{prefix}.p{j}/{region.op_id}",
            f"{prefix}.p{j}",
        )
        agg_qs.append(out_q)
    key_width = len(region.params["group_by"])
    out_q = engine.sim.queue(
        f"{prefix}:{region.op_id}.merge->out0", engine.queue_capacity
    )
    emitter = BatchEmitter(
        [out_q],
        ctx.page_rows,
        ctx.costs,
        width=len(region.schema),
        op=f"{region.op_id}.merge",
        perf=ctx.perf,
    )
    merge = ordered_merge(
        agg_qs,
        emitter,
        lambda row: _sort_key(row[:key_width]),
        ctx.costs.sort_tuple,
    )
    _spawn(engine, merge, f"{prefix}/{region.op_id}.merge", prefix)
    return out_q


def _build_partition_join(engine, region, dop, prefix, ctx):
    build_child, probe_child = region.children
    sides = []
    for tag, child, key_name in (
        ("b", build_child, region.params["build_key"]),
        ("pr", probe_child, region.params["probe_key"]),
    ):
        scan_node = _scan_leaf(child)
        frag_qs = _build_fragment_chains(
            engine, child, scan_node, dop, f"{prefix}.{tag}", ctx
        )
        key_idx = [child.schema.index_of(key_name)]
        sides.append(
            _build_exchanges(
                engine, child, frag_qs, key_idx, dop,
                f"{prefix}.{tag}", region.op_id, ctx,
            )
        )
    build_parts, probe_parts = sides
    join_qs = []
    for j in range(dop):
        out_q = engine.sim.queue(
            f"{prefix}.p{j}:{region.op_id}->out0", FRAGMENT_QUEUE_CAPACITY
        )
        join = HashJoinOperator(region, ctx, [out_q])
        _spawn(
            engine,
            drive_fanin(join, [(0, build_parts[j]), (1, probe_parts[j])]),
            f"{prefix}.p{j}/{region.op_id}",
            f"{prefix}.p{j}",
        )
        join_qs.append(out_q)
    out_q = engine.sim.queue(
        f"{prefix}:{region.op_id}.gather->out0", engine.queue_capacity
    )
    gather = GatherOperator(region, ctx, [out_q], dop)
    _spawn(engine, drive(gather, join_qs), f"{prefix}/{region.op_id}.gather", prefix)
    return out_q


def build_parallel_query(engine, plan, dop, prefix, ctx):
    """Spawn the parallel task graph; returns the root output queue.

    ``None`` when the plan has no parallelizable region — the caller
    falls back to serial execution.
    """
    found = find_region(plan)
    if found is None:
        return None
    region, strategy = found
    if strategy == "scan":
        region_q = _build_scan_gather(engine, region, dop, prefix, ctx)
    elif strategy == "aggregate":
        region_q = _build_partition_aggregate(engine, region, dop, prefix, ctx)
    else:
        region_q = _build_partition_join(engine, region, dop, prefix, ctx)
    if region.op_id == plan.op_id:
        return region_q
    (root_q,) = engine._build_subplan(
        plan,
        consumers=1,
        prefix=prefix,
        substitutions={region.op_id: region_q},
        ctx=ctx,
    )
    return root_q
