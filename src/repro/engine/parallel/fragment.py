"""Fragmented parallel scans: one table, ``dop`` page ranges.

A parallel scan splits the table's pages into contiguous ranges, one
:class:`FragmentScanOperator` per range. Each fragment reads its range
in ascending page order — the property every downstream determinism
argument (order-preserving gather, bit-identical partition-wise
aggregation) builds on.

With a :class:`~repro.storage.shared_scan.ScanShareManager` attached,
a fragment does not bypass the sharing layer: it attaches a *ranged*
ticket (fixed start, page-range span) to the table's elevator cursor,
so fragments of concurrent queries convoy on overlapping ranges, share
pool residency and in-flight prefetches, and appear in the cursor's
sharing statistics. A ranged ticket walks ``[lo, hi)`` in order
regardless of the cursor's head, so fragment output order — unlike a
full elevator scan's — never rotates.
"""

from __future__ import annotations

from repro.engine.operators.scan import ScanOperator
from repro.sim.events import Compute
from repro.storage.buffer import table_page_key

__all__ = ["FragmentScanOperator", "partition_ranges"]


def partition_ranges(n_pages: int, dop: int) -> list[tuple[int, int]]:
    """Split ``n_pages`` into at most ``dop`` contiguous ranges.

    Ranges differ in length by at most one page; fewer than ``dop``
    ranges come back when the table is smaller than the requested
    parallelism (never an empty range).
    """
    fragments = max(1, min(dop, n_pages))
    base, extra = divmod(n_pages, fragments)
    ranges = []
    lo = 0
    for index in range(fragments):
        hi = lo + base + (1 if index < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class FragmentScanOperator(ScanOperator):
    """A scan over one contiguous page range ``[page_lo, page_hi)``."""

    def __init__(self, node, ctx, out_queues, page_lo: int, page_hi: int) -> None:
        super().__init__(node, ctx, out_queues)
        self.page_lo = page_lo
        self.page_hi = page_hi

    def open(self):
        ctx = self.ctx
        if (
            ctx.scans is not None
            and ctx.pool is not None
            and self.page_hi > self.page_lo
        ):
            ticket = ctx.scans.attach(
                self.table.name,
                self.table.page_count(ctx.page_rows),
                start=self.page_lo,
                span=self.page_hi - self.page_lo,
            )
            yield from self._ride_elevator(ticket)
        else:
            yield from self._range_scan()

    def _range_scan(self):
        """Sequential reads over the fragment's range (no cursor)."""
        ctx = self.ctx
        pool = ctx.pool
        emitter = self.emitter
        name = self.table.name
        for index in range(self.page_lo, self.page_hi):
            cost, batch = self._load_page(index)
            io = 0.0
            if pool is not None and not pool.access(table_page_key(name, index)):
                io = ctx.costs.io_page
            yield Compute(cost + io, io=io)
            if batch._n:
                yield from emitter.emit_batch(batch)
