"""Intra-query parallelism: exchange-partitioned operator fragments.

The package lowers a serial plan to a ``dop``-way parallel task graph
(Gamma-style): fragmented page-range scans, hash exchanges, partition-
wise joins and aggregates, and deterministic gathers. Entry point is
:func:`~repro.engine.parallel.builder.build_parallel_query`, reached
through ``Engine.execute(plan, dop=...)``.
"""

from repro.engine.parallel.builder import (
    FRAGMENT_QUEUE_CAPACITY,
    build_parallel_query,
    find_region,
)
from repro.engine.parallel.exchange import (
    EXCHANGE_SALT,
    ExchangeOperator,
    GatherOperator,
    drive_fanin,
    ordered_merge,
)
from repro.engine.parallel.fragment import FragmentScanOperator, partition_ranges

__all__ = [
    "EXCHANGE_SALT",
    "FRAGMENT_QUEUE_CAPACITY",
    "ExchangeOperator",
    "FragmentScanOperator",
    "GatherOperator",
    "build_parallel_query",
    "drive_fanin",
    "find_region",
    "ordered_merge",
    "partition_ranges",
]
