"""Storage-layer wiring invariants, in one place.

Three optional components govern an engine's storage behavior — a
:class:`~repro.storage.buffer.BufferPool`, a
:class:`~repro.engine.memory.MemoryBroker`, and a
:class:`~repro.storage.shared_scan.ScanShareManager` — and they are
only coherent together when three invariants hold:

* a scan manager's elevator cursors read through *the engine's* pool
  (one disk model, one residency picture);
* a broker given without a pool gets one sized to its ``work_mem``
  (spill files need somewhere to live), and that auto-created pool is
  *bound* to the broker — reusing the broker later with a different
  explicit pool would silently split its spill files from its
  accounting, so it is rejected;
* spill read-back prefetch inherits the scan manager's depth unless
  set explicitly (one read-ahead discipline per engine).

:func:`resolve_storage` is the single implementation of those rules.
:class:`~repro.engine.engine.Engine` calls it on every construction,
and :class:`repro.db.RuntimeConfig` builds its component sets through
it, so the facade and the low-level API cannot drift apart.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.engine.memory import MemoryBroker
from repro.errors import EngineError
from repro.storage.buffer import BufferPool
from repro.storage.shared_scan import ScanShareManager

__all__ = ["resolve_storage"]


def resolve_storage(
    buffer_pool: Optional[BufferPool],
    memory: Optional[MemoryBroker],
    scan_manager: Optional[ScanShareManager],
    spill_prefetch_depth: Optional[int],
) -> Tuple[
    Optional[BufferPool],
    Optional[MemoryBroker],
    Optional[ScanShareManager],
    int,
]:
    """Normalize and validate one storage-component set.

    Returns ``(pool, memory, scan_manager, spill_prefetch_depth)``
    with every inheritance rule applied, or raises
    :class:`~repro.errors.EngineError` on an incoherent combination.
    """
    if spill_prefetch_depth is None:
        spill_prefetch_depth = scan_manager.prefetch_depth if scan_manager is not None else 0
    if spill_prefetch_depth < 0:
        raise EngineError(f"spill_prefetch_depth must be >= 0, got {spill_prefetch_depth}")
    if scan_manager is not None:
        if buffer_pool is None:
            buffer_pool = scan_manager.pool
        elif scan_manager.pool is not buffer_pool:
            raise EngineError(
                "scan_manager reads through a different BufferPool "
                "than the engine's buffer_pool"
            )
    if memory is not None:
        if buffer_pool is None:
            if memory.pool is None:
                memory.bind_pool(BufferPool(max(memory.work_mem, 16)))
            buffer_pool = memory.pool
        elif memory.pool is not None and memory.pool is not buffer_pool:
            raise EngineError(
                "MemoryBroker is already bound to another BufferPool "
                "(the one auto-created for it, or a previous engine's); "
                "passing a different buffer_pool would shadow that pool — "
                "its spill files and accounting live there. Reuse the "
                "bound pool or create a fresh broker."
            )
        else:
            memory.bind_pool(buffer_pool)
    return buffer_pool, memory, scan_manager, spill_prefetch_depth
