"""Scalar expressions over tuples.

A tiny, explicit expression tree used by filters, projections and
aggregates. Expressions *compile* against a schema into plain Python
closures over column indices (so per-tuple evaluation is one function
call), and every expression has a deterministic ``signature()`` string
— two operators with equal signatures request the same work, which is
what packet merging needs to detect (Section 3.2: "the stage thread
searches the queue for other packets that request the same
operation").

SQL three-valued logic is simplified to Python semantics with ``None``
as NULL: comparisons involving ``None`` are false, arithmetic with
``None`` yields ``None``, and aggregates skip ``None`` inputs — enough
for the outer-join counting of TPC-H Q13.

Expressions also *batch-compile* (:func:`compile_batch`): the tree is
lowered to a generated list comprehension over column lists, so one
batch evaluates in a single interpreted loop instead of a closure call
per row per node. The generated code preserves the row semantics above
value-for-value; only evaluation laziness differs (a guarded operand
may be skipped when its sibling is NULL), which is unobservable for
the pure expressions the tree models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.errors import PlanError
from repro.storage.schema import Schema

__all__ = [
    "Expr",
    "compile_batch",
    "try_compile_batch",
    "col",
    "lit",
    "add",
    "sub",
    "mul",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "between",
    "in_",
    "and_",
    "or_",
    "not_",
    "udf",
]

RowFn = Callable[[tuple], Any]

# A batch-compiled expression: (columns, n_rows) -> list of n values.
BatchFn = Callable[[Sequence[Sequence[Any]], int], list]


class _BatchCodegen:
    """Shared state of one :func:`compile_batch` lowering.

    Tracks which column indices the expression reads (they become the
    comprehension's loop variables ``_r<i>``), hands out unique walrus
    temp names, and collects non-inlinable constants/callables into the
    generated function's namespace.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.used: set[int] = set()
        self.env: dict[str, Any] = {}
        self._counter = 0

    def column(self, name: str) -> str:
        index = self.schema.index_of(name)
        self.used.add(index)
        return f"_r{index}"

    def temp(self) -> str:
        self._counter += 1
        return f"_t{self._counter}"

    def constant(self, value: Any) -> str:
        name = f"_k{len(self.env)}"
        self.env[name] = value
        return name


class Expr:
    """Base expression node."""

    def compile(self, schema: Schema) -> RowFn:
        raise NotImplementedError

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        """The node as a Python expression over ``_r<i>`` loop vars."""
        raise PlanError(
            f"expression {self.signature()} does not support batch compilation"
        )

    def signature(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.signature()


# Compiled-batch memo: plans are rebuilt per execution but reuse the
# same (immutable) expression trees, so lowering + ``compile()`` would
# otherwise dominate short queries. Keyed by the expression node and
# the schema's column tuple (both hashable); entries whose expressions
# are unhashable (exotic Udf payloads) simply compile uncached.
_BATCH_CACHE: dict = {}
_BATCH_CACHE_MAX = 4096


def compile_batch(expr: Expr, schema: Schema) -> BatchFn:
    """Lower ``expr`` to a function evaluating a whole column batch.

    The result takes ``(columns, n)`` — the batch's column lists and
    its row count — and returns the list of ``n`` values the row-wise
    ``expr.compile(schema)`` closure would produce row by row. Raises
    :class:`~repro.errors.PlanError` for expression nodes outside this
    module's tree (see :func:`try_compile_batch`).
    """
    try:
        cache_key = (expr, schema.columns)
        cached = _BATCH_CACHE.get(cache_key)
    except TypeError:
        cache_key = None
        cached = None
    if cached is not None:
        return cached
    gen = _BatchCodegen(schema)
    body = expr._emit_batch(gen)
    used = sorted(gen.used)
    if not used:
        loop = "for _ in range(_n)"
    elif len(used) == 1:
        loop = f"for _r{used[0]} in _cols[{used[0]}]"
    else:
        targets = ", ".join(f"_r{i}" for i in used)
        sources = ", ".join(f"_cols[{i}]" for i in used)
        loop = f"for {targets} in zip({sources})"
    source = f"def _batch(_cols, _n):\n    return [({body}) {loop}]\n"
    namespace = dict(gen.env)
    exec(compile(source, "<repro-batch-expr>", "exec"), namespace)
    fn = namespace["_batch"]
    if cache_key is not None:
        if len(_BATCH_CACHE) >= _BATCH_CACHE_MAX:
            _BATCH_CACHE.clear()
        _BATCH_CACHE[cache_key] = fn
    return fn


def try_compile_batch(expr: Expr, schema: Schema) -> Optional[BatchFn]:
    """:func:`compile_batch`, or ``None`` when the tree has a node the
    lowering does not know (custom :class:`Expr` subclasses keep
    working through the row-at-a-time path)."""
    try:
        return compile_batch(expr, schema)
    except PlanError:
        return None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str

    def compile(self, schema: Schema) -> RowFn:
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        return gen.column(self.name)

    def signature(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def compile(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        value = self.value
        # repr() round-trips these exactly (finite floats included).
        if value is None or type(value) in (int, bool, str):
            return repr(value)
        if type(value) is float and math.isfinite(value):
            return repr(value)
        return gen.constant(value)

    def signature(self) -> str:
        return f"lit({self.value!r})"


_ARITH = {
    "add": lambda a, b: None if a is None or b is None else a + b,
    "sub": lambda a, b: None if a is None or b is None else a - b,
    "mul": lambda a, b: None if a is None or b is None else a * b,
}

_COMPARE = {
    "eq": lambda a, b: a is not None and b is not None and a == b,
    "ne": lambda a, b: a is not None and b is not None and a != b,
    "lt": lambda a, b: a is not None and b is not None and a < b,
    "le": lambda a, b: a is not None and b is not None and a <= b,
    "gt": lambda a, b: a is not None and b is not None and a > b,
    "ge": lambda a, b: a is not None and b is not None and a >= b,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def compile(self, schema: Schema) -> RowFn:
        table = _ARITH if self.op in _ARITH else _COMPARE
        if self.op not in table:
            raise PlanError(f"unknown binary operator {self.op!r}")
        fn = table[self.op]
        lf = self.left.compile(schema)
        rf = self.right.compile(schema)
        return lambda row: fn(lf(row), rf(row))

    _SYMBOLS = {
        "add": "+", "sub": "-", "mul": "*",
        "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
    }

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        if self.op not in self._SYMBOLS:
            raise PlanError(f"unknown binary operator {self.op!r}")
        a = self.left._emit_batch(gen)
        b = self.right._emit_batch(gen)
        ta, tb = gen.temp(), gen.temp()
        sym = self._SYMBOLS[self.op]
        if self.op in _ARITH:
            return (
                f"(None if ({ta} := {a}) is None or ({tb} := {b}) is None"
                f" else {ta} {sym} {tb})"
            )
        return (
            f"(({ta} := {a}) is not None and ({tb} := {b}) is not None"
            f" and {ta} {sym} {tb})"
        )

    def signature(self) -> str:
        return f"{self.op}({self.left.signature()},{self.right.signature()})"


@dataclass(frozen=True)
class Between(Expr):
    """Inclusive range check, NULL-safe (NULL is never between)."""

    operand: Expr
    low: Expr
    high: Expr

    def compile(self, schema: Schema) -> RowFn:
        vf = self.operand.compile(schema)
        lo = self.low.compile(schema)
        hi = self.high.compile(schema)

        def run(row: tuple) -> bool:
            value = vf(row)
            return value is not None and lo(row) <= value <= hi(row)

        return run

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        v = self.operand._emit_batch(gen)
        lo = self.low._emit_batch(gen)
        hi = self.high._emit_batch(gen)
        t = gen.temp()
        return f"(({t} := {v}) is not None and ({lo}) <= {t} <= ({hi}))"

    def signature(self) -> str:
        return (
            f"between({self.operand.signature()},{self.low.signature()},"
            f"{self.high.signature()})"
        )


@dataclass(frozen=True)
class InSet(Expr):
    operand: Expr
    values: tuple

    def compile(self, schema: Schema) -> RowFn:
        vf = self.operand.compile(schema)
        values = frozenset(self.values)
        return lambda row: vf(row) in values

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        v = self.operand._emit_batch(gen)
        return f"(({v}) in {gen.constant(frozenset(self.values))})"

    def signature(self) -> str:
        return f"in({self.operand.signature()},{sorted(map(repr, self.values))})"


@dataclass(frozen=True)
class BooleanOp(Expr):
    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def compile(self, schema: Schema) -> RowFn:
        fns = [operand.compile(schema) for operand in self.operands]
        if self.op == "and":
            return lambda row: all(fn(row) for fn in fns)
        if self.op == "or":
            return lambda row: any(fn(row) for fn in fns)
        raise PlanError(f"unknown boolean operator {self.op!r}")

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        if self.op not in ("and", "or"):
            raise PlanError(f"unknown boolean operator {self.op!r}")
        parts = [f"({o._emit_batch(gen)})" for o in self.operands]
        # bool() matches all()/any(); and/or short-circuit identically.
        return f"bool({f' {self.op} '.join(parts)})"

    def signature(self) -> str:
        inner = ",".join(operand.signature() for operand in self.operands)
        return f"{self.op}({inner})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def compile(self, schema: Schema) -> RowFn:
        fn = self.operand.compile(schema)
        return lambda row: not fn(row)

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        return f"(not ({self.operand._emit_batch(gen)}))"

    def signature(self) -> str:
        return f"not({self.operand.signature()})"


@dataclass(frozen=True)
class Udf(Expr):
    """A named pure function of one or more sub-expressions.

    The name *is* the sharing identity: two Udf nodes with the same
    name and operands are assumed to request identical work. Used for
    predicates the expression language does not cover (e.g. Q13's
    ``LIKE '%special%requests%'``).
    """

    name: str
    fn: Callable[..., Any]
    operands: tuple[Expr, ...]

    def compile(self, schema: Schema) -> RowFn:
        fns = [operand.compile(schema) for operand in self.operands]
        fn = self.fn
        return lambda row: fn(*(f(row) for f in fns))

    def _emit_batch(self, gen: _BatchCodegen) -> str:
        args = ", ".join(f"({o._emit_batch(gen)})" for o in self.operands)
        return f"{gen.constant(self.fn)}({args})"

    def signature(self) -> str:
        inner = ",".join(operand.signature() for operand in self.operands)
        return f"udf:{self.name}({inner})"


# -- convenience constructors ------------------------------------------------


def col(name: str) -> Expr:
    return ColumnRef(name)


def lit(value: Any) -> Expr:
    return Literal(value)


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


def add(left, right) -> Expr:
    return BinaryOp("add", _wrap(left), _wrap(right))


def sub(left, right) -> Expr:
    return BinaryOp("sub", _wrap(left), _wrap(right))


def mul(left, right) -> Expr:
    return BinaryOp("mul", _wrap(left), _wrap(right))


def eq(left, right) -> Expr:
    return BinaryOp("eq", _wrap(left), _wrap(right))


def ne(left, right) -> Expr:
    return BinaryOp("ne", _wrap(left), _wrap(right))


def lt(left, right) -> Expr:
    return BinaryOp("lt", _wrap(left), _wrap(right))


def le(left, right) -> Expr:
    return BinaryOp("le", _wrap(left), _wrap(right))


def gt(left, right) -> Expr:
    return BinaryOp("gt", _wrap(left), _wrap(right))


def ge(left, right) -> Expr:
    return BinaryOp("ge", _wrap(left), _wrap(right))


def between(operand, low, high) -> Expr:
    return Between(_wrap(operand), _wrap(low), _wrap(high))


def in_(operand, values: Sequence[Any]) -> Expr:
    return InSet(_wrap(operand), tuple(values))


def and_(*operands) -> Expr:
    if not operands:
        raise PlanError("and_() needs at least one operand")
    return BooleanOp("and", tuple(_wrap(o) for o in operands))


def or_(*operands) -> Expr:
    if not operands:
        raise PlanError("or_() needs at least one operand")
    return BooleanOp("or", tuple(_wrap(o) for o in operands))


def not_(operand) -> Expr:
    return Not(_wrap(operand))


def udf(name: str, fn: Callable[..., Any], *operands) -> Expr:
    return Udf(name, fn, tuple(_wrap(o) for o in operands))
