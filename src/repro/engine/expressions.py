"""Scalar expressions over tuples.

A tiny, explicit expression tree used by filters, projections and
aggregates. Expressions *compile* against a schema into plain Python
closures over column indices (so per-tuple evaluation is one function
call), and every expression has a deterministic ``signature()`` string
— two operators with equal signatures request the same work, which is
what packet merging needs to detect (Section 3.2: "the stage thread
searches the queue for other packets that request the same
operation").

SQL three-valued logic is simplified to Python semantics with ``None``
as NULL: comparisons involving ``None`` are false, arithmetic with
``None`` yields ``None``, and aggregates skip ``None`` inputs — enough
for the outer-join counting of TPC-H Q13.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import PlanError
from repro.storage.schema import Schema

__all__ = [
    "Expr",
    "col",
    "lit",
    "add",
    "sub",
    "mul",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "between",
    "in_",
    "and_",
    "or_",
    "not_",
    "udf",
]

RowFn = Callable[[tuple], Any]


class Expr:
    """Base expression node."""

    def compile(self, schema: Schema) -> RowFn:
        raise NotImplementedError

    def signature(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.signature()


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str

    def compile(self, schema: Schema) -> RowFn:
        index = schema.index_of(self.name)
        return lambda row: row[index]

    def signature(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class Literal(Expr):
    value: Any

    def compile(self, schema: Schema) -> RowFn:
        value = self.value
        return lambda row: value

    def signature(self) -> str:
        return f"lit({self.value!r})"


_ARITH = {
    "add": lambda a, b: None if a is None or b is None else a + b,
    "sub": lambda a, b: None if a is None or b is None else a - b,
    "mul": lambda a, b: None if a is None or b is None else a * b,
}

_COMPARE = {
    "eq": lambda a, b: a is not None and b is not None and a == b,
    "ne": lambda a, b: a is not None and b is not None and a != b,
    "lt": lambda a, b: a is not None and b is not None and a < b,
    "le": lambda a, b: a is not None and b is not None and a <= b,
    "gt": lambda a, b: a is not None and b is not None and a > b,
    "ge": lambda a, b: a is not None and b is not None and a >= b,
}


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str
    left: Expr
    right: Expr

    def compile(self, schema: Schema) -> RowFn:
        table = _ARITH if self.op in _ARITH else _COMPARE
        if self.op not in table:
            raise PlanError(f"unknown binary operator {self.op!r}")
        fn = table[self.op]
        lf = self.left.compile(schema)
        rf = self.right.compile(schema)
        return lambda row: fn(lf(row), rf(row))

    def signature(self) -> str:
        return f"{self.op}({self.left.signature()},{self.right.signature()})"


@dataclass(frozen=True)
class Between(Expr):
    """Inclusive range check, NULL-safe (NULL is never between)."""

    operand: Expr
    low: Expr
    high: Expr

    def compile(self, schema: Schema) -> RowFn:
        vf = self.operand.compile(schema)
        lo = self.low.compile(schema)
        hi = self.high.compile(schema)

        def run(row: tuple) -> bool:
            value = vf(row)
            return value is not None and lo(row) <= value <= hi(row)

        return run

    def signature(self) -> str:
        return (
            f"between({self.operand.signature()},{self.low.signature()},"
            f"{self.high.signature()})"
        )


@dataclass(frozen=True)
class InSet(Expr):
    operand: Expr
    values: tuple

    def compile(self, schema: Schema) -> RowFn:
        vf = self.operand.compile(schema)
        values = frozenset(self.values)
        return lambda row: vf(row) in values

    def signature(self) -> str:
        return f"in({self.operand.signature()},{sorted(map(repr, self.values))})"


@dataclass(frozen=True)
class BooleanOp(Expr):
    op: str  # "and" | "or"
    operands: tuple[Expr, ...]

    def compile(self, schema: Schema) -> RowFn:
        fns = [operand.compile(schema) for operand in self.operands]
        if self.op == "and":
            return lambda row: all(fn(row) for fn in fns)
        if self.op == "or":
            return lambda row: any(fn(row) for fn in fns)
        raise PlanError(f"unknown boolean operator {self.op!r}")

    def signature(self) -> str:
        inner = ",".join(operand.signature() for operand in self.operands)
        return f"{self.op}({inner})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def compile(self, schema: Schema) -> RowFn:
        fn = self.operand.compile(schema)
        return lambda row: not fn(row)

    def signature(self) -> str:
        return f"not({self.operand.signature()})"


@dataclass(frozen=True)
class Udf(Expr):
    """A named pure function of one or more sub-expressions.

    The name *is* the sharing identity: two Udf nodes with the same
    name and operands are assumed to request identical work. Used for
    predicates the expression language does not cover (e.g. Q13's
    ``LIKE '%special%requests%'``).
    """

    name: str
    fn: Callable[..., Any]
    operands: tuple[Expr, ...]

    def compile(self, schema: Schema) -> RowFn:
        fns = [operand.compile(schema) for operand in self.operands]
        fn = self.fn
        return lambda row: fn(*(f(row) for f in fns))

    def signature(self) -> str:
        inner = ",".join(operand.signature() for operand in self.operands)
        return f"udf:{self.name}({inner})"


# -- convenience constructors ------------------------------------------------


def col(name: str) -> Expr:
    return ColumnRef(name)


def lit(value: Any) -> Expr:
    return Literal(value)


def _wrap(value: Any) -> Expr:
    return value if isinstance(value, Expr) else Literal(value)


def add(left, right) -> Expr:
    return BinaryOp("add", _wrap(left), _wrap(right))


def sub(left, right) -> Expr:
    return BinaryOp("sub", _wrap(left), _wrap(right))


def mul(left, right) -> Expr:
    return BinaryOp("mul", _wrap(left), _wrap(right))


def eq(left, right) -> Expr:
    return BinaryOp("eq", _wrap(left), _wrap(right))


def ne(left, right) -> Expr:
    return BinaryOp("ne", _wrap(left), _wrap(right))


def lt(left, right) -> Expr:
    return BinaryOp("lt", _wrap(left), _wrap(right))


def le(left, right) -> Expr:
    return BinaryOp("le", _wrap(left), _wrap(right))


def gt(left, right) -> Expr:
    return BinaryOp("gt", _wrap(left), _wrap(right))


def ge(left, right) -> Expr:
    return BinaryOp("ge", _wrap(left), _wrap(right))


def between(operand, low, high) -> Expr:
    return Between(_wrap(operand), _wrap(low), _wrap(high))


def in_(operand, values: Sequence[Any]) -> Expr:
    return InSet(_wrap(operand), tuple(values))


def and_(*operands) -> Expr:
    if not operands:
        raise PlanError("and_() needs at least one operand")
    return BooleanOp("and", tuple(_wrap(o) for o in operands))


def or_(*operands) -> Expr:
    if not operands:
        raise PlanError("or_() needs at least one operand")
    return BooleanOp("or", tuple(_wrap(o) for o in operands))


def not_(operand) -> Expr:
    return Not(_wrap(operand))


def udf(name: str, fn: Callable[..., Any], *operands) -> Expr:
    return Udf(name, fn, tuple(_wrap(o) for o in operands))
